"""Figure 12: the effect of fusion granularity across all four model classes.

Paper shape:

* SAE — full fusion ~1.94x, partial ~1.01x (layer-dominated by the SpMM);
* GCN — partial fusion best (up to ~2.6x on collab); full fusion degrades
  (recomputation of layer-1 activations);
* GraphSAGE — partial best (up to ~3.9x on mag); full degrades;
* GPT-3 w/ BigBird — full fusion best (~2.7x), growing with block size.

Every configuration is functionally verified against the dense reference.
"""

import pytest

from bench_common import BALANCED_MACHINE, cached, fusion_sweep, print_figure
from repro.data.registry import GRAPH_DATASETS, SAE_DATASETS, graph_dataset, sae_dataset
from repro.models.gcn import build_gcn
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import build_graphsage
from repro.models.sae import build_sae

GCN_DATASETS = ["cora", "cora_ml", "dblp", "collab", "mag"]
GPT3_BLOCKS = [4, 8, 16]


@cached
def sae_series():
    out = {}
    for name in SAE_DATASETS:
        entry, x = sae_dataset(name)
        bundle = build_sae(x, seed=entry.seed)
        _, speedups = fusion_sweep(bundle, BALANCED_MACHINE)
        out[name] = speedups
    return out


@cached
def graph_series(model: str):
    builder = build_gcn if model == "gcn" else build_graphsage
    out = {}
    for name in GCN_DATASETS:
        entry, adj, feats = graph_dataset(name)
        bundle = builder(adj, feats, hidden=8, classes=4, seed=entry.seed)
        _, speedups = fusion_sweep(bundle, BALANCED_MACHINE)
        out[name] = speedups
    return out


@cached
def gpt3_series():
    out = {}
    for block in GPT3_BLOCKS:
        bundle = build_gpt3(seq_len=64, d_model=16, block=block, n_layers=2, seed=31)
        _, speedups = fusion_sweep(bundle, BALANCED_MACHINE)
        out[block] = speedups
    return out


def _rows(series):
    return [
        [str(key), f"{s['unfused']:.2f}x", f"{s['partial']:.2f}x", f"{s['full']:.2f}x"]
        for key, s in series.items()
    ]


HEADER = ["dataset", "unfused", "partially fused", "fully fused"]


def _assert_partial_beats_full(series):
    """Paper shape for graph models: partial fusion helps everywhere; full
    fusion degrades on most datasets (severely on the large collab/mag-like
    graphs), so partial remains the right granularity."""
    for name, s in series.items():
        assert s["partial"] > 1.3, f"{name}: partial fusion should help"
    degraded = [name for name, s in series.items() if s["full"] < s["partial"]]
    assert len(degraded) >= 3, f"full fusion should degrade most datasets: {series}"
    assert any(s["full"] < 1.0 for s in series.values()), (
        "full fusion should slow down at least one dataset"
    )


def test_fig12_sae(benchmark):
    series = sae_series()
    print_figure("Figure 12 (SAE): fusion speedups over unfused", _rows(series), HEADER)
    for name, s in series.items():
        assert s["full"] > 1.2, f"{name}: full fusion should win for SAE"
        assert s["full"] > s["partial"], name
    entry, x = sae_dataset("imagenet")
    bundle = build_sae(x, seed=entry.seed)
    benchmark(lambda: fusion_sweep(bundle, BALANCED_MACHINE))


def test_fig12_gcn(benchmark):
    series = graph_series("gcn")
    print_figure("Figure 12 (GCN): fusion speedups over unfused", _rows(series), HEADER)
    _assert_partial_beats_full(series)
    entry, adj, feats = graph_dataset("cora")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    benchmark(lambda: fusion_sweep(bundle, BALANCED_MACHINE))


def test_fig12_graphsage(benchmark):
    series = graph_series("graphsage")
    print_figure(
        "Figure 12 (GraphSAGE): fusion speedups over unfused", _rows(series), HEADER
    )
    _assert_partial_beats_full(series)
    entry, adj, feats = graph_dataset("cora")
    bundle = build_graphsage(adj, feats, hidden=8, classes=4, seed=entry.seed)
    benchmark(lambda: fusion_sweep(bundle, BALANCED_MACHINE))


def test_fig12_gpt3(benchmark):
    series = gpt3_series()
    print_figure(
        "Figure 12 (GPT-3 w/ BigBird): fusion speedups over unfused",
        _rows(series),
        ["block size"] + HEADER[1:],
    )
    for block, s in series.items():
        assert s["full"] > 1.2, f"block {block}"
        assert s["full"] >= s["partial"] * 0.95, f"block {block}"
    bundle = build_gpt3(seq_len=64, d_model=16, block=8, n_layers=1, seed=31)
    benchmark(lambda: fusion_sweep(bundle, BALANCED_MACHINE))
