"""Table 4: dataflow-order design-space sizes with and without local
per-kernel order constraints (Section 8.8).

Paper result: GCN has ~2x10^8 orders (capped; estimated up to ~10^15)
unconstrained vs 6.3x10^7 constrained; GraphSAGE 3.9x10^7 vs 1.1x10^3 —
constraining each matmul to its best local dataflow order shrinks the
design space by 68.5%-99.9%.
"""

import pytest

from bench_common import cached, print_figure
from repro.core.fusion.orders import program_order_space
from repro.data.registry import graph_dataset
from repro.models.gcn import build_gcn
from repro.models.graphsage import build_graphsage

CAP = 2 * 10**8  # the paper caps its search space at 2x10^8


def _best_local_orders(bundle):
    """Pin every contraction to its own concordant statement order."""
    constraints = {}
    for stmt in bundle.program.statements:
        if stmt.kind == "contract" and stmt.reduction_indices():
            lhs = list(stmt.lhs.indices)
            red = list(stmt.reduction_indices())
            # Gustavson-style: outer output, reductions, then inner outputs.
            constraints[stmt.sid] = tuple([lhs[0]] + red + lhs[1:])
    return constraints


@cached
def spaces():
    entry, adj, feats = graph_dataset("collab")
    out = {}
    for name, builder in (("GCN", build_gcn), ("GraphSAGE", build_graphsage)):
        bundle = builder(adj, feats, hidden=8, classes=4, seed=entry.seed)
        schedule = bundle.schedule("full")
        unconstrained, _ = program_order_space(bundle.program, schedule, cap=CAP)
        _, constrained = program_order_space(
            bundle.program,
            schedule,
            cap=CAP,
            best_order_constraints=_best_local_orders(bundle),
        )
        out[name] = (unconstrained, constrained)
    return out


def test_tab04_order_space(benchmark):
    data = spaces()
    rows = [
        [model, f"{unc:.1e}", f"{con:.1e}", f"{100 * (1 - con / unc):.1f}%"]
        for model, (unc, con) in data.items()
    ]
    print_figure(
        "Table 4: number of dataflow orders, unconstrained vs constrained",
        rows,
        ["Model", "Unconstr.", "Constr.", "reduction"],
    )
    for model, (unconstrained, constrained) in data.items():
        assert constrained < unconstrained, model
        # The paper reports 68.5%-99.9% design-space reductions.
        assert 1 - constrained / unconstrained > 0.5, model

    entry, adj, feats = graph_dataset("collab")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    benchmark(
        lambda: program_order_space(bundle.program, bundle.schedule("full"), cap=CAP)
    )
