"""Codegen backend benchmark: generated kernels vs the interpreters.

Measures end-to-end ``Executable.__call__`` wall time (functional + timed
simulation, exactly what sweeps and autotuning pay per point) for every
golden-model configuration under the three execution backends, with the
result memo off so every repetition pays the full functional execution:

``interp``
    Legacy tuple-list streams, per-token Python kernels.
``columnar``
    Vectorized interpreter over columnar ``TokenStream`` columns — the
    default backend and the baseline the codegen gate compares against.
``codegen``
    One specialized, ``compile()``-ed Python kernel per fusion region
    (see :mod:`repro.backend.codegen`): node dispatch, stream plumbing,
    and config lookups are folded away at emit time.  The emission tier
    (``FUSEFLOW_CODEGEN_TIER``, default ``columnar``) emits over the
    numpy columns backing each stream; blocked/short regions delegate to
    the token tier at run time (``token_dispatch_regions`` per row).

Region kernels are emitted and compiled at ``Session.compile`` time, so
the per-execution numbers are pure run time; emit + compile cost is
reported separately per row (``codegen_emit_ms``, ``codegen_loc``).

The committed artifact's headline — and the CI gate — is the codegen
speedup over the columnar interpreter on the gpt3 golden configuration's
hot path (fused schedule, rda machine).

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_codegen.py --out BENCH_codegen.json

or via pytest (asserts the acceptance floors)::

    PYTHONPATH=src python -m pytest benchmarks/bench_codegen.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro.backend import artifact_for
from repro.backend.codegen import codegen_cache_info, codegen_tier
from repro.comal.machines import MACHINES
from repro.driver import Session
from repro.sweep import SweepPoint, build_bundle

#: The canonical golden configurations (tests/golden/*.json).
GOLDEN_POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

#: Larger configuration where kernel time dominates wall time.
SCALE_POINTS = {
    "gcn": {"nodes": 160, "density": 0.06, "seed": 0},
}

MACHINE_NAME = "rda"
GRANULARITY = "partial"

BACKENDS = ("interp", "columnar", "codegen")


def _time_exec(exe, binding, repeats: int, budget_s: float = 3.0) -> float:
    """Best-of wall seconds for one execution, bounded by a time budget."""
    exe(binding)  # warm-up (imports, lazy caches)
    best = float("inf")
    deadline = time.perf_counter() + budget_s
    for _ in range(repeats):
        t0 = time.perf_counter()
        exe(binding)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if time.perf_counter() > deadline:
            break
    return best


def run_benchmark(repeats: int = 7) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    machine = MACHINES[MACHINE_NAME]
    for scale, points in (("golden", GOLDEN_POINTS), ("scale", SCALE_POINTS)):
        for model, model_args in points.items():
            bundle = build_bundle(SweepPoint.make(model, model_args=model_args))
            row: Dict[str, object] = {
                "model": model,
                "scale": scale,
                "machine": MACHINE_NAME,
                "granularity": GRANULARITY,
                "config": dict(model_args),
            }
            tokens = None
            for backend in BACKENDS:
                # The memo is off so every repetition pays the full
                # functional pass; protocol checks off to measure the
                # production configuration.
                session = Session(
                    machine=machine,
                    backend=backend,
                    sim_cache=False,
                    debug_streams=False,
                )
                exe = session.compile(
                    bundle.program, bundle.schedule(GRANULARITY)
                )
                n = repeats if scale == "golden" else max(1, repeats // 2)
                seconds = _time_exec(exe, bundle.binding, n)
                row[f"{backend}_ms"] = round(seconds * 1e3, 4)
                if tokens is None:
                    tokens = exe(bundle.binding).metrics.tokens
                else:
                    assert exe(bundle.binding).metrics.tokens == tokens
                if backend == "codegen":
                    loc = emit_ms = regions = 0
                    for region in exe.regions:
                        if region.graph is None:
                            continue
                        regions += 1
                        art = artifact_for(region.graph)
                        loc += art.loc
                        emit_ms += (art.emit_seconds + art.compile_seconds) * 1e3
                    row["codegen_loc"] = loc
                    row["codegen_emit_ms"] = round(emit_ms, 4)
                    # Which tier actually ran: the columnar emission tier
                    # adaptively delegates blocked/short regions to the
                    # token tier (see repro/backend/codegen.py).
                    before = codegen_cache_info()["token_dispatches"]
                    exe(bundle.binding)
                    dispatched = (
                        codegen_cache_info()["token_dispatches"] - before
                    )
                    row["tier"] = codegen_tier()
                    row["regions"] = regions
                    row["token_dispatch_regions"] = dispatched
            row["tokens"] = tokens
            row["speedup_vs_interp"] = round(
                row["interp_ms"] / row["codegen_ms"], 3
            )
            row["speedup_vs_columnar"] = round(
                row["columnar_ms"] / row["codegen_ms"], 3
            )
            rows.append(row)
    golden = {
        r["model"]: r for r in rows if r["scale"] == "golden"
    }
    gpt3 = golden["gpt3"]
    headline = {
        # The CI gates: generated kernels vs the default columnar
        # interpreter, per golden model (gpt3's hot path kept at >=2x,
        # gcn/graphsage at >=1.0 now that the columnar emission tier
        # vectorizes the scanner expansion).
        "tier": codegen_tier(),
        "gpt3_codegen_speedup": gpt3["speedup_vs_columnar"],
        "gpt3_columnar_ms": gpt3["columnar_ms"],
        "gpt3_codegen_ms": gpt3["codegen_ms"],
        "gpt3_codegen_loc": gpt3["codegen_loc"],
    }
    for model in ("gcn", "graphsage", "sae"):
        headline[f"{model}_codegen_speedup"] = (
            golden[model]["speedup_vs_columnar"]
        )
    return {
        "name": "codegen_backend",
        "granularity": GRANULARITY,
        "machine": MACHINE_NAME,
        "backends": list(BACKENDS),
        "rows": rows,
        "headline": headline,
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':10s} {'scale':6s} {'interp ms':>10s} {'columnar ms':>12s} "
        f"{'codegen ms':>11s} {'vs col':>7s} {'vs interp':>10s} "
        f"{'LoC':>6s} {'emit ms':>8s} {'tier':>14s}"
    ]
    for r in payload["rows"]:
        tier = r["tier"]
        if r["token_dispatch_regions"]:
            tier += f" ({r['token_dispatch_regions']}/{r['regions']} tok)"
        lines.append(
            f"{r['model']:10s} {r['scale']:6s} {r['interp_ms']:10.3f} "
            f"{r['columnar_ms']:12.3f} {r['codegen_ms']:11.3f} "
            f"{r['speedup_vs_columnar']:7.2f} {r['speedup_vs_interp']:10.2f} "
            f"{r['codegen_loc']:6d} {r['codegen_emit_ms']:8.2f} {tier:>14s}"
        )
    head = payload["headline"]
    lines.append(
        f"\ngpt3 golden hot path: codegen {head['gpt3_codegen_ms']:.3f} ms vs "
        f"columnar {head['gpt3_columnar_ms']:.3f} ms = "
        f"{head['gpt3_codegen_speedup']:.2f}x "
        f"({head['gpt3_codegen_loc']} emitted LoC, "
        f"{head['tier']} tier)"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance floors — the CI gate)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark(repeats=5)


def test_codegen_speedup_floor(payload):
    """Acceptance: >=2x over the columnar interpreter on the gpt3 hot path."""
    assert payload["headline"]["gpt3_codegen_speedup"] >= 2.0, render(payload)


def test_codegen_beats_interp_everywhere(payload):
    """Generated kernels beat the per-token interpreter they specialize."""
    for row in payload["rows"]:
        assert row["speedup_vs_interp"] > 1.0, render(payload)


def test_codegen_beats_columnar_per_model(payload):
    """Acceptance: the columnar emission tier wins on every model.

    gcn and graphsage flip above 1.0x once scanner expansion is emitted
    as vectorized CSR gathers; sae is timed-engine-dominated (~2 ms wall
    for a ~0.2 ms functional pass) so its floor leaves noise margin.
    """
    head = payload["headline"]
    assert head["gcn_codegen_speedup"] >= 1.0, render(payload)
    assert head["graphsage_codegen_speedup"] >= 1.0, render(payload)
    assert head["sae_codegen_speedup"] >= 0.95, render(payload)
    assert head["gpt3_codegen_speedup"] >= 2.0, render(payload)


def test_no_region_fell_back(payload):
    """Every golden-model region must compile (codegen_loc counts them)."""
    for row in payload["rows"]:
        assert row["codegen_loc"] > 0, row["model"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_codegen.json")
    parser.add_argument("--repeats", type=int, default=7)
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    print(render(payload))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
