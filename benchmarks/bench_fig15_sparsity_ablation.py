"""Figure 15: sparsity ablation on a 2-layer GCN over synthetic graphs.

Paper setup: 500-node graphs, 128 features, adjacency sparsity 50-95%,
three structure classes (uniform random, power-law, block diagonal).
Shape: partial-fusion speedup grows with sparsity (sparser matrices mean
less coordinate processing); structured patterns beat uniform random; full
fusion can *slow down* when its coordination overhead dominates.

Scaled here to 100 nodes / 12 features for simulation tractability.
"""

import pytest

from bench_common import BALANCED_MACHINE, cached, fusion_sweep, print_figure
from repro.models.gcn import gcn_on_synthetic

SPARSITIES = [0.5, 0.7, 0.9, 0.95]
PATTERNS = ["uniform", "powerlaw", "blockdiag"]
NODES, FEATURES = 100, 12


@cached
def ablation():
    out = {}
    for pattern in PATTERNS:
        per_sparsity = {}
        for sparsity in SPARSITIES:
            bundle = gcn_on_synthetic(
                nodes=NODES,
                features=FEATURES,
                density=1.0 - sparsity,
                pattern=pattern,
                seed=5,
            )
            _, speedups = fusion_sweep(bundle, BALANCED_MACHINE)
            per_sparsity[sparsity] = speedups
        out[pattern] = per_sparsity
    return out


def test_fig15_sparsity_ablation(benchmark):
    data = ablation()
    rows = []
    for pattern, per_sparsity in data.items():
        for sparsity, speedups in per_sparsity.items():
            rows.append(
                [
                    pattern,
                    f"{sparsity * 100:.0f}%",
                    f"{speedups['partial']:.2f}x",
                    f"{speedups['full']:.2f}x",
                ]
            )
    print_figure(
        "Figure 15: speedup over unfused vs adjacency sparsity (2-layer GCN)",
        rows,
        ["pattern", "sparsity", "partially fused", "fully fused"],
    )
    for pattern, per_sparsity in data.items():
        # Partial-fusion speedup at the sparse end beats the dense end.
        assert (
            per_sparsity[SPARSITIES[-1]]["partial"]
            >= per_sparsity[SPARSITIES[0]]["partial"] * 0.9
        ), pattern
        # Partial fusion helps everywhere.
        for sparsity, speedups in per_sparsity.items():
            assert speedups["partial"] > 1.0, (pattern, sparsity)
    # Full fusion underperforms partial at the dense end (recompute blowup).
    dense_end = SPARSITIES[0]
    assert any(
        data[p][dense_end]["full"] < data[p][dense_end]["partial"] for p in PATTERNS
    )

    bundle = gcn_on_synthetic(
        nodes=NODES, features=FEATURES, density=0.1, pattern="uniform", seed=5
    )
    benchmark(lambda: fusion_sweep(bundle, BALANCED_MACHINE))
