"""Figure 18: dataflow-order sweep for fused nested matmul (Section 8.8).

Paper shape: across the valid dataflow orders of a fused nested matrix
multiplication on KarateClub, suboptimal orders run up to ~29x slower than
the best — dataflow ordering is a first-class scheduling decision.
"""

import numpy as np
import pytest

from bench_common import cached, print_figure
from repro.comal import RDA_MACHINE, run_timed
from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fuse_region, merge_contractions
from repro.core.fusion.orders import enumerate_orders, order_label
from repro.core.tables.lower import LoweringError, RegionLowerer
from repro.sam.token import StreamProtocolError
from repro.data.graphs import node_features, synthetic_graph, weighted_adjacency
from repro.ftree import SparseTensor, csr, dense

N, F, H = 34, 8, 6  # KarateClub is a 34-node graph.

# Nested matmul with ordering freedom: the first contraction is written in
# inner-product form (features operand stored feature-major), so the i and j
# loops may be interleaved freely and the reduction sits innermost or not.
PROGRAM_TEXT = f"""
tensor A({N}, {N}): csr
tensor Xt({F}, {N}): dense
tensor W({F}, {H}): dense
E(i, j) = A(i, k) * Xt(j, k)
D(i, l) = E(i, j2) * W(j2, l)
"""


@cached
def order_sweep():
    rng = np.random.default_rng(0)
    adj = weighted_adjacency(synthetic_graph(N, 0.12, "powerlaw", 42), rng)
    xt = node_features(F, N, seed=1)
    w = rng.random((F, H))
    binding = {
        "A": SparseTensor.from_dense(adj, csr(), "A"),
        "Xt": SparseTensor.from_dense(xt, dense(2), "Xt"),
        "W": SparseTensor.from_dense(w, dense(2), "W"),
    }
    expected = adj @ xt.T @ w
    prog = parse_program(PROGRAM_TEXT)
    # The paper's Figure 18 sweeps orders of the *fused* nested matmul: a
    # single global Einsum over (i, k, j, l), where order choices move the
    # dense loops inside or outside the sparse iteration.
    fused = merge_contractions(fuse_region(prog, [0, 1]))
    rename = {}
    for idx in fused.pog.indices:
        rename[idx] = idx if not idx.startswith("u") else "k"
    results = []
    for order in enumerate_orders(fused, limit=16):
        try:
            lowerer = RegionLowerer(
                merge_contractions(fuse_region(prog, [0, 1])), prog.decls, order=order
            )
            graph = lowerer.lower()
            result = run_timed(graph, binding, RDA_MACHINE)
        except (LoweringError, StreamProtocolError):
            # Orders that cannot stream without materialization are pruned
            # by the compiler's valid-order enumeration.
            continue
        np.testing.assert_allclose(result.results["D"].to_dense(), expected, atol=1e-9)
        results.append((order_label(order, rename), result.cycles))
    return results


def test_fig18_dataflow_order_sweep(benchmark):
    results = order_sweep()
    worst = max(c for _, c in results)
    rows = [
        [label, f"{cycles:.0f}", f"{worst / cycles:.2f}x"]
        for label, cycles in sorted(results, key=lambda r: r[1])
    ]
    print_figure(
        "Figure 18: dataflow order sweep, speedup vs worst order",
        rows,
        ["order", "cycles", "speedup"],
    )
    assert len(results) >= 2
    best = min(c for _, c in results)
    assert worst / best > 1.3, "order choice should matter"

    prog = parse_program(PROGRAM_TEXT)
    fused = fuse_region(prog, [0, 1])
    benchmark(lambda: enumerate_orders(fused, limit=16))
