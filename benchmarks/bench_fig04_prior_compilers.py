"""Figure 4b / Section 8.4: comparison with prior sparse dataflow compilers.

Paper result (GCN on OGB-Collab): unfused 1.00x, Custard+Stardust with a
handwritten global-Einsum rewrite 1.97x, FuseFlow 2.63x.  The C+S rewrite
merges contraction chains into single global-iteration Einsums (coordinate
explosion included); FuseFlow's automatic cross-expression fusion with
factored iteration wins on top of that.  The workload is memory-bound at
paper scale, so the memory-bound machine configuration applies.
"""

import pytest

from bench_common import MEMORY_BOUND_MACHINE, cached, print_figure, verified_run
from repro.data.registry import graph_dataset
from repro.models.gcn import build_gcn


@cached
def comparison():
    entry, adj, feats = graph_dataset("collab")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    cycles = {}
    for config, granularity in (
        ("C+S (unfused)", "unfused"),
        ("C+S (rewrite)", "cs"),
        ("FuseFlow", "partial"),
    ):
        result = verified_run(bundle, bundle.schedule(granularity), MEMORY_BOUND_MACHINE)
        cycles[config] = result.metrics.cycles
    base = cycles["C+S (unfused)"]
    speedups = {k: base / v for k, v in cycles.items()}
    return bundle, cycles, speedups


def test_fig04_prior_compiler_comparison(benchmark):
    bundle, cycles, speedups = comparison()
    rows = [[name, f"{speedups[name]:.2f}x"] for name in cycles]
    print_figure(
        "Figure 4b: fusion coverage comparison (GCN, collab-like graph)",
        rows,
        ["Config", "Speed-up"],
    )
    # Paper shape: unfused < C+S rewrite < FuseFlow.
    assert speedups["C+S (unfused)"] == 1.0
    assert speedups["C+S (rewrite)"] > 1.1
    assert speedups["FuseFlow"] > speedups["C+S (rewrite)"]
    # FuseFlow lands in the paper's ~2-3x band over unfused.
    assert 1.8 < speedups["FuseFlow"] < 5.0

    benchmark(
        lambda: verified_run(bundle, bundle.schedule("partial"), MEMORY_BOUND_MACHINE)
    )
