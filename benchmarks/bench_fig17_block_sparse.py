"""Figure 17: block-sparse vs unstructured computation for BigBird attention.

Paper shape: streaming dense blocks to vectorized ALUs (sparsity blocking,
Section 7) beats treating the same attention pattern as unstructured
element-level sparsity, with speedup proportional to the block size.

Both variants compute the same masked attention scores S = (Q K^T) * M:
the blocked variant iterates the block grid with block-matmul ALUs; the
unstructured variant iterates every nonzero element of the mask.
"""

import numpy as np
import pytest

from bench_common import cached, print_figure
from repro.comal import RDA_MACHINE, run_timed
from repro.core.fusion.fuse import fold_masks, fuse_region
from repro.core.tables.lower import RegionLowerer
from repro.core.einsum.ast import EinsumProgram
from repro.data.text import bigbird_mask
from repro.ftree import Format, LevelKind, SparseTensor, csr, dense
from repro.models.gpt3 import _blocked_activation_fmt, _blocked_mask_fmt

SEQ, DMODEL = 64, 8
BLOCKS = [4, 8, 16]


def _attention_cycles_blocked(mask: np.ndarray, block: int, rng) -> float:
    q = rng.standard_normal((SEQ, DMODEL))
    k = rng.standard_normal((SEQ, DMODEL))
    program = EinsumProgram("blocked-attention")
    act = _blocked_activation_fmt(block, DMODEL)
    program.declare("Q", (SEQ, DMODEL), act)
    program.declare("K", (SEQ, DMODEL), act)
    program.declare("M", (SEQ, SEQ), _blocked_mask_fmt(block))
    program.contract("P", ("i", "j"), "bmt", [("Q", ("i", "d")), ("K", ("j", "d"))])
    program.contract("S", ("i", "j"), "mul", [("P", ("i", "j")), ("M", ("i", "j"))])
    fused = fold_masks(fuse_region(program, [0, 1]))
    lowerer = RegionLowerer(fused, program.decls)
    graph = lowerer.lower()
    binding = {
        "Q": SparseTensor.from_dense(q, act, "Q"),
        "K": SparseTensor.from_dense(k, act, "K"),
        "M": SparseTensor.from_dense(mask, _blocked_mask_fmt(block), "M"),
    }
    result = run_timed(graph, binding)
    expected = (q @ k.T) * mask
    np.testing.assert_allclose(result.results["S"].to_dense(), expected, atol=1e-9)
    return result.cycles


def _attention_cycles_unstructured(mask: np.ndarray, rng) -> float:
    q = rng.standard_normal((SEQ, DMODEL))
    k = rng.standard_normal((SEQ, DMODEL))
    program = EinsumProgram("unstructured-attention")
    program.declare("Q", (SEQ, DMODEL), dense(2))
    program.declare("Kt", (SEQ, DMODEL), dense(2))
    program.declare("M", (SEQ, SEQ), csr())
    program.contract("P", ("i", "j"), "mul", [("Q", ("i", "d")), ("Kt", ("j", "d"))])
    program.contract("S", ("i", "j"), "mul", [("P", ("i", "j")), ("M", ("i", "j"))])
    fused = fold_masks(fuse_region(program, [0, 1]))
    lowerer = RegionLowerer(fused, program.decls)
    graph = lowerer.lower()
    binding = {
        "Q": SparseTensor.from_dense(q, dense(2), "Q"),
        "Kt": SparseTensor.from_dense(k, dense(2), "Kt"),
        "M": SparseTensor.from_dense(mask, csr(), "M"),
    }
    result = run_timed(graph, binding)
    expected = (q @ k.T) * mask
    np.testing.assert_allclose(result.results["S"].to_dense(), expected, atol=1e-9)
    return result.cycles


@cached
def comparison():
    out = {}
    for block in BLOCKS:
        rng = np.random.default_rng(17)
        mask = bigbird_mask(SEQ, block, seed=7)
        blocked = _attention_cycles_blocked(mask, block, np.random.default_rng(17))
        unstructured = _attention_cycles_unstructured(mask, np.random.default_rng(17))
        out[block] = (unstructured, blocked, unstructured / blocked)
    return out


def test_fig17_block_sparse(benchmark):
    data = comparison()
    rows = [
        [str(block), f"{unstructured:.0f}", f"{blocked:.0f}", f"{speedup:.1f}x"]
        for block, (unstructured, blocked, speedup) in data.items()
    ]
    print_figure(
        "Figure 17: blocked vs unstructured BigBird attention",
        rows,
        ["block size", "unstructured cycles", "blocked cycles", "speedup"],
    )
    speedups = [data[b][2] for b in BLOCKS]
    assert all(s > 1.5 for s in speedups), "blocking should always win"
    # Speedup grows with block size (proportionality, paper Section 8.7).
    assert speedups[-1] > speedups[0]

    mask = bigbird_mask(SEQ, 8, seed=7)
    benchmark(lambda: _attention_cycles_blocked(mask, 8, np.random.default_rng(17)))
