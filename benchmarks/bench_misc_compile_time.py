"""Compilation overhead (paper Section 8.1): all models compile in < 750 ms.

Times full compilation (fusion + fusion tables + lowering + graph
construction) of every model class at its benchmark configuration.
"""

import pytest

from bench_common import print_figure
from repro.data.registry import graph_dataset, sae_dataset
from repro.driver import Session
from repro.models.gcn import build_gcn
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import build_graphsage
from repro.models.sae import build_sae


def _bundles():
    entry, adj, feats = graph_dataset("collab")
    _, x = sae_dataset("imagenet")
    return {
        "GCN": build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed),
        "GraphSAGE": build_graphsage(adj, feats, hidden=8, classes=4, seed=entry.seed),
        "SAE": build_sae(x, seed=21),
        "GPT-3": build_gpt3(seq_len=64, d_model=16, block=8, n_layers=2, seed=31),
    }


def test_compile_time_under_750ms(benchmark):
    bundles = _bundles()
    session = Session()
    rows = []
    for name, bundle in bundles.items():
        for granularity in ("unfused", "partial", "full"):
            compiled = session.compile(
                bundle.program, bundle.schedule(granularity)
            ).compiled
            ms = compiled.compile_seconds * 1e3
            rows.append([name, granularity, f"{ms:.1f} ms", str(compiled.total_nodes())])
            assert ms < 750.0, f"{name}/{granularity}: {ms:.0f} ms"
    print_figure(
        "Compilation overhead (paper: all models < 750 ms)",
        rows,
        ["model", "schedule", "compile time", "graph nodes"],
    )

    gcn = bundles["GCN"]
    # A fresh Session per iteration keeps this a cold-compile measurement;
    # the default session behind compile_program would serve cache hits.
    benchmark(lambda: Session().compile(gcn.program, gcn.schedule("partial")))
