"""Simulator performance benchmark: legacy vs columnar vs hot path.

Measures end-to-end ``run_functional`` + ``run_timed`` wall time (through
``Executable.__call__``, exactly what sweeps/autotuning execute per point)
for every golden-model configuration on multiple machines, under three
simulator configurations:

``legacy``
    Tuple-list streams, per-token Python kernels, result memo off — the
    pre-columnar baseline path.
``columnar``
    Columnar ``TokenStream`` + vectorized kernels, result memo off — the
    cold-start representation comparison.
``hot``
    Columnar kernels with the functional/timed result memo on — the
    production path repeated executions (sweep grids, autotune refinement,
    serving the same model) actually take.

Also includes a larger-scale row where the vectorized kernels dominate
(streams of tens of thousands of tokens), since the golden configurations
are deliberately tiny.

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_simulator_perf.py --out BENCH_simulator.json

or via pytest (asserts the acceptance floors)::

    PYTHONPATH=src python -m pytest benchmarks/bench_simulator_perf.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro.comal.machines import MACHINES
from repro.driver import Session
from repro.sweep import SweepPoint, build_bundle

#: The canonical golden configurations (tests/golden/*.json).
GOLDEN_POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

#: Larger configuration where per-token interpretation dominates wall time.
SCALE_POINTS = {
    "gcn": {"nodes": 160, "density": 0.06, "seed": 0},
}

MACHINE_NAMES = ("rda", "fpga")
GRANULARITY = "full"

MODES = (
    ("legacy", {"columnar": False, "sim_cache": False}),
    ("columnar", {"columnar": True, "sim_cache": False}),
    ("hot", {"columnar": True, "sim_cache": True}),
)


def _time_exec(exe, binding, repeats: int, budget_s: float = 3.0) -> float:
    """Best-of wall seconds for one execution, bounded by a time budget."""
    exe(binding)  # warm-up (and memo fill for the hot configuration)
    best = float("inf")
    deadline = time.perf_counter() + budget_s
    for _ in range(repeats):
        t0 = time.perf_counter()
        exe(binding)
        elapsed = time.perf_counter() - t0
        best = min(best, elapsed)
        if time.perf_counter() > deadline:
            break
    return best


def run_benchmark(repeats: int = 5) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for scale, points in (("golden", GOLDEN_POINTS), ("scale", SCALE_POINTS)):
        for model, model_args in points.items():
            bundle = build_bundle(SweepPoint.make(model, model_args=model_args))
            for machine_name in MACHINE_NAMES:
                row: Dict[str, object] = {
                    "model": model,
                    "scale": scale,
                    "machine": machine_name,
                    "granularity": GRANULARITY,
                    "config": dict(model_args),
                }
                tokens = None
                for mode, opts in MODES:
                    session = Session(machine=MACHINES[machine_name], **opts)
                    exe = session.compile(
                        bundle.program, bundle.schedule(GRANULARITY)
                    )
                    n = repeats if scale == "golden" else max(1, repeats // 2)
                    seconds = _time_exec(exe, bundle.binding, n)
                    row[f"{mode}_ms"] = round(seconds * 1e3, 4)
                    if tokens is None:
                        tokens = exe(bundle.binding).metrics.tokens
                row["tokens"] = tokens
                row["tokens_per_sec_columnar"] = round(
                    tokens / (row["columnar_ms"] / 1e3)
                )
                row["speedup_columnar"] = round(
                    row["legacy_ms"] / row["columnar_ms"], 3
                )
                row["speedup_hot"] = round(row["legacy_ms"] / row["hot_ms"], 3)
                rows.append(row)
    gpt3_rda = next(
        r
        for r in rows
        if r["model"] == "gpt3" and r["machine"] == "rda" and r["scale"] == "golden"
    )
    scale_rows = [r for r in rows if r["scale"] == "scale"]
    return {
        "name": "simulator_perf",
        "granularity": GRANULARITY,
        "modes": {mode: dict(opts) for mode, opts in MODES},
        "rows": rows,
        "headline": {
            # End-to-end run_functional+run_timed speedup on the gpt3 golden
            # configuration: pre-PR-equivalent legacy path vs the default
            # (columnar + memoized) execution path.
            "gpt3_golden_speedup": gpt3_rda["speedup_hot"],
            "gpt3_golden_legacy_ms": gpt3_rda["legacy_ms"],
            "gpt3_golden_hot_ms": gpt3_rda["hot_ms"],
            # Cold-start kernel-level win at scale (no memo assistance).
            "scale_columnar_speedup": max(
                r["speedup_columnar"] for r in scale_rows
            ),
        },
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':10s} {'scale':6s} {'machine':7s} {'legacy ms':>10s} "
        f"{'columnar ms':>12s} {'hot ms':>8s} {'col x':>7s} {'hot x':>8s} "
        f"{'tok/s (col)':>12s}"
    ]
    for r in payload["rows"]:
        lines.append(
            f"{r['model']:10s} {r['scale']:6s} {r['machine']:7s} "
            f"{r['legacy_ms']:10.3f} {r['columnar_ms']:12.3f} "
            f"{r['hot_ms']:8.3f} {r['speedup_columnar']:7.2f} "
            f"{r['speedup_hot']:8.1f} {r['tokens_per_sec_columnar']:12d}"
        )
    head = payload["headline"]
    lines.append(
        f"\ngpt3 golden config end-to-end speedup: "
        f"{head['gpt3_golden_speedup']:.1f}x "
        f"({head['gpt3_golden_legacy_ms']:.3f} ms -> "
        f"{head['gpt3_golden_hot_ms']:.3f} ms); "
        f"cold columnar speedup at scale: {head['scale_columnar_speedup']:.2f}x"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance floors)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark(repeats=3)


def test_gpt3_golden_speedup_floor(payload):
    """Acceptance: >=5x end-to-end on the gpt3 golden configuration."""
    assert payload["headline"]["gpt3_golden_speedup"] >= 5.0, render(payload)


def test_columnar_wins_at_scale(payload):
    """Cold columnar kernels beat the interpreter once streams grow."""
    assert payload["headline"]["scale_columnar_speedup"] >= 2.0, render(payload)


def test_all_modes_agree_on_tokens(payload):
    for row in payload["rows"]:
        assert row["tokens"] > 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_simulator.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    print(render(payload))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
