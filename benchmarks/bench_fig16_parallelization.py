"""Figure 16: parallelization factor and location sweeps for BigBird attention.

Paper shape: (a) the generated program scales with the parallelization
factor (near-linear until non-parallelized stages bind); (b) parallelizing
different index variables gives different gains, and parallelizing both
levels by 4 multiplies up (paper: ~15.9x for 4x4).

The sweep runs the fused attention region on a compute-bound machine (the
paper's parallelization study exercises compute scaling).
"""

import pytest

from bench_common import COMPUTE_BOUND_MACHINE, cached, print_figure
from repro.models.gpt3 import build_gpt3
from repro.driver import Session

FACTORS = [1, 2, 4, 8, 16, 32, 64]
ATTENTION_REGION = 1  # subset 2 of decoder 0 under the partial schedule

#: Shared compile cache across the factor sweep (par changes the schedule
#: fingerprint, so every factor still compiles exactly once).
_SESSION = Session()


def _attention_cycles(bundle, par):
    schedule = bundle.schedule("partial")
    schedule.par = dict(par)
    executable = _SESSION.compile(bundle.program, schedule)
    result = executable(bundle.binding, machine=COMPUTE_BOUND_MACHINE)
    return result.region_results[ATTENTION_REGION].cycles


@cached
def sweeps():
    bundle = build_gpt3(seq_len=128, d_model=16, block=4, n_layers=1, seed=31)
    compiled = _SESSION.compile(bundle.program, bundle.schedule("partial")).compiled
    order = compiled.regions[ATTENTION_REGION].order
    level1, level2 = order[0], order[1]
    factor_sweep = {f: _attention_cycles(bundle, {level1: f}) for f in FACTORS}
    location = {
        ("level 1", 4): _attention_cycles(bundle, {level1: 4}),
        ("level 2", 4): _attention_cycles(bundle, {level2: 4}),
        ("both", 4): _attention_cycles(bundle, {level1: 4, level2: 4}),
    }
    base = factor_sweep[1]
    return factor_sweep, location, base


def test_fig16a_parallel_factor_sweep(benchmark):
    factor_sweep, _, base = sweeps()
    rows = [
        [str(f), f"{cycles:.0f}", f"{base / cycles:.2f}x"]
        for f, cycles in factor_sweep.items()
    ]
    print_figure(
        "Figure 16a: parallelization factor sweep (BigBird attention)",
        rows,
        ["par factor", "cycles", "speedup"],
    )
    speedups = [base / factor_sweep[f] for f in FACTORS]
    # Monotone non-decreasing scaling.
    for before, after in zip(speedups, speedups[1:]):
        assert after >= before * 0.99
    assert speedups[2] > 1.8  # factor 4 roughly halves-again cycles
    assert speedups[-1] > 3.0

    bundle = build_gpt3(seq_len=64, d_model=16, block=4, n_layers=1, seed=31)
    benchmark(lambda: _attention_cycles(bundle, {}))


def test_fig16b_parallel_location_sweep(benchmark):
    _, location, base = sweeps()
    rows = [
        [where, str(factor), f"{cycles:.0f}", f"{base / cycles:.2f}x"]
        for (where, factor), cycles in location.items()
    ]
    print_figure(
        "Figure 16b: parallelization location sweep (BigBird attention)",
        rows,
        ["level", "factor", "cycles", "speedup"],
    )
    both = base / location[("both", 4)]
    single = max(base / location[("level 1", 4)], base / location[("level 2", 4)])
    assert both >= single  # parallelizing both levels compounds

    bundle = build_gpt3(seq_len=64, d_model=16, block=4, n_layers=1, seed=31)
    compiled = _SESSION.compile(bundle.program, bundle.schedule("partial")).compiled
    level1 = compiled.regions[ATTENTION_REGION].order[0]
    benchmark(lambda: _attention_cycles(bundle, {level1: 4}))
