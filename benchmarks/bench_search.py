"""Guided-search benchmark: guided vs exhaustive autotuning, all 4 models.

The classic ``autotune`` path *enumerates* the contiguous-partition space
under ``max_candidates`` and simulates every feasible candidate; the
guided strategies (``beam``, ``evolutionary``) explore the joint space
via local moves and spend a fixed simulation *budget*.  This benchmark
runs both arms on all four evaluation models and asserts the PR's
headline gate (enforced in CI):

* **Parity**: for every model, each guided strategy's measured winner is
  within 1% of the exhaustive winner's cycles — and on gpt3, where the
  enumeration cap drops most of the 2^21-partition space, guided search
  finds schedules several times *faster* than anything the exhaustive
  arm can reach.
* **Efficiency**: each guided arm issues at least 10x fewer simulations
  than its exhaustive counterpart (budget counts *successful* runs, the
  same convention as ``sweep_schedules(limit=...)``).
* **Determinism**: re-running a guided strategy with the same seed
  reproduces the identical ``search_trace``.

Model sizes are the small-n oracle configurations: big enough that the
partition space dwarfs the budget, small enough that the exhaustive arm
(the oracle) finishes in seconds.

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_search.py --out BENCH_search.json

or via pytest (asserts the acceptance shape)::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_search.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import warnings
from typing import Dict, List

import numpy as np

from repro.core.heuristic.model import stats_from_binding
from repro.core.schedule.autotune import autotune
from repro.driver import Session
from repro.models.gcn import gcn_on_synthetic
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import graphsage_on_synthetic
from repro.models.sae import build_sae

#: Per-model search configuration.  The exhaustive arm runs today's
#: defaults (``max_candidates=64``) with an unbounded simulate-top so it
#: measures every feasible enumerated candidate; the guided budget is
#: sized for a >= 10x simulation reduction against that arm.
MODELS = {
    "gcn": {"budget": 6},
    "graphsage": {"budget": 6},
    "sae": {"budget": 3},
    "gpt3": {"budget": 2},
}

STRATEGIES = ("beam", "evolutionary")
MAX_CANDIDATES = 64
SEED = 0

#: Parity gate: guided cycles / exhaustive cycles must not exceed this.
CYCLES_RATIO_MAX = 1.01
#: Efficiency gate: exhaustive sims / guided sims must be at least this.
SIM_RATIO_MIN = 10.0


def _bundles():
    rng = np.random.default_rng(0)
    return {
        "gcn": gcn_on_synthetic(nodes=24, density=0.1, seed=0),
        "graphsage": graphsage_on_synthetic(nodes=20, density=0.15, seed=0),
        "sae": build_sae(rng.standard_normal((8, 16)), weight_density=0.4, seed=0),
        "gpt3": build_gpt3(seq_len=16, d_model=8, block=4, n_layers=1),
    }


def run_benchmark() -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    headline: Dict[str, object] = {}
    for model, bundle in _bundles().items():
        stats = stats_from_binding(bundle.binding)
        budget = MODELS[model]["budget"]
        # One session per model: the guided arms re-use every compile the
        # exhaustive arm already paid for (and each other's).
        session = Session(cache_size=1024)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            t0 = time.perf_counter()
            exhaustive = autotune(
                bundle.program,
                bundle.binding,
                stats,
                session=session,
                simulate_top=MAX_CANDIDATES,
                max_candidates=MAX_CANDIDATES,
            )
            exhaustive_seconds = time.perf_counter() - t0
        rows.append(
            {
                "model": model,
                "strategy": "exhaustive",
                "winner": exhaustive.best.name,
                "cycles": exhaustive.measured_cycles,
                "simulations": exhaustive.evaluations,
                "candidates_considered": exhaustive.candidates_considered,
                "partition_space": exhaustive.partition_space,
                "seconds": round(exhaustive_seconds, 3),
            }
        )
        for strategy in STRATEGIES:
            t0 = time.perf_counter()
            tuned = autotune(
                bundle.program,
                bundle.binding,
                stats,
                session=session,
                strategy=strategy,
                budget=budget,
                seed=SEED,
            )
            seconds = time.perf_counter() - t0
            # Determinism: a fresh session, same seed -> identical trace.
            rerun = autotune(
                bundle.program,
                bundle.binding,
                stats,
                session=Session(cache_size=1024),
                strategy=strategy,
                budget=budget,
                seed=SEED,
            )
            sim_ratio = exhaustive.evaluations / max(1, tuned.evaluations)
            cycles_ratio = tuned.measured_cycles / exhaustive.measured_cycles
            rows.append(
                {
                    "model": model,
                    "strategy": strategy,
                    "winner": tuned.best.name,
                    "cycles": tuned.measured_cycles,
                    "simulations": tuned.evaluations,
                    "candidates_considered": tuned.candidates_considered,
                    "sim_ratio": round(sim_ratio, 2),
                    "cycles_ratio": round(cycles_ratio, 4),
                    "trace_deterministic": tuned.search_trace
                    == rerun.search_trace,
                    "seconds": round(seconds, 3),
                }
            )
            headline[f"{model}_{strategy}_sim_ratio"] = round(sim_ratio, 2)
            headline[f"{model}_{strategy}_cycles_ratio"] = round(
                cycles_ratio, 4
            )
        headline[f"{model}_exhaustive_sims"] = exhaustive.evaluations
    return {
        "name": "search",
        "machine": "rda",
        "max_candidates": MAX_CANDIDATES,
        "seed": SEED,
        "rows": rows,
        "headline": headline,
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':10s} {'strategy':13s} {'cycles':>10s} {'sims':>5s} "
        f"{'simx':>6s} {'cycr':>7s} {'det':>4s}"
    ]
    for r in payload["rows"]:
        lines.append(
            f"{r['model']:10s} {r['strategy']:13s} {r['cycles']:10.0f} "
            f"{r['simulations']:5d} {r.get('sim_ratio', '-'):>6} "
            f"{r.get('cycles_ratio', '-'):>7} "
            f"{str(r.get('trace_deterministic', '-')):>4s}"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance shape — the CI gate)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark()


def test_guided_matches_exhaustive_cycles(payload):
    """Parity: every guided winner within 1% of the exhaustive winner."""
    for r in payload["rows"]:
        if r["strategy"] == "exhaustive":
            continue
        assert r["cycles_ratio"] <= CYCLES_RATIO_MAX, (r, render(payload))


def test_guided_is_10x_fewer_simulations(payload):
    """Efficiency: every guided arm simulates >= 10x less."""
    for r in payload["rows"]:
        if r["strategy"] == "exhaustive":
            continue
        assert r["sim_ratio"] >= SIM_RATIO_MIN, (r, render(payload))


def test_seeded_traces_are_deterministic(payload):
    """Same seed => identical search trace, for every guided arm."""
    for r in payload["rows"]:
        if r["strategy"] == "exhaustive":
            continue
        assert r["trace_deterministic"], (r, render(payload))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default=None, help="write BENCH json here")
    args = parser.parse_args(argv)
    payload = run_benchmark()
    print(render(payload))
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
