"""Paper-style evaluation grid driven end-to-end by the sweep subsystem.

Runs the (model x schedule x machine) grid the `fuseflow sweep run`
default describes — 12 points across two models and two machines — through
:class:`repro.sweep.SweepRunner` with worker processes, persists the JSONL
results, emits the JSON summary via ``sweep report``'s machinery, and then
*consumes that JSON* (not the in-memory objects) to reproduce the
fusion-speedup table: every configuration verified, partial fusion winning
for GCN, full fusion winning for SAE.
"""

import json
import subprocess
import sys

import pytest

from bench_common import print_figure
from repro.sweep import (
    ResultStore,
    SweepRunner,
    SweepSpec,
    bench_payload,
    summarize,
    write_summary_json,
)

SPEC = SweepSpec(
    name="paper_grid",
    models=["gcn", "sae"],
    schedules=["unfused", "partial", "full"],
    machines=["rda", "fpga"],
    model_args={"nodes": 48, "density": 0.1},
)


@pytest.fixture(scope="module")
def summary_json(tmp_path_factory):
    """Run the sweep in parallel, report it, and hand back the JSON file."""
    tmp = tmp_path_factory.mktemp("sweep_grid")
    results = tmp / "results.jsonl"
    store = ResultStore.create(str(results), SPEC)
    outcome = SweepRunner(SPEC, store=store, workers=2).run()
    store.close()
    assert outcome.failed == 0, outcome.describe()
    assert outcome.ran == 12

    summary = summarize(ResultStore.open(str(results)).records(),
                        SPEC.baseline_schedule, SPEC.name)
    path = tmp / "summary.json"
    write_summary_json(summary, str(path))
    return str(path)


def test_sweep_grid_speedups(summary_json):
    with open(summary_json, "r", encoding="utf-8") as fh:
        summary = json.loads(fh.read())

    assert summary["points_ok"] == 12
    assert summary["points_failed"] == 0
    assert summary["verified"] is True

    rows = []
    by_group = {}
    for entry in summary["speedups"]:
        key = f"{entry['model']}/{entry['machine']}"
        by_group[key] = entry["speedup"]
        rows.append([
            key,
            f"{entry['speedup']['unfused']:.2f}x",
            f"{entry['speedup']['partial']:.2f}x",
            f"{entry['speedup']['full']:.2f}x",
        ])
    print_figure(
        "Sweep grid: fusion speedups over unfused (from sweep report JSON)",
        rows,
        ["model/machine", "unfused", "partial", "full"],
    )

    for machine in ("rda", "fpga"):
        # Paper shape: partial fusion is the right GCN granularity; full
        # fusion (recomputation) wins for the SAE on every machine.
        gcn = by_group[f"gcn/{machine}"]
        sae = by_group[f"sae/{machine}"]
        assert gcn["partial"] > 1.0 and gcn["partial"] > gcn["full"]
        assert sae["full"] > sae["partial"] > 1.0

    best = summary["best_per_model"]
    assert best["gcn"]["schedule"] == "partial"
    assert best["sae"]["schedule"] == "full"

    payload = bench_payload(summary)
    assert payload["benchmark"] == "sweep_paper_grid"
    assert len(payload["results"]) == 12


def test_sweep_cli_roundtrip(summary_json, tmp_path):
    """`fuseflow sweep run/report` produce the same summary via subprocess."""
    results = tmp_path / "cli.jsonl"
    run = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "run", "--quiet",
         "--name", "paper_grid", "--nodes", "48", "--density", "0.1",
         "--workers", "2", "--out", str(results)],
        capture_output=True, text=True,
    )
    assert run.returncode == 0, run.stderr
    report_json = tmp_path / "report.json"
    report = subprocess.run(
        [sys.executable, "-m", "repro.cli", "sweep", "report",
         "--out", str(results), "--json", str(report_json)],
        capture_output=True, text=True,
    )
    assert report.returncode == 0, report.stderr
    with open(report_json, "r", encoding="utf-8") as fh:
        cli_summary = json.load(fh)
    with open(summary_json, "r", encoding="utf-8") as fh:
        api_summary = json.load(fh)
    cli_cycles = {r["label"]: r["metrics"]["cycles"] for r in cli_summary["results"]}
    api_cycles = {r["label"]: r["metrics"]["cycles"] for r in api_summary["results"]}
    assert cli_cycles == api_cycles


def test_sweep_resume_is_instant(summary_json, tmp_path, benchmark):
    """Resume over a fully-populated store runs zero points."""
    results = tmp_path / "resume.jsonl"
    store = ResultStore.create(str(results), SPEC)
    SweepRunner(SPEC, store=store, workers=1).run()
    store.close()

    def resume():
        outcome = SweepRunner(
            SPEC, store=ResultStore.open(str(results)), workers=1, resume=True
        ).run()
        assert outcome.ran == 0 and outcome.skipped == 12
        return outcome

    benchmark(resume)
