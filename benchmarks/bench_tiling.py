"""Index-splitting (tiling) benchmark: spill traffic vs tile count.

Under a small on-chip buffer, cross-region intermediates that do not fit
spill to DRAM (``place-memory`` pass).  Splitting an intermediate's outer
row index into ``T`` tiles shrinks its *resident* footprint by ``T`` —
only one tile occupies the buffer at a time — so a tiled schedule fits
intermediates that the untiled schedule spilled.  This benchmark sweeps
tile counts on gcn and gpt3 under the ``fpga-small`` hierarchy (8 KiB,
the tightest preset) and reports per-level traffic.

The shape this asserts (the PR's acceptance criterion, gated in CI):

* On both models, the best split schedule moves **strictly less DRAM
  spill traffic** than its unsplit counterpart at the same fusion
  granularity — and the saved bytes show up as on-chip (SRAM) traffic,
  not as vanished work.
* Spill is monotone non-increasing in the tile count: more tiles never
  spill more (smaller resident footprints only help capacity).
* Functional results are bit-identical across every tile count (splitting
  iterates the same coordinates in the same order, just in chunks).

Tiling is not free: every tile boundary costs a pipeline fill/drain, so
cycles can go *up* even as DRAM traffic collapses — the rows keep both so
the tradeoff stays visible.

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_tiling.py --out BENCH_tiling.json

or via pytest (asserts the acceptance shape)::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_tiling.py -q
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

import numpy as np

from repro.core.schedule.split import intermediate_row_splits
from repro.driver import Session
from repro.sweep import SweepPoint, build_bundle

#: Model configurations and the fusion granularity each is tiled at: gcn
#: unfused (every layer boundary materializes, so capacity pressure is
#: maximal) and gpt3 partial (tiling composes with fusion — the fused
#: regions' reshape-barrier outputs still spill untiled).
MODEL_POINTS = {
    "gcn": {
        "args": {"nodes": 96, "density": 0.06, "seed": 0},
        "granularity": "unfused",
    },
    "gpt3": {
        "args": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
        "granularity": "partial",
    },
}

#: The tightest on-chip preset (8 KiB): the one where tiling matters most.
HIERARCHY = "fpga-small"

#: Tile counts swept per model; 1 is the unsplit baseline.
TILE_COUNTS = (1, 2, 4, 8)

MACHINE = "rda"


def run_benchmark() -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for model, config in MODEL_POINTS.items():
        bundle = build_bundle(
            SweepPoint.make(model, model_args=config["args"])
        )
        session = Session(hierarchy=HIERARCHY)
        granularity = config["granularity"]
        # Discover the split recipe from the unsplit compile: the outer
        # emission index of every cross-region intermediate.
        base_exe = session.compile(bundle.program, bundle.schedule(granularity))
        baseline_out = None
        for tiles in TILE_COUNTS:
            schedule = bundle.schedule(granularity)
            if tiles > 1:
                schedule.splits = intermediate_row_splits(
                    base_exe.compiled, tiles
                )
            exe = session.compile(bundle.program, schedule)
            result = exe(bundle.binding)
            out = result.tensors[bundle.output].to_dense()
            if baseline_out is None:
                baseline_out = out
            m = result.metrics
            rows.append(
                {
                    "model": model,
                    "config": dict(config["args"]),
                    "granularity": granularity,
                    "tiles": tiles,
                    "splits": dict(schedule.splits),
                    "cycles": m.cycles,
                    "flops": m.flops,
                    "dram_bytes": m.dram_bytes,
                    "sram_bytes": m.sram_bytes,
                    "spill_bytes": m.spill_bytes,
                    "fill_bytes": m.fill_bytes,
                    "max_abs_err": bundle.max_abs_err(result),
                    "bit_exact_vs_unsplit": bool(
                        np.array_equal(out, baseline_out)
                    ),
                }
            )

    def spill(model: str, tiles: int) -> int:
        return next(
            r["spill_bytes"]
            for r in rows
            if r["model"] == model and r["tiles"] == tiles
        )

    headline = {}
    for model in MODEL_POINTS:
        unsplit = spill(model, 1)
        best_tiles = min(
            (t for t in TILE_COUNTS if t > 1), key=lambda t: spill(model, t)
        )
        headline[f"{model}_unsplit_spill_bytes"] = unsplit
        headline[f"{model}_best_split_spill_bytes"] = spill(model, best_tiles)
        headline[f"{model}_best_tiles"] = best_tiles
    return {
        "name": "tiling",
        "machine": MACHINE,
        "hierarchy": HIERARCHY,
        "tile_counts": list(TILE_COUNTS),
        "rows": rows,
        "headline": headline,
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':6s} {'schedule':9s} {'tiles':>5s} {'cycles':>9s} "
        f"{'dram':>8s} {'sram':>8s} {'spill':>8s} {'fill':>8s}"
    ]
    for r in payload["rows"]:
        lines.append(
            f"{r['model']:6s} {r['granularity']:9s} {r['tiles']:5d} "
            f"{r['cycles']:9.0f} {r['dram_bytes']:8d} {r['sram_bytes']:8d} "
            f"{r['spill_bytes']:8d} {r['fill_bytes']:8d}"
        )
    lines.append("")
    for key, value in sorted(payload["headline"].items()):
        lines.append(f"{key}: {value}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance shape)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark()


def _rows(payload, **match):
    return [
        r for r in payload["rows"] if all(r[k] == v for k, v in match.items())
    ]


def test_all_points_verified(payload):
    """Every (model, tiles) point matches the dense reference."""
    for r in payload["rows"]:
        assert r["max_abs_err"] < 1e-6, r


def test_split_is_bit_exact(payload):
    """Split schedules reproduce the unsplit output bit for bit."""
    for r in payload["rows"]:
        assert r["bit_exact_vs_unsplit"], r


def test_best_split_strictly_reduces_spill(payload):
    """Acceptance: best split < unsplit spill bytes on gcn AND gpt3."""
    head = payload["headline"]
    for model in MODEL_POINTS:
        assert (
            head[f"{model}_best_split_spill_bytes"]
            < head[f"{model}_unsplit_spill_bytes"]
        ), (model, render(payload))


def test_split_converts_spill_to_sram(payload):
    """The saved spill lands on-chip: best split moves more SRAM traffic."""
    for model in MODEL_POINTS:
        unsplit = _rows(payload, model=model, tiles=1)[0]
        best_tiles = payload["headline"][f"{model}_best_tiles"]
        best = _rows(payload, model=model, tiles=best_tiles)[0]
        assert best["sram_bytes"] > unsplit["sram_bytes"], (model, render(payload))
        assert best["dram_bytes"] < unsplit["dram_bytes"], (model, render(payload))


def test_spill_monotone_in_tile_count(payload):
    """More tiles never spill more (resident footprints only shrink)."""
    for model in MODEL_POINTS:
        spills = [
            _rows(payload, model=model, tiles=t)[0]["spill_bytes"]
            for t in TILE_COUNTS
        ]
        assert spills == sorted(spills, reverse=True), (model, spills)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_tiling.json")
    args = parser.parse_args(argv)
    payload = run_benchmark()
    print(render(payload))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
