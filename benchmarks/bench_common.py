"""Shared helpers for the per-figure/table benchmark modules.

Every benchmark regenerates one table or figure of the paper's evaluation:
it computes the experiment's data series once (cached), prints the same
rows/series the paper reports, asserts the qualitative shape, and times a
representative piece of the pipeline through pytest-benchmark.

Absolute numbers differ from the paper (the substrate here is a Python
dataflow simulator on synthetic data, not the authors' testbed); the
*shape* — who wins, by roughly what factor, where crossovers fall — is what
each module checks.
"""

from __future__ import annotations

import functools
from typing import Callable, Dict

from repro.comal import RDA_MACHINE
from repro.comal.metrics import format_table
from repro.driver import Session
from repro.sweep import sweep_schedules

# One shared session for every benchmark module: a fusion sweep touching the
# same (model, granularity) pair twice pays compile cost once.  Executables
# are machine-independent; the machine is chosen per execution below.
SESSION = Session(cache_size=1024)

# The memory-bound configuration used where the paper's workloads are
# bandwidth-dominated (large graphs against fixed HBM): wide vector compute,
# modest DRAM bandwidth.
MEMORY_BOUND_MACHINE = RDA_MACHINE.scaled(
    dram_bandwidth=4.0,
    default_ii=1 / 16,
    ii={k: v / 16 for k, v in RDA_MACHINE.ii.items()},
)

# Balanced configuration for the fusion-granularity sweeps: moderate vector
# compute against moderate bandwidth, so both recomputation FLOPs and data
# movement matter (as at the paper's workload scale).
BALANCED_MACHINE = RDA_MACHINE.scaled(
    dram_bandwidth=8.0,
    default_ii=1 / 8,
    ii={k: v / 8 for k, v in RDA_MACHINE.ii.items()},
)

# Compute-bound configuration for the parallelization study.
COMPUTE_BOUND_MACHINE = RDA_MACHINE.scaled(dram_bandwidth=1e9, dram_latency=1.0)


def cached(fn: Callable) -> Callable:
    """Module-level memoization for expensive experiment sweeps."""
    return functools.lru_cache(maxsize=None)(fn)


def verified_run(bundle, schedule, machine=RDA_MACHINE):
    """Run a model bundle and assert functional correctness."""
    executable = SESSION.compile(bundle.program, schedule)
    result = executable(bundle.binding, machine=machine)
    bundle.verify(result)
    return result


def fusion_sweep(bundle, machine=RDA_MACHINE, granularities=("unfused", "partial", "full")):
    """Cycles per fusion granularity, with speedups over unfused.

    Drives the schedules through the sweep subsystem's in-process primitive
    (compile-cached via the shared SESSION) and verifies every granularity
    against the dense reference.
    """
    runs = sweep_schedules(
        SESSION,
        bundle.program,
        bundle.binding,
        bundle.schedules(granularities),
        machine=machine,
    )
    cycles: Dict[str, float] = {}
    for granularity, run in zip(granularities, runs):
        bundle.verify(run.result)
        cycles[granularity] = run.cycles
    base = cycles[granularities[0]]
    speedups = {g: base / c for g, c in cycles.items()}
    return cycles, speedups


def print_figure(title: str, rows, header) -> None:
    print()
    print(f"==== {title} ====")
    print(format_table(rows, header))
