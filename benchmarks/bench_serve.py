"""Persistent compile-cache benchmark: warm disk cache vs cold compile.

The serving story (PR 7) rests on one number: how much faster a *cold
process* answers a compile when the shared
:class:`~repro.driver.diskcache.DiskCache` directory is warm.  This
benchmark measures it honestly — every sample runs ``Session.compile``
in a freshly forked child process (no inherited session cache, no warmed
codegen state), timing only the compile path:

``cold``
    A cache *miss*: the full pass pipeline runs and the entry is
    serialized, digested, and atomically written — everything a serving
    process pays the first time it sees a program.  Each sample uses a
    fresh scratch cache directory so every one is a genuine miss.
``warm``
    The shared cache directory holds the entry: read, digest-check,
    unpickle.

The committed artifact's headline — and the CI gate — is the warm/cold
ratio on the gpt3 serving hot path (the deepest model, fused schedule),
which must stay >= 5x.

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_serve.py --out BENCH_serve.json

or via pytest (asserts the acceptance floors)::

    PYTHONPATH=src python -m pytest benchmarks/bench_serve.py -q
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import sys
import tempfile
import time
from typing import Dict, List, Optional, Tuple

sys.path.insert(0, os.path.dirname(__file__))

#: The serving hot path (gpt3, the deepest program) plus a graph model for
#: breadth.  gpt3 uses a multi-layer configuration: serving-sized programs
#: are where compile cost hurts and where the cache pays.
MODELS: Dict[str, Dict[str, object]] = {
    "gpt3": {
        "seq_len": 16,
        "d_model": 8,
        "block": 4,
        "n_layers": 20,
        "seed": 0,
    },
    "gcn": {"nodes": 48, "density": 0.1, "seed": 0},
}

GRANULARITY = "partial"


def _compile_once(
    model: str,
    model_args: Dict[str, object],
    cache_dir: Optional[str],
    queue,
) -> None:
    """Child-process body: build the bundle, time one compile.

    Before the timed sample the child compiles and disk-loads a tiny
    *sacrificial* program (different key, scratch cache directory).  That
    pays the process's one-time costs — lazy imports, pickle class
    resolution, pass-pipeline setup — outside the measurement, so the
    sample reflects the per-request cost of each path rather than fork
    start-up jitter.  Both the warm and the cold mode get the identical
    warm-up, keeping the comparison fair.
    """
    from repro.driver import Session
    from repro.sweep import SweepPoint, build_bundle

    with tempfile.TemporaryDirectory(prefix="ffserve-scratch-") as scratch:
        sacrificial = build_bundle(
            SweepPoint.make("gcn", model_args={"nodes": 12, "seed": 1})
        )
        sacrificial_schedule = sacrificial.schedule(GRANULARITY)
        # Warm the compile path (full pipeline) and write the entry ...
        Session(disk_cache=scratch).compile(
            sacrificial.program, sacrificial_schedule
        )
        # ... then the disk-load path (read, digest, unpickle) from a
        # fresh session over the same scratch directory.
        Session(disk_cache=scratch).compile(
            sacrificial.program, sacrificial_schedule
        )

    bundle = build_bundle(SweepPoint.make(model, model_args=model_args))
    schedule = bundle.schedule(GRANULARITY)
    # Best-of inside the child: each sample uses a fresh Session (no
    # in-memory cache carry-over), which filters out fork and scheduler
    # jitter that a single long sample would absorb.  In warm mode every
    # sample reads the shared cache directory; in miss mode every sample
    # gets its own scratch directory, so each pays the full pipeline
    # plus the serialize-digest-write that populates the cache.  Warm
    # samples are roughly an order of magnitude cheaper than miss
    # samples, so the warm mode takes more of them — both floors get a
    # comparable time budget rather than a comparable sample count.
    inner = 9 if cache_dir is not None else 3
    best_ms = float("inf")
    sources = set()
    with tempfile.TemporaryDirectory(prefix="ffserve-miss-") as miss_root:
        for i in range(inner):
            if cache_dir is not None:
                session_cache: object = cache_dir
            else:
                session_cache = os.path.join(miss_root, str(i))
            session = Session(disk_cache=session_cache)
            started = time.perf_counter()
            _, source = session.compile_detailed(bundle.program, schedule)
            best_ms = min(best_ms, (time.perf_counter() - started) * 1e3)
            sources.add(source)
    queue.put({"ms": best_ms, "sources": sorted(sources)})


def _cold_process_compile(
    model: str,
    model_args: Dict[str, object],
    cache_dir: Optional[str],
    repeats: int,
) -> Tuple[float, set]:
    """Best-of compile wall ms across ``repeats`` fresh child processes."""
    if sys.platform.startswith("linux"):
        ctx = multiprocessing.get_context("fork")
    else:  # pragma: no cover - non-Linux dev machines
        ctx = multiprocessing.get_context()
    best = float("inf")
    sources = set()
    for _ in range(repeats):
        queue = ctx.Queue()
        proc = ctx.Process(
            target=_compile_once, args=(model, model_args, cache_dir, queue)
        )
        proc.start()
        sample = queue.get(timeout=600)
        proc.join(timeout=600)
        assert proc.exitcode == 0, f"child failed for {model}"
        best = min(best, sample["ms"])
        sources.update(sample["sources"])
    return best, sources


def run_benchmark(repeats: int = 5) -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for model, model_args in MODELS.items():
        with tempfile.TemporaryDirectory(prefix="ffserve-bench-") as cache_dir:
            # Prewarm: one cold child compiles and writes the entry.
            _, prewarm_sources = _cold_process_compile(
                model, model_args, cache_dir, 1
            )
            # The prewarm child's first sample compiles and writes the
            # entry; its later in-child samples already read it back.
            assert "compiled" in prewarm_sources, prewarm_sources
            # Interleave warm and miss children round by round so both
            # minima sample the same temporal window — background load
            # drifting between two separate phases would otherwise skew
            # the ratio either way.
            warm_ms = cold_ms = float("inf")
            warm_sources: set = set()
            cold_sources: set = set()
            for _ in range(repeats):
                ms, sources = _cold_process_compile(
                    model, model_args, cache_dir, 1
                )
                warm_ms = min(warm_ms, ms)
                warm_sources.update(sources)
                ms, sources = _cold_process_compile(model, model_args, None, 1)
                cold_ms = min(cold_ms, ms)
                cold_sources.update(sources)
        assert cold_sources == {"compiled"}, cold_sources
        rows.append(
            {
                "model": model,
                "config": dict(model_args),
                "granularity": GRANULARITY,
                "cold_miss_ms": round(cold_ms, 4),
                "warm_disk_ms": round(warm_ms, 4),
                "disk_speedup": round(cold_ms / warm_ms, 3),
                "warm_sources": sorted(warm_sources),
            }
        )
    gpt3 = next(r for r in rows if r["model"] == "gpt3")
    return {
        "name": "serve_disk_cache",
        "granularity": GRANULARITY,
        "repeats": repeats,
        "rows": rows,
        "headline": {
            # The CI gate: a cold process over a warm cache directory must
            # answer the gpt3 hot-path compile >= 5x faster than the
            # uncached miss path (compile + populate the entry).
            "gpt3_cold_miss_ms": gpt3["cold_miss_ms"],
            "gpt3_warm_disk_ms": gpt3["warm_disk_ms"],
            "gpt3_disk_speedup": gpt3["disk_speedup"],
        },
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':8s} {'miss ms':>10s} {'warm ms':>10s} {'speedup':>8s}"
    ]
    for r in payload["rows"]:
        lines.append(
            f"{r['model']:8s} {r['cold_miss_ms']:10.3f} "
            f"{r['warm_disk_ms']:10.3f} {r['disk_speedup']:8.2f}"
        )
    head = payload["headline"]
    lines.append(
        f"\ngpt3 hot path: warm-disk cold-process compile "
        f"{head['gpt3_warm_disk_ms']:.3f} ms vs uncached miss "
        f"{head['gpt3_cold_miss_ms']:.3f} ms = "
        f"{head['gpt3_disk_speedup']:.2f}x"
    )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance floors — the CI gate)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark(repeats=3)


def test_warm_disk_speedup_floor(payload):
    """Acceptance: warm-cache cold-process compile >= 5x the cold compile."""
    assert payload["headline"]["gpt3_disk_speedup"] >= 5.0, render(payload)


def test_warm_loads_actually_come_from_disk(payload):
    """Every warm sample was served by the disk cache, never recompiled."""
    for row in payload["rows"]:
        assert row["warm_sources"] == ["disk"], row


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_serve.json")
    parser.add_argument("--repeats", type=int, default=5)
    args = parser.parse_args(argv)
    payload = run_benchmark(repeats=args.repeats)
    print(render(payload))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
