"""Table 2: the dataset inventory with sparsity levels and sources.

Regenerates the paper's dataset table from the registry, extended with the
simulated stand-in configuration each benchmark actually runs (the
substitution record required by DESIGN.md).
"""

import numpy as np
import pytest

from bench_common import print_figure
from repro.data.registry import GRAPH_DATASETS, graph_dataset, table2_rows
from repro.data.text import bigbird_mask, mask_sparsity


def test_tab02_dataset_registry(benchmark):
    rows = table2_rows()
    print_figure(
        "Table 2: datasets with sparsity levels and types (paper | simulated)",
        rows,
        ["Model", "Dataset", "paper MxN", "Sparsity", "Source", "sim MxN", "pattern"],
    )
    assert len(rows) == 9  # 5 graph + 3 SAE + 1 GPT-3 row

    # Graph stand-ins stay extremely sparse, like the paper's 99.6-99.9%.
    for name in GRAPH_DATASETS:
        _, adj, _ = graph_dataset(name)
        sparsity = 1.0 - np.count_nonzero(adj) / adj.size
        assert sparsity > 0.85, f"{name}: {sparsity:.3f}"

    # The BigBird mask lands in the paper's 53.9%-86.5% sparsity band
    # (block-size dependent).
    sparsities = [mask_sparsity(bigbird_mask(128, b, seed=7)) for b in (4, 8, 16)]
    assert min(sparsities) > 0.2 and max(sparsities) < 0.9

    benchmark(lambda: [graph_dataset(n) for n in GRAPH_DATASETS])
