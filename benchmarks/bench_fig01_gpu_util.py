"""Figure 1: GPU compute/memory utilization for sparse GCN inference.

The paper motivates dataflow acceleration by profiling PyG GCN on an RTX
5090: average SM utilization ~16.7% and ~1% memory utilization across five
graphs.  Here the GPU is a throughput-oriented machine model running the
unfused GCN kernels; the probe reports achieved FLOPs and bytes against the
machine's peaks.  The qualitative claim — sparse GCN leaves a
throughput-oriented device idle — must hold.
"""

import pytest

from bench_common import cached, print_figure, verified_run
from repro.comal import GPU_MACHINE
from repro.data.registry import GRAPH_DATASETS, graph_dataset
from repro.models.gcn import build_gcn


@cached
def utilization_series():
    rows = []
    utils = {}
    for name in GRAPH_DATASETS:
        entry, adj, feats = graph_dataset(name)
        bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
        result = verified_run(bundle, bundle.schedule("unfused"), GPU_MACHINE)
        sm = 100.0 * sum(
            r.compute_utilization(GPU_MACHINE) * r.cycles for r in result.region_results
        ) / result.metrics.cycles
        mem = 100.0 * sum(
            r.memory_utilization(GPU_MACHINE) * r.cycles for r in result.region_results
        ) / result.metrics.cycles
        utils[name] = (sm, mem)
        rows.append([name, f"{sm:.2f}%", f"{mem:.2f}%"])
    return rows, utils


def test_fig01_gpu_utilization(benchmark):
    rows, utils = utilization_series()
    print_figure("Figure 1: GCN utilization on a GPU-like machine", rows,
                 ["dataset", "SM util", "mem util"])
    for name, (sm, mem) in utils.items():
        assert sm < 30.0, f"{name}: compute utilization {sm}% too high for the claim"
        assert mem < 30.0, f"{name}: memory utilization {mem}% too high for the claim"
    # At least one dataset shows the paper's <2% memory utilization regime.
    assert min(mem for _, mem in utils.values()) < 5.0

    entry, adj, feats = graph_dataset("cora")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    benchmark(lambda: verified_run(bundle, bundle.schedule("unfused"), GPU_MACHINE))
