"""Table 3: average percent error of the fusion heuristic's FLOPs/bytes.

Paper result (on OGB-Collab): FLOPs error 1.8-2.8%, bytes error 5.7-11.5%
across GPT-3, GCN, and GraphSAGE.  The heuristic here uses the same
independence-assumption estimator; errors are computed against the
simulator's measured counters across the three fusion granularities.
"""

import pytest

from bench_common import cached, print_figure, verified_run
from repro.core.heuristic.model import FusionHeuristic, stats_from_binding
from repro.data.registry import graph_dataset
from repro.models.gcn import build_gcn
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import build_graphsage

GRANULARITIES = ("unfused", "partial", "full")


def _avg_errors(bundle):
    stats = stats_from_binding(bundle.binding)
    heuristic = FusionHeuristic(bundle.program, stats)
    flops_errors, byte_errors = [], []
    for granularity in GRANULARITIES:
        schedule = bundle.schedule(granularity)
        estimate = heuristic.estimate(schedule)
        simulated = verified_run(bundle, schedule).metrics
        flops_errors.append(
            100.0 * abs(estimate.flops - simulated.flops) / simulated.flops
        )
        byte_errors.append(
            100.0 * abs(estimate.dram_bytes - simulated.dram_bytes) / simulated.dram_bytes
        )
    return (
        sum(flops_errors) / len(flops_errors),
        sum(byte_errors) / len(byte_errors),
    )


@cached
def error_table():
    entry, adj, feats = graph_dataset("collab")
    out = {}
    out["GCN"] = _avg_errors(build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed))
    out["GraphSAGE"] = _avg_errors(
        build_graphsage(adj, feats, hidden=8, classes=4, seed=entry.seed)
    )
    out["GPT-3 (block=8)"] = _avg_errors(
        build_gpt3(seq_len=64, d_model=16, block=8, n_layers=1, seed=31)
    )
    return out


def test_tab03_heuristic_error(benchmark):
    errors = error_table()
    rows = [
        [model, f"{flops:.1f}%", f"{nbytes:.1f}%"]
        for model, (flops, nbytes) in errors.items()
    ]
    print_figure(
        "Table 3: average % error of heuristic FLOPs / memory accesses",
        rows,
        ["Model class", "FLOPs", "Bytes"],
    )
    for model, (flops_err, bytes_err) in errors.items():
        # The paper reports single-digit errors on real data; the synthetic
        # independence assumption here stays within a usable band.
        assert flops_err < 30.0, f"{model}: FLOPs error {flops_err:.1f}%"
        assert bytes_err < 60.0, f"{model}: bytes error {bytes_err:.1f}%"

    entry, adj, feats = graph_dataset("collab")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    stats = stats_from_binding(bundle.binding)
    heuristic = FusionHeuristic(bundle.program, stats)
    benchmark(lambda: heuristic.estimate(bundle.schedule("partial")))
