"""Figure 14: GCN FLOPs and memory traffic, normalized to the unfused baseline.

Paper shape: partial fusion cuts bytes moved (higher operational intensity,
same FLOPs); full fusion raises operational intensity further but its
recomputation increases *both* FLOPs and bytes — fusion must balance
reduced data movement against extra computation.
"""

import pytest

from bench_common import BALANCED_MACHINE, cached, print_figure, verified_run
from repro.data.registry import graph_dataset
from repro.models.gcn import build_gcn

DATASETS = ["cora", "dblp", "collab"]


@cached
def series():
    out = {}
    for name in DATASETS:
        entry, adj, feats = graph_dataset(name)
        bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
        metrics = {}
        for granularity in ("unfused", "partial", "full"):
            result = verified_run(bundle, bundle.schedule(granularity), BALANCED_MACHINE)
            metrics[granularity] = (
                result.metrics.flops,
                result.metrics.dram_bytes,
                result.metrics.operational_intensity(),
            )
        out[name] = metrics
    return out


def test_fig14_operational_intensity(benchmark):
    data = series()
    rows = []
    for name, metrics in data.items():
        base_flops, base_bytes, _ = metrics["unfused"]
        for granularity, (flops, nbytes, intensity) in metrics.items():
            rows.append(
                [
                    name,
                    granularity,
                    f"{flops / base_flops:.2f}",
                    f"{nbytes / base_bytes:.2f}",
                    f"{intensity:.3f}",
                ]
            )
    print_figure(
        "Figure 14: GCN FLOPs/bytes normalized to unfused",
        rows,
        ["dataset", "schedule", "flops (norm)", "bytes (norm)", "flops/byte"],
    )
    for name, metrics in data.items():
        unfused_f, unfused_b, unfused_i = metrics["unfused"]
        partial_f, partial_b, partial_i = metrics["partial"]
        full_f, full_b, full_i = metrics["full"]
        # Partial fusion: same work, less data movement.
        assert partial_f == unfused_f, name
        assert partial_b < unfused_b, name
        assert partial_i > unfused_i, name
        # Full fusion: recomputation raises FLOPs; intensity rises further.
        assert full_f > partial_f, name
        assert full_i > partial_i, name

    entry, adj, feats = graph_dataset("cora")
    bundle = build_gcn(adj, feats, hidden=8, classes=4, seed=entry.seed)
    benchmark(
        lambda: verified_run(bundle, bundle.schedule("partial"), BALANCED_MACHINE)
    )
