"""Figure 13: simulator vs FPGA latency correlation (paper Section 8.2).

The paper validates Comal against post-synthesis RTL simulation of a Xilinx
VU9P design, reporting R^2 = 0.991 over per-kernel latencies of GCN,
GraphSAGE, and GPT-3 kernels small enough to stay in BRAM.  Here the FPGA
is the independently parameterized FPGA_MACHINE timing table; the
correlation is computed over the unfused kernels of all three models on
KarateClub-scale inputs (log-normalized, as the paper's figure is log-log).
"""

import numpy as np
import pytest

from bench_common import cached, print_figure
from repro.comal import FPGA_MACHINE, RDA_MACHINE, run_timed
from repro.data.graphs import node_features, synthetic_graph, weighted_adjacency
from repro.models.gcn import build_gcn
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import build_graphsage
from repro.driver import Session

#: One shared compile cache: each bundle lowers once, both machines reuse it.
_SESSION = Session()


def _kernel_latencies(bundle, machine):
    executable = _SESSION.compile(bundle.program, bundle.schedule("unfused"))
    result = executable(bundle.binding, machine=machine)
    return [r.cycles for r in result.region_results]


@cached
def correlation():
    rng = np.random.default_rng(0)
    # KarateClub-like graph: 34 nodes (paper Section 8.2).
    adj = weighted_adjacency(synthetic_graph(34, 0.12, "powerlaw", 42), rng)
    feats = node_features(34, 6, seed=43)
    bundles = [
        ("GCN", build_gcn(adj, feats, hidden=6, classes=3, seed=1)),
        ("GraphSAGE", build_graphsage(adj, feats, hidden=6, classes=3, seed=2)),
        ("GPT-3", build_gpt3(seq_len=16, d_model=8, block=4, n_layers=1, seed=3)),
    ]
    points = []
    for name, bundle in bundles:
        sim = _kernel_latencies(bundle, RDA_MACHINE)
        fpga = _kernel_latencies(bundle, FPGA_MACHINE)
        points.extend((name, s, f) for s, f in zip(sim, fpga))
    sim_log = np.log10([p[1] for p in points])
    fpga_log = np.log10([p[2] for p in points])
    corr = np.corrcoef(sim_log, fpga_log)[0, 1]
    return points, float(corr**2)


def test_fig13_fpga_correlation(benchmark):
    points, r_squared = correlation()
    rows = [[m, f"{s:.0f}", f"{f:.0f}"] for m, s, f in points]
    print_figure(
        f"Figure 13: Comal vs FPGA per-kernel latency (R^2 = {r_squared:.3f})",
        rows,
        ["model", "simulator cycles", "FPGA cycles"],
    )
    assert len(points) >= 20  # the paper correlates tens of kernels
    assert r_squared > 0.9, f"R^2 {r_squared:.3f} below the paper's agreement"

    rng = np.random.default_rng(0)
    adj = weighted_adjacency(synthetic_graph(34, 0.12, "powerlaw", 42), rng)
    feats = node_features(34, 6, seed=43)
    bundle = build_gcn(adj, feats, hidden=6, classes=3, seed=1)
    benchmark(lambda: _kernel_latencies(bundle, FPGA_MACHINE))
