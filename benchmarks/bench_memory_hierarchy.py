"""Memory-hierarchy benchmark: fused vs unfused DRAM traffic per preset.

Sweeps gcn and gpt3 across fusion granularities and memory-hierarchy
presets (``flat`` → ``fpga-small`` → ``asic-small`` → ``asic-large``) on
the RDA machine and reports per-level traffic: DRAM bytes, on-chip SRAM
bytes, and the spill/fill breakdown of cross-region intermediates.

The shape this asserts (the paper's fused-vs-unfused story, now with
capacity effects visible):

* On every asserted preset, the best fused schedule moves strictly less
  DRAM traffic than unfused — fusion avoids even the on-chip hop, while
  unfused intermediates at best land in SRAM and at worst spill.
* Growing the buffer monotonically shrinks unfused spill traffic, closing
  the DRAM gap — the capacity effect a flat DRAM model cannot show.

The granularity *within* the fused family matters too: applying a
hierarchy pins the operand-staging scratchpad to the SRAM capacity, so on
the tiniest buffer (``fpga-small``, 8 KiB) fully-fused gcn's recomputation
re-reads operands at per-access cost and partial fusion wins by a wide
margin — the Figure-12-style sweet spot, now with a memory-system cause.

Run directly to (re)generate the committed artifact::

    PYTHONPATH=src python benchmarks/bench_memory_hierarchy.py --out BENCH_memory.json

or via pytest (asserts the acceptance shape)::

    PYTHONPATH=src:benchmarks python -m pytest benchmarks/bench_memory_hierarchy.py -q
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Dict, List

sys.path.insert(0, os.path.dirname(__file__))

from repro.comal.hierarchy import HIERARCHIES
from repro.driver import Session
from repro.sweep import SweepPoint, build_bundle

#: Model configurations sized so the larger intermediates exceed the small
#: on-chip presets (capacity effects visible) while runs stay fast.
MODEL_POINTS = {
    "gcn": {"nodes": 96, "density": 0.06, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

#: Smallest-to-largest on-chip capacity; "flat" is the DRAM-only baseline.
HIERARCHY_ORDER = ("flat", "fpga-small", "asic-small", "asic-large")

#: Presets the acceptance assertions run against (on both, the best fused
#: schedule must strictly reduce DRAM traffic on every model).
ASSERTED_PRESETS = ("fpga-small", "asic-small")

GRANULARITIES = ("unfused", "partial", "full")
FUSED_GRANULARITIES = ("partial", "full")
MACHINE = "rda"


def run_benchmark() -> Dict[str, object]:
    rows: List[Dict[str, object]] = []
    for model, model_args in MODEL_POINTS.items():
        bundle = build_bundle(SweepPoint.make(model, model_args=model_args))
        for hierarchy in HIERARCHY_ORDER:
            session = Session(hierarchy=hierarchy)
            for granularity in GRANULARITIES:
                exe = session.compile(bundle.program, bundle.schedule(granularity))
                result = exe(bundle.binding)
                m = result.metrics
                rows.append(
                    {
                        "model": model,
                        "config": dict(model_args),
                        "hierarchy": hierarchy,
                        "schedule": granularity,
                        "cycles": m.cycles,
                        "flops": m.flops,
                        "dram_bytes": m.dram_bytes,
                        "sram_bytes": m.sram_bytes,
                        "spill_bytes": m.spill_bytes,
                        "fill_bytes": m.fill_bytes,
                        "max_abs_err": bundle.max_abs_err(result),
                    }
                )

    def row(model: str, hierarchy: str, schedule: str) -> Dict[str, object]:
        return next(
            r
            for r in rows
            if r["model"] == model
            and r["hierarchy"] == hierarchy
            and r["schedule"] == schedule
        )

    headline = {}
    for model in MODEL_POINTS:
        for preset in ASSERTED_PRESETS:
            unfused = row(model, preset, "unfused")["dram_bytes"]
            best_fused = min(
                row(model, preset, g)["dram_bytes"] for g in FUSED_GRANULARITIES
            )
            key = f"{model}_{preset.replace('-', '_')}_dram_reduction"
            headline[key] = round(unfused / best_fused, 3)
    return {
        "name": "memory_hierarchy",
        "machine": MACHINE,
        "granularities": list(GRANULARITIES),
        "hierarchies": {
            name: HIERARCHIES[name].describe() for name in HIERARCHY_ORDER
        },
        "asserted_presets": list(ASSERTED_PRESETS),
        "rows": rows,
        "headline": headline,
    }


def render(payload: Dict[str, object]) -> str:
    lines = [
        f"{'model':6s} {'hierarchy':12s} {'schedule':9s} {'cycles':>9s} "
        f"{'dram':>8s} {'sram':>8s} {'spill':>8s} {'fill':>8s}"
    ]
    for r in payload["rows"]:
        lines.append(
            f"{r['model']:6s} {r['hierarchy']:12s} {r['schedule']:9s} "
            f"{r['cycles']:9.0f} {r['dram_bytes']:8d} {r['sram_bytes']:8d} "
            f"{r['spill_bytes']:8d} {r['fill_bytes']:8d}"
        )
    lines.append("")
    for key, value in sorted(payload["headline"].items()):
        lines.append(f"{key}: {value:.2f}x")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# pytest entry points (acceptance shape)
# ----------------------------------------------------------------------

import pytest


@pytest.fixture(scope="module")
def payload():
    return run_benchmark()


def _rows(payload, **match):
    return [
        r for r in payload["rows"] if all(r[k] == v for k, v in match.items())
    ]


def test_all_points_verified(payload):
    """Every (model, hierarchy, schedule) point matches the dense reference."""
    for r in payload["rows"]:
        assert r["max_abs_err"] < 1e-6, r


def test_fused_reduces_dram_traffic_on_presets(payload):
    """Acceptance: best fused < unfused DRAM bytes on gcn and gpt3, >=2 presets."""
    for model in MODEL_POINTS:
        for preset in ASSERTED_PRESETS:
            unfused = _rows(payload, model=model, hierarchy=preset, schedule="unfused")[0]
            best_fused = min(
                _rows(payload, model=model, hierarchy=preset, schedule=g)[0][
                    "dram_bytes"
                ]
                for g in FUSED_GRANULARITIES
            )
            assert best_fused < unfused["dram_bytes"], (
                model,
                preset,
                render(payload),
            )


def test_capacity_monotonically_reduces_spill(payload):
    """Bigger buffers never spill more (unfused, per model)."""
    for model in MODEL_POINTS:
        spills = [
            _rows(payload, model=model, hierarchy=h, schedule="unfused")[0][
                "spill_bytes"
            ]
            for h in HIERARCHY_ORDER
        ]
        assert spills == sorted(spills, reverse=True), (model, spills)


def test_presets_absorb_traffic_on_chip(payload):
    """Each asserted preset serves some unfused traffic from SRAM."""
    for model in MODEL_POINTS:
        absorbed = [
            _rows(payload, model=model, hierarchy=h, schedule="unfused")[0][
                "sram_bytes"
            ]
            for h in ASSERTED_PRESETS
        ]
        assert any(v > 0 for v in absorbed), (model, absorbed)


def test_flat_matches_pre_hierarchy_accounting(payload):
    """Flat rows have no on-chip traffic and spill == fill-labelled DRAM."""
    for r in _rows(payload, hierarchy="flat"):
        assert r["sram_bytes"] == 0
        assert r["spill_bytes"] <= r["dram_bytes"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_memory.json")
    args = parser.parse_args(argv)
    payload = run_benchmark()
    print(render(payload))
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"\nwrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
