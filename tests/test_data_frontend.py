"""Dataset generators, registry, BigBird masks, and frontend tracing tests."""

import numpy as np
import pytest

from repro.data.graphs import (
    blockdiag_graph,
    node_features,
    powerlaw_graph,
    synthetic_graph,
    uniform_graph,
    weighted_adjacency,
)
from repro.data.registry import (
    GRAPH_DATASETS,
    SAE_DATASETS,
    graph_dataset,
    sae_dataset,
    table2_rows,
)
from repro.data.text import bigbird_mask, mask_sparsity, token_embeddings
from repro.frontend.api import Linear, ModelBuilder
from repro.ftree import csr
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


class TestGraphGenerators:
    @pytest.mark.parametrize("pattern", ["uniform", "powerlaw", "blockdiag"])
    def test_density_in_range(self, pattern):
        adj = synthetic_graph(100, 0.05, pattern, seed=0)
        density = np.count_nonzero(adj) / adj.size
        assert 0.01 < density < 0.25

    def test_self_loops(self):
        adj = synthetic_graph(20, 0.1, "uniform", seed=1)
        assert np.all(np.diag(adj) > 0)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            synthetic_graph(10, 0.1, "smallworld")

    def test_powerlaw_is_skewed(self):
        rng = np.random.default_rng(0)
        adj = powerlaw_graph(200, 0.05, rng)
        degrees = np.sort(adj.sum(axis=1))[::-1]
        # Top decile holds disproportionate degree mass.
        assert degrees[:20].sum() > 2 * degrees[-20:].sum()

    def test_blockdiag_concentrates_on_diagonal(self):
        rng = np.random.default_rng(0)
        adj = blockdiag_graph(80, 0.08, rng, communities=4)
        size = 20
        in_block = sum(
            np.count_nonzero(adj[c * size : (c + 1) * size, c * size : (c + 1) * size])
            for c in range(4)
        )
        assert in_block > 0.5 * np.count_nonzero(adj)

    def test_weighted_rows_normalized(self):
        rng = np.random.default_rng(0)
        adj = weighted_adjacency(uniform_graph(30, 0.2, rng), rng)
        sums = adj.sum(axis=1)
        np.testing.assert_allclose(sums[sums > 0], 1.0)

    def test_sparse_features(self):
        x = node_features(50, 10, density=0.3, seed=2)
        assert np.count_nonzero(x) < 0.5 * x.size


class TestRegistry:
    def test_graph_dataset_materializes(self):
        entry, adj, feats = graph_dataset("cora")
        assert adj.shape == (entry.sim_nodes, entry.sim_nodes)
        assert feats.shape == (entry.sim_nodes, entry.sim_features)

    def test_all_graph_datasets(self):
        for name in GRAPH_DATASETS:
            entry, adj, _ = graph_dataset(name)
            assert np.count_nonzero(adj) > entry.sim_nodes  # beyond self loops

    def test_sae_dataset(self):
        entry, x = sae_dataset("imagenet")
        assert x.shape[0] == 5  # the paper samples 5 images

    def test_table2_covers_all(self):
        rows = table2_rows()
        assert len(rows) == len(GRAPH_DATASETS) + len(SAE_DATASETS) + 1


class TestBigBird:
    def test_mask_shape_and_blocks(self):
        mask = bigbird_mask(32, 8, seed=0)
        assert mask.shape == (32, 32)
        # Block structure: every 8x8 block is all-ones or all-zeros.
        grid = mask.reshape(4, 8, 4, 8).transpose(0, 2, 1, 3)
        for i in range(4):
            for j in range(4):
                block = grid[i, j]
                assert block.min() == block.max()

    def test_diagonal_window_kept(self):
        mask = bigbird_mask(32, 8, seed=0)
        assert np.all(np.diag(mask) == 1.0)

    def test_sparsity_grows_with_sequence(self):
        small = mask_sparsity(bigbird_mask(32, 8, seed=0))
        large = mask_sparsity(bigbird_mask(128, 8, seed=0))
        assert large > small

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            bigbird_mask(30, 8)

    def test_token_embeddings(self):
        x = token_embeddings(16, 8, seed=1)
        assert x.shape == (16, 8)


class TestFrontend:
    def test_matmul_records_contract(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        w = b.input("W", np.ones((4, 2)))
        y = b.matmul(x, w, label="mm")
        assert y.dims == (3, 2)
        assert b.program.statements[0].kind == "contract"
        assert b.sids("mm") == [0]

    def test_matmul_shape_mismatch_rejected(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        w = b.input("W", np.ones((5, 2)))
        with pytest.raises(ValueError):
            b.matmul(x, w)

    def test_operator_sugar(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        w = b.input("W", np.ones((4, 4)))
        y = x @ w
        z = y + x
        assert b.program.statements[-1].op == "add"
        assert z.dims == (3, 4)

    def test_bias_broadcast(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        bias = b.input("b", np.ones(4))
        y = b.add(x, bias)
        stmt = b.program.statements[0]
        assert stmt.operands[1].indices == (stmt.operands[0].indices[-1],)

    def test_broadcast_mismatch_rejected(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        bad = b.input("b", np.ones(3))
        with pytest.raises(ValueError):
            b.add(x, bad)

    def test_sparse_annotation(self):
        b = ModelBuilder("m")
        rng = np.random.default_rng(0)
        a = (rng.random((4, 4)) < 0.5) * 1.0
        sym = b.input("A", a, csr())
        assert b.program.decls["A"].fmt.name() == "csr"
        assert b.binding["A"].nnz() == np.count_nonzero(a)

    def test_linear_module_traces_two_statements(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        lin = Linear(b, 4, 2, name="fc")
        y = lin(x)
        assert len(b.program.statements) == 2
        assert b.sids("fc_mm") == [0]
        assert b.sids("fc_bias") == [1]

    def test_traced_model_runs(self):
        b = ModelBuilder("m")
        rng = np.random.default_rng(1)
        x_data = rng.random((4, 5))
        x = b.input("X", x_data)
        lin = Linear(b, 5, 3, name="fc", rng=rng)
        y = b.relu(lin(x))
        result = run(b.program, b.binding)
        w = b.binding["fc_w"].to_dense()
        bias = b.binding["fc_b"].to_dense()
        np.testing.assert_allclose(
            result.tensors[y.name].to_dense(),
            np.maximum(x_data @ w + bias, 0),
            atol=1e-12,
        )

    def test_user_order_scheduling(self):
        b = ModelBuilder("m")
        x = b.input("X", np.ones((3, 4)))
        w = b.input("W", np.ones((4, 2)))
        y = b.matmul(x, w, order="ikj")
        assert b.program.statements[0].order is not None
