"""Memory hierarchy tests: MemoryModel edge cases, placement, spill/fill.

Covers the flat DRAM model's corner behaviors (burst rounding, contention
serialization, zero traffic), the HierarchySpec/preset registry, the
place-memory pass's compile-time decisions, and the per-level traffic
accounting the timed engine reports in SimResult.
"""

import numpy as np
import pytest

from repro.comal import (
    FLAT_HIERARCHY,
    HIERARCHIES,
    RDA_MACHINE,
    BufferLevel,
    HierarchySpec,
    MemoryModel,
    resolve_hierarchy,
)
from repro.core.einsum.parser import parse_program
from repro.core.schedule.schedule import fully_fused, unfused
from repro.driver import PassPipeline, PlaceMemory, Session
from repro.ftree import SparseTensor, csr, dense
from repro.sweep import SweepPoint, SweepSpec, run_point


# ----------------------------------------------------------------------
# MemoryModel edge cases
# ----------------------------------------------------------------------


class TestMemoryModelEdges:
    def test_burst_rounding_charges_service_not_stats(self):
        """Sub-burst requests round service time up but count true bytes."""
        mem = MemoryModel(bandwidth=2.0, latency=0.0, burst_bytes=32)
        done = mem.access(0.0, 4)
        assert done == 16.0  # 32-byte burst at 2 B/cycle
        assert mem.total_bytes == 4  # stats keep the requested size
        assert mem.total_requests == 1

    def test_contention_serializes_same_cycle_arrivals(self):
        """Two same-cycle requests are served back to back, FIFO."""
        mem = MemoryModel(bandwidth=1.0, latency=5.0, burst_bytes=1)
        first = mem.access(0.0, 10)
        second = mem.access(0.0, 10)
        assert first == 15.0  # 10 cycles service + latency
        assert second == 25.0  # waits for the port, then 10 + latency
        assert mem.drain_time() == 20.0

    def test_late_arrival_does_not_wait(self):
        mem = MemoryModel(bandwidth=1.0, latency=0.0, burst_bytes=1)
        mem.access(0.0, 4)
        assert mem.access(100.0, 4) == 104.0

    def test_zero_traffic_is_free_and_uncounted(self):
        mem = MemoryModel()
        assert mem.access(7.0, 0) == 7.0
        assert mem.total_bytes == 0
        assert mem.total_requests == 0
        assert mem.drain_time() == 0.0

    def test_negative_bytes_clamped_to_zero(self):
        mem = MemoryModel()
        assert mem.access(3.0, -64) == 3.0
        assert mem.total_bytes == 0

    def test_reset_clears_port_and_counters(self):
        mem = MemoryModel(bandwidth=1.0, latency=0.0, burst_bytes=1)
        mem.access(0.0, 8)
        mem.reset()
        assert mem.next_free == 0.0
        assert mem.total_bytes == 0
        assert mem.access(0.0, 8) == 8.0

    def test_roofline_cycles(self):
        mem = MemoryModel(bandwidth=4.0)
        assert mem.roofline_cycles(64) == 16.0


# ----------------------------------------------------------------------
# HierarchySpec / presets
# ----------------------------------------------------------------------


class TestHierarchySpec:
    def test_flat_has_no_sram(self):
        assert not FLAT_HIERARCHY.has_sram
        assert FLAT_HIERARCHY.config() == ("flat",)

    def test_presets_registered(self):
        for name in ("flat", "fpga-small", "fpga-large", "asic-small", "asic-large"):
            assert name in HIERARCHIES
        assert HIERARCHIES["fpga-small"].has_sram

    def test_resolve_accepts_spec_name_and_override(self):
        spec = HIERARCHIES["fpga-small"]
        assert resolve_hierarchy(spec) is spec
        assert resolve_hierarchy("fpga-small") is spec
        assert resolve_hierarchy(None) is FLAT_HIERARCHY
        scaled = resolve_hierarchy("fpga-small@4096")
        assert scaled.sram.capacity_bytes == 4096
        assert scaled.name == "fpga-small@4096"
        assert scaled.sram.banks == spec.sram.banks

    def test_resolve_rejects_unknown_and_malformed(self):
        with pytest.raises(ValueError, match="unknown hierarchy"):
            resolve_hierarchy("hbm3-gigantic")
        with pytest.raises(ValueError, match="not an integer"):
            resolve_hierarchy("fpga-small@lots")
        with pytest.raises(ValueError, match="flat"):
            resolve_hierarchy("flat@4096")

    def test_scaled_requires_sram(self):
        with pytest.raises(ValueError, match="no SRAM level"):
            FLAT_HIERARCHY.scaled(capacity_bytes=1)

    def test_buffer_level_validation(self):
        with pytest.raises(ValueError):
            BufferLevel(capacity_bytes=-1)
        with pytest.raises(ValueError):
            BufferLevel(capacity_bytes=1, banks=0)
        with pytest.raises(ValueError):
            BufferLevel(capacity_bytes=1, bandwidth=0.0)

    def test_bank_assignment_is_stable(self):
        level = BufferLevel(capacity_bytes=1024, banks=4)
        assert level.bank_of("T") == level.bank_of("T")
        assert 0 <= level.bank_of("anything") < 4

    def test_machine_with_hierarchy(self):
        machine = RDA_MACHINE.with_hierarchy("asic-small")
        assert machine.hierarchy.name == "asic-small"
        assert RDA_MACHINE.hierarchy is FLAT_HIERARCHY  # original untouched

    def test_with_hierarchy_aligns_scratchpad_budget(self):
        """One chip, one on-chip capacity: scratchpad == SRAM capacity."""
        machine = RDA_MACHINE.with_hierarchy("fpga-small")
        assert machine.scratchpad_bytes == 8 << 10
        # A flat hierarchy leaves the operand budget alone.
        assert (
            RDA_MACHINE.with_hierarchy("flat").scratchpad_bytes
            == RDA_MACHINE.scratchpad_bytes
        )

    def test_with_hierarchy_round_trips_to_flat_baseline(self):
        """SRAM -> flat un-pins the scratchpad: flat-vs-flat is identical."""
        pinned = RDA_MACHINE.with_hierarchy("fpga-small")
        back = pinned.with_hierarchy("flat")
        assert back.hierarchy is FLAT_HIERARCHY
        assert back.scratchpad_bytes == RDA_MACHINE.scratchpad_bytes


# ----------------------------------------------------------------------
# Placement + per-level accounting end to end
# ----------------------------------------------------------------------


PROGRAM_TEXT = """
tensor A(16, 16): csr
tensor B(16, 4): dense
T(i, j) = A(i, k) * B(k, j)
U(i, j) = relu(T(i, j))
"""


@pytest.fixture
def two_stage():
    prog = parse_program(PROGRAM_TEXT, name="two-stage")
    rng = np.random.default_rng(0)
    a = (rng.random((16, 16)) < 0.3) * rng.random((16, 16))
    b = rng.random((16, 4))
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "B": SparseTensor.from_dense(b, dense(2), "B"),
    }
    reference = np.maximum(a @ b, 0.0)
    return prog, binding, reference


def _writer_nodes(graph):
    return [n for n in graph.nodes.values() if n.prim.kind == "write"]


def _readers_of(graph, tensor):
    return [
        n
        for n in graph.nodes.values()
        if getattr(n.prim, "tensor_name", None) == tensor and n.prim.kind != "write"
    ]


class TestPlacement:
    def test_intermediate_placed_on_chip_when_it_fits(self, two_stage):
        prog, binding, reference = two_stage
        # T is 16x4 doubles = 512 B dense estimate; give it ample room.
        session = Session(hierarchy="fpga-small")
        exe = session.compile(prog, unfused(prog))
        (t_writer,) = _writer_nodes(exe.regions[0].graph)
        assert t_writer.meta["mem_level"] == "sram"
        assert t_writer.meta["mem_role"] == "intermediate"
        assert "mem_bank" in t_writer.meta
        for reader in _readers_of(exe.regions[1].graph, "T"):
            assert reader.meta["mem_level"] == "sram"
        # The program output always lives in DRAM.
        (u_writer,) = _writer_nodes(exe.regions[1].graph)
        assert u_writer.meta["mem_level"] == "dram"
        assert u_writer.meta["mem_role"] == "output"
        # Program inputs live in DRAM too.
        for reader in _readers_of(exe.regions[0].graph, "A"):
            assert reader.meta["mem_level"] == "dram"
            assert reader.meta["mem_role"] == "input"

    def test_intermediate_spills_when_capacity_exhausted(self, two_stage):
        prog, binding, reference = two_stage
        session = Session(hierarchy="fpga-small@256")  # T needs 512 B
        exe = session.compile(prog, unfused(prog))
        (t_writer,) = _writer_nodes(exe.regions[0].graph)
        assert t_writer.meta["mem_level"] == "dram"
        assert t_writer.meta["mem_role"] == "spill"
        for reader in _readers_of(exe.regions[1].graph, "T"):
            assert reader.meta["mem_level"] == "dram"
            assert reader.meta["mem_role"] == "fill"

    def test_flat_hierarchy_labels_without_placing(self, two_stage):
        prog, binding, reference = two_stage
        exe = Session().compile(prog, unfused(prog))
        (t_writer,) = _writer_nodes(exe.regions[0].graph)
        assert t_writer.meta["mem_level"] == "dram"
        assert t_writer.meta["mem_role"] == "spill"
        diag = exe.diagnostics.regions[0]
        assert "place-memory" in diag.skipped_passes

    def test_fused_region_has_no_intermediate_edges(self, two_stage):
        prog, binding, reference = two_stage
        exe = Session(hierarchy="fpga-small").compile(prog, fully_fused(prog))
        (graph,) = [r.graph for r in exe.regions]
        for writer in _writer_nodes(graph):
            assert writer.meta["mem_role"] == "output"

    def test_diagnostics_record_reservations(self, two_stage):
        prog, binding, reference = two_stage
        exe = Session(hierarchy="fpga-small").compile(prog, unfused(prog))
        diag = exe.diagnostics.regions[0]
        assert diag.sram_placed >= 1
        assert diag.sram_reserved == 512  # dense estimate of T(16, 4)
        assert "on-chip" in exe.diagnostics.describe()


class TestPerLevelAccounting:
    def test_sram_absorbs_intermediate_traffic(self, two_stage):
        prog, binding, reference = two_stage
        flat = Session().run(prog, binding, unfused(prog)).metrics
        hier = Session(hierarchy="fpga-small").run(prog, binding, unfused(prog)).metrics
        # Conservation: traffic moves between levels, never disappears.
        assert hier.dram_bytes + hier.sram_bytes == flat.dram_bytes
        assert hier.sram_bytes > 0
        assert hier.spill_bytes == 0 and hier.fill_bytes == 0
        # Flat labels the same intermediate traffic as spill/fill.
        assert flat.spill_bytes > 0 and flat.fill_bytes > 0
        assert flat.sram_bytes == 0
        assert flat.spill_bytes + flat.fill_bytes == hier.sram_bytes

    def test_spilled_run_keeps_everything_off_chip(self, two_stage):
        """A 256 B buffer: T spills, and the operand budget shrinks too.

        Applying a hierarchy pins the scratchpad to the SRAM capacity, so a
        tiny buffer both spills the intermediate (same spill/fill labels as
        flat) and loses operand-residency discounts — total DRAM traffic
        can only grow relative to the flat machine's 64 KiB budget.
        """
        prog, binding, reference = two_stage
        flat = Session().run(prog, binding, unfused(prog)).metrics
        spilled = Session(hierarchy="fpga-small@256").run(
            prog, binding, unfused(prog)
        ).metrics
        assert spilled.sram_bytes == 0
        assert spilled.spill_bytes == flat.spill_bytes
        assert spilled.fill_bytes == flat.fill_bytes
        assert spilled.dram_bytes >= flat.dram_bytes

    def test_results_identical_across_hierarchies(self, two_stage):
        """Placement is a timing concern; functional output is untouched."""
        prog, binding, reference = two_stage
        for hierarchy in (None, "fpga-small", "fpga-small@256", "asic-large"):
            result = Session(hierarchy=hierarchy).run(prog, binding, unfused(prog))
            np.testing.assert_allclose(
                result.tensors["U"].to_dense(), reference, atol=1e-12
            )

    def test_simresult_carries_hierarchy_name(self, two_stage):
        prog, binding, reference = two_stage
        result = Session(hierarchy="asic-small").run(prog, binding, unfused(prog))
        assert all(r.hierarchy == "asic-small" for r in result.region_results)
        flat = Session().run(prog, binding, unfused(prog))
        assert all(r.hierarchy == "flat" for r in flat.region_results)

    def test_bank_bandwidth_rooflines_cycles(self, two_stage):
        """A starved SRAM port must dominate the cycle count."""
        prog, binding, reference = two_stage
        starved = HierarchySpec(
            "starved", BufferLevel(capacity_bytes=1 << 20, banks=1, bandwidth=0.01)
        )
        fast = Session(hierarchy="asic-large").run(prog, binding, unfused(prog))
        slow = Session(hierarchy=starved).run(prog, binding, unfused(prog))
        assert slow.metrics.sram_bytes == fast.metrics.sram_bytes > 0
        assert (
            slow.metrics.cycles
            >= slow.metrics.sram_bytes / 0.01 * 0.99
            > fast.metrics.cycles
        )

    def test_sram_compiled_graph_demotes_on_flat_machine(self, two_stage):
        """Running an SRAM-placed executable on a flat machine spills."""
        prog, binding, reference = two_stage
        exe = Session(hierarchy="fpga-small").compile(prog, unfused(prog))
        demoted = exe(binding, machine=RDA_MACHINE)
        assert demoted.metrics.sram_bytes == 0
        flat = Session().run(prog, binding, unfused(prog))
        assert demoted.metrics.dram_bytes == flat.metrics.dram_bytes
        np.testing.assert_allclose(
            demoted.tensors["U"].to_dense(), reference, atol=1e-12
        )


class TestSessionHierarchy:
    def test_hierarchy_configures_machine_and_pipeline(self):
        session = Session(hierarchy="fpga-small")
        assert session.machine.hierarchy.name == "fpga-small"
        place = [p for p in session.pipeline.passes if p.name == "place-memory"]
        assert place and place[0].hierarchy.name == "fpga-small"

    def test_machine_hierarchy_inherited_when_arg_omitted(self):
        machine = RDA_MACHINE.with_hierarchy("asic-small")
        session = Session(machine=machine)
        place = [p for p in session.pipeline.passes if p.name == "place-memory"]
        assert place[0].hierarchy.name == "asic-small"

    def test_different_hierarchies_miss_the_compile_cache(self, two_stage):
        prog, _, _ = two_stage
        a = Session(hierarchy="fpga-small")
        b = Session(hierarchy="fpga-small@256")
        assert a.cache_key(prog, unfused(prog)) != b.cache_key(prog, unfused(prog))

    def test_pipeline_with_hierarchy_appends_when_missing(self):
        pipeline = PassPipeline.default().without("place-memory")
        configured = pipeline.with_hierarchy("fpga-small")
        names = configured.names()
        assert names.index("place-memory") == names.index("lower-region") + 1

    def test_session_respects_placement_ablation(self, two_stage):
        """An explicit pipeline without place-memory stays placement-free."""
        prog, binding, _ = two_stage
        pipeline = PassPipeline.default().without("place-memory")
        session = Session(pipeline=pipeline, hierarchy="fpga-small")
        assert "place-memory" not in session.pipeline.names()
        # The SRAM level goes unused: nothing was placed, all traffic DRAM.
        metrics = session.run(prog, binding, unfused(prog)).metrics
        assert metrics.sram_bytes == 0
        # Machine still carries the hierarchy (and its operand budget).
        assert session.machine.hierarchy.name == "fpga-small"

    def test_place_memory_config_in_fingerprint(self):
        default = PassPipeline.default()
        small = default.with_hierarchy("fpga-small")
        assert default.fingerprint() != small.fingerprint()
        assert PlaceMemory("fpga-small").config() == small.passes[
            small.names().index("place-memory")
        ].config()


# ----------------------------------------------------------------------
# Sweep axis
# ----------------------------------------------------------------------


class TestSweepHierarchyAxis:
    def test_flat_point_ids_stable_without_hierarchy_field(self):
        """Pre-hierarchy result files must keep resuming: flat IDs unchanged."""
        flat = SweepPoint.make("gcn", model_args={"nodes": 12})
        assert flat.hierarchy == "flat"
        assert "hierarchy" not in flat.label()
        hier = SweepPoint.make(
            "gcn", model_args={"nodes": 12}, hierarchy="fpga-small"
        )
        assert hier.point_id != flat.point_id
        assert "fpga-small" in hier.label()

    def test_point_roundtrip_and_validation(self):
        point = SweepPoint.make("gcn", hierarchy="asic-large")
        assert SweepPoint.from_record(point.to_record()) == point
        bad = SweepPoint.make("gcn", hierarchy="nonsense")
        with pytest.raises(Exception, match="unknown hierarchy"):
            bad.validate()

    def test_spec_grid_expands_hierarchies(self):
        spec = SweepSpec(
            models=["gcn"],
            schedules=["unfused", "full"],
            machines=["rda"],
            hierarchies=["flat", "fpga-small", "asic-small"],
        )
        points = spec.points()
        assert len(points) == 6
        assert {p.hierarchy for p in points} == {"flat", "fpga-small", "asic-small"}
        restored = SweepSpec.from_record(spec.to_record())
        assert [p.point_id for p in restored.points()] == [
            p.point_id for p in points
        ]

    def test_run_point_reports_per_level_metrics(self):
        point = SweepPoint.make(
            "gcn",
            schedule="unfused",
            model_args={"nodes": 24, "density": 0.1},
            hierarchy="asic-large",
        )
        record = run_point(point)
        assert record["status"] == "ok", record.get("error")
        metrics = record["metrics"]
        assert metrics["sram_bytes"] > 0
        assert metrics["dram_bytes"] > 0
        assert {"spill_bytes", "fill_bytes"} <= set(metrics)
        assert record["point"]["hierarchy"] == "asic-large"
