"""Simulator tests: timing model, memory model, machines, metrics."""

import numpy as np
import pytest

from repro.comal import (
    FPGA_MACHINE,
    GPU_MACHINE,
    MACHINES,
    RDA_MACHINE,
    MemoryModel,
    ProgramMetrics,
    format_table,
    run_functional,
    run_timed,
    speedup_table,
)
from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fuse_region
from repro.core.tables.lower import RegionLowerer
from repro.ftree import SparseTensor, csr, dense


@pytest.fixture
def spmm_graph():
    prog = parse_program(
        "tensor A(6, 6): csr\ntensor X(6, 4): dense\nT(i, j) = A(i, k) * X(k, j)"
    )
    lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls)
    graph = lowerer.lower()
    rng = np.random.default_rng(0)
    a = (rng.random((6, 6)) < 0.4) * rng.random((6, 6))
    x = rng.random((6, 4))
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
    }
    return graph, binding, a, x


class TestMemoryModel:
    def test_latency_floor(self):
        mem = MemoryModel(bandwidth=64.0, latency=100.0)
        assert mem.access(0.0, 64) >= 100.0

    def test_bandwidth_serializes(self):
        mem = MemoryModel(bandwidth=1.0, latency=0.0, burst_bytes=1)
        t1 = mem.access(0.0, 10)
        t2 = mem.access(0.0, 10)
        assert t2 >= t1 + 10

    def test_burst_rounds_up(self):
        mem = MemoryModel(bandwidth=1.0, latency=0.0, burst_bytes=32)
        mem.access(0.0, 1)
        assert mem.next_free == 32.0

    def test_zero_bytes_free(self):
        mem = MemoryModel()
        assert mem.access(5.0, 0) == 5.0

    def test_reset(self):
        mem = MemoryModel()
        mem.access(0.0, 128)
        mem.reset()
        assert mem.total_bytes == 0 and mem.next_free == 0.0


class TestMachines:
    def test_registry(self):
        assert set(MACHINES) == {"rda", "fpga", "gpu"}

    def test_ii_lookup_defaults(self):
        assert RDA_MACHINE.ii_of("scan") == 1.0
        assert RDA_MACHINE.ii_of("unknown-class") == RDA_MACHINE.default_ii

    def test_scaled_copy(self):
        m = RDA_MACHINE.scaled(dram_bandwidth=8.0)
        assert m.dram_bandwidth == 8.0
        assert RDA_MACHINE.dram_bandwidth == 64.0


class TestTimedRun:
    def test_cycles_positive_and_flops_counted(self, spmm_graph):
        graph, binding, a, x = spmm_graph
        result = run_timed(graph, binding)
        assert result.cycles > 0
        # Gustavson SpMM: one fma per (nnz, column) pair.
        assert result.flops == pytest.approx(2 * np.count_nonzero(a) * x.shape[1], rel=0.5)

    def test_functional_reuse(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        func = run_functional(graph, binding)
        result = run_timed(graph, binding, functional=func)
        assert result.functional is func

    def test_bandwidth_roofline(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        starved = RDA_MACHINE.scaled(dram_bandwidth=0.25)
        fast = run_timed(graph, binding)
        slow = run_timed(graph, binding, machine=starved)
        assert slow.cycles >= slow.dram_bytes / 0.25
        assert slow.cycles > fast.cycles

    def test_fpga_machine_slower_scanners(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        rda = run_timed(graph, binding, machine=RDA_MACHINE)
        fpga = run_timed(graph, binding, machine=FPGA_MACHINE)
        assert fpga.cycles != rda.cycles

    def test_utilization_bounds(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        result = run_timed(graph, binding, machine=GPU_MACHINE)
        assert 0.0 <= result.compute_utilization(GPU_MACHINE) <= 1.0
        assert 0.0 <= result.memory_utilization(GPU_MACHINE) <= 1.0

    def test_operational_intensity(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        result = run_timed(graph, binding)
        assert result.operational_intensity() > 0


class TestProgramMetrics:
    def test_accumulation(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        r = run_timed(graph, binding)
        metrics = ProgramMetrics("test")
        metrics.add(r, "k1")
        metrics.add(r, "k2")
        assert metrics.num_kernels == 2
        assert metrics.cycles == pytest.approx(2 * r.cycles)
        assert metrics.flops == 2 * r.flops

    def test_speedup_table(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        r = run_timed(graph, binding)
        slow = ProgramMetrics("slow")
        slow.add(r)
        slow.add(r)
        fast = ProgramMetrics("fast")
        fast.add(r)
        table = speedup_table({"slow": slow, "fast": fast}, baseline="slow")
        assert table["slow"] == 1.0
        assert table["fast"] == pytest.approx(2.0)

    def test_format_table(self):
        text = format_table([["a", "1"], ["bb", "22"]], ["name", "val"])
        assert "name" in text and "bb" in text


class TestScratchpad:
    def test_small_tensor_cached(self, spmm_graph):
        graph, binding, _, _ = spmm_graph
        cached = run_timed(graph, binding, machine=RDA_MACHINE)
        uncached = run_timed(
            graph, binding, machine=RDA_MACHINE.scaled(scratchpad_bytes=0)
        )
        assert uncached.dram_bytes >= cached.dram_bytes


class TestNegativeCycleGuards:
    """Utilization must not mask simulator bugs as 0% (negative cycles)."""

    def test_sim_result_rejects_negative_cycles(self):
        from repro.comal.engine import SimResult

        broken = SimResult(cycles=-5.0, flops=10, dram_bytes=10, tokens=10)
        with pytest.raises(ValueError, match="negative cycle count"):
            broken.compute_utilization(RDA_MACHINE)
        with pytest.raises(ValueError, match="negative cycle count"):
            broken.memory_utilization(RDA_MACHINE)

    def test_sim_result_zero_cycles_is_idle(self):
        from repro.comal.engine import SimResult

        idle = SimResult(cycles=0.0, flops=0, dram_bytes=0, tokens=0)
        assert idle.compute_utilization(RDA_MACHINE) == 0.0
        assert idle.memory_utilization(RDA_MACHINE) == 0.0

    def test_program_metrics_rejects_negative_cycles(self):
        broken = ProgramMetrics(cycles=-1.0, flops=10, dram_bytes=10)
        with pytest.raises(ValueError, match="negative cycle count"):
            broken.compute_utilization(RDA_MACHINE)
        with pytest.raises(ValueError, match="negative cycle count"):
            broken.memory_utilization(RDA_MACHINE)
