"""Token protocol and stream helper tests."""

import pytest
from hypothesis import given, strategies as st

from repro.sam.token import (
    CRD,
    DONE,
    STOP,
    VAL,
    StreamProtocolError,
    check_stream,
    count_kind,
    crd,
    done,
    nest_to_stream,
    payload_tokens,
    pretty,
    segments,
    stop,
    stream_to_nest,
    val,
)


class TestTokenConstructors:
    def test_crd(self):
        assert crd(3) == (CRD, 3)

    def test_val(self):
        assert val(2.5) == (VAL, 2.5)

    def test_stop_levels(self):
        assert stop(0) == (STOP, 0)
        assert stop(2) == (STOP, 2)

    def test_stop_negative_rejected(self):
        with pytest.raises(ValueError):
            stop(-1)

    def test_done_is_singleton(self):
        assert done() is done()


class TestPretty:
    def test_renders_mixed_stream(self):
        stream = [crd(0), crd(1), stop(0), done()]
        assert pretty(stream) == "0 1 S0 D"


class TestCheckStream:
    def test_accepts_valid(self):
        check_stream([val(1.0), stop(0), done()])

    def test_rejects_empty(self):
        with pytest.raises(StreamProtocolError):
            check_stream([])

    def test_rejects_missing_done(self):
        with pytest.raises(StreamProtocolError):
            check_stream([val(1.0), stop(0)])

    def test_rejects_tokens_after_done(self):
        with pytest.raises(StreamProtocolError):
            check_stream([done(), val(1.0), done()])


class TestNestConversion:
    def test_flat(self):
        assert pretty(nest_to_stream([1, 2])) == "1 2 S0 D"

    def test_two_level(self):
        assert pretty(nest_to_stream([[1, 2], [3]])) == "1 2 S0 3 S1 D"

    def test_three_level(self):
        stream = nest_to_stream([[[1], [2, 3]], [[4]]])
        assert pretty(stream) == "1 S0 2 3 S1 4 S2 D"

    def test_roundtrip_two_level(self):
        nested = [[1, 2], [3], [4, 5, 6]]
        assert stream_to_nest(nest_to_stream(nested), 2) == nested

    def test_roundtrip_with_empty_fiber(self):
        nested = [[1], [], [2]]
        assert stream_to_nest(nest_to_stream(nested), 2) == nested

    def test_payloads(self):
        stream = nest_to_stream([[1, 2], [3]])
        assert payload_tokens(stream) == [1, 2, 3]


class TestSegments:
    def test_splits_on_level0(self):
        stream = nest_to_stream([[1, 2], [3]])
        segs = list(segments(stream, 0))
        assert [[t[1] for t in s] for s in segs] == [[1, 2], [3]]

    def test_count_kind(self):
        stream = nest_to_stream([[1, 2], [3]])
        assert count_kind(stream, VAL) == 3
        assert count_kind(stream, STOP) == 2


# Hypothesis strategy for nested value lists with fixed depth.
def nested_lists(depth: int):
    leaves = st.integers(min_value=0, max_value=50)
    strategy = st.lists(leaves, min_size=0, max_size=4)
    for _ in range(depth - 1):
        strategy = st.lists(strategy, min_size=1, max_size=4)
    return strategy


@given(nested_lists(2))
def test_roundtrip_depth2_property(nested):
    stream = nest_to_stream(nested)
    check_stream(stream)
    assert stream_to_nest(stream, 2) == nested


@given(nested_lists(3))
def test_roundtrip_depth3_property(nested):
    stream = nest_to_stream(nested)
    check_stream(stream)
    assert stream_to_nest(stream, 3) == nested


@given(nested_lists(2))
def test_stop_levels_bounded_property(nested):
    stream = nest_to_stream(nested)
    max_stop = max((t[1] for t in stream if t[0] == STOP), default=0)
    assert max_stop <= 1
