"""Differential tests: split vs unsplit schedules are functionally bit-exact.

Index splitting iterates the same coordinate space in the same order, just
in ``T`` contiguous tiles, so it must not perturb the functional execution
at all: for every golden model at its canonical configuration, a schedule
tiling every cross-region intermediate's row index must reproduce the
unsplit schedule's streams token for token, per-node statistics exactly,
and output tensors bit for bit — under the flat hierarchy *and* under the
tightest on-chip preset (where the split actually changes placement).
What splitting is allowed to change is timing (tile-boundary fill/drain
bubbles) and which memory level serves each intermediate.

This mirrors ``tests/test_columnar_differential.py``, which pins the same
contract across the stream-representation axis.
"""

import numpy as np
import pytest

from repro.comal.functional import run_functional
from repro.comal.machines import RDA_MACHINE
from repro.core.schedule.split import intermediate_row_splits
from repro.driver import Session
from repro.sam.token import streams_equal
from repro.sweep import SweepPoint, build_bundle

#: The canonical golden configurations (tests/test_golden_traces.py).
POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

GRANULARITIES = ("unfused", "partial")
HIERARCHIES = ("flat", "fpga-small")
TILES = 4

STAT_FIELDS = ("tokens_in", "tokens_out", "ops", "dram_reads", "dram_writes")


def _compile_pair(model, granularity, hierarchy):
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    session = Session(machine=RDA_MACHINE, hierarchy=hierarchy)
    base = session.compile(bundle.program, bundle.schedule(granularity))
    split_schedule = bundle.schedule(granularity)
    split_schedule.splits = intermediate_row_splits(base.compiled, TILES)
    split = session.compile(bundle.program, split_schedule)
    return bundle, base, split


@pytest.mark.parametrize("hierarchy", HIERARCHIES)
@pytest.mark.parametrize("granularity", GRANULARITIES)
@pytest.mark.parametrize("model", sorted(POINTS))
def test_streams_and_stats_match(model, granularity, hierarchy):
    """Region-by-region: identical streams, stats, and materializations."""
    bundle, base, split = _compile_pair(model, granularity, hierarchy)
    assert len(base.regions) == len(split.regions)
    bind_a = dict(bundle.binding)
    bind_b = dict(bundle.binding)
    scratch = base.machine.scratchpad_bytes
    for region_a, region_b in zip(base.regions, split.regions):
        for orig, new_name, mode_order in region_a.transposes:
            for bind in (bind_a, bind_b):
                if new_name not in bind:
                    bind[new_name] = bind[orig].permuted_copy(
                        mode_order, name=new_name
                    )
        func_a = run_functional(region_a.graph, bind_a, scratch)
        func_b = run_functional(region_b.graph, bind_b, scratch)

        assert set(func_a.streams) == set(func_b.streams)
        for key in func_a.streams:
            got = func_b.streams[key]
            # Both executions run under the session default backend, so
            # their representations agree (columnar TokenStream under the
            # default; tuple lists under interp/codegen) — the contract
            # here is split-vs-unsplit equivalence, not representation.
            assert type(got) is type(func_a.streams[key]), key
            assert streams_equal(got, func_a.streams[key]), (
                f"{model}/{granularity}/{hierarchy} stream {key} diverged"
            )
        for node_id, want in func_a.stats.items():
            have = func_b.stats[node_id]
            for fieldname in STAT_FIELDS:
                assert getattr(have, fieldname) == getattr(want, fieldname), (
                    f"{model}/{granularity}/{hierarchy} {node_id}.{fieldname}"
                )
        for name, tensor in func_a.results.items():
            assert np.array_equal(
                tensor.to_dense(), func_b.results[name].to_dense()
            ), f"{model}/{granularity}/{hierarchy} result {name} diverged"

        bind_a.update(func_a.results)
        bind_b.update(func_b.results)


@pytest.mark.parametrize("hierarchy", HIERARCHIES)
@pytest.mark.parametrize("model", sorted(POINTS))
def test_end_to_end_results_bit_exact(model, hierarchy):
    """Full executions agree on every materialized tensor, bit for bit."""
    bundle, base, split = _compile_pair(model, "unfused", hierarchy)
    result_a = base(bundle.binding)
    result_b = split(bundle.binding)
    assert set(result_a.tensors) == set(result_b.tensors)
    for name, tensor in result_a.tensors.items():
        assert np.array_equal(
            tensor.to_dense(), result_b.tensors[name].to_dense()
        ), f"{model}/{hierarchy} tensor {name}"
    # Work is identical; only pacing and placement may differ.
    assert result_b.metrics.flops == result_a.metrics.flops
    assert result_b.metrics.tokens == result_a.metrics.tokens
    total_a = result_a.metrics.dram_bytes + result_a.metrics.sram_bytes
    total_b = result_b.metrics.dram_bytes + result_b.metrics.sram_bytes
    assert total_a == total_b
    assert bundle.max_abs_err(result_b) < 1e-6
