"""Shared pytest configuration for the tier-1 suite."""

import os

# The tier-1 suite runs with per-stream protocol validation on: every
# stream produced by every simulated node is check_stream()-verified.
# Production/benchmark runs leave this off (it is the hot-path validation
# the debug flag gates).
os.environ.setdefault("FUSEFLOW_DEBUG_STREAMS", "1")


def pytest_configure(config):
    # The autotune truncation warning fires once per (n, cap) per process;
    # tests that assert it reset the seen-set first (pytest.warns captures
    # regardless of filters).  Everywhere else it is expected noise from
    # bounded enumeration, so filter it to keep real warnings visible.
    config.addinivalue_line(
        "filterwarnings",
        "ignore:contiguous_partitions. kept:UserWarning",
    )


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden simulator traces under tests/golden/ from "
            "the current engine instead of comparing against them (use after "
            "an intentional timing-model change, then review the diff)"
        ),
    )
