"""Shared pytest configuration for the tier-1 suite."""


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help=(
            "rewrite the golden simulator traces under tests/golden/ from "
            "the current engine instead of comparing against them (use after "
            "an intentional timing-model change, then review the diff)"
        ),
    )
