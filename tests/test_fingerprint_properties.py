"""Property-based fingerprint stability tests.

The driver's compile cache and the sweep subsystem's point IDs both rest on
one contract: ``EinsumProgram.fingerprint()`` / ``Schedule.fingerprint()``
are pure functions of *content*.  Two objects built differently — different
construction order, different dict insertion order, different process — must
fingerprint identically iff they mean the same thing, and any semantic
mutation must change the hash.  These hypothesis properties pin that
contract down.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.einsum.ast import EinsumProgram
from repro.core.einsum.parser import parse_program
from repro.core.schedule.schedule import Schedule
from repro.driver import PassPipeline
from repro.ftree import csr, dense
from repro.sweep import SweepPoint

# ----------------------------------------------------------------------
# Schedule fingerprints
# ----------------------------------------------------------------------


def _contiguous_regions(n_statements: int, boundaries: frozenset) -> list:
    edges = [0, *sorted(b for b in boundaries if 0 < b < n_statements), n_statements]
    return [list(range(a, b)) for a, b in zip(edges, edges[1:])]


@st.composite
def schedule_contents(draw):
    n = draw(st.integers(min_value=1, max_value=6))
    boundaries = draw(st.frozensets(st.integers(min_value=1, max_value=5), max_size=5))
    regions = _contiguous_regions(n, boundaries)
    par = draw(
        st.dictionaries(
            st.sampled_from(["i", "j", "k", "x1", "x2"]),
            st.sampled_from([2, 4, 8, 16]),
            max_size=3,
        )
    )
    orders = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=len(regions) - 1),
            st.permutations(["i", "j", "k"]).map(list),
            max_size=len(regions),
        )
    )
    stmt_orders = draw(
        st.dictionaries(
            st.integers(min_value=0, max_value=n - 1),
            st.permutations(["i", "j"]).map(tuple),
            max_size=n,
        )
    )
    fold_masks = draw(st.booleans())
    global_rewrite = draw(st.booleans())
    splits = draw(
        st.dictionaries(
            st.sampled_from(["i", "j", "k", "x1", "x2"]),
            st.sampled_from([2, 4, 8, 16]),
            max_size=3,
        )
    )
    return {
        "name": draw(st.sampled_from(["s0", "partial", "tuned"])),
        "regions": regions,
        "par": par,
        "splits": splits,
        "orders": orders,
        "stmt_orders": stmt_orders,
        "fold_masks": fold_masks,
        "global_rewrite": global_rewrite,
    }


def _schedule_from(contents, shuffle_seed=None):
    """Build a Schedule, optionally shuffling every dict's insertion order."""
    par = contents["par"]
    splits = contents["splits"]
    orders = contents["orders"]
    stmt_orders = contents["stmt_orders"]
    if shuffle_seed is not None:
        rng = random.Random(shuffle_seed)

        def reordered(d):
            keys = list(d)
            rng.shuffle(keys)
            return {k: d[k] for k in keys}

        par, splits, orders, stmt_orders = map(
            reordered, (par, splits, orders, stmt_orders)
        )
    return Schedule(
        name=contents["name"],
        regions=[list(r) for r in contents["regions"]],
        orders=orders,
        stmt_orders=stmt_orders,
        par=par,
        splits=splits,
        fold_masks=contents["fold_masks"],
        global_rewrite=contents["global_rewrite"],
    )


class TestScheduleFingerprint:
    @given(contents=schedule_contents(), seed_a=st.integers(), seed_b=st.integers())
    @settings(max_examples=60, deadline=None)
    def test_insertion_order_is_irrelevant(self, contents, seed_a, seed_b):
        """Equal schedules built in different orders fingerprint equally."""
        a = _schedule_from(contents, shuffle_seed=seed_a)
        b = _schedule_from(contents, shuffle_seed=seed_b)
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

    @given(contents=schedule_contents(), data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_semantic_mutation_changes_fingerprint(self, contents, data):
        base = _schedule_from(contents)
        mutated = _schedule_from(contents)
        mutation = data.draw(
            st.sampled_from(
                ["fold_masks", "global_rewrite", "par", "splits", "regions", "name"]
            )
        )
        if mutation == "fold_masks":
            mutated.fold_masks = not mutated.fold_masks
        elif mutation == "global_rewrite":
            mutated.global_rewrite = not mutated.global_rewrite
        elif mutation == "par":
            mutated.par = {**mutated.par, "i": mutated.par.get("i", 1) * 2 + 1}
        elif mutation == "splits":
            mutated.splits = {
                **mutated.splits,
                "i": mutated.splits.get("i", 1) * 2 + 1,
            }
        elif mutation == "regions":
            if len(mutated.regions) > 1:
                # Merge the first two regions: a different fusion decision.
                mutated.regions = [
                    mutated.regions[0] + mutated.regions[1],
                    *mutated.regions[2:],
                ]
            else:
                mutated.regions = [[*mutated.regions[0], len(mutated.regions[0])]]
        elif mutation == "name":
            mutated.name = mutated.name + "'"
        assert base.fingerprint() != mutated.fingerprint(), mutation

    def test_in_place_mutation_misses_cache_key(self):
        """The documented Session-cache property: mutate then re-fingerprint."""
        schedule = Schedule(name="s", regions=[[0], [1]])
        before = schedule.fingerprint()
        schedule.par["k"] = 4
        assert schedule.fingerprint() != before


# ----------------------------------------------------------------------
# Program fingerprints
# ----------------------------------------------------------------------

PROGRAM_TEXT = """tensor A(8, 8): csr
tensor X(8, 4): dense
T(i, j) = A(i, k) * X(k, j)
Y(i, j) = relu(T(i, j))
"""


def _build_program(decl_order, scale=1.0, shape_x=(8, 4), x_fmt=None):
    prog = EinsumProgram("prop")
    decls = {
        "A": ((8, 8), csr()),
        "X": (shape_x, x_fmt or dense(2)),
        "W": ((shape_x[1], 4), dense(2)),
    }
    for name in decl_order:
        shape, fmt = decls[name]
        prog.declare(name, shape, fmt)
    prog.contract("T", ("i", "j"), "mul", [("A", ("i", "k")), ("X", ("k", "j"))])
    prog.unary("Y", ("i", "j"), "relu", ("T", ("i", "j")), scale=scale)
    return prog


class TestProgramFingerprint:
    @given(order=st.permutations(["A", "X", "W"]))
    @settings(max_examples=20, deadline=None)
    def test_declaration_order_is_irrelevant(self, order):
        reference = _build_program(["A", "X", "W"])
        shuffled = _build_program(list(order))
        assert shuffled.fingerprint() == reference.fingerprint()

    def test_reparse_is_stable(self):
        assert (
            parse_program(PROGRAM_TEXT).fingerprint()
            == parse_program(PROGRAM_TEXT).fingerprint()
        )

    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_semantic_mutation_changes_fingerprint(self, data):
        base = _build_program(["A", "X", "W"])
        mutation = data.draw(
            st.sampled_from(["shape", "format", "scale", "stmt_order"])
        )
        if mutation == "shape":
            other = _build_program(["A", "X", "W"], shape_x=(8, 6))
        elif mutation == "format":
            other = _build_program(["A", "X", "W"], x_fmt=csr())
        elif mutation == "scale":
            other = _build_program(["A", "X", "W"], scale=2.0)
        else:
            other = _build_program(["A", "X", "W"])
            other.statements[0].order = ("k", "i", "j")
        assert base.fingerprint() != other.fingerprint(), mutation

    def test_statement_permutation_changes_fingerprint(self):
        """Statement position is semantic (dataflow order), so it hashes."""

        def two_relus(first, second):
            prog = EinsumProgram("perm")
            prog.declare("A", (8, 8), csr())
            prog.declare("B", (8, 8), csr())
            for src, dst in (first, second):
                prog.unary(dst, ("i", "j"), "relu", (src, ("i", "j")))
            return prog

        forward = two_relus(("A", "U"), ("B", "V"))
        swapped = two_relus(("B", "V"), ("A", "U"))
        assert forward.fingerprint() != swapped.fingerprint()


# ----------------------------------------------------------------------
# Downstream identities built on the fingerprints
# ----------------------------------------------------------------------


class TestDerivedIdentities:
    def test_pipeline_fingerprint_tracks_order(self):
        default = PassPipeline.default()
        assert (
            default.fingerprint() == PassPipeline.default().fingerprint()
        )
        assert (
            default.without("fold-masks").fingerprint() != default.fingerprint()
        )

    @given(
        model=st.sampled_from(["gcn", "sae"]),
        machine=st.sampled_from(["rda", "fpga"]),
        nodes=st.sampled_from([16, 24, 32]),
    )
    @settings(max_examples=20, deadline=None)
    def test_sweep_point_ids_are_content_derived(self, model, machine, nodes):
        a = SweepPoint.make(model, machine=machine, model_args={"nodes": nodes, "seed": 0})
        b = SweepPoint.make(model, machine=machine, model_args={"seed": 0, "nodes": nodes})
        assert a.point_id == b.point_id
        c = SweepPoint.make(model, machine=machine, model_args={"nodes": nodes + 1, "seed": 0})
        assert a.point_id != c.point_id
