"""Columnar TokenStream unit and property tests.

Covers the structure-of-arrays stream representation itself: lossless
round-tripping against the legacy tuple-list form (hypothesis-generated
streams included), the sequence protocol, vectorized validation, and the
debug/legacy/caching execution switches.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comal.functional import run_functional
from repro.sam.graph import SAMGraph
from repro.sam.primitives.base import ExecutionContext, NodeStats
from repro.sam.primitives.joiner import Intersect, Union
from repro.sam.primitives.scanner import CrdSource, Root
from repro.sam.token import (
    CRD,
    DONE,
    EMPTY,
    REF,
    STOP,
    VAL,
    StreamProtocolError,
    TokenStream,
    as_columnar,
    as_token_list,
    check_stream,
    crd,
    done,
    empty,
    pretty,
    ref,
    stop,
    streams_equal,
    val,
)

# ----------------------------------------------------------------------
# Hypothesis strategies: arbitrary well-formed-ish token streams
# ----------------------------------------------------------------------

_payload_token = st.one_of(
    st.integers(0, 1 << 40).map(crd),
    st.integers(0, 1 << 40).map(ref),
    st.floats(allow_nan=False, allow_infinity=False).map(val),
    st.just(empty()),
)
_any_token = st.one_of(_payload_token, st.integers(0, 6).map(stop))

#: A stream body (done appended separately so check_stream can pass).
_stream = st.lists(_any_token, max_size=40).map(lambda body: body + [done()])


class TestRoundtrip:
    @given(_stream)
    @settings(max_examples=200, deadline=None)
    def test_tuple_list_roundtrip_exact(self, stream):
        ts = TokenStream.from_tokens(stream)
        back = ts.to_tokens()
        assert len(back) == len(stream)
        assert back == stream
        assert streams_equal(ts, stream)
        # Payload types survive: coordinates stay ints, values stay floats.
        for orig, rt in zip(stream, back):
            assert orig[0] == rt[0]
            if orig[0] in (CRD, REF, STOP):
                assert isinstance(rt[1], int)
                assert rt[1] == orig[1]

    @given(_stream)
    @settings(max_examples=100, deadline=None)
    def test_double_roundtrip_idempotent(self, stream):
        once = TokenStream.from_tokens(stream)
        twice = TokenStream.from_tokens(once.to_tokens())
        assert streams_equal(once, twice)

    @given(_stream)
    @settings(max_examples=100, deadline=None)
    def test_check_stream_agrees_across_representations(self, stream):
        ts = TokenStream.from_tokens(stream)
        try:
            check_stream(stream)
            legacy_ok = True
        except StreamProtocolError:
            legacy_ok = False
        try:
            check_stream(ts)
            columnar_ok = True
        except StreamProtocolError:
            columnar_ok = False
        assert legacy_ok == columnar_ok

    def test_block_payloads_roundtrip(self):
        block = np.arange(6.0).reshape(2, 3)
        stream = [val(block), val(1.5), stop(0), done()]
        ts = TokenStream.from_tokens(stream)
        assert ts.has_objs()
        back = ts.to_tokens()
        assert np.array_equal(back[0][1], block)
        assert back[1] == (VAL, 1.5)
        assert streams_equal(ts, stream)


class TestSequenceProtocol:
    def setup_method(self):
        self.tokens = [crd(3), ref(7), val(2.5), empty(), stop(1), done()]
        self.ts = TokenStream.from_tokens(self.tokens)

    def test_len_iter_getitem(self):
        assert len(self.ts) == 6
        assert list(self.ts) == self.tokens
        assert self.ts[0] == crd(3)
        assert self.ts[-1] == done()
        assert self.ts[2] == (VAL, 2.5)

    def test_slice_returns_stream(self):
        tail = self.ts[-3:]
        assert isinstance(tail, TokenStream)
        assert list(tail) == self.tokens[-3:]

    def test_equality_both_directions(self):
        assert self.ts == self.tokens
        assert self.ts == TokenStream.from_tokens(self.tokens)
        assert self.ts != self.tokens[:-1]

    def test_pretty_matches_legacy(self):
        assert pretty(self.ts) == pretty(self.tokens)

    def test_gather(self):
        picked = self.ts.gather(np.array([0, 2]))
        assert list(picked) == [crd(3), (VAL, 2.5)]

    def test_concat(self):
        joined = TokenStream.concat([self.ts[:2], self.ts[2:]])
        assert streams_equal(joined, self.ts)

    def test_as_helpers(self):
        assert as_columnar(self.tokens).to_tokens() == self.tokens
        assert as_token_list(self.ts) == self.tokens
        assert as_columnar(self.ts) is self.ts


class TestColumnarCheckStream:
    def test_missing_done(self):
        with pytest.raises(StreamProtocolError, match="does not end with done"):
            check_stream(TokenStream.from_tokens([crd(0), stop(0)]))

    def test_empty(self):
        with pytest.raises(StreamProtocolError, match="empty"):
            check_stream(TokenStream.empty())

    def test_done_not_last(self):
        with pytest.raises(StreamProtocolError, match="position 0 is not last"):
            check_stream(TokenStream.from_tokens([done(), crd(1), done()]))

    def test_empty_tokens_rejected_when_disallowed(self):
        ts = TokenStream.from_tokens([empty(), done()])
        check_stream(ts)
        with pytest.raises(StreamProtocolError, match="unexpected empty token"):
            check_stream(ts, allow_empty_tokens=False)


def _run_source_graph(stream, **kwargs):
    graph = SAMGraph("t")
    graph.add(CrdSource(stream, "s"), node_id="src")
    return run_functional(graph, {}, **kwargs)


class TestExecutorModes:
    def test_columnar_mode_produces_token_streams(self):
        res = _run_source_graph([crd(0), stop(0), done()], columnar=True)
        assert isinstance(res.stream("src"), TokenStream)

    def test_legacy_mode_produces_lists(self):
        res = _run_source_graph([crd(0), stop(0), done()], columnar=False)
        assert isinstance(res.stream("src"), list)

    def test_debug_streams_flags_protocol_violations(self):
        bad = [crd(0)]  # no done token
        with pytest.raises(StreamProtocolError, match="node src"):
            _run_source_graph(bad, columnar=True, debug_streams=True)
        # With checks off the malformed stream flows through untouched.
        res = _run_source_graph(bad, columnar=True, debug_streams=False)
        assert len(res.stream("src")) == 1

    def test_env_default_columnar(self, monkeypatch):
        from repro.comal.functional import default_columnar

        monkeypatch.delenv("FUSEFLOW_LEGACY_STREAMS", raising=False)
        assert default_columnar() is True
        monkeypatch.setenv("FUSEFLOW_LEGACY_STREAMS", "1")
        assert default_columnar() is False


class TestSimulationMemo:
    def _graph_and_binding(self):
        from repro.ftree.format import csr
        from repro.ftree.tensor import SparseTensor
        from repro.sam.primitives.scanner import LevelScanner

        tensor = SparseTensor.from_dense(
            np.array([[1.0, 0.0], [0.0, 2.0]]), csr(), "A"
        )
        graph = SAMGraph("memo")
        root = graph.add(Root(), node_id="root")
        graph.add(
            LevelScanner("A", 0),
            {"ref": graph.port(root, "ref")},
            node_id="scan",
        )
        return graph, {"A": tensor}

    def test_identical_binding_hits_memo(self):
        graph, binding = self._graph_and_binding()
        first = run_functional(graph, binding, cache=True)
        second = run_functional(graph, binding, cache=True)
        assert second is first

    def test_cache_off_recomputes(self):
        graph, binding = self._graph_and_binding()
        first = run_functional(graph, binding, cache=False)
        second = run_functional(graph, binding, cache=False)
        assert second is not first

    def test_modes_do_not_share_entries(self):
        graph, binding = self._graph_and_binding()
        col = run_functional(graph, binding, cache=True, columnar=True)
        leg = run_functional(graph, binding, cache=True, columnar=False)
        assert col is not leg
        assert isinstance(leg.stream("scan", "crd"), list)

    def test_different_tensors_miss(self):
        graph, binding = self._graph_and_binding()
        _, other = self._graph_and_binding()
        first = run_functional(graph, binding, cache=True)
        second = run_functional(graph, other, cache=True)
        assert second is not first

    def test_structural_change_clears_memo(self):
        graph, binding = self._graph_and_binding()
        run_functional(graph, binding, cache=True)
        assert graph.func_cache
        graph.add(Root(), node_id="root2")
        assert graph.func_cache is None


def _both_ways(prim, ins):
    """Run a primitive through both kernels; assert full agreement."""
    ctx_l, ctx_c = ExecutionContext({}), ExecutionContext({})
    stats_l, stats_c = NodeStats(), NodeStats()
    legacy = prim.process(dict(ins), ctx_l, stats_l)
    columnar = prim.process_columnar(
        {k: as_columnar(v) for k, v in ins.items()}, ctx_c, stats_c
    )
    assert set(legacy) == set(columnar)
    for port in legacy:
        assert streams_equal(columnar[port], legacy[port]), port
    for f in ("tokens_in", "tokens_out", "ops", "dram_reads", "dram_writes"):
        assert getattr(stats_c, f) == getattr(stats_l, f), f
    return legacy, columnar


class TestKernelFallbacks:
    """Blocked/mixed payload shapes that exercise the bridge and loop paths."""

    def test_reduce_blocked_bridges_to_legacy(self):
        from repro.sam.primitives.reduce import Reduce

        b = np.ones((2, 2))
        stream = [val(b), val(2 * b), stop(0), val(3 * b), stop(1), done()]
        legacy, columnar = _both_ways(Reduce(), {"val": stream})
        assert np.array_equal(columnar["val"][0][1], 3 * b)

    def test_vreduce_blocked_with_empty_bridges(self):
        from repro.sam.primitives.reduce import VectorReducer

        b = np.ones((2, 2))
        crd0 = [crd(0), crd(0), stop(1), done()]
        vals = [val(b), empty(), stop(1), done()]
        _both_ways(VectorReducer(1), {"crd0": crd0, "val": vals})

    def test_vreduce_blocked_uniform_accumulates(self):
        from repro.sam.primitives.reduce import VectorReducer

        b = np.arange(4.0).reshape(2, 2)
        crd0 = [crd(1), crd(0), crd(1), stop(1), done()]
        vals = [val(b), val(2 * b), val(3 * b), stop(1), done()]
        legacy, columnar = _both_ways(VectorReducer(1), {"crd0": crd0, "val": vals})
        # keys sorted: 0 -> 2b, 1 -> b + 3b
        assert np.array_equal(columnar["val"][0][1], 2 * b)
        assert np.array_equal(columnar["val"][1][1], 4 * b)

    def test_binary_alu_mixed_block_scalar_loop_path(self):
        from repro.sam.primitives.compute import BinaryALU

        b = np.ones((2, 2))
        a_in = [val(b), val(2.0), stop(0), done()]
        b_in = [val(3.0), val(b), stop(0), done()]
        _both_ways(BinaryALU("mul"), {"a": a_in, "b": b_in})

    def test_binary_alu_blocked_batch_matmul(self):
        from repro.sam.primitives.compute import BinaryALU

        rng = np.random.default_rng(0)
        blocks_a = [rng.random((3, 3)) for _ in range(4)]
        blocks_b = [rng.random((3, 3)) for _ in range(4)]
        a_in = [val(x) for x in blocks_a] + [stop(0), done()]
        b_in = [val(x) for x in blocks_b] + [stop(0), done()]
        for op in ("bmm", "bmt", "add"):
            _both_ways(BinaryALU(op), {"a": a_in, "b": b_in})

    def test_unary_alu_blocked_and_scaled(self):
        from repro.sam.primitives.compute import UnaryALU

        b = np.linspace(-1, 1, 4).reshape(2, 2)
        stream = [val(b), empty(), val(2 * b), stop(0), done()]
        _both_ways(UnaryALU("relu"), {"a": stream})
        _both_ways(UnaryALU("gelu", scale=0.5, offset=1.0), {"a": stream})

    def test_scalar_repeat_block_payload(self):
        from repro.sam.primitives.repeat import ScalarRepeat

        b = np.ones((2, 2))
        base = [val(b), stop(0), done()]
        rep = [crd(0), crd(1), stop(0), crd(2), stop(1), done()]
        legacy, columnar = _both_ways(ScalarRepeat(), {"base": base, "rep": rep})
        assert np.array_equal(columnar["out"][0][1], b)

    def test_crddrop_keeps_empty_val_tokens(self):
        # Union padding: an EMPTY val token is not a zero *value* — the
        # legacy kernel keeps its (crd, EMPTY) pair, and so must we.
        from repro.sam.primitives.reduce import CrdDrop

        crds = [crd(0), crd(1), crd(2), stop(0), done()]
        vals = [val(5.0), empty(), val(0.0), stop(0), done()]
        legacy, columnar = _both_ways(CrdDrop(), {"crd": crds, "val": vals})
        assert legacy["crd"] == [crd(0), crd(1), stop(0), done()]
        assert legacy["val"] == [val(5.0), empty(), stop(0), done()]

    def test_crddrop_blocked_zero_blocks(self):
        from repro.sam.primitives.reduce import CrdDrop

        zero = np.zeros((2, 2))
        b = np.ones((2, 2))
        crds = [crd(0), crd(1), crd(2), stop(0), done()]
        vals = [val(b), val(zero), val(2 * b), stop(0), done()]
        legacy, columnar = _both_ways(CrdDrop(), {"crd": crds, "val": vals})
        assert len(columnar["crd"]) == 4  # zero block dropped

    def test_fiberop_blocked_softmax(self):
        from repro.sam.primitives.fiberops import FiberSoftmax

        rng = np.random.default_rng(1)
        blocks = [rng.random((2, 2)) for _ in range(3)]
        stream = [val(x) for x in blocks] + [stop(0)] + [val(blocks[0]), stop(1), done()]
        _both_ways(FiberSoftmax(), {"val": stream})

    def test_repeat_empty_base_fibers(self):
        from repro.sam.primitives.repeat import Repeat

        base = [ref(4), ref(5), stop(0), done()]
        rep = [crd(0), stop(0), crd(1), crd(2), stop(1), done()]
        legacy, columnar = _both_ways(Repeat(), {"base": base, "rep": rep})
        assert legacy["out"][0] == (REF, 4)


def _join(cls, crd_a, ref_a, crd_b, ref_b, columnar, node="nX"):
    ctx = ExecutionContext({})
    ctx.current_node = node
    stats = NodeStats()
    ins = {"crd_a": crd_a, "ref_a": ref_a, "crd_b": crd_b, "ref_b": ref_b}
    prim = cls()
    if columnar:
        ins = {k: as_columnar(v) for k, v in ins.items()}
        return prim.process_columnar(ins, ctx, stats)
    return prim.process(ins, ctx, stats)


class TestJoinerDiagnostics:
    """Misaligned/mismatched joiner inputs must name the node and position."""

    @pytest.mark.parametrize("columnar", [False, True])
    @pytest.mark.parametrize("cls", [Intersect, Union])
    def test_misaligned_reports_node_and_lengths(self, cls, columnar):
        with pytest.raises(
            StreamProtocolError,
            match=rf"{cls.kind}\(a\) at node nX: .*\(2 vs 1\)",
        ):
            _join(
                cls,
                [crd(0), done()],
                [done()],
                [crd(0), done()],
                [crd(0), done()],
                columnar,
            )

    @pytest.mark.parametrize("columnar", [False, True])
    @pytest.mark.parametrize("cls", [Intersect, Union])
    def test_control_mismatch_reports_position(self, cls, columnar):
        # Side a closes with S1 where side b closes with S0.
        crd_a = [crd(1), stop(1), done()]
        crd_b = [crd(1), stop(0), done()]
        with pytest.raises(
            StreamProtocolError,
            match=rf"{cls.kind} control mismatch at node nX: "
            r"S1 \(crd_a position 1\) vs S0 \(crd_b position 1\)",
        ):
            _join(cls, crd_a, crd_a, crd_b, crd_b, columnar)

    def test_columnar_catches_missing_control(self):
        # Side b is truncated: its control skeleton is a strict prefix.
        crd_a = [crd(1), stop(0), done()]
        crd_b = [crd(1), stop(0)]
        with pytest.raises(
            StreamProtocolError,
            match=r"D at crd_a position 2 has no matching control token on crd_b",
        ):
            _join(Intersect, crd_a, crd_a, crd_b, crd_b, columnar=True)
