"""Fibertree tensor substrate tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.ftree import (
    CompressedLevel,
    DenseLevel,
    Format,
    LevelKind,
    SparseTensor,
    blocked_csr,
    csc,
    csr,
    dcsr,
    dense,
    from_spec,
    sparse_vector,
)


class TestFormat:
    def test_csr_name(self):
        assert csr().name() == "csr"

    def test_csc_mode_order(self):
        assert csc().mode_order == (1, 0)
        assert csc().name() == "csc"

    def test_dcsr(self):
        assert dcsr().levels == (LevelKind.COMPRESSED, LevelKind.COMPRESSED)

    def test_from_spec(self):
        fmt = from_spec("dc")
        assert fmt.levels == (LevelKind.DENSE, LevelKind.COMPRESSED)

    def test_from_spec_rejects_unknown(self):
        with pytest.raises(ValueError):
            from_spec("dx")

    def test_mode_order_must_be_permutation(self):
        with pytest.raises(ValueError):
            Format((LevelKind.DENSE, LevelKind.DENSE), mode_order=(0, 0))

    def test_blocked_format(self):
        fmt = blocked_csr(4, 4)
        assert fmt.is_blocked
        assert "b4x4" in fmt.name()

    def test_level_for_mode(self):
        assert csc().level_for_mode(0) == 1


class TestLevels:
    def test_dense_fiber(self):
        level = DenseLevel(3)
        coords, children = level.fiber(2)
        assert list(coords) == [0, 1, 2]
        assert list(children) == [6, 7, 8]

    def test_compressed_append(self):
        level = CompressedLevel(10)
        level.append_fiber([1, 4])
        level.append_fiber([])
        level.append_fiber([9])
        assert level.pos == [0, 2, 2, 3]
        assert level.crd == [1, 4, 9]
        coords, children = level.fiber(1)
        assert list(coords) == []

    def test_dense_append_rejected(self):
        with pytest.raises(TypeError):
            DenseLevel(3).append_fiber([0])


class TestSparseTensor:
    def setup_method(self):
        self.a = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0], [3.0, 4.0, 0.0]])

    @pytest.mark.parametrize("fmt_fn", [dense, None])
    def test_dense_roundtrip(self, fmt_fn):
        fmt = fmt_fn(2) if fmt_fn else None
        t = SparseTensor.from_dense(self.a, fmt)
        np.testing.assert_allclose(t.to_dense(), self.a)

    @pytest.mark.parametrize("fmt", [csr(), csc(), dcsr()])
    def test_sparse_roundtrip(self, fmt):
        t = SparseTensor.from_dense(self.a, fmt)
        np.testing.assert_allclose(t.to_dense(), self.a)

    def test_csr_nnz(self):
        t = SparseTensor.from_dense(self.a, csr())
        assert t.nnz() == 4

    def test_dcsr_skips_empty_rows(self):
        t = SparseTensor.from_dense(self.a, dcsr())
        assert t.levels[0].nnz() == 2  # rows 0 and 2 only

    def test_csc_stores_column_major(self):
        t = SparseTensor.from_dense(self.a, csc())
        # Column 0 holds rows {0, 2}.
        coords, _ = t.levels[1].fiber(0)
        assert list(coords) == [0, 2]

    def test_density(self):
        t = SparseTensor.from_dense(self.a, csr())
        assert t.density() == pytest.approx(4 / 9)

    def test_bytes_accounting(self):
        t = SparseTensor.from_dense(self.a, csr())
        assert t.bytes_values() == 4 * 8
        assert t.bytes_structure() > 0
        assert t.bytes_total() == t.bytes_values() + t.bytes_structure()

    def test_permuted_copy(self):
        t = SparseTensor.from_dense(self.a, csr())
        p = t.permuted_copy((1, 0))
        np.testing.assert_allclose(p.to_dense(), self.a)
        assert p.fmt.mode_order == (1, 0)

    def test_vector(self):
        v = np.array([0.0, 1.0, 0.0, 2.0])
        t = SparseTensor.from_dense(v, sparse_vector())
        assert t.nnz() == 2
        np.testing.assert_allclose(t.to_dense(), v)

    def test_from_scipy(self):
        import scipy.sparse as sp

        mat = sp.csr_matrix(self.a)
        t = SparseTensor.from_scipy(mat, csr())
        np.testing.assert_allclose(t.to_dense(), self.a)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ValueError):
            SparseTensor.from_dense(self.a, sparse_vector())


class TestFromCoords:
    def test_simple_csr(self):
        coords = {(0, 1): 5.0, (2, 0): 7.0}
        t = SparseTensor.from_coords((3, 2), csr(), coords)
        expected = np.zeros((3, 2))
        expected[0, 1] = 5.0
        expected[2, 0] = 7.0
        np.testing.assert_allclose(t.to_dense(), expected)

    def test_permuted_mode_order(self):
        # Storage paths in column-major order (mode_order (1, 0)).
        coords = {(1, 0): 5.0}  # column 1, row 0 -> logical [0, 1]
        t = SparseTensor.from_coords((2, 2), csc(), coords)
        expected = np.zeros((2, 2))
        expected[0, 1] = 5.0
        np.testing.assert_allclose(t.to_dense(), expected)

    def test_duplicate_rejected(self):
        with pytest.raises(ValueError):
            level = CompressedLevel(2)
            SparseTensor.from_coords(
                (2,), Format((LevelKind.DENSE,)), {(0,): 1.0, (0,): 2.0}
            ) and None
            # Same-key dict cannot express duplicates; construct directly:
            raise ValueError("covered by dict semantics")


class TestBlocked:
    def test_blocked_roundtrip(self):
        rng = np.random.default_rng(0)
        a = np.kron((rng.random((3, 3)) < 0.5).astype(float), np.ones((4, 4)))
        a = a * rng.random(a.shape)
        t = SparseTensor.from_dense(a, blocked_csr(4, 4))
        np.testing.assert_allclose(t.to_dense(), a)

    def test_block_values_shape(self):
        a = np.kron(np.eye(2), np.ones((4, 4)))
        t = SparseTensor.from_dense(a, blocked_csr(4, 4))
        assert t.values.shape == (2, 4, 4)

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            SparseTensor.from_dense(np.ones((5, 4)), blocked_csr(4, 4))


@settings(max_examples=40, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 6), st.integers(1, 6)),
        elements=st.sampled_from([0.0, 0.0, 1.0, 2.5, -3.0]),
    )
)
def test_roundtrip_property_all_formats(a):
    for fmt in (csr(), csc(), dcsr(), dense(2)):
        t = SparseTensor.from_dense(a, fmt)
        np.testing.assert_allclose(t.to_dense(), a)


@settings(max_examples=30, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
        elements=st.sampled_from([0.0, 1.0, 4.0]),
    )
)
def test_nnz_matches_numpy(a):
    t = SparseTensor.from_dense(a, dcsr())
    assert t.nnz() == np.count_nonzero(a)
