"""Einsum IR and parser tests."""

import pytest

from repro.core.einsum.ast import (
    Access,
    EinsumError,
    EinsumProgram,
    Statement,
)
from repro.core.einsum.parser import parse_program
from repro.ftree import csr, dense


class TestStatement:
    def test_reduction_indices(self):
        stmt = Statement(
            lhs=Access("T", ("i", "j")),
            kind="contract",
            op="mul",
            operands=(Access("A", ("i", "k")), Access("B", ("k", "j"))),
        )
        assert stmt.reduction_indices() == ("k",)
        assert stmt.all_indices() == ("i", "j", "k")

    def test_additive_reduction_rejected(self):
        with pytest.raises(EinsumError):
            Statement(
                lhs=Access("T", ("i",)),
                kind="contract",
                op="add",
                operands=(Access("A", ("i", "k")), Access("B", ("i", "k"))),
            )

    def test_unary_index_change_rejected(self):
        with pytest.raises(EinsumError):
            Statement(
                lhs=Access("T", ("i",)),
                kind="unary",
                op="relu",
                operands=(Access("A", ("i", "j")),),
            )

    def test_bad_op_rejected(self):
        with pytest.raises(EinsumError):
            Statement(
                lhs=Access("T", ("i",)),
                kind="contract",
                op="conv",
                operands=(Access("A", ("i",)),),
            )

    def test_rename(self):
        stmt = Statement(
            lhs=Access("T", ("i",)),
            kind="unary",
            op="relu",
            operands=(Access("A", ("i",)),),
        )
        renamed = stmt.rename_indices({"i": "x"})
        assert renamed.lhs.indices == ("x",)

    def test_str(self):
        stmt = Statement(
            lhs=Access("T", ("i", "j")),
            kind="contract",
            op="mul",
            operands=(Access("A", ("i", "k")), Access("B", ("k", "j"))),
        )
        assert "sum_{k}" in str(stmt)


class TestProgram:
    def test_index_sizes(self):
        prog = EinsumProgram()
        prog.declare("A", (4, 5), csr())
        prog.declare("B", (5, 3))
        prog.contract("T", ("i", "j"), "mul", [("A", ("i", "k")), ("B", ("k", "j"))])
        sizes = prog.index_sizes()
        assert sizes == {"i": 4, "k": 5, "j": 3}

    def test_conflicting_extent_rejected(self):
        prog = EinsumProgram()
        prog.declare("A", (4, 5))
        prog.declare("B", (6, 3))
        prog.contract("T", ("i", "j"), "mul", [("A", ("i", "k")), ("B", ("k", "j"))])
        with pytest.raises(EinsumError):
            prog.index_sizes()

    def test_use_before_def_rejected(self):
        prog = EinsumProgram()
        prog.declare("A", (4,))
        prog.unary("Y", ("i",), "relu", ("Missing", ("i",)))
        with pytest.raises(EinsumError):
            prog.validate()

    def test_outputs_and_intermediates(self):
        prog = EinsumProgram()
        prog.declare("A", (4, 4), csr())
        prog.declare("X", (4, 4))
        prog.contract("T0", ("i", "j"), "mul", [("A", ("i", "k")), ("X", ("k", "j"))])
        prog.unary("Y", ("i", "j"), "relu", ("T0", ("i", "j")))
        assert prog.outputs() == ["Y"]
        assert prog.intermediates() == {"T0"}

    def test_double_production_rejected(self):
        prog = EinsumProgram()
        prog.declare("A", (4,))
        prog.unary("Y", ("i",), "relu", ("A", ("i",)))
        prog.unary("Y", ("i",), "relu", ("A", ("i",)))
        with pytest.raises(EinsumError):
            prog.producers()


class TestParser:
    def test_declarations(self):
        prog = parse_program("tensor A(4, 5): csr")
        assert prog.decls["A"].shape == (4, 5)
        assert prog.decls["A"].fmt.name() == "csr"

    def test_contraction(self):
        prog = parse_program(
            "tensor A(4, 5): csr\ntensor X(5, 3): dense\nT(i, j) = A(i, k) * X(k, j)"
        )
        stmt = prog.statements[0]
        assert stmt.op == "mul"
        assert stmt.reduction_indices() == ("k",)

    def test_nary_product(self):
        prog = parse_program(
            "tensor A(2, 2): dense\ntensor B(2, 2): dense\ntensor C(2, 2): dense\n"
            "D(i, l) = A(i, k) * B(k, j) * C(j, l)"
        )
        assert len(prog.statements[0].operands) == 3

    def test_addition(self):
        prog = parse_program(
            "tensor A(2, 2): dense\ntensor b(2): dense\nT(i, j) = A(i, j) + b(j)"
        )
        assert prog.statements[0].op == "add"

    def test_unary(self):
        prog = parse_program("tensor A(2, 2): dense\nY(i, j) = relu(A(i, j))")
        assert prog.statements[0].kind == "unary"

    def test_fiber(self):
        prog = parse_program("tensor A(2, 2): dense\nY(i, j) = softmax[j](A(i, j))")
        assert prog.statements[0].kind == "fiber"

    def test_fiber_requires_innermost(self):
        with pytest.raises(EinsumError):
            parse_program("tensor A(2, 2): dense\nY(i, j) = softmax[i](A(i, j))")

    def test_order_annotation(self):
        prog = parse_program(
            "tensor A(2, 2): dense\ntensor B(2, 2): dense\n"
            "T(i, j) = A(i, k) * B(k, j) order(i, k, j)"
        )
        assert prog.statements[0].order == ("i", "k", "j")

    def test_comments_ignored(self):
        prog = parse_program("# a comment\ntensor A(2, 2): dense  # trailing")
        assert "A" in prog.decls

    def test_mixed_operators_rejected(self):
        with pytest.raises(EinsumError):
            parse_program(
                "tensor A(2,2): dense\ntensor B(2,2): dense\ntensor C(2,2): dense\n"
                "T(i,j) = A(i,j) + B(i,j) - C(i,j)"
            )
