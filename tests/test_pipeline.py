"""End-to-end pipeline tests: multi-region compilation and execution."""

import numpy as np
import pytest

from repro import (
    compare_schedules,
    compile_program,
    cs_rewrite,
    execute,
    fully_fused,
    fused_groups,
    parse_program,
    run,
    unfused,
)
from repro.comal import FPGA_MACHINE, RDA_MACHINE
from repro.core.schedule.schedule import Schedule, ScheduleError
from repro.ftree import SparseTensor, csr, dense

# This module is the regression suite for the deprecated repro.pipeline
# shims (compile_program/execute/run/compare_schedules), so their
# DeprecationWarning is expected noise everywhere except the test that
# asserts it fires.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

GCN_LAYER = """
tensor A(12, 12): csr
tensor X(12, 6): dense
tensor W(6, 4): dense
tensor b(4): dense
T0(i, f) = A(i, k) * X(k, f)
T1(i, h) = T0(i, f2) * W(f2, h)
T2(i, h) = T1(i, h) + b(h)
Y(i, h) = relu(T2(i, h))
"""


@pytest.fixture
def gcn_layer():
    rng = np.random.default_rng(0)
    adj = (rng.random((12, 12)) < 0.25) * rng.random((12, 12))
    x = rng.random((12, 6))
    w = rng.random((6, 4))
    b = rng.random(4)
    prog = parse_program(GCN_LAYER)
    binding = {
        "A": SparseTensor.from_dense(adj, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
        "W": SparseTensor.from_dense(w, dense(2), "W"),
        "b": SparseTensor.from_dense(b, dense(1), "b"),
    }
    expected = np.maximum(adj @ x @ w + b, 0.0)
    return prog, binding, expected


class TestCompile:
    def test_unfused_region_count(self, gcn_layer):
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, unfused(prog))
        assert len(compiled.regions) == 4

    def test_fully_fused_single_region(self, gcn_layer):
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, fully_fused(prog))
        assert len(compiled.regions) == 1

    def test_compile_is_fast(self, gcn_layer):
        """Paper: all models compile in < 750 ms."""
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, fully_fused(prog))
        assert compiled.compile_seconds < 0.75

    def test_intermediate_decls_registered(self, gcn_layer):
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, unfused(prog))
        assert "T0" in compiled.decls
        assert compiled.decls["T0"].shape == (12, 6)

    def test_describe(self, gcn_layer):
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, unfused(prog))
        text = compiled.describe()
        assert "unfused" in text and "4 region(s)" in text

    def test_tables_recorded(self, gcn_layer):
        prog, _, _ = gcn_layer
        compiled = compile_program(prog, fully_fused(prog))
        assert "fusion table" in compiled.regions[0].table_text


class TestExecute:
    @pytest.mark.parametrize(
        "make_schedule",
        [unfused, fully_fused, lambda p: fused_groups(p, [[0, 1], [2, 3]])],
    )
    def test_all_granularities_correct(self, gcn_layer, make_schedule):
        prog, binding, expected = gcn_layer
        result = run(prog, binding, make_schedule(prog))
        np.testing.assert_allclose(result.tensors["Y"].to_dense(), expected, atol=1e-12)

    def test_fusion_reduces_traffic(self, gcn_layer):
        prog, binding, _ = gcn_layer
        results = compare_schedules(
            prog, binding, [unfused(prog), fully_fused(prog)]
        )
        assert (
            results["fully-fused"].metrics.dram_bytes
            < results["unfused"].metrics.dram_bytes
        )

    def test_kernel_count_matches_regions(self, gcn_layer):
        prog, binding, _ = gcn_layer
        result = run(prog, binding, unfused(prog))
        assert result.metrics.num_kernels == 4

    def test_machines_differ(self, gcn_layer):
        prog, binding, _ = gcn_layer
        r1 = run(prog, binding, unfused(prog), machine=RDA_MACHINE)
        r2 = run(prog, binding, unfused(prog), machine=FPGA_MACHINE)
        assert r1.metrics.cycles != r2.metrics.cycles

    def test_cs_rewrite_correct(self, gcn_layer):
        prog, binding, expected = gcn_layer
        schedule = cs_rewrite(prog, [[0, 1], [2], [3]])
        result = run(prog, binding, schedule)
        np.testing.assert_allclose(result.tensors["Y"].to_dense(), expected, atol=1e-12)


class TestScheduleValidation:
    def test_overlapping_regions_rejected(self, gcn_layer):
        prog, _, _ = gcn_layer
        with pytest.raises(ScheduleError):
            fused_groups(prog, [[0, 1], [1, 2, 3]])

    def test_missing_statement_rejected(self, gcn_layer):
        prog, _, _ = gcn_layer
        with pytest.raises(ScheduleError):
            fused_groups(prog, [[0, 1], [3]])

    def test_unknown_sid_rejected(self, gcn_layer):
        prog, _, _ = gcn_layer
        with pytest.raises(ScheduleError):
            fused_groups(prog, [[0, 1, 2, 3, 9]])

    def test_describe(self, gcn_layer):
        prog, _, _ = gcn_layer
        schedule = fused_groups(prog, [[0, 1], [2, 3]])
        assert "2 region(s)" in schedule.describe()


class TestTransposedViews:
    def test_pog_cycle_materializes_permuted_copy(self):
        """Two conflicting views of one tensor (B and B^T) cycle the POG;
        FuseFlow breaks the cycle with a permuted copy (Section 5, step 4)."""
        prog = parse_program(
            "tensor B(5, 5): csr\nZ(i, j) = B(i, j) * B(j, i)"
        )
        rng = np.random.default_rng(1)
        b = (rng.random((5, 5)) < 0.5) * rng.random((5, 5))
        binding = {"B": SparseTensor.from_dense(b, csr(), "B")}
        compiled = compile_program(prog, fully_fused(prog))
        assert compiled.regions[0].transposes, "expected a permuted copy"
        result = execute(compiled, binding)
        np.testing.assert_allclose(
            result.tensors["Z"].to_dense(), b * b.T, atol=1e-12
        )

    def test_infeasible_streaming_schedule_raises(self):
        """When neither streaming nor driven recompute can express a fused
        schedule, the compiler demands a materialization boundary."""
        from repro.core.tables.lower import LoweringError

        prog = parse_program(
            """
tensor B(5, 5): csr
tensor C(5, 5): csr
E(i, j) = B(i, k) * C(k, j)
F(i, l) = E(i, j2) * B(l, j2)
"""
        )
        with pytest.raises(LoweringError, match="materialize"):
            compile_program(prog, fully_fused(prog))
        # The unfused schedule handles it via materialization.
        rng = np.random.default_rng(1)
        b = (rng.random((5, 5)) < 0.5) * rng.random((5, 5))
        c = (rng.random((5, 5)) < 0.5) * rng.random((5, 5))
        binding = {
            "B": SparseTensor.from_dense(b, csr(), "B"),
            "C": SparseTensor.from_dense(c, csr(), "C"),
        }
        result = run(prog, binding, unfused(prog))
        np.testing.assert_allclose(
            result.tensors["F"].to_dense(), (b @ c) @ b.T, atol=1e-12
        )


class TestDeprecation:
    """The legacy free functions warn and point at the Session API."""

    def test_run_emits_deprecation_warning(self, gcn_layer):
        prog, binding, expected = gcn_layer
        with pytest.warns(DeprecationWarning, match="Session.run"):
            result = run(prog, binding, unfused(prog))
        np.testing.assert_allclose(
            result.tensors["Y"].to_dense(), expected, atol=1e-12
        )

    def test_compile_program_emits_deprecation_warning(self, gcn_layer):
        prog, _, _ = gcn_layer
        with pytest.warns(DeprecationWarning, match="Session.compile"):
            compile_program(prog, unfused(prog))

    def test_execute_emits_deprecation_warning(self, gcn_layer):
        prog, binding, _ = gcn_layer
        with pytest.warns(DeprecationWarning):
            compiled = compile_program(prog, unfused(prog))
        with pytest.warns(DeprecationWarning, match="Executable"):
            execute(compiled, binding)

    def test_compare_schedules_emits_deprecation_warning(self, gcn_layer):
        prog, binding, _ = gcn_layer
        with pytest.warns(DeprecationWarning, match="Session.compare_schedules"):
            compare_schedules(prog, binding, [unfused(prog)])
