"""Golden-trace regression tests for the comal simulation engine.

Each model class is simulated at a small canonical configuration under
every fusion granularity on the default RDA machine, and the resulting
``SimResult``-level metrics (cycles, flops, dram_bytes, tokens, per-kernel
cycles) are compared against committed snapshots in ``tests/golden/``.
Any drift — a timing-model tweak, a lowering change that adds a node, a
memory-model fix — fails loudly here instead of silently shifting every
figure the benchmarks reproduce.

Intentional changes: regenerate with

    PYTHONPATH=src python -m pytest tests/test_golden_traces.py --regen-golden

then review the JSON diff like any other code change.
"""

import json
import os

import pytest

from repro.comal.machines import RDA_MACHINE
from repro.driver import Session
from repro.sweep import SweepPoint, build_bundle

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "golden")

#: Canonical configurations: small enough to simulate in well under a
#: second, large enough to exercise every primitive class of the model.
GOLDEN_POINTS = {
    "gcn": SweepPoint.make(
        "gcn", model_args={"nodes": 30, "density": 0.1, "seed": 0}
    ),
    "graphsage": SweepPoint.make(
        "graphsage", model_args={"nodes": 30, "density": 0.1, "seed": 0}
    ),
    "sae": SweepPoint.make("sae", model_args={"nodes": 16, "seed": 0}),
    "gpt3": SweepPoint.make(
        "gpt3",
        model_args={"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
    ),
}

GRANULARITIES = ("unfused", "partial", "full")


def _trace(model: str) -> dict:
    """Simulate the model's canonical config at every granularity."""
    point = GOLDEN_POINTS[model]
    bundle = build_bundle(point)
    session = Session(machine=RDA_MACHINE)
    trace = {
        "model": model,
        "config": dict(point.model_args),
        "machine": RDA_MACHINE.name,
        "granularities": {},
    }
    for granularity in GRANULARITIES:
        result = session.run(
            bundle.program, bundle.binding, bundle.schedule(granularity)
        )
        m = result.metrics
        trace["granularities"][granularity] = {
            "cycles": m.cycles,
            "flops": m.flops,
            "dram_bytes": m.dram_bytes,
            "tokens": m.tokens,
            "kernel_cycles": list(m.kernel_cycles),
        }
    return trace


def _golden_path(model: str) -> str:
    return os.path.join(GOLDEN_DIR, f"{model}.json")


@pytest.mark.parametrize("model", sorted(GOLDEN_POINTS))
def test_golden_trace(model, request):
    trace = _trace(model)
    path = _golden_path(model)

    if request.config.getoption("--regen-golden"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(trace, fh, indent=2, sort_keys=True)
            fh.write("\n")
        pytest.skip(f"regenerated {path}")

    assert os.path.exists(path), (
        f"missing golden trace {path}; generate it with --regen-golden"
    )
    with open(path, "r", encoding="utf-8") as fh:
        golden = json.load(fh)

    assert trace["config"] == golden["config"], "canonical config changed"
    for granularity in GRANULARITIES:
        got = trace["granularities"][granularity]
        want = golden["granularities"][granularity]
        for key in ("flops", "dram_bytes", "tokens"):
            assert got[key] == want[key], (
                f"{model}/{granularity}: {key} drifted "
                f"{want[key]} -> {got[key]} (regen with --regen-golden if "
                "intentional)"
            )
        assert got["cycles"] == pytest.approx(want["cycles"], rel=1e-9), (
            f"{model}/{granularity}: cycles drifted "
            f"{want['cycles']} -> {got['cycles']}"
        )
        assert got["kernel_cycles"] == pytest.approx(
            want["kernel_cycles"], rel=1e-9
        ), f"{model}/{granularity}: per-kernel cycles drifted"


def test_golden_traces_cover_every_model():
    """The snapshot set tracks the model zoo."""
    from repro.models import __all__ as model_exports

    builders = {n for n in model_exports if n.startswith("build_")}
    assert {f"build_{m}" for m in GOLDEN_POINTS} == builders
