"""Model zoo integration tests: every model x every fusion granularity.

These mirror the paper's functional verification of the simulator against a
dense reference implementation (Section 8.1).
"""

import numpy as np
import pytest

from repro.models.gcn import build_gcn, gcn_on_synthetic
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import graphsage_on_synthetic
from repro.models.sae import build_sae
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run

GRANULARITIES = ("unfused", "partial", "full")


def run_and_check(bundle, granularity, atol=1e-9):
    result = run(bundle.program, bundle.binding, bundle.schedule(granularity))
    out = result.tensors[bundle.output].to_dense()
    np.testing.assert_allclose(out, bundle.reference, atol=atol)
    return result


class TestGCN:
    @pytest.fixture(scope="class")
    def bundle(self):
        return gcn_on_synthetic(nodes=40, density=0.08, seed=0)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_correct(self, bundle, granularity):
        run_and_check(bundle, granularity)

    def test_partial_beats_unfused(self, bundle):
        unfused = run_and_check(bundle, "unfused")
        partial = run_and_check(bundle, "partial")
        assert partial.metrics.cycles < unfused.metrics.cycles

    def test_full_fusion_recomputes(self, bundle):
        partial = run_and_check(bundle, "partial")
        full = run_and_check(bundle, "full")
        assert full.metrics.flops > partial.metrics.flops

    def test_cs_rewrite_correct(self, bundle):
        result = run(bundle.program, bundle.binding, bundle.schedule("cs"))
        out = result.tensors[bundle.output].to_dense()
        np.testing.assert_allclose(out, bundle.reference, atol=1e-9)

    @pytest.mark.parametrize("pattern", ["uniform", "powerlaw", "blockdiag"])
    def test_patterns(self, pattern):
        bundle = gcn_on_synthetic(nodes=30, density=0.1, pattern=pattern, seed=1)
        run_and_check(bundle, "partial")


class TestGraphSAGE:
    @pytest.fixture(scope="class")
    def bundle(self):
        return graphsage_on_synthetic(nodes=40, density=0.08, seed=2)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_correct(self, bundle, granularity):
        run_and_check(bundle, granularity)

    def test_partial_best(self, bundle):
        results = {g: run_and_check(bundle, g) for g in GRANULARITIES}
        assert results["partial"].metrics.cycles == min(
            r.metrics.cycles for r in results.values()
        )


class TestSAE:
    @pytest.fixture(scope="class")
    def bundle(self):
        rng = np.random.default_rng(3)
        return build_sae(rng.random((5, 24)), hidden=12, seed=3)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_correct(self, bundle, granularity):
        run_and_check(bundle, granularity)

    def test_full_fusion_wins(self, bundle):
        """SAE streams layer to layer: full fusion has no recompute."""
        results = {g: run_and_check(bundle, g) for g in GRANULARITIES}
        assert results["full"].metrics.cycles == min(
            r.metrics.cycles for r in results.values()
        )
        assert results["full"].metrics.flops == results["unfused"].metrics.flops

    def test_weight_sparsity(self, bundle):
        w1 = bundle.binding["W1"]
        assert abs(w1.density() - 0.5) < 0.1


class TestGPT3:
    @pytest.fixture(scope="class")
    def bundle(self):
        return build_gpt3(seq_len=16, d_model=8, block=4, n_layers=2, seed=4)

    @pytest.mark.parametrize("granularity", GRANULARITIES)
    def test_correct(self, bundle, granularity):
        run_and_check(bundle, granularity, atol=1e-8)

    def test_full_fusion_wins(self, bundle):
        """Reshape-bounded fusion has no recompute: full fusion is best."""
        results = {g: run_and_check(bundle, g, atol=1e-8) for g in GRANULARITIES}
        assert results["full"].metrics.cycles <= results["partial"].metrics.cycles
        assert results["partial"].metrics.cycles < results["unfused"].metrics.cycles

    @pytest.mark.parametrize("block", [2, 4, 8])
    def test_block_sizes(self, block):
        bundle = build_gpt3(seq_len=16, d_model=8, block=block, n_layers=1, seed=5)
        run_and_check(bundle, "partial", atol=1e-8)

    def test_mask_sparsity_reported(self):
        # A larger block grid is needed for the BigBird mask to be sparse.
        bundle = build_gpt3(seq_len=64, d_model=4, block=4, n_layers=1, seed=7)
        assert 0.0 < bundle.metadata["mask_sparsity"] < 1.0

    def test_single_decoder(self):
        bundle = build_gpt3(seq_len=8, d_model=4, block=2, n_layers=1, seed=6)
        run_and_check(bundle, "full", atol=1e-8)


class TestModelBundleAPI:
    def test_schedules_list(self):
        bundle = gcn_on_synthetic(nodes=20, density=0.1)
        schedules = bundle.schedules()
        assert [s.name for s in schedules] == ["unfused", "partial", "fully-fused"]

    def test_unknown_granularity_rejected(self):
        bundle = gcn_on_synthetic(nodes=20, density=0.1)
        with pytest.raises(ValueError):
            bundle.schedule("mega")

    def test_sae_has_no_cs_groups(self):
        rng = np.random.default_rng(0)
        bundle = build_sae(rng.random((2, 8)), hidden=4)
        with pytest.raises(ValueError):
            bundle.schedule("cs")

    def test_explicit_adjacency(self):
        adj = np.eye(6)
        feats = np.ones((6, 3))
        bundle = build_gcn(adj, feats, hidden=4, classes=2)
        run_and_check(bundle, "partial")
