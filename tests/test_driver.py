"""Driver API tests: Session cache, pass pipeline, diagnostics, executables."""

import numpy as np
import pytest

from repro import (
    Session,
    compile_program,
    fully_fused,
    fused_groups,
    parse_program,
    unfused,
)
from repro.cli import main as cli_main
from repro.comal import FPGA_MACHINE
from repro.core.heuristic.model import stats_from_binding
from repro.core.schedule.autotune import autotune
from repro.core.tables.lower import LoweringError, RegionLowerer
from repro.driver import (
    DEFAULT_PASS_ORDER,
    LowerRegion,
    Pass,
    PassPipeline,
    PipelineError,
    default_session,
)
from repro.frontend.api import ModelBuilder
from repro.ftree import SparseTensor, csr, dense
from repro.models.gcn import gcn_on_synthetic

GCN_LAYER = """
tensor A(12, 12): csr
tensor X(12, 6): dense
tensor W(6, 4): dense
tensor b(4): dense
T0(i, f) = A(i, k) * X(k, f)
T1(i, h) = T0(i, f2) * W(f2, h)
T2(i, h) = T1(i, h) + b(h)
Y(i, h) = relu(T2(i, h))
"""

# A transposed-view region (B used as both B and B^T cycles the POG) whose
# fused index space admits two valid dataflow orders, both lowerable.
TRANSPOSED_VIEW = """
tensor B(5, 5): csr
tensor X(5, 3): dense
Z(i, j) = B(i, j) * B(j, i)
O(i, f) = Z(i, j2) * X(j2, f)
"""


@pytest.fixture
def gcn_layer():
    rng = np.random.default_rng(0)
    adj = (rng.random((12, 12)) < 0.25) * rng.random((12, 12))
    x = rng.random((12, 6))
    w = rng.random((6, 4))
    b = rng.random(4)
    prog = parse_program(GCN_LAYER)
    binding = {
        "A": SparseTensor.from_dense(adj, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
        "W": SparseTensor.from_dense(w, dense(2), "W"),
        "b": SparseTensor.from_dense(b, dense(1), "b"),
    }
    expected = np.maximum(adj @ x @ w + b, 0.0)
    return prog, binding, expected


@pytest.fixture
def transposed_view():
    rng = np.random.default_rng(1)
    b = (rng.random((5, 5)) < 0.5) * rng.random((5, 5))
    x = rng.random((5, 3))
    prog = parse_program(TRANSPOSED_VIEW)
    binding = {
        "B": SparseTensor.from_dense(b, csr(), "B"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
    }
    expected = (b * b.T) @ x
    return prog, binding, expected


class TestFingerprints:
    def test_program_fingerprint_stable_across_rebuilds(self):
        assert (
            parse_program(GCN_LAYER).fingerprint()
            == parse_program(GCN_LAYER).fingerprint()
        )

    def test_program_fingerprint_sees_formats(self):
        dense_a = GCN_LAYER.replace("A(12, 12): csr", "A(12, 12): dense")
        assert (
            parse_program(GCN_LAYER).fingerprint()
            != parse_program(dense_a).fingerprint()
        )

    def test_schedule_fingerprint_sees_mutation(self, gcn_layer):
        prog, _, _ = gcn_layer
        schedule = unfused(prog)
        before = schedule.fingerprint()
        schedule.par["i"] = 2
        assert schedule.fingerprint() != before
        schedule.par.clear()
        assert schedule.fingerprint() == before

    def test_pipeline_fingerprint_sees_config(self):
        assert (
            PassPipeline.default().fingerprint()
            != PassPipeline.default().without("fold-masks").fingerprint()
        )
        custom = PassPipeline.default().without("lower-region").with_pass(
            LowerRegion(max_attempts=7), before="parallelize"
        )
        assert custom.fingerprint() != PassPipeline.default().fingerprint()


class TestSessionCache:
    def test_identical_compile_returns_cached_executable(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session()
        exe1 = session.compile(prog, fully_fused(prog))
        exe2 = session.compile(prog, fully_fused(prog))
        assert exe1 is exe2
        info = session.cache_info()
        assert info.hits == 1 and info.misses == 1 and info.entries == 1

    def test_mutated_schedule_misses(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session()
        schedule = unfused(prog)
        exe1 = session.compile(prog, schedule)
        schedule.par["i"] = 2
        exe2 = session.compile(prog, schedule)
        assert exe1 is not exe2
        assert session.cache_info().hits == 0
        assert session.cache_info().misses == 2

    def test_distinct_schedules_distinct_entries(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session()
        session.compile(prog, unfused(prog))
        session.compile(prog, fully_fused(prog))
        session.compile(prog, fused_groups(prog, [[0, 1], [2, 3]]))
        assert session.cache_info().entries == 3

    def test_lru_eviction(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session(cache_size=1)
        exe1 = session.compile(prog, unfused(prog))
        session.compile(prog, fully_fused(prog))  # evicts the unfused entry
        assert session.compile(prog, unfused(prog)) is not exe1
        assert session.cache_info().entries == 1

    def test_clear_cache(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session()
        session.compile(prog, unfused(prog))
        session.clear_cache()
        info = session.cache_info()
        assert info.entries == 0 and info.misses == 0

    def test_run_and_compare_schedules_share_cache(self, gcn_layer):
        prog, binding, expected = gcn_layer
        session = Session()
        result = session.run(prog, binding, fully_fused(prog))
        np.testing.assert_allclose(
            result.tensors["Y"].to_dense(), expected, atol=1e-12
        )
        results = session.compare_schedules(
            prog, binding, [unfused(prog), fully_fused(prog)]
        )
        assert set(results) == {"unfused", "fully-fused"}
        # The fully-fused compile was served from cache.
        assert session.cache_info().hits == 1

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    def test_legacy_shim_routes_through_default_session(self, gcn_layer):
        # The shim is deprecated (see test_pipeline.py's TestDeprecation);
        # this only pins that it still shares the default session's cache.
        prog, _, _ = gcn_layer
        schedule = fully_fused(prog)
        first = compile_program(prog, schedule)
        assert compile_program(prog, schedule) is first
        assert default_session().compile(prog, schedule).compiled is first


class TestPassPipeline:
    def test_default_order(self):
        assert tuple(PassPipeline.default().names()) == DEFAULT_PASS_ORDER

    def test_without_pass_still_compiles_correctly(self, gcn_layer):
        prog, binding, expected = gcn_layer
        session = Session(pipeline=PassPipeline.default().without("fold-masks"))
        exe = session.compile(prog, fully_fused(prog))
        assert "fold-masks" not in exe.diagnostics.pass_seconds
        np.testing.assert_allclose(
            exe(binding).tensors["Y"].to_dense(), expected, atol=1e-12
        )

    def test_reordered_fold_and_merge(self, gcn_layer):
        prog, binding, expected = gcn_layer
        pipeline = PassPipeline.default().reordered(
            ["fuse-regions", "merge-contractions", "fold-masks",
             "split-indices", "lower-region", "place-memory", "parallelize"]
        )
        exe = Session(pipeline=pipeline).compile(prog, fully_fused(prog))
        np.testing.assert_allclose(
            exe(binding).tensors["Y"].to_dense(), expected, atol=1e-12
        )

    def test_misordered_pipeline_raises(self, gcn_layer):
        prog, _, _ = gcn_layer
        pipeline = PassPipeline.default().reordered(
            ["parallelize", "fuse-regions", "fold-masks",
             "merge-contractions", "split-indices", "lower-region",
             "place-memory"]
        )
        with pytest.raises(PipelineError, match="parallelize"):
            Session(pipeline=pipeline).compile(prog, unfused(prog))

    def test_missing_producer_raises(self, gcn_layer):
        prog, _, _ = gcn_layer
        pipeline = PassPipeline.default().without("fuse-regions")
        with pytest.raises(PipelineError, match="fused"):
            Session(pipeline=pipeline).compile(prog, unfused(prog))

    def test_unknown_names_rejected(self):
        with pytest.raises(PipelineError, match="no-such-pass"):
            PassPipeline.default().without("no-such-pass")
        with pytest.raises(PipelineError, match="unknown"):
            PassPipeline.from_names(["fuse-regions", "unknown"])
        with pytest.raises(PipelineError, match="permutation"):
            PassPipeline.default().reordered(["fuse-regions"])

    def test_duplicate_passes_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            PassPipeline.default().with_pass(LowerRegion())

    def test_custom_pass_plugs_in(self, gcn_layer):
        prog, binding, expected = gcn_layer

        class CountNodes(Pass):
            name = "count-nodes"
            requires = ("graph",)

            def __init__(self):
                self.counts = []

            def run(self, ctx, region):
                self.counts.append(region.graph.node_count())

        counter = CountNodes()
        pipeline = PassPipeline.default().with_pass(counter, after="lower-region")
        exe = Session(pipeline=pipeline).compile(prog, unfused(prog))
        assert counter.counts and all(c > 0 for c in counter.counts)
        assert "count-nodes" in exe.diagnostics.pass_seconds
        np.testing.assert_allclose(
            exe(binding).tensors["Y"].to_dense(), expected, atol=1e-12
        )


class TestDiagnostics:
    def test_pass_timings_recorded(self, gcn_layer):
        prog, _, _ = gcn_layer
        exe = Session().compile(prog, fully_fused(prog))
        diag = exe.diagnostics
        assert diag.pass_names == list(DEFAULT_PASS_ORDER)
        assert set(diag.pass_seconds) == set(DEFAULT_PASS_ORDER)
        assert all(seconds >= 0.0 for seconds in diag.pass_seconds.values())
        assert diag.compile_seconds > 0.0

    def test_region_stats(self, gcn_layer):
        prog, _, _ = gcn_layer
        exe = Session().compile(prog, fused_groups(prog, [[0, 1], [2, 3]]))
        assert len(exe.diagnostics.regions) == 2
        for region, sids in zip(exe.diagnostics.regions, [[0, 1], [2, 3]]):
            assert region.sids == sids
            assert region.statements == 2
            assert region.node_count > 0
            assert region.order_attempts == 1
            assert len(region.orders_tried) == 1

    def test_skipped_passes_recorded(self, gcn_layer):
        prog, _, _ = gcn_layer
        exe = Session().compile(prog, fully_fused(prog))
        region = exe.diagnostics.regions[0]
        assert "merge-contractions" in region.skipped_passes
        assert "parallelize" in region.skipped_passes
        assert "merge-contractions" in exe.diagnostics.skipped()

    def test_transposed_view_region_surfaces_order_stats(self, transposed_view):
        prog, binding, expected = transposed_view
        exe = Session().compile(prog, fully_fused(prog))
        region = exe.diagnostics.regions[0]
        assert region.transposed_views == 1
        assert region.order_attempts == 1
        assert region.orders_tried == [tuple(exe.regions[0].order)]
        assert exe.diagnostics.order_fallbacks() == 0
        np.testing.assert_allclose(
            exe(binding).tensors["O"].to_dense(), expected, atol=1e-12
        )

    def test_order_fallback_count_surfaces(self, transposed_view, monkeypatch):
        """When the first dataflow order is stream-incompatible, the lowerer
        walks to the next valid order and the fallback count lands in the
        diagnostics (the seed swallowed this silently).  Only the lowering
        is exercised here: the region's alternate order hits a pre-existing
        simulator limitation, which is independent of the fallback logic."""
        prog, _, _ = transposed_view
        original = RegionLowerer.lower
        calls = {"n": 0}

        def first_order_fails(self):
            calls["n"] += 1
            if calls["n"] == 1:
                raise LoweringError("injected: first order is stream-incompatible")
            return original(self)

        monkeypatch.setattr(RegionLowerer, "lower", first_order_fails)
        exe = Session().compile(prog, fully_fused(prog))
        region = exe.diagnostics.regions[0]
        assert region.transposed_views == 1
        assert region.order_attempts == 2
        assert region.order_fallbacks == 1
        assert len(region.orders_tried) == 2
        assert exe.diagnostics.order_fallbacks() == 1
        assert "order attempt" in exe.diagnostics.describe()

    def test_order_fallback_recovers_end_to_end(self, monkeypatch):
        """A CSC SpMM region admits two lowerable orders; failing the first
        must fall back to the second and still simulate correctly."""
        prog = parse_program(
            "tensor A(6, 6): csc\ntensor X(6, 4): dense\n"
            "T(i, j) = A(i, k) * X(k, j)"
        )
        rng = np.random.default_rng(0)
        a = (rng.random((6, 6)) < 0.4) * rng.random((6, 6))
        x = rng.random((6, 4))
        from repro.ftree import csc

        binding = {
            "A": SparseTensor.from_dense(a, csc(), "A"),
            "X": SparseTensor.from_dense(x, dense(2), "X"),
        }
        original = RegionLowerer.lower
        calls = {"n": 0}

        def first_order_fails(self):
            calls["n"] += 1
            if calls["n"] == 1:
                raise LoweringError("injected: first order is stream-incompatible")
            return original(self)

        monkeypatch.setattr(RegionLowerer, "lower", first_order_fails)
        exe = Session().compile(prog, fully_fused(prog))
        assert exe.diagnostics.order_fallbacks() == 1
        np.testing.assert_allclose(
            exe(binding).tensors["T"].to_dense(), a @ x, atol=1e-12
        )

    def test_pinned_order_never_falls_back(self, gcn_layer):
        prog, _, _ = gcn_layer
        schedule = fully_fused(prog)
        exe = Session().compile(prog, schedule)
        pinned = list(exe.regions[0].order)
        schedule = fully_fused(prog)
        schedule.orders[0] = pinned
        exe2 = Session().compile(prog, schedule)
        assert exe2.diagnostics.regions[0].pinned_order

    def test_describe_text(self, gcn_layer):
        prog, _, _ = gcn_layer
        exe = Session().compile(prog, fully_fused(prog))
        text = exe.diagnostics.describe()
        assert "lower-region" in text and "order attempt" in text


class TestExecutable:
    def test_call_and_kwargs_agree(self, gcn_layer):
        prog, binding, expected = gcn_layer
        exe = Session().compile(prog, fully_fused(prog))
        by_binding = exe(binding)
        by_kwargs = exe.run(**binding)
        np.testing.assert_allclose(
            by_binding.tensors["Y"].to_dense(), expected, atol=1e-12
        )
        np.testing.assert_allclose(
            by_kwargs.tensors["Y"].to_dense(),
            by_binding.tensors["Y"].to_dense(),
            atol=0,
        )

    def test_machine_override(self, gcn_layer):
        prog, binding, _ = gcn_layer
        exe = Session().compile(prog, unfused(prog))
        assert exe(binding).metrics.cycles != exe(
            binding, machine=FPGA_MACHINE
        ).metrics.cycles

    def test_describe_and_fingerprint(self, gcn_layer):
        prog, _, _ = gcn_layer
        session = Session()
        schedule = fully_fused(prog)
        exe = session.compile(prog, schedule)
        assert "region" in exe.describe() and "pass" in exe.describe()
        assert exe.fingerprint == session.cache_key(prog, schedule)

    def test_infeasible_schedule_still_raises(self):
        prog = parse_program(
            """
tensor B(5, 5): csr
tensor C(5, 5): csr
E(i, j) = B(i, k) * C(k, j)
F(i, l) = E(i, j2) * B(l, j2)
"""
        )
        with pytest.raises(LoweringError, match="materialize"):
            Session().compile(prog, fully_fused(prog))


class TestAutotuneThroughSession:
    @pytest.fixture(scope="class")
    def bundle(self):
        return gcn_on_synthetic(nodes=30, density=0.1, seed=0)

    def test_winner_executable_served_from_cache(self, gcn_layer):
        prog, binding, _ = gcn_layer
        session = Session()
        stats = stats_from_binding(binding)
        tuned = autotune(prog, binding, stats, session=session, simulate_top=3)
        assert tuned.executable is session.compile(prog, tuned.best)
        assert session.cache_info().hits >= 2

    def test_fewer_lowerings_than_seed_path(self, gcn_layer, monkeypatch):
        """Autotune + deploying the winner must not re-lower: the seed path
        (recompiling the winner from scratch) pays extra region lowerings
        that the session cache eliminates."""
        prog, binding, _ = gcn_layer
        original = RegionLowerer.lower
        lowerings = {"n": 0}

        def counted(self):
            lowerings["n"] += 1
            return original(self)

        monkeypatch.setattr(RegionLowerer, "lower", counted)
        stats = stats_from_binding(binding)
        session = Session()
        tuned = autotune(prog, binding, stats, session=session, simulate_top=3)
        after_tune = lowerings["n"]
        assert after_tune > 0
        # Serving-style reuse of the winner: zero additional lowerings.
        exe = session.compile(prog, tuned.best)
        assert lowerings["n"] == after_tune
        result = exe(binding)
        assert result.metrics.cycles == pytest.approx(tuned.measured_cycles)
        # The seed path re-lowered the winner's regions from scratch.
        Session().compile(prog, tuned.best)
        assert lowerings["n"] > after_tune

    def test_explicit_machine_binds_winner(self, gcn_layer):
        """An explicit machine paired with a differently-built session must
        yield a winner executable bound to the machine the tuning measured
        on, so tuned.executable(binding) reproduces measured_cycles."""
        prog, binding, _ = gcn_layer
        session = Session()  # RDA machine
        stats = stats_from_binding(binding)
        tuned = autotune(
            prog, binding, stats,
            machine=FPGA_MACHINE, session=session, simulate_top=2,
        )
        assert tuned.executable.machine is FPGA_MACHINE
        assert tuned.executable(binding).metrics.cycles == pytest.approx(
            tuned.measured_cycles
        )

    def test_matches_seed_autotune_behavior(self, bundle):
        stats = stats_from_binding(bundle.binding)
        session = Session()
        tuned = autotune(
            bundle.program,
            bundle.binding,
            stats,
            candidates=bundle.schedules(),
            simulate_top=3,
            session=session,
        )
        cycles = {
            s.name: session.run(bundle.program, bundle.binding, s).metrics.cycles
            for s in bundle.schedules()
        }
        assert tuned.best.name == min(cycles, key=cycles.get)
        # Every re-run above was a cache hit on the autotuner's compiles.
        assert session.cache_info().hits >= 3


class TestFrontendSessionAPI:
    def test_model_builder_compile(self):
        builder = ModelBuilder("tiny")
        rng = np.random.default_rng(0)
        a = rng.random((6, 4))
        b = rng.random((4, 3))
        x = builder.input("A", a)
        y = builder.input("B", b)
        builder.matmul(x, y)
        session = Session()
        exe = builder.compile(session=session)
        result = exe(builder.binding)
        out = result.tensors[builder.program.outputs()[0]].to_dense()
        np.testing.assert_allclose(out, a @ b, atol=1e-12)
        assert builder.compile(session=session) is exe

    def test_model_bundle_executable(self):
        bundle = gcn_on_synthetic(nodes=20, density=0.2, seed=0)
        session = Session()
        exe = bundle.executable("full", session=session)
        out = exe(bundle.binding).tensors[bundle.output].to_dense()
        assert np.abs(out - bundle.reference).max() < 1e-6
        assert bundle.executable("full", session=session) is exe


class TestCLI:
    def test_autotune_subcommand(self, capsys):
        code = cli_main(
            ["autotune", "--model", "sae", "--nodes", "12", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "winner" in out
        assert "cache" in out and "hit" in out

    def test_compile_diagnostics_flag(self, capsys):
        code = cli_main(
            ["compile", "--model", "gcn", "--nodes", "24", "--fusion",
             "partial", "--diagnostics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuse-regions" in out and "lower-region" in out
