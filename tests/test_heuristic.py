"""Fusion heuristic tests: estimates track the simulator, pruning works."""

import numpy as np
import pytest

from repro.core.heuristic.model import (
    FusionHeuristic,
    TensorStats,
    estimate_schedule,
    stats_from_binding,
)
from repro.core.heuristic.prune import prune_schedules, rank_schedules, roofline_score
from repro.comal import RDA_MACHINE
from repro.models.gcn import gcn_on_synthetic
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


@pytest.fixture(scope="module")
def gcn():
    return gcn_on_synthetic(nodes=40, density=0.08, seed=0)


class TestTensorStats:
    def test_nnz(self):
        stats = TensorStats(shape=(10, 10), density=0.25)
        assert stats.nnz == 25.0

    def test_from_binding(self, gcn):
        stats = stats_from_binding(gcn.binding)
        assert stats["A"].shape == gcn.binding["A"].shape
        assert 0 < stats["A"].density < 1


class TestEstimates:
    def test_flops_tracks_simulator(self, gcn):
        """Average percent error of estimated FLOPs stays small (Table 3)."""
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        for gran in ("unfused", "partial"):
            schedule = gcn.schedule(gran)
            est = heuristic.estimate(schedule)
            sim = run(gcn.program, gcn.binding, schedule)
            rel_err = abs(est.flops - sim.metrics.flops) / sim.metrics.flops
            assert rel_err < 0.6, f"{gran}: {rel_err:.2f}"

    def test_recompute_multiplies_flops(self, gcn):
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        partial = heuristic.estimate(gcn.schedule("partial"))
        full = heuristic.estimate(gcn.schedule("full"))
        assert full.flops > partial.flops

    def test_fusion_reduces_estimated_bytes(self, gcn):
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        est_unfused = heuristic.estimate(gcn.schedule("unfused"))
        est_partial = heuristic.estimate(gcn.schedule("partial"))
        assert est_partial.dram_bytes < est_unfused.dram_bytes

    def test_per_region_breakdown(self, gcn):
        stats = stats_from_binding(gcn.binding)
        est = estimate_schedule(gcn.program, gcn.schedule("partial"), stats)
        assert len(est.per_region) == 2
        assert est.operational_intensity() > 0


class TestPruning:
    def test_ranking_orders_by_score(self, gcn):
        stats = stats_from_binding(gcn.binding)
        ranked = rank_schedules(gcn.program, gcn.schedules(), stats)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores)

    def test_prune_keeps_best(self, gcn):
        """The heuristic's top pick matches the simulator's winner."""
        stats = stats_from_binding(gcn.binding)
        schedules = gcn.schedules()
        kept = prune_schedules(gcn.program, schedules, stats, keep=1)
        sim_cycles = {
            s.name: run(gcn.program, gcn.binding, s).metrics.cycles
            for s in schedules
        }
        best_by_sim = min(sim_cycles, key=sim_cycles.get)
        assert kept[0].name == best_by_sim

    def test_roofline_score_positive(self, gcn):
        stats = stats_from_binding(gcn.binding)
        est = estimate_schedule(gcn.program, gcn.schedule("partial"), stats)
        assert roofline_score(est, RDA_MACHINE) > 0
