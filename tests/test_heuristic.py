"""Fusion heuristic tests: estimates track the simulator, pruning works."""

import numpy as np
import pytest

from repro.core.heuristic.model import (
    FusionHeuristic,
    TensorStats,
    estimate_schedule,
    stats_from_binding,
)
from repro.core.heuristic.prune import prune_schedules, rank_schedules, roofline_score
from repro.comal import RDA_MACHINE
from repro.models.gcn import gcn_on_synthetic
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


@pytest.fixture(scope="module")
def gcn():
    return gcn_on_synthetic(nodes=40, density=0.08, seed=0)


class TestTensorStats:
    def test_nnz(self):
        stats = TensorStats(shape=(10, 10), density=0.25)
        assert stats.nnz == 25.0

    def test_from_binding(self, gcn):
        stats = stats_from_binding(gcn.binding)
        assert stats["A"].shape == gcn.binding["A"].shape
        assert 0 < stats["A"].density < 1


class TestEstimates:
    def test_flops_tracks_simulator(self, gcn):
        """Average percent error of estimated FLOPs stays small (Table 3)."""
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        for gran in ("unfused", "partial"):
            schedule = gcn.schedule(gran)
            est = heuristic.estimate(schedule)
            sim = run(gcn.program, gcn.binding, schedule)
            rel_err = abs(est.flops - sim.metrics.flops) / sim.metrics.flops
            assert rel_err < 0.6, f"{gran}: {rel_err:.2f}"

    def test_recompute_multiplies_flops(self, gcn):
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        partial = heuristic.estimate(gcn.schedule("partial"))
        full = heuristic.estimate(gcn.schedule("full"))
        assert full.flops > partial.flops

    def test_fusion_reduces_estimated_bytes(self, gcn):
        stats = stats_from_binding(gcn.binding)
        heuristic = FusionHeuristic(gcn.program, stats)
        est_unfused = heuristic.estimate(gcn.schedule("unfused"))
        est_partial = heuristic.estimate(gcn.schedule("partial"))
        assert est_partial.dram_bytes < est_unfused.dram_bytes

    def test_per_region_breakdown(self, gcn):
        stats = stats_from_binding(gcn.binding)
        est = estimate_schedule(gcn.program, gcn.schedule("partial"), stats)
        assert len(est.per_region) == 2
        assert est.operational_intensity() > 0


class TestPruning:
    def test_ranking_orders_by_score(self, gcn):
        stats = stats_from_binding(gcn.binding)
        ranked = rank_schedules(gcn.program, gcn.schedules(), stats)
        scores = [r.score for r in ranked]
        assert scores == sorted(scores)

    def test_prune_keeps_best(self, gcn):
        """The heuristic's top pick matches the simulator's winner."""
        stats = stats_from_binding(gcn.binding)
        schedules = gcn.schedules()
        kept = prune_schedules(gcn.program, schedules, stats, keep=1)
        sim_cycles = {
            s.name: run(gcn.program, gcn.binding, s).metrics.cycles
            for s in schedules
        }
        best_by_sim = min(sim_cycles, key=sim_cycles.get)
        assert kept[0].name == best_by_sim

    def test_roofline_score_positive(self, gcn):
        stats = stats_from_binding(gcn.binding)
        est = estimate_schedule(gcn.program, gcn.schedule("partial"), stats)
        assert roofline_score(est, RDA_MACHINE) > 0


class TestAutotuneReporting:
    """Direct assertions on the autotuner's self-reporting fields."""

    @pytest.fixture(scope="class")
    def tuned(self, gcn):
        from repro.core.schedule.autotune import autotune, reset_truncation_warnings
        from repro.driver.session import Session

        reset_truncation_warnings()
        stats = stats_from_binding(gcn.binding)
        with pytest.warns(UserWarning, match="kept"):
            return autotune(
                gcn.program,
                gcn.binding,
                stats,
                max_candidates=8,
                simulate_top=3,
                session=Session(),
            )

    def test_ranking_is_measured_cycles_per_simulated_candidate(self, tuned):
        assert len(tuned.ranking) == tuned.candidates_simulated
        names = [name for name, _ in tuned.ranking]
        assert len(set(names)) == len(names)
        for name, cycles in tuned.ranking:
            assert isinstance(name, str) and name
            assert cycles > 0
        assert tuned.measured_cycles == min(c for _, c in tuned.ranking)
        assert tuned.best.name in names

    def test_partition_space_is_full_space_not_kept_subset(self, gcn, tuned):
        from repro.core.schedule.autotune import partition_space_size

        n = len(gcn.program.statements)
        assert tuned.partition_space == partition_space_size(n) == 2 ** (n - 1)
        # The cap of 8 kept fewer than the full space; the report says so.
        assert tuned.partitions_dropped == tuned.partition_space - 8
        assert tuned.candidates_considered <= 8

    def test_reset_truncation_warnings_rearms_the_warning(self):
        import warnings as warnings_mod

        from repro.core.schedule.autotune import (
            contiguous_partitions,
            reset_truncation_warnings,
        )

        reset_truncation_warnings()
        with pytest.warns(UserWarning, match="kept 3 of 64"):
            contiguous_partitions(7, max_partitions=3)
        # Same truncation again: the per-process seen-set silences it.
        with warnings_mod.catch_warnings():
            warnings_mod.simplefilter("error")
            contiguous_partitions(7, max_partitions=3)
        # Reset forgets the seen-set: the identical truncation warns again.
        reset_truncation_warnings()
        with pytest.warns(UserWarning, match="kept 3 of 64"):
            contiguous_partitions(7, max_partitions=3)
