"""The serve front end: protocol validation, round trips, in-flight dedup.

The server under test binds an ephemeral localhost port with real threads
and real HTTP (stdlib urllib client), because the bugs this layer exists
to prevent — duplicated concurrent compiles, torn shared state — only
show up under genuine concurrency.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.serve import SingleFlight, ServeError, make_server, parse_request

MM_PROGRAM = """
tensor A(8, 8): csr
tensor B(8, 8): dense
C(i, j) = A(i, k) * B(k, j)
"""


# ----------------------------------------------------------------------
# HTTP plumbing
# ----------------------------------------------------------------------


@pytest.fixture()
def server(tmp_path):
    srv = make_server(port=0, cache_dir=str(tmp_path / "cache"), quiet=True)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=30)


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _get(server, path: str):
    with urllib.request.urlopen(_url(server, path), timeout=60) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def _post(server, path: str, body: dict):
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=300) as resp:
        return resp.status, dict(resp.headers), json.loads(resp.read())


def _post_error(server, path: str, body) -> tuple:
    data = (
        body if isinstance(body, bytes) else json.dumps(body).encode("utf-8")
    )
    request = urllib.request.Request(_url(server, path), data=data)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=60)
    err = excinfo.value
    return err.code, json.loads(err.read())


# ----------------------------------------------------------------------
# Protocol
# ----------------------------------------------------------------------


class TestProtocol:
    def test_model_request_reuses_sweep_validation(self):
        request = parse_request(
            json.dumps({"model": "gcn", "model_args": {"nodes": 24}}).encode(),
            "simulate",
        )
        assert request.point is not None
        assert request.point.model == "gcn"
        assert request.key() == request.key()

    def test_key_is_content_addressed(self):
        a = parse_request(json.dumps({"model": "gcn"}).encode(), "compile")
        b = parse_request(json.dumps({"model": "gcn"}).encode(), "compile")
        c = parse_request(json.dumps({"model": "sae"}).encode(), "compile")
        d = parse_request(json.dumps({"model": "gcn"}).encode(), "simulate")
        assert a.key() == b.key()
        assert a.key() != c.key()
        assert a.key() != d.key()  # same point, different action

    def test_rejections(self):
        cases = [
            (b"not json", "compile", "not valid JSON"),
            (b"[1, 2]", "compile", "JSON object"),
            (json.dumps({}).encode(), "compile", "exactly one of"),
            (
                json.dumps({"model": "gcn", "program": "x"}).encode(),
                "compile",
                "exactly one of",
            ),
            (json.dumps({"model": "nope"}).encode(), "compile", "unknown model"),
            (
                json.dumps({"model": "gcn", "typo_knob": 1}).encode(),
                "compile",
                "unknown request key",
            ),
            (
                json.dumps({"program": MM_PROGRAM}).encode(),
                "simulate",
                "compile-only",
            ),
            (
                json.dumps({"program": "garbage ("}).encode(),
                "compile",
                "does not parse",
            ),
            (
                json.dumps({"program": MM_PROGRAM, "schedule": "cs"}).encode(),
                "compile",
                "support schedule",
            ),
        ]
        for raw, action, match in cases:
            with pytest.raises(ServeError, match=match):
                parse_request(raw, action)


class TestSingleFlight:
    def test_concurrent_identical_work_runs_once(self):
        flight = SingleFlight()
        release = threading.Event()
        calls = []

        def work():
            calls.append(1)
            release.wait(timeout=60)
            return "value"

        results = []

        def runner():
            results.append(flight.run("k", work))

        leader = threading.Thread(target=runner)
        leader.start()
        while not calls:  # leader is inside work()
            pass
        followers = [threading.Thread(target=runner) for _ in range(4)]
        for t in followers:
            t.start()
        while flight.stats()["followers"] < 4:
            pass
        release.set()
        leader.join(timeout=60)
        for t in followers:
            t.join(timeout=60)
        assert len(calls) == 1
        assert [r[0] for r in results] == ["value"] * 5
        assert sorted(r[1] for r in results) == [False, True, True, True, True]

    def test_leader_exception_propagates_to_followers(self):
        flight = SingleFlight()
        with pytest.raises(RuntimeError, match="boom"):
            flight.run("k", lambda: (_ for _ in ()).throw(RuntimeError("boom")))
        # The key is released: the next run starts a fresh flight.
        assert flight.run("k", lambda: 7) == (7, False)


# ----------------------------------------------------------------------
# End-to-end round trips
# ----------------------------------------------------------------------


class TestServer:
    def test_healthz(self, server):
        status, _, payload = _get(server, "/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_paths_are_404(self, server):
        code, payload = _post_error(server, "/v1/nope", {"model": "gcn"})
        assert code == 404 and "unknown path" in payload["error"]
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(_url(server, "/nope"), timeout=60)
        assert excinfo.value.code == 404

    def test_compile_roundtrip_and_memory_hit(self, server):
        body = {"model": "gcn", "model_args": {"nodes": 20}}
        status, headers, payload = _post(server, "/v1/compile", body)
        assert status == 200
        assert headers["X-Fuseflow-Cache"] == "compiled"
        assert headers["X-Fuseflow-Deduped"] == "0"
        assert float(headers["X-Fuseflow-Compile-Ms"]) > 0
        assert payload["cache"] == "compiled"
        assert payload["regions"] > 0
        _, headers, payload = _post(server, "/v1/compile", body)
        assert headers["X-Fuseflow-Cache"] == "memory"
        assert payload["cache"] == "memory"

    def test_simulate_runs_and_verifies(self, server):
        status, headers, payload = _post(
            server,
            "/v1/simulate",
            {"model": "gcn", "model_args": {"nodes": 20}, "schedule": "partial"},
        )
        assert status == 200
        assert payload["verified"] is True
        assert payload["max_abs_err"] < 1e-6
        assert payload["metrics"]["cycles"] > 0

    def test_program_text_compile(self, server):
        status, _, payload = _post(
            server, "/v1/compile", {"program": MM_PROGRAM, "name": "mm"}
        )
        assert status == 200
        assert payload["program"] == "mm"
        assert payload["regions"] == 1

    def test_bad_request_is_400_and_counted(self, server):
        code, payload = _post_error(server, "/v1/compile", {"model": "nope"})
        assert code == 400 and "unknown model" in payload["error"]
        _, _, stats = _get(server, "/v1/stats")
        assert stats["errors"] == 1

    def test_disk_cache_survives_server_restart(self, server, tmp_path):
        body = {"model": "gcn", "model_args": {"nodes": 20}}
        _post(server, "/v1/compile", body)
        # A brand-new server process state over the same cache directory
        # answers from disk, not by recompiling.
        reborn = make_server(
            port=0, cache_dir=str(tmp_path / "cache"), quiet=True
        )
        thread = threading.Thread(target=reborn.serve_forever, daemon=True)
        thread.start()
        try:
            _, headers, payload = _post(reborn, "/v1/compile", body)
            assert headers["X-Fuseflow-Cache"] == "disk"
            assert payload["cache"] == "disk"
        finally:
            reborn.shutdown()
            reborn.server_close()
            thread.join(timeout=30)

    def test_identical_inflight_requests_compile_once(self, server):
        # K identical requests for a key nothing has compiled yet: the
        # single-flight layer plus the session cache guarantee exactly one
        # fresh pipeline run no matter how the threads interleave.
        body = {
            "model": "gpt3",
            "model_args": {"seq_len": 16, "n_layers": 2},
            "schedule": "partial",
        }
        k = 6
        barrier = threading.Barrier(k)
        responses = []
        errors = []

        def fire():
            barrier.wait()
            try:
                responses.append(_post(server, "/v1/simulate", body))
            except Exception as exc:  # pragma: no cover - the regression
                errors.append(exc)

        threads = [threading.Thread(target=fire) for _ in range(k)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=600)
        assert errors == []
        assert len(responses) == k
        _, _, stats = _get(server, "/v1/stats")
        assert stats["compiles"] == 1
        assert stats["requests"] == k
        # Exactly one response did the fresh compile itself; every other
        # either rode the in-flight execution (deduped) or arrived after
        # it finished and hit the session cache.
        fresh = [
            (headers, payload)
            for _, headers, payload in responses
            if headers["X-Fuseflow-Deduped"] == "0"
            and payload["cache"] == "compiled"
        ]
        assert len(fresh) == 1
        cycles = {r[2]["metrics"]["cycles"] for r in responses}
        assert len(cycles) == 1  # all K saw the same result

    def test_stats_shape(self, server):
        _post(server, "/v1/compile", {"model": "sae", "model_args": {"nodes": 12}})
        _, _, stats = _get(server, "/v1/stats")
        for key in (
            "requests",
            "compiles",
            "errors",
            "deduped",
            "inflight",
            "sessions",
            "disk_cache",
        ):
            assert key in stats, key
        assert stats["disk_cache"]["writes"] >= 1
