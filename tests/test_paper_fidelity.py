"""Golden tests pinning generated artifacts to the paper's figures.

These tests check the *structure* of what the compiler emits against the
paper's worked examples: the SpMV graph of Figure 2, the SpMM fusion table
of Figure 9, and the fused GraphSAGE neighborhood graph of Figures 10/20.
"""

import numpy as np
import pytest

from repro.comal import run_functional, run_timed
from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fuse_region
from repro.core.tables.lower import RegionLowerer
from repro.ftree import SparseTensor, csr, dense, sparse_vector


def lower(text, sids=None, order=None):
    prog = parse_program(text)
    fused = fuse_region(prog, sids or range(len(prog.statements)))
    lowerer = RegionLowerer(fused, prog.decls, order=order)
    return prog, lowerer, lowerer.lower()


class TestFigure2SpMV:
    """SpMV uses exactly the primitive inventory of the paper's Figure 2."""

    def test_primitive_inventory(self):
        _, _, graph = lower(
            "tensor B(4, 5): csr\ntensor c(5): sv\nT(i) = B(i, j) * c(j)"
        )
        kinds = sorted(n.prim.kind for n in graph.nodes.values())
        # Figure 2 regions: level scanners for B_i, B_j, C_j; a repeater for
        # C across i; the j intersecter; two value arrays; a multiplier; a
        # reducer over j; level writers for T.
        assert kinds.count("scan") == 3
        assert kinds.count("repeat") == 1
        assert kinds.count("intersect") == 1
        assert kinds.count("array") == 2
        assert kinds.count("alu") == 1
        assert kinds.count("vreduce") + kinds.count("reduce") == 1
        assert kinds.count("write") == 1

    def test_three_regions(self):
        _, _, graph = lower(
            "tensor B(4, 5): csr\ntensor c(5): sv\nT(i) = B(i, j) * c(j)"
        )
        regions = {n.region for n in graph.nodes.values()}
        assert regions == {"iterate", "compute", "construct"}


class TestFigure9SpMMTable:
    """The SpMM fusion table matches Figure 9c cell for cell."""

    TEXT = "tensor A(5, 6): csr\ntensor X(6, 3): dense\nT(i, j) = A(i, k) * X(k, j)"

    def test_table_cells(self):
        _, lowerer, _ = lower(self.TEXT)
        table = lowerer.table
        # Row i: LS on A, Rep of X's root over i.
        a_col, x_col = table.columns[0], table.columns[1]
        i, k, j = lowerer.order
        assert table.get(i, a_col).kind == "ls"
        assert table.get(i, x_col).kind == "rep"
        # Row k: LS on A's inner level, intersect cell on X's column.
        assert table.get(k, a_col).kind == "ls"
        assert table.get(k, x_col).kind == "isect"
        # Row j: Rep of A's refs over j, LS on X.
        assert table.get(j, a_col).kind == "rep"
        assert table.get(j, x_col).kind == "ls"
        # Val row: two value cells plus the reduction.
        assert table.get("val", a_col).kind == "val"
        assert table.get("val", x_col).kind == "val"
        kinds = table.cell_kinds()
        assert kinds["vred"] == 1 and kinds["compute"] == 1

    def test_render_stable(self):
        _, lowerer, _ = lower(self.TEXT)
        text = lowerer.table.render()
        assert "LS(<A." in text and "Rep(" in text and "&_" in text


GRAPHSAGE_NBOR = """
tensor A(6, 6): csr
tensor X(6, 4): dense
tensor O(4, 3): dense
T0(i, m) = A(i, l) * X(l, m)
T1(i, j) = T0(i, m) * O(m, j)
"""


class TestFigure10GraphSAGE:
    """The fused GraphSAGE neighborhood kernel has Figure 10's shape."""

    def test_factored_iteration(self):
        _, lowerer, graph = lower(GRAPHSAGE_NBOR)
        kinds = [n.prim.kind for n in graph.nodes.values()]
        # Two interleaved input-iteration/compute pipelines: two vector
        # reducers (Red1_l and Red1_m), two intersecters, two multipliers.
        assert kinds.count("vreduce") == 2
        assert kinds.count("intersect") == 2
        assert kinds.count("alu") == 2

    def test_reducer_feeds_downstream_intersect(self):
        """Red1_l's coordinate stream drives the second intersection —
        the defining interleaving of factored iteration (Figure 11)."""
        _, lowerer, graph = lower(GRAPHSAGE_NBOR)
        vreduce_ids = [
            nid for nid, n in graph.nodes.items() if n.prim.kind == "vreduce"
        ]
        first_vr = vreduce_ids[0]
        downstream = set()
        for node in graph.nodes.values():
            for port in node.inputs.values():
                if port.node_id == first_vr:
                    downstream.add(node.prim.kind)
        assert "intersect" in downstream

    def test_table_reference_cells(self):
        """The consumer's columns hold reference cells <T0.*> (Figure 20)."""
        _, lowerer, _ = lower(GRAPHSAGE_NBOR)
        ref_cells = [
            cell.text
            for cell in lowerer.table.cells.values()
            if cell.kind == "ref"
        ]
        assert any("T0" in text for text in ref_cells)

    def test_functional(self):
        prog, _, graph = lower(GRAPHSAGE_NBOR)
        rng = np.random.default_rng(0)
        a = (rng.random((6, 6)) < 0.4) * rng.random((6, 6))
        x = rng.random((6, 4))
        o = rng.random((4, 3))
        binding = {
            "A": SparseTensor.from_dense(a, csr(), "A"),
            "X": SparseTensor.from_dense(x, dense(2), "X"),
            "O": SparseTensor.from_dense(o, dense(2), "O"),
        }
        result = run_timed(graph, binding)
        np.testing.assert_allclose(
            result.results["T1"].to_dense(), a @ x @ o, atol=1e-12
        )


class TestDeterminism:
    def test_functional_execution_deterministic(self):
        prog, _, graph = lower(GRAPHSAGE_NBOR)
        rng = np.random.default_rng(1)
        binding = {
            "A": SparseTensor.from_dense(
                (rng.random((6, 6)) < 0.5) * 1.0, csr(), "A"
            ),
            "X": SparseTensor.from_dense(rng.random((6, 4)), dense(2), "X"),
            "O": SparseTensor.from_dense(rng.random((4, 3)), dense(2), "O"),
        }
        first = run_functional(graph, binding)
        second = run_functional(graph, binding)
        assert first.streams.keys() == second.streams.keys()
        for key in first.streams:
            assert len(first.streams[key]) == len(second.streams[key])
        assert first.total_ops() == second.total_ops()
        assert first.total_dram_bytes() == second.total_dram_bytes()
