"""Cross-schedule equivalence properties.

The core soundness claim of a fusion compiler: every schedule of a program
computes the same function.  These tests generate random sparse operator
chains and check that unfused, partially fused, and fully fused schedules
(and, where applicable, the global-iteration rewrite and random dataflow
orders) all agree with a dense numpy oracle.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.einsum.parser import parse_program
from repro.core.schedule.autotune import contiguous_partitions
from repro.core.schedule.schedule import cs_rewrite, fully_fused, fused_groups, unfused
from repro.ftree import SparseTensor, csr, dense
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


def _chain_program(n_layers, dims, ops):
    """Build  Y = f_n(... f_1(A @ X) W ...)  style chains."""
    lines = [f"tensor A({dims[0]}, {dims[0]}): csr", f"tensor X({dims[0]}, {dims[1]}): dense"]
    stmt_lines = ["T0(i0, j0) = A(i0, k0) * X(k0, j0)"]
    prev = "T0"
    prev_dim = dims[1]
    for layer in range(n_layers):
        op = ops[layer % len(ops)]
        if op == "matmul":
            out_dim = dims[(layer + 2) % len(dims)] or 4
            lines.append(f"tensor W{layer}({prev_dim}, {out_dim}): dense")
            stmt_lines.append(
                f"T{layer + 1}(i{layer + 1}, j{layer + 1}) = "
                f"{prev}(i{layer + 1}, k{layer + 1}) * W{layer}(k{layer + 1}, j{layer + 1})"
            )
            prev_dim = out_dim
        elif op == "bias":
            lines.append(f"tensor b{layer}({prev_dim}): dense")
            stmt_lines.append(
                f"T{layer + 1}(i{layer + 1}, j{layer + 1}) = "
                f"{prev}(i{layer + 1}, j{layer + 1}) + b{layer}(j{layer + 1})"
            )
        else:  # unary
            stmt_lines.append(
                f"T{layer + 1}(i{layer + 1}, j{layer + 1}) = "
                f"{op}({prev}(i{layer + 1}, j{layer + 1}))"
            )
        prev = f"T{layer + 1}"
    return parse_program("\n".join(lines + stmt_lines)), prev


def _reference(program, binding, out_name):
    """Dense numpy oracle evaluated statement by statement."""
    env = {name: tensor.to_dense() for name, tensor in binding.items()}
    unary = {"relu": lambda x: np.maximum(x, 0.0), "exp": np.exp, "abs": np.abs}
    for stmt in program.statements:
        if stmt.kind == "unary":
            env[stmt.lhs.tensor] = unary[stmt.op](env[stmt.operands[0].tensor])
        elif stmt.op == "add":
            a = env[stmt.operands[0].tensor]
            b = env[stmt.operands[1].tensor]
            env[stmt.lhs.tensor] = a + b
        else:
            a = env[stmt.operands[0].tensor]
            b = env[stmt.operands[1].tensor]
            env[stmt.lhs.tensor] = a @ b
    return env[out_name]


@settings(max_examples=12, deadline=None)
@given(
    n_layers=st.integers(1, 4),
    density=st.sampled_from([0.2, 0.5, 0.9]),
    # Unary ops restricted to zero-preserving functions: the machine applies
    # unaries to *stored* values only (sparse masked semantics, see
    # UnaryALU), so exp/sigmoid on implicit zeros intentionally differ from
    # a dense oracle.
    ops=st.lists(
        st.sampled_from(["matmul", "bias", "relu", "abs"]),
        min_size=1,
        max_size=4,
    ),
    seed=st.integers(0, 10_000),
)
def test_all_schedules_agree(n_layers, density, ops, seed):
    dims = (6, 5, 4, 3)
    program, out_name = _chain_program(n_layers, dims, ops)
    rng = np.random.default_rng(seed)
    binding = {}
    for name, decl in program.decls.items():
        data = rng.random(decl.shape)
        if decl.fmt.name() == "csr":
            data = data * (rng.random(decl.shape) < density)
        binding[name] = SparseTensor.from_dense(data, decl.fmt, name)
    expected = _reference(program, binding, out_name)

    n = len(program.statements)
    schedules = [unfused(program), fully_fused(program)]
    # One arbitrary contiguous partial partition.
    partitions = contiguous_partitions(n, max_partitions=8)
    schedules.append(fused_groups(program, partitions[seed % len(partitions)]))
    for schedule in schedules:
        result = run(program, binding, schedule)
        out = result.tensors[out_name].to_dense()
        np.testing.assert_allclose(out, expected, atol=1e-9, err_msg=schedule.name)


@settings(max_examples=10, deadline=None)
@given(
    density=st.sampled_from([0.15, 0.4, 0.8]),
    seed=st.integers(0, 10_000),
)
def test_global_rewrite_matches_factored(density, seed):
    """C+S global iteration and FuseFlow factored iteration agree."""
    program = parse_program(
        """
tensor A(5, 6): csr
tensor B(6, 4): dense
tensor C(4, 3): dense
E(i, j) = A(i, k) * B(k, j)
D(i, l) = E(i, j2) * C(j2, l)
"""
    )
    rng = np.random.default_rng(seed)
    a = (rng.random((5, 6)) < density) * rng.random((5, 6))
    b = rng.random((6, 4))
    c = rng.random((4, 3))
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "B": SparseTensor.from_dense(b, dense(2), "B"),
        "C": SparseTensor.from_dense(c, dense(2), "C"),
    }
    expected = a @ b @ c
    for schedule in (fully_fused(program), cs_rewrite(program, [[0, 1]])):
        result = run(program, binding, schedule)
        np.testing.assert_allclose(
            result.tensors["D"].to_dense(), expected, atol=1e-9,
            err_msg=schedule.name,
        )


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_metrics_invariants(seed):
    """Simulation metrics satisfy basic sanity invariants for any input."""
    rng = np.random.default_rng(seed)
    a = (rng.random((7, 7)) < 0.4) * rng.random((7, 7))
    x = rng.random((7, 5))
    program = parse_program(
        "tensor A(7, 7): csr\ntensor X(7, 5): dense\nT(i, j) = A(i, k) * X(k, j)"
    )
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
    }
    result = run(program, binding, fully_fused(program))
    metrics = result.metrics
    assert metrics.cycles > 0
    assert metrics.flops >= 0
    assert metrics.dram_bytes > 0
    # Gustavson SpMM work: exactly 2 flops per (nnz(A) row entry, column).
    assert metrics.flops == 2 * np.count_nonzero(a) * x.shape[1] - np.count_nonzero(
        (a != 0).sum(axis=1)
    ) * x.shape[1]
