"""Autoscheduler, simulation trace, and CLI tests."""

import json

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.comal import RDA_MACHINE, run_timed
from repro.comal.trace import (
    bottleneck,
    busy_by_class,
    chrome_trace,
    node_reports,
    render_report,
)
from repro.core.heuristic.model import stats_from_binding
from repro.core.schedule.autotune import (
    autotune,
    contiguous_partitions,
    enumerate_schedules,
)
from repro.core.fusion.fuse import fuse_region
from repro.core.tables.lower import RegionLowerer
from repro.core.einsum.parser import parse_program
from repro.ftree import SparseTensor, csr, dense
from repro.models.gcn import gcn_on_synthetic
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


class TestContiguousPartitions:
    def test_counts(self):
        # 2^(n-1) contiguous partitions of n statements.
        assert len(contiguous_partitions(1)) == 1
        assert len(contiguous_partitions(3)) == 4
        assert len(contiguous_partitions(5)) == 16

    def test_cap(self):
        assert len(contiguous_partitions(12, max_partitions=20)) == 20

    def test_each_is_a_partition(self):
        for partition in contiguous_partitions(4):
            flat = [sid for region in partition for sid in region]
            assert flat == [0, 1, 2, 3]

    def test_coarsest_first(self):
        partitions = contiguous_partitions(3)
        assert partitions[0] == [[0, 1, 2]]


class TestAutotune:
    @pytest.fixture(scope="class")
    def bundle(self):
        return gcn_on_synthetic(nodes=30, density=0.1, seed=0)

    def test_enumerate_schedules(self, bundle):
        schedules = enumerate_schedules(bundle.program, max_candidates=8)
        assert len(schedules) == 8
        for schedule in schedules:
            schedule.validate(bundle.program)

    def test_autotune_finds_good_schedule(self, bundle):
        stats = stats_from_binding(bundle.binding)
        tuned = autotune(
            bundle.program,
            bundle.binding,
            stats,
            candidates=bundle.schedules(),
            simulate_top=3,
        )
        # The tuned pick must match the exhaustive simulation winner.
        cycles = {
            s.name: run(bundle.program, bundle.binding, s).metrics.cycles
            for s in bundle.schedules()
        }
        assert tuned.best.name == min(cycles, key=cycles.get)
        assert tuned.measured_cycles == pytest.approx(min(cycles.values()))
        assert tuned.candidates_simulated <= 3

    def test_autotune_enumerated_space(self, bundle):
        stats = stats_from_binding(bundle.binding)
        tuned = autotune(
            bundle.program, bundle.binding, stats,
            simulate_top=2, max_candidates=12,
        )
        assert tuned.candidates_considered > 2
        # The winner beats (or ties) the unfused baseline.
        unfused_cycles = run(
            bundle.program, bundle.binding, bundle.schedule("unfused")
        ).metrics.cycles
        assert tuned.measured_cycles <= unfused_cycles * 1.05


@pytest.fixture
def spmm_run():
    prog = parse_program(
        "tensor A(8, 8): csr\ntensor X(8, 4): dense\nT(i, j) = A(i, k) * X(k, j)"
    )
    lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls)
    graph = lowerer.lower()
    rng = np.random.default_rng(0)
    binding = {
        "A": SparseTensor.from_dense(
            (rng.random((8, 8)) < 0.4) * rng.random((8, 8)), csr(), "A"
        ),
        "X": SparseTensor.from_dense(rng.random((8, 4)), dense(2), "X"),
    }
    return graph, run_timed(graph, binding)


class TestTrace:
    def test_node_reports_sorted(self, spmm_run):
        graph, result = spmm_run
        reports = node_reports(graph, result)
        assert len(reports) == graph.node_count()
        busy = [r.busy_cycles for r in reports]
        assert busy == sorted(busy, reverse=True)

    def test_bottleneck_is_busiest(self, spmm_run):
        graph, result = spmm_run
        top = bottleneck(graph, result)
        assert top.busy_cycles == max(result.node_busy.values())

    def test_busy_by_class(self, spmm_run):
        graph, result = spmm_run
        by_class = busy_by_class(graph, result)
        assert "scan" in by_class and by_class["scan"] > 0

    def test_chrome_trace_valid_json(self, spmm_run):
        graph, result = spmm_run
        trace = json.loads(chrome_trace(graph, result))
        assert len(trace["traceEvents"]) == graph.node_count()
        for event in trace["traceEvents"]:
            assert event["ph"] == "X" and event["dur"] > 0

    def test_render_report(self, spmm_run):
        graph, result = spmm_run
        text = render_report(graph, result, top=5)
        assert "cycles" in text and "scan" in text


class TestCLI:
    def test_run_gcn(self, capsys):
        code = cli_main(
            ["run", "--model", "gcn", "--nodes", "30", "--density", "0.1",
             "--fusion", "partial"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles" in out and "max |err|" in out

    def test_sweep_quick(self, capsys):
        code = cli_main(["sweep", "quick", "--model", "sae", "--nodes", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "unfused" in out and "full" in out

    def test_estimate(self, capsys):
        code = cli_main(["estimate", "--model", "gcn", "--nodes", "24"])
        out = capsys.readouterr().out
        assert code == 0
        assert "schedule" in out

    def test_compile_show_table(self, capsys):
        code = cli_main(
            ["compile", "--model", "gcn", "--nodes", "24", "--fusion",
             "partial", "--show-table"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fusion table" in out

    def test_run_with_par(self, capsys):
        code = cli_main(
            ["run", "--model", "sae", "--nodes", "16", "--fusion", "full"]
        )
        assert code == 0

    def test_gpt3(self, capsys):
        code = cli_main(
            ["run", "--model", "gpt3", "--seq-len", "16", "--d-model", "8",
             "--block", "4", "--fusion", "full"]
        )
        assert code == 0
