"""Differential tests: columnar kernels vs the legacy token interpreter.

For every golden model at its canonical configuration and every fusion
granularity, the columnar (vectorized) execution must reproduce the legacy
per-token execution *exactly*: same streams token for token, same per-node
statistics (tokens/ops/DRAM bytes), same output tensors bit for bit, and
the same timed metrics.  This is the contract that lets the golden traces
in ``tests/golden/`` stand unregenerated across the representation change.
"""

import numpy as np
import pytest

from repro.comal.engine import run_timed
from repro.comal.functional import run_functional
from repro.comal.machines import RDA_MACHINE
from repro.driver import Session
from repro.sam.token import TokenStream, streams_equal
from repro.sweep import SweepPoint, build_bundle

#: The canonical golden configurations (tests/test_golden_traces.py).
POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

GRANULARITIES = ("unfused", "partial", "full")

STAT_FIELDS = ("tokens_in", "tokens_out", "ops", "dram_reads", "dram_writes")


@pytest.fixture(scope="module")
def session():
    return Session(machine=RDA_MACHINE)


def _regions(session, model, granularity):
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    exe = session.compile(bundle.program, bundle.schedule(granularity))
    return bundle, exe


@pytest.mark.parametrize("granularity", GRANULARITIES)
@pytest.mark.parametrize("model", sorted(POINTS))
def test_streams_stats_and_timing_match(model, granularity, session):
    bundle, exe = _regions(session, model, granularity)
    bind_l = dict(bundle.binding)
    bind_c = dict(bundle.binding)
    for region in exe.regions:
        for orig, new_name, mode_order in region.transposes:
            for bind in (bind_l, bind_c):
                if new_name not in bind:
                    bind[new_name] = bind[orig].permuted_copy(
                        mode_order, name=new_name
                    )
        graph = region.graph
        legacy = run_functional(
            graph, bind_l, RDA_MACHINE.scratchpad_bytes, columnar=False
        )
        columnar = run_functional(
            graph, bind_c, RDA_MACHINE.scratchpad_bytes, columnar=True
        )

        assert set(legacy.streams) == set(columnar.streams)
        for key in legacy.streams:
            got = columnar.streams[key]
            assert isinstance(got, TokenStream), key
            assert streams_equal(got, legacy.streams[key]), (
                f"{model}/{granularity}/{graph.name} stream {key} diverged"
            )
        for node_id, want in legacy.stats.items():
            have = columnar.stats[node_id]
            for fieldname in STAT_FIELDS:
                assert getattr(have, fieldname) == getattr(want, fieldname), (
                    f"{model}/{granularity}/{graph.name} {node_id}.{fieldname}"
                )
        for name, tensor in legacy.results.items():
            assert np.array_equal(
                tensor.to_dense(), columnar.results[name].to_dense()
            ), f"{model}/{granularity} result {name} diverged"

        timed_l = run_timed(graph, bind_l, RDA_MACHINE, functional=legacy)
        timed_c = run_timed(graph, bind_c, RDA_MACHINE, functional=columnar)
        assert timed_c.flops == timed_l.flops
        assert timed_c.dram_bytes == timed_l.dram_bytes
        assert timed_c.tokens == timed_l.tokens
        assert timed_c.cycles == pytest.approx(timed_l.cycles, rel=1e-9)
        for node_id, busy in timed_l.node_busy.items():
            assert timed_c.node_busy[node_id] == pytest.approx(busy, rel=1e-9)

        bind_l.update(legacy.results)
        bind_c.update(columnar.results)


@pytest.mark.parametrize("model", sorted(POINTS))
def test_end_to_end_metrics_match(model):
    """Full executable runs agree between representations (memo off)."""
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    res = {}
    for label, columnar in (("legacy", False), ("columnar", True)):
        sess = Session(
            machine=RDA_MACHINE, columnar=columnar, sim_cache=False
        )
        exe = sess.compile(bundle.program, bundle.schedule("partial"))
        res[label] = exe(bundle.binding).metrics
    legacy, columnar = res["legacy"], res["columnar"]
    assert columnar.flops == legacy.flops
    assert columnar.dram_bytes == legacy.dram_bytes
    assert columnar.tokens == legacy.tokens
    assert columnar.cycles == pytest.approx(legacy.cycles, rel=1e-9)
    assert columnar.kernel_cycles == pytest.approx(
        legacy.kernel_cycles, rel=1e-9
    )


def test_memoized_executions_reuse_results():
    """Repeated executions of a cached executable hit the simulator memo."""
    bundle = build_bundle(SweepPoint.make("sae", model_args=POINTS["sae"]))
    session = Session(machine=RDA_MACHINE, sim_cache=True)
    exe = session.compile(bundle.program, bundle.schedule("partial"))
    first = exe(bundle.binding)
    second = exe(bundle.binding)
    assert second.metrics.cycles == first.metrics.cycles
    assert second.metrics.flops == first.metrics.flops
    # The underlying SimResults are shared objects on the hot path.
    assert [id(r) for r in second.region_results] == [
        id(r) for r in first.region_results
    ]
    # Fresh tensors (same values, new objects) miss the memo but agree.
    rebuilt = build_bundle(SweepPoint.make("sae", model_args=POINTS["sae"]))
    third = exe(rebuilt.binding)
    assert third.metrics.cycles == first.metrics.cycles
