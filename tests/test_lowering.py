"""Fusion-table lowering tests: kernels verified against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from hypothesis.extra import numpy as hnp

from repro.comal import run_functional, run_timed
from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fold_masks, fuse_region
from repro.core.tables.lower import LoweringError, RegionLowerer
from repro.ftree import SparseTensor, csc, csr, dcsr, dense, sparse_vector


def lower_and_run(text, arrays, out_name, order=None, sids=None, transform=None):
    prog = parse_program(text)
    fused = fuse_region(prog, sids or range(len(prog.statements)))
    if transform:
        fused = transform(fused)
    lowerer = RegionLowerer(fused, prog.decls, order=order)
    graph = lowerer.lower()
    binding = {}
    for name, (array, fmt) in arrays.items():
        binding[name] = SparseTensor.from_dense(array, fmt, name=name)
    result = run_timed(graph, binding)
    return result.results[out_name].to_dense(), result, lowerer


class TestSpMM:
    """The paper's Figure 9 running example."""

    def setup_method(self):
        rng = np.random.default_rng(0)
        self.a = (rng.random((5, 6)) < 0.4) * rng.random((5, 6))
        self.x = rng.random((6, 3))

    def test_correct(self):
        out, result, _ = lower_and_run(
            "tensor A(5, 6): csr\ntensor X(6, 3): dense\nT(i, j) = A(i, k) * X(k, j)",
            {"A": (self.a, csr()), "X": (self.x, dense(2))},
            "T",
        )
        np.testing.assert_allclose(out, self.a @ self.x)

    def test_fusion_table_matches_figure9(self):
        prog = parse_program(
            "tensor A(5, 6): csr\ntensor X(6, 3): dense\nT(i, j) = A(i, k) * X(k, j)"
        )
        lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls)
        lowerer.lower()
        kinds = lowerer.table.cell_kinds()
        # Figure 9c: 3 level scanners, 2 repeats, 2 value cells, 1 intersect,
        # 1 higher-order reduction, 1 compute.
        assert kinds["ls"] == 3
        assert kinds["rep"] == 2
        assert kinds["val"] == 2
        assert kinds["isect"] == 1
        assert kinds["vred"] == 1

    def test_graph_regions(self):
        prog = parse_program(
            "tensor A(5, 6): csr\ntensor X(6, 3): dense\nT(i, j) = A(i, k) * X(k, j)"
        )
        lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls)
        graph = lowerer.lower()
        regions = {node.region for node in graph.nodes.values()}
        assert regions == {"iterate", "compute", "construct"}

    def test_inner_product_order(self):
        """Order i->j->k (inner product) uses a scalar reduce.

        Concordance requires the second operand stored (j, k): inner-product
        traversal of a row-major (k, j) matrix would be discordant and the
        POG rejects it (tested in TestErrors).
        """
        prog = parse_program(
            "tensor A(5, 6): dense\ntensor Xt(3, 6): dense\nT(i, j) = A(i, k) * Xt(j, k)"
        )
        fused = fuse_region(prog, [0])
        names = fused.statements[0].all_indices()  # (i, j, u)
        order = [names[0], names[1], names[2]]
        lowerer = RegionLowerer(fused, prog.decls, order=order)
        graph = lowerer.lower()
        kinds = [n.prim.kind for n in graph.nodes.values()]
        assert "reduce" in kinds and "vreduce" not in kinds
        binding = {
            "A": SparseTensor.from_dense(self.a, dense(2), "A"),
            "Xt": SparseTensor.from_dense(self.x.T.copy(), dense(2), "Xt"),
        }
        result = run_timed(graph, binding)
        np.testing.assert_allclose(result.results["T"].to_dense(), self.a @ self.x)


class TestFormats:
    @pytest.mark.parametrize("fmt", [csr(), dcsr(), dense(2)])
    def test_spmm_across_formats(self, fmt):
        rng = np.random.default_rng(1)
        a = (rng.random((4, 5)) < 0.5) * rng.random((4, 5))
        x = rng.random((5, 3))
        out, _, _ = lower_and_run(
            f"tensor A(4, 5): {fmt.name()}\ntensor X(5, 3): dense\n"
            "T(i, j) = A(i, k) * X(k, j)",
            {"A": (a, fmt), "X": (x, dense(2))},
            "T",
        )
        np.testing.assert_allclose(out, a @ x)

    def test_csc_operand(self):
        """CSC forces a column-major traversal via the POG."""
        rng = np.random.default_rng(2)
        a = (rng.random((4, 5)) < 0.5) * rng.random((4, 5))
        v = rng.random(4)
        # y_j = sum_i A_ij v_i with A in CSC: concordant order is j -> i...
        # stored column-major the fused order must put j (columns) first.
        out, _, _ = lower_and_run(
            "tensor A(4, 5): csc\ntensor v(4): dense\nY(j) = A(i, j) * v(i)",
            {"A": (a, csc()), "v": (v, dense(1))},
            "Y",
        )
        np.testing.assert_allclose(out, a.T @ v)


class TestElementwise:
    def test_sparse_elementwise_mul(self):
        rng = np.random.default_rng(3)
        a = (rng.random((4, 4)) < 0.5) * rng.random((4, 4))
        b = (rng.random((4, 4)) < 0.5) * rng.random((4, 4))
        out, _, _ = lower_and_run(
            "tensor A(4, 4): csr\ntensor B(4, 4): csr\nT(i, j) = A(i, j) * B(i, j)",
            {"A": (a, csr()), "B": (b, csr())},
            "T",
        )
        np.testing.assert_allclose(out, a * b)

    def test_sparse_add_union(self):
        rng = np.random.default_rng(4)
        a = (rng.random((4, 4)) < 0.4) * rng.random((4, 4))
        b = (rng.random((4, 4)) < 0.4) * rng.random((4, 4))
        out, _, _ = lower_and_run(
            "tensor A(4, 4): csr\ntensor B(4, 4): csr\nT(i, j) = A(i, j) + B(i, j)",
            {"A": (a, csr()), "B": (b, csr())},
            "T",
        )
        np.testing.assert_allclose(out, a + b)

    def test_vector_broadcast_add(self):
        rng = np.random.default_rng(5)
        a = rng.random((3, 4))
        b = rng.random(4)
        out, _, _ = lower_and_run(
            "tensor A(3, 4): dense\ntensor b(4): dense\nT(i, j) = A(i, j) + b(j)",
            {"A": (a, dense(2)), "b": (b, dense(1))},
            "T",
        )
        np.testing.assert_allclose(out, a + b)

    def test_unary_chain(self):
        a = np.array([[-1.0, 2.0], [3.0, -4.0]])
        out, _, _ = lower_and_run(
            "tensor A(2, 2): dense\nY(i, j) = relu(A(i, j))\nZ(i, j) = exp(Y(i, j))",
            {"A": (a, dense(2))},
            "Z",
        )
        np.testing.assert_allclose(out, np.exp(np.maximum(a, 0)))


class TestStreamingFusion:
    def test_chained_matmul(self):
        rng = np.random.default_rng(6)
        a = (rng.random((4, 5)) < 0.5) * rng.random((4, 5))
        x = rng.random((5, 3))
        w = rng.random((3, 2))
        out, result, _ = lower_and_run(
            """
tensor A(4, 5): csr
tensor X(5, 3): dense
tensor W(3, 2): dense
T0(i, m) = A(i, l) * X(l, m)
T1(i, j) = T0(i, m) * W(m, j)
""",
            {"A": (a, csr()), "X": (x, dense(2)), "W": (w, dense(2))},
            "T1",
        )
        np.testing.assert_allclose(out, a @ x @ w)

    def test_graphsage_neighborhood_matches_figure10(self):
        """The paper's GraphSAGE T_nbor example (Figure 10)."""
        prog = parse_program(
            """
tensor A(4, 4): csr
tensor X(4, 3): dense
tensor O(3, 2): dense
T0(i, m) = A(i, l) * X(l, m)
T1(i, j) = T0(i, m) * O(m, j)
"""
        )
        lowerer = RegionLowerer(fuse_region(prog, [0, 1]), prog.decls)
        graph = lowerer.lower()
        kinds = [n.prim.kind for n in graph.nodes.values()]
        # Factored iteration: two vector reducers, interleaved (Figure 11
        # right), not a single global iteration space.
        assert kinds.count("vreduce") == 2

    def test_fanout_intermediate(self):
        """One producer streaming into two consumers."""
        rng = np.random.default_rng(7)
        x = rng.random((3, 4))
        out, _, _ = lower_and_run(
            """
tensor X(3, 4): dense
T(i, j) = relu(X(i, j))
A(i, j) = exp(T(i, j))
B(i, j) = neg(T(i, j))
Y(i, j) = A(i, j) + B(i, j)
""",
            {"X": (x, dense(2))},
            "Y",
        )
        t = np.maximum(x, 0)
        np.testing.assert_allclose(out, np.exp(t) - t)


class TestRecomputeFusion:
    def test_nested_matmul(self):
        rng = np.random.default_rng(8)
        a = (rng.random((4, 6)) < 0.5) * rng.random((4, 6))
        b = (rng.random((6, 5)) < 0.5) * rng.random((6, 5))
        c = rng.random((5, 3))
        out, result, _ = lower_and_run(
            """
tensor A(4, 6): csr
tensor B(6, 5): csr
tensor C(5, 3): dense
E(k, l) = B(k, j) * C(j, l)
D(i, l) = A(i, k) * E(k, l)
""",
            {"A": (a, csr()), "B": (b, csr()), "C": (c, dense(2))},
            "D",
        )
        np.testing.assert_allclose(out, a @ (b @ c))

    def test_recompute_costs_more_flops(self):
        rng = np.random.default_rng(9)
        a = (rng.random((6, 6)) < 0.6) * rng.random((6, 6))
        b = rng.random((6, 4))
        c = rng.random((4, 3))
        text = """
tensor A(6, 6): csr
tensor B(6, 4): dense
tensor C(4, 3): dense
E(k, l) = B(k, j) * C(j, l)
D(i, l) = A(i, k) * E(k, l)
"""
        arrays = {"A": (a, csr()), "B": (b, dense(2)), "C": (c, dense(2))}
        _, fused_result, _ = lower_and_run(text, arrays, "D")
        # Unfused: each statement in isolation.
        prog = parse_program(text)
        total_unfused_flops = 0
        binding = {n: SparseTensor.from_dense(arr, f, n) for n, (arr, f) in arrays.items()}
        low0 = RegionLowerer(fuse_region(prog, [0]), prog.decls)
        res0 = run_timed(low0.lower(), binding)
        binding["E"] = res0.results["E"]
        from repro.core.einsum.ast import TensorDecl
        decls = dict(prog.decls)
        decls["E"] = TensorDecl("E", low0.output_specs[0].shape, low0.output_specs[0].fmt)
        low1 = RegionLowerer(fuse_region(prog, [1], decls=decls), decls)
        res1 = run_timed(low1.lower(), binding)
        total_unfused_flops = res0.flops + res1.flops
        assert fused_result.flops > total_unfused_flops

    def test_global_iteration_rewrite(self):
        """C+S-style single-Einsum lowering (global iteration space)."""
        from repro.core.fusion.fuse import merge_contractions

        rng = np.random.default_rng(10)
        a = (rng.random((4, 6)) < 0.5) * rng.random((4, 6))
        b = rng.random((6, 5))
        c = rng.random((5, 3))
        out, _, _ = lower_and_run(
            """
tensor A(4, 6): csr
tensor B(6, 5): dense
tensor C(5, 3): dense
E(i, j) = A(i, k) * B(k, j)
D(i, l) = E(i, j2) * C(j2, l)
""",
            {"A": (a, csr()), "B": (b, dense(2)), "C": (c, dense(2))},
            "D",
            transform=merge_contractions,
        )
        np.testing.assert_allclose(out, a @ b @ c)


class TestMaskedSDDMM:
    def test_fold_gates_compute(self):
        rng = np.random.default_rng(11)
        q = rng.random((5, 4))
        kt = rng.random((6, 4))
        m = (rng.random((5, 6)) < 0.3) * 1.0
        text = """
tensor Q(5, 4): dense
tensor Kt(6, 4): dense
tensor M(5, 6): csr
P(i, j) = Q(i, k) * Kt(j, k)
S(i, j) = P(i, j) * M(i, j)
"""
        arrays = {"Q": (q, dense(2)), "Kt": (kt, dense(2)), "M": (m, csr())}
        out, folded, _ = lower_and_run(text, arrays, "S", transform=fold_masks)
        np.testing.assert_allclose(out, (q @ kt.T) * m)
        out2, unfolded, _ = lower_and_run(text, arrays, "S")
        np.testing.assert_allclose(out2, (q @ kt.T) * m)
        # Folding the mask gates the k-loop: strictly fewer multiplications.
        assert folded.flops < unfolded.flops


class TestErrors:
    def test_invalid_order_rejected(self):
        prog = parse_program(
            "tensor A(4, 5): csr\ntensor X(5, 3): dense\nT(i, j) = A(i, k) * X(k, j)"
        )
        fused = fuse_region(prog, [0])
        names = fused.statements[0].all_indices()  # (i, j, u)
        with pytest.raises(LoweringError):
            # k before i violates A's CSR mode order.
            RegionLowerer(fused, prog.decls, order=[names[2], names[0], names[1]])

    def test_missing_decl_rejected(self):
        prog = parse_program(
            "tensor A(4, 5): csr\ntensor X(5, 3): dense\nT(i, j) = A(i, k) * X(k, j)"
        )
        fused = fuse_region(prog, [0])
        with pytest.raises(LoweringError):
            RegionLowerer(fused, {}).lower()

    def test_output_index_missing_rejected(self):
        prog = parse_program("tensor A(4,): dense\nT(i, j) = A(i) * A(j)")
        # j is fine here (comes from second operand); build a truly broken one:
        from repro.core.einsum.ast import Access, Statement

        stmt = Statement(
            lhs=Access("T", ("i", "z")),
            kind="contract",
            op="mul",
            operands=(Access("A", ("i",)),),
        )
        prog2 = parse_program("tensor A(4,): dense")
        prog2.add(stmt)
        fused = fuse_region(prog2, [0])
        with pytest.raises(LoweringError):
            RegionLowerer(fused, prog2.decls).lower()


@settings(max_examples=25, deadline=None)
@given(
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 5), st.integers(1, 5)),
        elements=st.sampled_from([0.0, 0.0, 1.0, 2.0, -1.5]),
    ),
    hnp.arrays(
        np.float64,
        st.tuples(st.integers(1, 5),),
        elements=st.sampled_from([0.0, 1.0, 3.0]),
    ),
)
def test_spmv_property(a, v):
    """Random SpMV agrees with numpy for compatible shapes."""
    if a.shape[1] != v.shape[0]:
        v = np.resize(v, a.shape[1])
    out, _, _ = lower_and_run(
        f"tensor A({a.shape[0]}, {a.shape[1]}): csr\n"
        f"tensor v({a.shape[1]},): dense\n"
        "y(i) = A(i, j) * v(j)",
        {"A": (a, csr()), "v": (v, dense(1))},
        "y",
    )
    np.testing.assert_allclose(out, a @ v, atol=1e-12)
