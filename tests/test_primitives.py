"""Unit tests for SAM/SAMML dataflow primitives against hand-derived streams."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ftree import SparseTensor, csr, dense, sparse_vector
from repro.sam.primitives import (
    AlignCheck,
    BinaryALU,
    CrdDrop,
    ExecutionContext,
    FiberNorm,
    FiberSoftmax,
    Intersect,
    LevelScanner,
    Locate,
    NodeStats,
    Reduce,
    Repeat,
    Root,
    TensorWriter,
    UnaryALU,
    Union,
    ValArray,
    VectorReducer,
)
from repro.sam.primitives.repeat import ScalarRepeat
from repro.sam.token import (
    CRD,
    EMPTY_TOKEN,
    REF,
    VAL,
    StreamProtocolError,
    crd,
    done,
    nest_to_stream,
    pretty,
    ref,
    stop,
    val,
)


def process(prim, ins, binding=None):
    ctx = ExecutionContext(binding or {})
    return prim.process(ins, ctx, NodeStats()), ctx


class TestRoot:
    def test_emits_single_ref(self):
        outs, _ = process(Root(), {})
        assert pretty(outs["ref"]) == "0 D"


class TestLevelScanner:
    def setup_method(self):
        # B = [[1, 2, 0], [0, 0, 3]] in CSR (matches the paper's SpMV setup).
        self.b = SparseTensor.from_dense(
            np.array([[1.0, 2.0, 0.0], [0.0, 0.0, 3.0]]), csr(), "B"
        )

    def test_row_level(self):
        outs, _ = process(
            LevelScanner("B", 0), {"ref": [ref(0), done()]}, {"B": self.b}
        )
        assert pretty(outs["crd"]) == "0 1 S0 D"
        assert pretty(outs["ref"]) == "0 1 S0 D"

    def test_column_level_nests(self):
        outs, _ = process(
            LevelScanner("B", 1),
            {"ref": [ref(0), ref(1), stop(0), done()]},
            {"B": self.b},
        )
        assert pretty(outs["crd"]) == "0 1 S0 2 S1 D"

    def test_empty_fiber_keeps_alignment(self):
        mat = SparseTensor.from_dense(
            np.array([[1.0, 0.0], [0.0, 0.0], [0.0, 2.0]]), csr(), "M"
        )
        outs, _ = process(
            LevelScanner("M", 1),
            {"ref": [ref(0), ref(1), ref(2), stop(0), done()]},
            {"M": mat},
        )
        # Row 1 is empty: consecutive separators.
        assert pretty(outs["crd"]) == "0 S0 S0 1 S1 D"

    def test_charges_structure_reads(self):
        ctx = ExecutionContext({"B": self.b})
        stats = NodeStats()
        LevelScanner("B", 1).process(
            {"ref": [ref(0), ref(1), stop(0), done()]}, ctx, stats
        )
        assert stats.dram_reads > 0


class TestLocate:
    def test_dense_passthrough(self):
        t = SparseTensor.from_dense(np.eye(3), dense(2), "T")
        outs, _ = process(Locate("T", 0), {"crd": [crd(2), stop(0), done()]}, {"T": t})
        assert outs["ref"][0] == (REF, 2)

    def test_compressed_search(self):
        t = SparseTensor.from_dense(np.array([0.0, 5.0, 0.0]), sparse_vector(), "v")
        outs, _ = process(
            Locate("v", 0), {"crd": [crd(1), crd(2), stop(0), done()]}, {"v": t}
        )
        assert outs["ref"][0] == (REF, 0)
        assert outs["ref"][1] == EMPTY_TOKEN


class TestIntersect:
    def test_basic(self):
        crd_a = nest_to_stream([0, 2, 3], CRD)
        ref_a = nest_to_stream([10, 12, 13], REF)
        crd_b = nest_to_stream([1, 2, 3], CRD)
        ref_b = nest_to_stream([21, 22, 23], REF)
        outs, _ = process(
            Intersect(),
            {"crd_a": crd_a, "ref_a": ref_a, "crd_b": crd_b, "ref_b": ref_b},
        )
        assert pretty(outs["crd"]) == "2 3 S0 D"
        assert pretty(outs["ref_a"]) == "12 13 S0 D"
        assert pretty(outs["ref_b"]) == "22 23 S0 D"

    def test_empty_result_keeps_stops(self):
        crd_a = nest_to_stream([0], CRD)
        crd_b = nest_to_stream([1], CRD)
        outs, _ = process(
            Intersect(),
            {"crd_a": crd_a, "ref_a": crd_a, "crd_b": crd_b, "ref_b": crd_b},
        )
        assert pretty(outs["crd"]) == "S0 D"

    def test_nested_segments(self):
        crd_a = nest_to_stream([[0, 1], [2]], CRD)
        crd_b = nest_to_stream([[1], [2, 3]], CRD)
        outs, _ = process(
            Intersect(),
            {"crd_a": crd_a, "ref_a": crd_a, "crd_b": crd_b, "ref_b": crd_b},
        )
        assert pretty(outs["crd"]) == "1 S0 2 S1 D"

    def test_misaligned_rejected(self):
        with pytest.raises(StreamProtocolError):
            process(
                Intersect(),
                {
                    "crd_a": [crd(0), done()],
                    "ref_a": [done()],
                    "crd_b": [crd(0), done()],
                    "ref_b": [crd(0), done()],
                },
            )


class TestUnion:
    def test_pads_missing_side(self):
        crd_a = nest_to_stream([0, 2], CRD)
        crd_b = nest_to_stream([1, 2], CRD)
        outs, _ = process(
            Union(),
            {"crd_a": crd_a, "ref_a": crd_a, "crd_b": crd_b, "ref_b": crd_b},
        )
        assert pretty(outs["crd"]) == "0 1 2 S0 D"
        assert outs["ref_a"][1] == EMPTY_TOKEN
        assert outs["ref_b"][0] == EMPTY_TOKEN


@settings(max_examples=50, deadline=None)
@given(
    st.lists(st.integers(0, 15), max_size=8, unique=True),
    st.lists(st.integers(0, 15), max_size=8, unique=True),
)
def test_intersect_union_algebra(a, b):
    """Intersect = sorted set intersection; union = sorted set union."""
    a, b = sorted(a), sorted(b)
    crd_a = nest_to_stream(a, CRD)
    crd_b = nest_to_stream(b, CRD)
    ins = {"crd_a": crd_a, "ref_a": crd_a, "crd_b": crd_b, "ref_b": crd_b}
    outs, _ = process(Intersect(), dict(ins))
    got = [t[1] for t in outs["crd"] if t[0] == CRD]
    assert got == sorted(set(a) & set(b))
    outs, _ = process(Union(), dict(ins))
    got = [t[1] for t in outs["crd"] if t[0] == CRD]
    assert got == sorted(set(a) | set(b))


class TestRepeat:
    def test_repeats_root_over_crds(self):
        outs, _ = process(
            Repeat(),
            {"base": [ref(7), done()], "rep": nest_to_stream([0, 1, 2], CRD)},
        )
        assert pretty(outs["out"]) == "7 7 7 S0 D"

    def test_advances_per_fiber(self):
        base = nest_to_stream([10, 11], REF)
        rep = nest_to_stream([[0, 1], [2]], CRD)
        outs, _ = process(Repeat(), {"base": base, "rep": rep})
        assert pretty(outs["out"]) == "10 10 S0 11 S1 D"

    def test_empty_base_segment(self):
        # Base has an empty middle segment ("10 S0 S0 11 S1"); a scanner fed
        # from it emits one stop per base stop, raised one level.
        base = nest_to_stream([[10], [], [11]], REF)
        rep = [crd(0), crd(1), stop(1), stop(1), crd(2), stop(2), done()]
        outs, _ = process(Repeat(), {"base": base, "rep": rep})
        assert pretty(outs["out"]) == "10 10 S1 S1 11 S2 D"

    def test_empty_repeated_fiber(self):
        base = nest_to_stream([10, 11], REF)
        rep = nest_to_stream([[], [2]], CRD)
        outs, _ = process(Repeat(), {"base": base, "rep": rep})
        assert pretty(outs["out"]) == "S0 11 S1 D"


class TestScalarRepeat:
    def test_broadcast_deep(self):
        rep = nest_to_stream([[[0], [1]], [[2]]], CRD)
        outs, _ = process(ScalarRepeat(), {"base": [ref(0), done()], "rep": rep})
        assert pretty(outs["out"]) == "0 S0 0 S1 0 S2 D"

    def test_requires_single_payload(self):
        with pytest.raises(StreamProtocolError):
            process(
                ScalarRepeat(),
                {"base": nest_to_stream([1, 2], REF), "rep": [crd(0), done()]},
            )


class TestALUs:
    def test_mul(self):
        a = nest_to_stream([2.0, 3.0], VAL)
        b = nest_to_stream([4.0, 5.0], VAL)
        outs, _ = process(BinaryALU("mul"), {"a": a, "b": b})
        assert [t[1] for t in outs["out"] if t[0] == VAL] == [8.0, 15.0]

    def test_add_with_empty(self):
        a = [val(2.0), EMPTY_TOKEN, stop(0), done()]
        b = [EMPTY_TOKEN, val(3.0), stop(0), done()]
        outs, _ = process(BinaryALU("add"), {"a": a, "b": b})
        assert [t[1] for t in outs["out"] if t[0] == VAL] == [2.0, 3.0]

    def test_bmm_blocks(self):
        blk_a = np.ones((2, 3))
        blk_b = np.ones((3, 2))
        outs, _ = process(
            BinaryALU("bmm"),
            {"a": [val(blk_a), done()], "b": [val(blk_b), done()]},
        )
        np.testing.assert_allclose(outs["out"][0][1], 3 * np.ones((2, 2)))

    def test_bmt_transposes(self):
        blk = np.arange(4.0).reshape(2, 2)
        outs, _ = process(
            BinaryALU("bmt"), {"a": [val(blk), done()], "b": [val(blk), done()]}
        )
        np.testing.assert_allclose(outs["out"][0][1], blk @ blk.T)

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            BinaryALU("frobnicate")

    def test_unary_relu(self):
        outs, _ = process(
            UnaryALU("relu"), {"a": nest_to_stream([-1.0, 2.0], VAL)}
        )
        assert [t[1] for t in outs["out"] if t[0] == VAL] == [0.0, 2.0]

    def test_unary_scale(self):
        outs, _ = process(
            UnaryALU("identity", scale=0.5), {"a": nest_to_stream([4.0], VAL)}
        )
        assert outs["out"][0][1] == 2.0

    def test_counts_flops(self):
        stats = NodeStats()
        BinaryALU("mul").process(
            {"a": nest_to_stream([1.0, 2.0], VAL), "b": nest_to_stream([1.0, 2.0], VAL)},
            ExecutionContext(),
            stats,
        )
        assert stats.ops == 2


class TestValArray:
    def test_fetch_and_zero_fill(self):
        t = SparseTensor.from_dense(np.array([5.0, 7.0]), dense(1), "v")
        outs, _ = process(
            ValArray("v"),
            {"ref": [ref(1), EMPTY_TOKEN, stop(0), done()]},
            {"v": t},
        )
        assert [t_[1] for t_ in outs["val"] if t_[0] == VAL] == [7.0, 0.0]

    def test_scratchpad_caps_rereads(self):
        t = SparseTensor.from_dense(np.array([5.0]), dense(1), "v")
        ctx = ExecutionContext({"v": t}, scratchpad_bytes=1 << 20)
        stats = NodeStats()
        ValArray("v").process(
            {"ref": [ref(0)] * 100 + [stop(0), done()]}, ctx, stats
        )
        assert stats.dram_reads == 8  # footprint, not 800


class TestReduce:
    def test_reduces_inner_fibers(self):
        vals = nest_to_stream([[1.0, 2.0], [3.0]], VAL)
        outs, _ = process(Reduce(), {"val": vals})
        assert pretty(outs["val"]) == "3.0 3.0 S0 D"

    def test_empty_fiber_yields_zero(self):
        vals = nest_to_stream([[1.0], [], [2.0]], VAL)
        outs, _ = process(Reduce(), {"val": vals})
        assert [t[1] for t in outs["val"] if t[0] == VAL] == [1.0, 0.0, 2.0]


class TestVectorReducer:
    def test_order1(self):
        vals = nest_to_stream([[[1.0, 2.0], [3.0]], [[4.0]]], VAL)
        crds = nest_to_stream([[[0, 2], [0]], [[1]]], CRD)
        outs, _ = process(VectorReducer(1), {"crd0": crds, "val": vals})
        assert pretty(outs["crd0"]) == "0 2 S0 1 S1 D"
        assert pretty(outs["val"]) == "4.0 2.0 S0 4.0 S1 D"

    def test_order2(self):
        vals = nest_to_stream([[[[1.0], [2.0]], [[3.0, 4.0]]]], VAL)
        crda = nest_to_stream([[[[0], [1]], [[0, 0]]]], CRD)
        crdb = nest_to_stream([[[[0], [0]], [[0, 1]]]], CRD)
        outs, _ = process(
            VectorReducer(2), {"crd0": crda, "crd1": crdb, "val": vals}
        )
        assert pretty(outs["crd0"]) == "0 1 S1 D"
        assert pretty(outs["crd1"]) == "0 1 S0 0 S2 D"
        assert pretty(outs["val"]) == "4.0 4.0 S0 2.0 S2 D"

    def test_rejects_order_zero(self):
        with pytest.raises(ValueError):
            VectorReducer(0)

    def test_misaligned_rejected(self):
        with pytest.raises(StreamProtocolError):
            process(
                VectorReducer(1),
                {"crd0": [crd(0), done()], "val": [done()]},
            )


class TestCrdDrop:
    def test_drops_zeros(self):
        crds = nest_to_stream([0, 1, 2], CRD)
        vals = nest_to_stream([1.0, 0.0, 2.0], VAL)
        outs, _ = process(CrdDrop(), {"crd": crds, "val": vals})
        assert pretty(outs["crd"]) == "0 2 S0 D"


class TestAlignCheck:
    def test_pass_through(self):
        s = nest_to_stream([0, 1], CRD)
        outs, _ = process(AlignCheck(), {"a": list(s), "b": list(s)})
        assert outs["out"] == s

    def test_mismatch_raises(self):
        with pytest.raises(StreamProtocolError):
            process(
                AlignCheck(),
                {"a": nest_to_stream([0], CRD), "b": nest_to_stream([1], CRD)},
            )


class TestFiberOps:
    def test_softmax_rows(self):
        vals = nest_to_stream([[1.0, 1.0], [2.0]], VAL)
        outs, _ = process(FiberSoftmax(), {"val": vals})
        got = [t[1] for t in outs["out"] if t[0] == VAL]
        assert got[0] == pytest.approx(0.5)
        assert got[2] == pytest.approx(1.0)

    def test_layernorm_zero_mean(self):
        vals = nest_to_stream([[1.0, 3.0]], VAL)
        outs, _ = process(FiberNorm(), {"val": vals})
        got = [t[1] for t in outs["out"] if t[0] == VAL]
        assert sum(got) == pytest.approx(0.0, abs=1e-9)

    def test_softmax_blocks(self):
        blk = np.array([[1.0, 2.0], [3.0, 4.0]])
        vals = nest_to_stream([[blk, blk]], VAL)
        outs, _ = process(FiberSoftmax(), {"val": vals})
        row = np.concatenate([t[1] for t in outs["out"] if t[0] == VAL], axis=1)
        np.testing.assert_allclose(row.sum(axis=1), np.ones(2))


class TestTensorWriter:
    def test_assembles_and_drops_zeros(self):
        writer = TensorWriter("out", (2, 3), csr())
        crd0 = nest_to_stream([0, 1], CRD)
        crd1 = nest_to_stream([[0, 2], [1]], CRD)
        vals = nest_to_stream([[1.0, 0.0], [2.0]], VAL)
        ctx = ExecutionContext()
        writer.process({"crd0": crd0, "crd1": crd1, "val": vals}, ctx, NodeStats())
        out = ctx.results["out"].to_dense()
        expected = np.zeros((2, 3))
        expected[0, 0] = 1.0
        expected[1, 1] = 2.0
        np.testing.assert_allclose(out, expected)
        assert ctx.results["out"].nnz() == 2  # zero was dropped
