"""Differential tests: the codegen backend vs the columnar interpreter.

The interpreter is the executable specification; the codegen backend must
reproduce it *exactly* for every golden model at its canonical
configuration, across fusion granularities and memory hierarchies: same
streams token for token, same per-node statistics (tokens/ops/DRAM bytes),
same output tensors bit for bit, the same timed metrics, and the same
per-level memory traffic.  This is the contract that lets ``--backend
codegen`` substitute for the interpreter without regenerating any golden
trace.

Mirrors ``tests/test_columnar_differential.py`` (the representation axis)
and ``tests/test_split_differential.py`` (the tiling axis) for the backend
axis, plus hypothesis round-trips of random single-region graphs.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import artifact_for
from repro.comal.engine import run_timed
from repro.comal.functional import run_functional
from repro.comal.machines import RDA_MACHINE
from repro.core.einsum.parser import parse_program
from repro.core.schedule.schedule import unfused
from repro.driver import Session
from repro.ftree import SparseTensor
from repro.sam.token import streams_equal
from repro.sweep import SweepPoint, build_bundle

#: The canonical golden configurations (tests/test_golden_traces.py).
POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}

GRANULARITIES = ("unfused", "partial")
HIERARCHIES = ("flat", "fpga-small")

STAT_FIELDS = ("tokens_in", "tokens_out", "ops", "dram_reads", "dram_writes")


@pytest.mark.parametrize("hierarchy", HIERARCHIES)
@pytest.mark.parametrize("granularity", GRANULARITIES)
@pytest.mark.parametrize("model", sorted(POINTS))
def test_streams_stats_and_timing_match(model, granularity, hierarchy):
    """Region-by-region bit-exactness: streams, stats, tensors, cycles."""
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    session = Session(machine=RDA_MACHINE, hierarchy=hierarchy)
    exe = session.compile(bundle.program, bundle.schedule(granularity))
    machine = session.machine
    bind_c = dict(bundle.binding)
    bind_g = dict(bundle.binding)
    for region in exe.regions:
        for orig, new_name, mode_order in region.transposes:
            for bind in (bind_c, bind_g):
                if new_name not in bind:
                    bind[new_name] = bind[orig].permuted_copy(
                        mode_order, name=new_name
                    )
        graph = region.graph
        # Every region of every golden model must compile (no fallbacks).
        artifact = artifact_for(graph)
        assert artifact.fallback == "", (
            f"{model}/{granularity}/{graph.name}: {artifact.fallback}"
        )
        columnar = run_functional(
            graph, bind_c, machine.scratchpad_bytes, columnar=True
        )
        codegen = run_functional(
            graph, bind_g, machine.scratchpad_bytes, backend="codegen"
        )

        assert set(columnar.streams) == set(codegen.streams)
        for key in columnar.streams:
            assert streams_equal(codegen.streams[key], columnar.streams[key]), (
                f"{model}/{granularity}/{hierarchy}/{graph.name} "
                f"stream {key} diverged"
            )
        for node_id, want in columnar.stats.items():
            have = codegen.stats[node_id]
            for fieldname in STAT_FIELDS:
                assert getattr(have, fieldname) == getattr(want, fieldname), (
                    f"{model}/{granularity}/{hierarchy}/{graph.name} "
                    f"{node_id}.{fieldname}"
                )
        for name, tensor in columnar.results.items():
            assert np.array_equal(
                tensor.to_dense(), codegen.results[name].to_dense()
            ), f"{model}/{granularity}/{hierarchy} result {name} diverged"

        timed_c = run_timed(graph, bind_c, machine, functional=columnar)
        timed_g = run_timed(graph, bind_g, machine, functional=codegen)
        assert timed_g.flops == timed_c.flops
        assert timed_g.dram_bytes == timed_c.dram_bytes
        assert timed_g.sram_bytes == timed_c.sram_bytes
        assert timed_g.tokens == timed_c.tokens
        assert timed_g.cycles == pytest.approx(timed_c.cycles, rel=1e-9)
        for node_id, busy in timed_c.node_busy.items():
            assert timed_g.node_busy[node_id] == pytest.approx(busy, rel=1e-9)

        bind_c.update(columnar.results)
        bind_g.update(codegen.results)


@pytest.mark.parametrize("hierarchy", HIERARCHIES)
@pytest.mark.parametrize("model", sorted(POINTS))
def test_end_to_end_metrics_and_traffic_match(model, hierarchy):
    """Full executions agree on metrics incl. per-level memory traffic."""
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    res = {}
    for backend in ("columnar", "codegen"):
        sess = Session(
            machine=RDA_MACHINE,
            hierarchy=hierarchy,
            backend=backend,
            sim_cache=False,
        )
        exe = sess.compile(bundle.program, bundle.schedule("partial"))
        res[backend] = exe(bundle.binding)
    columnar, codegen = res["columnar"].metrics, res["codegen"].metrics
    assert codegen.flops == columnar.flops
    assert codegen.tokens == columnar.tokens
    assert codegen.traffic_by_level() == columnar.traffic_by_level()
    assert codegen.cycles == pytest.approx(columnar.cycles, rel=1e-9)
    assert codegen.kernel_cycles == pytest.approx(
        columnar.kernel_cycles, rel=1e-9
    )
    for name, tensor in res["columnar"].tensors.items():
        assert np.array_equal(
            tensor.to_dense(), res["codegen"].tensors[name].to_dense()
        ), f"{model}/{hierarchy} tensor {name} diverged"


@pytest.mark.parametrize("model", sorted(POINTS))
def test_columnar_tier_forced_matches(model, monkeypatch):
    """The columnar emission tier is bit-exact on its own.

    ``FUSEFLOW_CODEGEN_SMALL_CUTOFF=0`` disables adaptive token-tier
    dispatch, so every region runs the columnar kernels — a divergence
    cannot hide behind a dispatch to the (independently tested) token
    tier.  gpt3's blocked payloads exercise the per-node ``objs`` escape
    hatch on the same path.
    """
    monkeypatch.setenv("FUSEFLOW_CODEGEN_SMALL_CUTOFF", "0")
    monkeypatch.delenv("FUSEFLOW_CODEGEN_TIER", raising=False)
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    res = {}
    for backend in ("columnar", "codegen"):
        sess = Session(
            machine=RDA_MACHINE, backend=backend, sim_cache=False
        )
        exe = sess.compile(bundle.program, bundle.schedule("partial"))
        res[backend] = exe(bundle.binding)
    columnar, codegen = res["columnar"].metrics, res["codegen"].metrics
    assert codegen.flops == columnar.flops
    assert codegen.tokens == columnar.tokens
    assert codegen.traffic_by_level() == columnar.traffic_by_level()
    assert codegen.cycles == pytest.approx(columnar.cycles, rel=1e-9)
    for name, tensor in res["columnar"].tensors.items():
        assert np.array_equal(
            tensor.to_dense(), res["codegen"].tensors[name].to_dense()
        ), f"{model} tensor {name} diverged under the forced columnar tier"


# ----------------------------------------------------------------------
# Hypothesis round-trips: random single-region graphs
# ----------------------------------------------------------------------

_UNARY = ("relu", "abs", "exp")


def _single_region_graphs(kind, density, unary, seed):
    """Compile one random statement and yield its lowered region graphs."""
    if kind == "spmm":
        text = (
            "tensor A(6, 7): csr\ntensor X(7, 4): dense\n"
            "T(i, j) = A(i, k) * X(k, j)"
        )
    elif kind == "add":
        text = (
            "tensor A(6, 7): csr\ntensor B(6, 7): csr\n"
            "T(i, j) = A(i, j) + B(i, j)"
        )
    else:  # unary
        text = f"tensor A(6, 7): csr\nT(i, j) = {unary}(A(i, j))"
    program = parse_program(text)
    rng = np.random.default_rng(seed)
    binding = {}
    for name, decl in program.decls.items():
        data = rng.random(decl.shape)
        if decl.fmt.name() == "csr":
            data = data * (rng.random(decl.shape) < density)
        binding[name] = SparseTensor.from_dense(data, decl.fmt, name)
    session = Session(machine=RDA_MACHINE)
    exe = session.compile(program, unfused(program))
    return exe, binding


@settings(max_examples=20, deadline=None)
@given(
    kind=st.sampled_from(["spmm", "add", "unary"]),
    density=st.sampled_from([0.0, 0.2, 0.6, 1.0]),
    unary=st.sampled_from(_UNARY),
    seed=st.integers(0, 10_000),
)
def test_random_single_region_round_trip(kind, density, unary, seed):
    """Random single-region graphs round-trip bit-exactly through codegen."""
    exe, binding = _single_region_graphs(kind, density, unary, seed)
    assert len(exe.regions) == 1
    graph = exe.regions[0].graph
    artifact = artifact_for(graph)
    assert artifact.fallback == ""
    columnar = run_functional(
        graph, binding, RDA_MACHINE.scratchpad_bytes, columnar=True,
        cache=False,
    )
    codegen = run_functional(
        graph, binding, RDA_MACHINE.scratchpad_bytes, backend="codegen",
        cache=False,
    )
    assert set(columnar.streams) == set(codegen.streams)
    for key in columnar.streams:
        assert streams_equal(codegen.streams[key], columnar.streams[key]), key
    for node_id, want in columnar.stats.items():
        have = codegen.stats[node_id]
        for fieldname in STAT_FIELDS:
            assert getattr(have, fieldname) == getattr(want, fieldname), (
                f"{node_id}.{fieldname}"
            )
    for name, tensor in columnar.results.items():
        assert np.array_equal(
            tensor.to_dense(), codegen.results[name].to_dense()
        ), name
