"""Tests for the parallel experiment-sweep subsystem (repro.sweep)."""

import json
import os

import pytest

from repro.sweep import (
    ResultStore,
    ResultStoreError,
    SweepPoint,
    SweepRunner,
    SweepSpec,
    SweepSpecError,
    bench_payload,
    build_bundle,
    compatible_datasets,
    render_summary,
    run_point,
    run_sweep,
    summarize,
    sweep_schedules,
    write_bench_json,
    write_summary_json,
)
from repro.sweep.runner import clear_worker_caches

SMALL_ARGS = {"nodes": 20, "density": 0.1, "seed": 0}


def small_spec(**overrides) -> SweepSpec:
    base = dict(
        name="t",
        models=["gcn", "sae"],
        schedules=["unfused", "partial", "full"],
        machines=["rda", "fpga"],
        model_args=dict(SMALL_ARGS),
    )
    base.update(overrides)
    return SweepSpec(**base)


class TestSpec:
    def test_grid_expansion_counts(self):
        points = small_spec().points()
        # 2 models x 1 dataset x 3 schedules x 2 machines.
        assert len(points) == 12
        assert {p.model for p in points} == {"gcn", "sae"}
        assert {p.machine for p in points} == {"rda", "fpga"}

    def test_point_ids_unique_and_stable(self):
        points = small_spec().points()
        ids = [p.point_id for p in points]
        assert len(set(ids)) == len(ids)
        assert ids == [p.point_id for p in small_spec().points()]

    def test_incompatible_datasets_are_skipped(self):
        # cora is a graph dataset; imagenet is an SAE dataset: each model
        # only picks up its own.
        spec = small_spec(datasets=["cora", "imagenet"], machines=["rda"])
        points = spec.points()
        assert {(p.model, p.dataset) for p in points} == {
            ("gcn", "cora"),
            ("sae", "imagenet"),
        }

    def test_empty_expansion_raises(self):
        spec = small_spec(models=[])
        with pytest.raises(SweepSpecError, match="zero points"):
            spec.points()

    def test_unmatched_dataset_is_an_error(self):
        # A typo'd (or model-less) dataset must not silently shrink the
        # grid into a complete-looking but partial sweep.
        with pytest.raises(SweepSpecError, match=r"\['dbpl'\] match none"):
            small_spec(models=["gcn"], datasets=["cora", "dbpl"]).points()
        with pytest.raises(SweepSpecError, match="match none"):
            small_spec(models=["gpt3"], datasets=["cora"]).points()

    def test_irrelevant_model_args_do_not_change_point_id(self):
        # 'density' is a graph-builder knob the SAE ignores; a spec
        # broadcasting it across models must not fork the SAE's point ID.
        with_noise = SweepPoint.make("sae", model_args={"nodes": 16, "density": 0.1})
        without = SweepPoint.make("sae", model_args={"nodes": 16})
        assert with_noise.point_id == without.point_id
        assert (
            SweepPoint.make("gcn", model_args={"nodes": 16, "density": 0.1}).point_id
            != SweepPoint.make("gcn", model_args={"nodes": 16}).point_id
        )

    def test_validation(self):
        with pytest.raises(SweepSpecError, match="unknown model"):
            SweepPoint.make("resnet").validate()
        with pytest.raises(SweepSpecError, match="not valid for model"):
            SweepPoint.make("sae", dataset="cora").validate()
        with pytest.raises(SweepSpecError, match="unknown machine"):
            SweepPoint.make("gcn", machine="tpu").validate()
        with pytest.raises(SweepSpecError, match="unknown schedule"):
            SweepPoint.make("gcn", schedule="hyper").validate()

    def test_compatible_datasets(self):
        assert "cora" in compatible_datasets("gcn")
        assert "imagenet" in compatible_datasets("sae")
        assert "imdb" in compatible_datasets("gpt3")
        for model in ("gcn", "graphsage", "sae", "gpt3"):
            assert "synthetic" in compatible_datasets(model)

    def test_labels_distinguish_model_args(self):
        # BENCH series are keyed by label: distinct point IDs must never
        # share one.
        a = SweepPoint.make("gcn", model_args={"nodes": 24})
        b = SweepPoint.make("gcn", model_args={"nodes": 48})
        assert a.point_id != b.point_id
        assert a.label() != b.label()
        assert "nodes=24" in a.label()

    def test_point_record_roundtrip(self):
        point = SweepPoint.make(
            "gpt3",
            dataset="imdb",
            schedule="full",
            machine="fpga",
            model_args={"block": 4},
            par={"x1": 4},
        )
        clone = SweepPoint.from_record(point.to_record())
        assert clone == point
        assert clone.point_id == point.point_id

    def test_spec_json_roundtrip(self, tmp_path):
        spec = small_spec(extra_points=[SweepPoint.make("gpt3", schedule="full")])
        path = tmp_path / "spec.json"
        spec.save(str(path))
        loaded = SweepSpec.load(str(path))
        assert [p.point_id for p in loaded.points()] == [
            p.point_id for p in spec.points()
        ]

    def test_extra_points_appended_and_deduped(self):
        dup = SweepPoint.make(
            "gcn", schedule="unfused", machine="rda", model_args=SMALL_ARGS
        )
        novel = SweepPoint.make("gpt3", schedule="full", model_args=SMALL_ARGS)
        spec = small_spec(extra_points=[dup, novel])
        points = spec.points()
        assert len(points) == 13  # 12 grid + 1 novel (dup collapses)
        assert points[-1].model == "gpt3"

    def test_build_bundle_dataset_variants(self):
        gcn = build_bundle(SweepPoint.make("gcn", dataset="cora"))
        assert gcn.program is not None and gcn.reference is not None
        sae = build_bundle(SweepPoint.make("sae", dataset="imagenet"))
        assert sae.name == "sae"
        gpt3 = build_bundle(
            SweepPoint.make("gpt3", dataset="imdb", model_args={"n_layers": 1})
        )
        assert gpt3.program is not None


class TestStore:
    def test_header_and_records(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        spec = small_spec()
        with ResultStore.create(path, spec) as store:
            store.append({"point_id": "a", "status": "ok", "n": 1})
            store.append({"point_id": "b", "status": "error"})
            store.append({"point_id": "a", "status": "ok", "n": 2})
        store = ResultStore.open(path)
        assert store.spec().name == "t"
        records = store.records()
        assert len(records) == 2  # last-wins per point id
        assert {r["point_id"] for r in records} == {"a", "b"}
        assert next(r for r in records if r["point_id"] == "a")["n"] == 2
        assert store.completed_ids() == {"a"}

    def test_create_refuses_to_clobber(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        ResultStore.create(path, small_spec())
        with pytest.raises(ResultStoreError, match="already exists"):
            ResultStore.create(path, small_spec())
        ResultStore.create(path, small_spec(), force=True)  # explicit force ok

    def test_open_missing(self, tmp_path):
        with pytest.raises(ResultStoreError, match="no results file"):
            ResultStore.open(str(tmp_path / "missing.jsonl"))

    def test_corrupt_interior_line_is_reported_with_location(self, tmp_path):
        path = str(tmp_path / "r.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "result", "point_id": "a", "status": "ok"}\n')
            fh.write("not json\n")
            fh.write('{"type": "result", "point_id": "b", "status": "ok"}\n')
        with pytest.raises(ResultStoreError, match=":2"):
            ResultStore.open(path).records()

    def test_garbage_file_is_rejected(self, tmp_path):
        # A torn tail is recoverable; a file that was never a results file
        # (corrupt first line) is not, and must not read as an empty sweep.
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "w") as fh:
            fh.write("this is not json\n")
        with pytest.raises(ResultStoreError, match=":1"):
            ResultStore.open(path).records()

    def test_append_after_torn_tail_does_not_merge_records(self, tmp_path):
        # Writing after a crash must terminate the torn line first, or the
        # new record merges into it and bricks every later read.
        path = str(tmp_path / "r.jsonl")
        spec = small_spec(machines=["rda"])
        store = ResultStore.create(path, spec)
        store.append({"point_id": "a", "status": "ok"})
        store.close()
        with open(path, "a") as fh:
            fh.write('{"point_id": "torn", "sta')  # no newline
        store = ResultStore.open(path)
        store.append({"point_id": "b", "status": "ok"})
        store.append({"point_id": "c", "status": "ok"})
        store.close()
        records = ResultStore.open(path).records()
        assert {r["point_id"] for r in records} == {"a", "b", "c"}

    def test_torn_final_line_is_tolerated(self, tmp_path):
        # A crash mid-append leaves a partial last line; resume must read
        # the valid prefix, not hard-fail on the file it exists to recover.
        path = str(tmp_path / "r.jsonl")
        spec = small_spec(machines=["rda"])
        store = ResultStore.create(path, spec)
        store.append(run_point(spec.points()[0]))
        store.close()
        with open(path, "a") as fh:
            fh.write('{"type": "result", "point_id": "torn", "sta')
        store = ResultStore.open(path)
        assert len(store.records()) == 1
        outcome = run_sweep(spec, store_path=path, workers=1, resume=True)
        assert outcome.skipped == 1 and outcome.ran == 5


class TestRunPoint:
    def setup_method(self):
        clear_worker_caches()

    def test_success_record_shape(self):
        record = run_point(
            SweepPoint.make("gcn", schedule="partial", model_args=SMALL_ARGS)
        )
        assert record["status"] == "ok"
        assert record["verified"] is True
        metrics = record["metrics"]
        assert metrics["cycles"] > 0 and metrics["flops"] > 0
        assert 0.0 <= metrics["compute_utilization"] <= 1.0
        assert set(record["fingerprints"]) == {"program", "schedule", "pipeline"}
        # JSON-serializable end to end (the store writes it verbatim).
        json.dumps(record)

    def test_failure_becomes_error_record(self):
        # The SAE has no C+S rewrite grouping, so schedule 'cs' must fail
        # as a recorded error, not an exception.
        record = run_point(
            SweepPoint.make("sae", schedule="cs", model_args=SMALL_ARGS)
        )
        assert record["status"] == "error"
        assert "cs" in record["error"] or "rewrite" in record["error"]
        json.dumps(record)

    def test_unknown_model_becomes_error_record(self):
        # run_point's contract: never raises, even for points that bypass
        # validation (e.g. rehydrated from an edited record).
        record = run_point(
            SweepPoint.make("resnet", model_args={"nodes": 16})
        )
        assert record["status"] == "error"
        assert "unknown model" in record["error"]
        json.dumps(record)

    def test_verification_failure_is_a_failed_point(self, monkeypatch):
        # A point that executes but disagrees with the dense reference must
        # be retryable (status error), not a silently wrong success.
        import repro.sweep.runner as runner_mod

        point = SweepPoint.make("sae", schedule="full", model_args=SMALL_ARGS)
        bundle = build_bundle(point)
        bundle.reference = bundle.reference + 1.0  # corrupt the oracle
        monkeypatch.setattr(runner_mod, "_bundle_for", lambda p: bundle)
        record = run_point(point)
        assert record["status"] == "error"
        assert record["verified"] is False
        assert "verification failed" in record["error"]
        assert record["metrics"]["cycles"] > 0  # metrics kept for debugging
        assert summarize([record])["points_failed"] == 1

    def test_worker_caches_share_compile_work(self):
        point_a = SweepPoint.make("gcn", schedule="partial", model_args=SMALL_ARGS)
        point_b = SweepPoint.make("gcn", schedule="partial", model_args=SMALL_ARGS)
        first = run_point(point_a)
        second = run_point(point_b)
        assert first["compile_cache_hit"] is False
        assert second["compile_cache_hit"] is True


class TestRunner:
    def test_parallel_grid(self, tmp_path):
        """Acceptance: a 12-point grid across 2 models and 2 machines runs
        in parallel worker processes."""
        path = str(tmp_path / "grid.jsonl")
        outcome = run_sweep(small_spec(), store_path=path, workers=3)
        assert outcome.total_points == 12
        assert outcome.ran == 12 and outcome.failed == 0
        pids = {r["worker_pid"] for r in outcome.records}
        assert os.getpid() not in pids, "points must run in worker processes"
        store = ResultStore.open(path)
        assert len(store.records()) == 12
        assert all(r["verified"] for r in store.records())

    def test_resume_skips_completed_points(self, tmp_path):
        path = str(tmp_path / "resume.jsonl")
        spec = small_spec(machines=["rda"])  # 6 points
        store = ResultStore.create(path, spec)
        # Simulate a sweep that died after two points.
        for point in spec.points()[:2]:
            store.append(run_point(point))
        store.close()

        outcome = run_sweep(spec, store_path=path, workers=1, resume=True)
        assert outcome.skipped == 2
        assert outcome.ran == 4
        assert ResultStore.open(path).completed_ids() == {
            p.point_id for p in spec.points()
        }

        # A second resume has nothing left to do.
        again = run_sweep(spec, store_path=path, workers=1, resume=True)
        assert again.ran == 0 and again.skipped == 6

    def test_resume_requires_store_path(self):
        with pytest.raises(ResultStoreError, match="needs store_path"):
            run_sweep(small_spec(), resume=True)

    def test_resume_requires_spec_header(self, tmp_path):
        path = str(tmp_path / "headerless.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "result", "point_id": "a", "status": "ok"}\n')
        with pytest.raises(ResultStoreError, match="no spec header"):
            run_sweep(small_spec(), store_path=path, workers=1, resume=True)

    def test_resume_reruns_failed_points(self, tmp_path):
        path = str(tmp_path / "failed.jsonl")
        spec = small_spec(machines=["rda"])
        store = ResultStore.create(path, spec)
        first = spec.points()[0]
        store.append({"point_id": first.point_id, "status": "error", "error": "boom"})
        store.close()
        outcome = run_sweep(spec, store_path=path, workers=1, resume=True)
        assert outcome.ran == 6  # the failed point is retried
        assert ResultStore.open(path).completed_ids() == {
            p.point_id for p in spec.points()
        }

    def test_inline_runner_without_store(self):
        outcome = SweepRunner(
            small_spec(models=["sae"], machines=["rda"]), workers=1
        ).run()
        assert outcome.ran == 3 and outcome.failed == 0

    def test_progress_callback_sees_every_record(self, tmp_path):
        seen = []
        outcome = run_sweep(
            small_spec(models=["sae"], machines=["rda"]),
            workers=1,
            progress=seen.append,
        )
        assert len(seen) == outcome.ran == 3


class TestResumeSpecGuard:
    def test_spec_fingerprint_stable_and_content_sensitive(self):
        assert small_spec().fingerprint() == small_spec().fingerprint()
        assert (
            small_spec().fingerprint()
            != small_spec(machines=["rda"]).fingerprint()
        )
        # The fingerprint survives a serialization round trip (the resume
        # check compares a live caller spec against a stored header).
        restored = SweepSpec.from_record(small_spec().to_record())
        assert restored.fingerprint() == small_spec().fingerprint()

    def test_spec_required_unless_resuming(self):
        with pytest.raises(ResultStoreError, match="spec is required"):
            run_sweep()

    def test_resume_without_spec_uses_stored_header(self, tmp_path):
        path = str(tmp_path / "res.jsonl")
        spec = small_spec(models=["sae"], machines=["rda"])  # 3 points
        run_sweep(spec, store_path=path, workers=1)
        outcome = run_sweep(store_path=path, workers=1, resume=True)
        assert outcome.ran == 0 and outcome.skipped == 3

    def test_resume_spec_mismatch_raises_naming_both(self, tmp_path):
        path = str(tmp_path / "res.jsonl")
        stored = small_spec(models=["sae"], machines=["rda"])
        run_sweep(stored, store_path=path, workers=1)
        other = small_spec(models=["sae"], machines=["fpga"])
        with pytest.raises(ResultStoreError, match="mismatch") as excinfo:
            run_sweep(other, store_path=path, workers=1, resume=True)
        message = str(excinfo.value)
        assert other.fingerprint()[:16] in message
        assert stored.fingerprint()[:16] in message

    def test_resume_with_equal_spec_still_works(self, tmp_path):
        path = str(tmp_path / "res.jsonl")
        spec = small_spec(models=["sae"], machines=["rda"])
        run_sweep(spec, store_path=path, workers=1)
        # A content-equal (but distinct) spec object passes the check.
        outcome = run_sweep(
            small_spec(models=["sae"], machines=["rda"]),
            store_path=path,
            workers=1,
            resume=True,
        )
        assert outcome.ran == 0 and outcome.skipped == 3


class TestSweepDiskCache:
    def test_cache_dir_populates_and_warm_starts(self, tmp_path):
        from repro.driver import DiskCache
        from repro.sweep import set_worker_cache_dir
        from repro.sweep.runner import _SESSIONS

        cache_dir = str(tmp_path / "cache")
        spec = small_spec(
            models=["gcn"], machines=["rda"], schedules=["unfused", "partial"]
        )
        try:
            outcome = run_sweep(spec, workers=1, cache_dir=cache_dir)
            assert outcome.failed == 0
            assert DiskCache(cache_dir).info().entries >= 2
            # A cold process (modeled by dropping the per-process session
            # cache) warm-starts its compiles from the disk entries.
            clear_worker_caches()
            again = run_sweep(spec, workers=1, cache_dir=cache_dir)
            assert again.failed == 0
            session = next(iter(_SESSIONS.values()))
            assert session.cache_info().disk_hits >= 2
        finally:
            set_worker_cache_dir(None)
            clear_worker_caches()


class TestScheduleSweep:
    def test_limit_counts_only_successes(self):
        from repro.core.schedule.schedule import Schedule
        from repro.driver import Session

        bundle = build_bundle(SweepPoint.make("gcn", model_args=SMALL_ARGS))
        session = Session()
        bad = Schedule(name="bad", regions=[[0]])  # misses statements
        schedules = [bad, *bundle.schedules()]
        runs = sweep_schedules(
            session,
            bundle.program,
            bundle.binding,
            schedules,
            limit=2,
            skip_errors=True,
        )
        assert [r.schedule.name for r in runs] == ["unfused", "partial"]

    def test_errors_raise_without_skip(self):
        from repro.core.schedule.schedule import Schedule, ScheduleError
        from repro.driver import Session

        bundle = build_bundle(SweepPoint.make("gcn", model_args=SMALL_ARGS))
        with pytest.raises(ScheduleError):
            sweep_schedules(
                Session(),
                bundle.program,
                bundle.binding,
                [Schedule(name="bad", regions=[[0]])],
            )


class TestReport:
    @pytest.fixture(scope="class")
    def records(self):
        clear_worker_caches()
        spec = small_spec()
        return SweepRunner(spec, workers=1).run().records

    def test_speedups_match_cycles(self, records):
        summary = summarize(records, baseline_schedule="unfused", name="t")
        assert summary["points_ok"] == 12
        assert summary["verified"] is True
        for entry in summary["speedups"]:
            base = entry["cycles"]["unfused"]
            for schedule, speedup in entry["speedup"].items():
                assert speedup == pytest.approx(base / entry["cycles"][schedule])

    def test_best_per_model_is_minimum(self, records):
        summary = summarize(records, name="t")
        for model, best in summary["best_per_model"].items():
            cycles = [
                r["metrics"]["cycles"]
                for r in records
                if r["point"]["model"] == model
            ]
            assert best["cycles"] == min(cycles)

    def test_failures_are_reported(self, records):
        failing = dict(records[0])
        failing.update(status="error", error="boom", point_id="xyz", label="bad/pt")
        summary = summarize([*records, failing], name="t")
        assert summary["points_failed"] == 1
        assert summary["failures"][0]["error"] == "boom"
        assert "FAILED bad/pt" in render_summary(summary)

    def test_render_contains_tables(self, records):
        text = render_summary(summarize(records, name="t"))
        assert "speedup" in text and "best point" in text
        assert "gcn/synthetic/partial/rda" in text

    def test_json_and_bench_outputs(self, records, tmp_path):
        summary = summarize(records, name="t")
        json_path = str(tmp_path / "summary.json")
        write_summary_json(summary, json_path)
        with open(json_path) as fh:
            assert json.load(fh)["points_ok"] == 12

        bench_path = write_bench_json(summary, str(tmp_path / "BENCH_t.json"))
        with open(bench_path) as fh:
            payload = json.load(fh)
        assert payload == bench_payload(summary)
        assert payload["benchmark"] == "sweep_t"
        assert payload["unit"] == "cycles"
        assert len(payload["results"]) == 12
        assert all(r["value"] > 0 for r in payload["results"])

    def test_bench_default_filename(self, records, tmp_path, monkeypatch):
        monkeypatch.chdir(tmp_path)
        summary = summarize(records, name="t")
        path = write_bench_json(summary)
        assert os.path.basename(path) == "BENCH_sweep_t.json"
        assert os.path.exists(path)
