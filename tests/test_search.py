"""Guided-search tests: exhaustive-parity oracle, seeded determinism,
cost-model round trips.

The exhaustive enumerate-rank-simulate path is the *oracle*: at small n
it measures every feasible candidate, so a guided strategy that claims
parity must land within 1% of its winner while simulating a fraction of
the candidates.  Determinism is property-tested over seeds (hypothesis):
the same seed must reproduce the identical ``search_trace``, and every
schedule any seed visits must validate against the program.
"""

import json
import warnings

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comal.machines import RDA_MACHINE
from repro.core.heuristic.costmodel import (
    CalibratedCostModel,
    CalibrationRecord,
    CostModelError,
    HeuristicCostModel,
)
from repro.core.heuristic.model import stats_from_binding
from repro.core.schedule.autotune import autotune
from repro.core.schedule.schedule import Schedule
from repro.core.schedule.search import (
    STRATEGIES,
    SearchPoint,
    SearchSpace,
    get_strategy,
)
from repro.driver.session import Session
from repro.models.gcn import gcn_on_synthetic
from repro.models.gpt3 import build_gpt3
from repro.models.graphsage import graphsage_on_synthetic
from repro.models.sae import build_sae


def _bundles():
    """The BENCH_search model configurations: small-n oracle sizes."""
    rng = np.random.default_rng(0)
    return {
        "gcn": gcn_on_synthetic(nodes=24, density=0.1, seed=0),
        "graphsage": graphsage_on_synthetic(nodes=20, density=0.15, seed=0),
        "sae": build_sae(rng.standard_normal((8, 16)), weight_density=0.4, seed=0),
        "gpt3": build_gpt3(seq_len=16, d_model=8, block=4, n_layers=1),
    }


@pytest.fixture(scope="module")
def bundles():
    return _bundles()


@pytest.fixture(scope="module")
def tuned(bundles):
    """Exhaustive + guided results per model, shared across parity tests."""
    results = {}
    budgets = {"gcn": 6, "graphsage": 6, "sae": 3, "gpt3": 2}
    for model, bundle in bundles.items():
        stats = stats_from_binding(bundle.binding)
        session = Session(cache_size=1024)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            exhaustive = autotune(
                bundle.program, bundle.binding, stats, session=session,
                simulate_top=64, max_candidates=64,
            )
        guided = {
            strategy: autotune(
                bundle.program, bundle.binding, stats, session=session,
                strategy=strategy, budget=budgets[model], seed=0,
            )
            for strategy in ("beam", "evolutionary")
        }
        results[model] = (exhaustive, guided)
    return results


class TestRegistry:
    def test_registered_strategies(self):
        assert {"exhaustive", "beam", "evolutionary"} <= set(STRATEGIES)

    def test_get_strategy_unknown_lists_options(self):
        with pytest.raises(KeyError, match="beam"):
            get_strategy("no-such-strategy")

    def test_autotune_unknown_strategy_raises(self, bundles):
        bundle = bundles["sae"]
        stats = stats_from_binding(bundle.binding)
        with pytest.raises(KeyError):
            autotune(bundle.program, bundle.binding, stats, strategy="nope")


class TestExhaustiveParity:
    """The oracle gate: guided winners within 1% of exhaustive, all 4 models."""

    @pytest.mark.parametrize("model", ["gcn", "graphsage", "sae", "gpt3"])
    def test_winner_cycles_within_1pct(self, tuned, model):
        exhaustive, guided = tuned[model]
        for strategy, result in guided.items():
            assert result.measured_cycles <= exhaustive.measured_cycles * 1.01, (
                model,
                strategy,
                result.measured_cycles,
                exhaustive.measured_cycles,
            )

    @pytest.mark.parametrize("model", ["gcn", "graphsage", "sae", "gpt3"])
    def test_guided_simulates_less(self, tuned, model):
        exhaustive, guided = tuned[model]
        for strategy, result in guided.items():
            assert result.evaluations < exhaustive.evaluations, (model, strategy)

    def test_tuned_schedule_fields(self, tuned):
        exhaustive, guided = tuned["gcn"]
        assert exhaustive.strategy == "exhaustive"
        assert guided["beam"].strategy == "beam"
        assert guided["evolutionary"].strategy == "evolutionary"
        for result in (exhaustive, *guided.values()):
            assert result.evaluations == result.candidates_simulated
            assert len(result.search_trace) >= result.evaluations
            assert result.executable is not None

    def test_trace_is_json_safe(self, tuned):
        _, guided = tuned["gcn"]
        text = json.dumps(guided["beam"].search_trace)
        assert json.loads(text) == guided["beam"].search_trace


class TestSeededDeterminism:
    @pytest.fixture(scope="class")
    def sae(self):
        rng = np.random.default_rng(0)
        bundle = build_sae(rng.standard_normal((6, 12)), weight_density=0.5, seed=0)
        return bundle, stats_from_binding(bundle.binding)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_same_seed_identical_trace(self, sae, seed):
        bundle, stats = sae
        runs = [
            autotune(
                bundle.program, bundle.binding, stats,
                session=Session(), strategy="evolutionary", budget=2, seed=seed,
            )
            for _ in range(2)
        ]
        assert runs[0].search_trace == runs[1].search_trace
        assert runs[0].best.name == runs[1].best.name

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_every_visited_schedule_validates(self, sae, seed):
        bundle, stats = sae
        tuned = autotune(
            bundle.program, bundle.binding, stats,
            session=Session(), strategy="evolutionary", budget=3, seed=seed,
        )
        assert tuned.search_trace
        for entry in tuned.search_trace:
            schedule = Schedule(
                name=entry["schedule"],
                regions=[list(r) for r in entry["regions"]],
                splits=dict(entry["splits"]),
                par=dict(entry["par"]),
            )
            schedule.validate(bundle.program)

    def test_beam_same_seed_identical_trace(self, sae):
        bundle, stats = sae
        runs = [
            autotune(
                bundle.program, bundle.binding, stats,
                session=Session(), strategy="beam", budget=3, seed=0,
            )
            for _ in range(2)
        ]
        assert runs[0].search_trace == runs[1].search_trace


class TestSearchSpace:
    @pytest.fixture(scope="class")
    def space(self, bundles):
        return SearchSpace(
            bundles["gcn"].program, split_configs=[{"x1": 4}], par_configs=[{"i": 2}]
        )

    def test_seeds_are_the_two_baselines(self, space):
        seeds = space.seeds()
        assert seeds[0].cuts == ()
        assert seeds[1].cuts == tuple(range(1, space.n))

    def test_neighbors_cover_all_five_moves(self, space):
        point = SearchPoint(cuts=(2,), order_choice=(0, 0))
        moves = {move for move, _ in space.neighbors(point)}
        assert {"merge", "split-region", "bump-split", "toggle-par"} <= moves

    def test_neighbors_are_deterministic(self, space):
        point = SearchPoint(cuts=(1, 3), order_choice=(0, 0, 0))
        first = space.neighbors(point)
        second = space.neighbors(point)
        assert [(m, p.key) for m, p in first] == [(m, p.key) for m, p in second]

    def test_schedules_materialize_and_validate(self, space, bundles):
        program = bundles["gcn"].program
        for _, point in space.neighbors(SearchPoint(cuts=(), order_choice=(0,))):
            space.schedule_for(point).validate(program)

    def test_split_and_par_configs_applied(self, space):
        point = SearchPoint(cuts=(), order_choice=(0,), split_idx=1, par_idx=1)
        schedule = space.schedule_for(point)
        assert schedule.splits == {"x1": 4}
        assert schedule.par == {"i": 2}


class TestCostModelRoundTrip:
    @pytest.fixture(scope="class")
    def records(self, bundles):
        """Ground truth from an exhaustive run's measured trace (gcn)."""
        bundle = bundles["gcn"]
        stats = stats_from_binding(bundle.binding)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            tuned = autotune(
                bundle.program, bundle.binding, stats,
                session=Session(cache_size=1024),
                simulate_top=32, max_candidates=32,
            )
        out = []
        for entry in tuned.search_trace:
            if entry["status"] != "ok":
                continue
            out.append(
                CalibrationRecord(
                    model_name="gcn",
                    program=bundle.program,
                    schedule=Schedule(
                        name=entry["schedule"],
                        regions=[list(r) for r in entry["regions"]],
                        splits=dict(entry["splits"]),
                        par=dict(entry["par"]),
                    ),
                    stats=stats,
                    machine=RDA_MACHINE,
                    cycles=entry["cycles"],
                )
            )
        assert len(out) >= 10
        return out

    def test_fit_save_load_bit_stable(self, records, tmp_path):
        model = CalibratedCostModel().fit(records)
        first = tmp_path / "cm1.json"
        second = tmp_path / "cm2.json"
        model.save(str(first))
        CalibratedCostModel.load(str(first)).save(str(second))
        assert first.read_bytes() == second.read_bytes()

    def test_monotone_improvement_vs_raw_heuristic(self, records):
        """Calibration never fits worse than the raw score predictor."""
        model = CalibratedCostModel().fit(records)
        for name, terms in model.terms.items():
            assert terms.rmse <= terms.raw_rmse + 1e-12, (name, terms)
        assert model.terms["gcn"].rmse < model.terms["gcn"].raw_rmse

    def test_loaded_model_predicts_identically(self, records, tmp_path):
        bundle_record = records[0]
        model = CalibratedCostModel().fit(records)
        path = tmp_path / "cm.json"
        model.save(str(path))
        loaded = CalibratedCostModel.load(str(path))
        args = (
            bundle_record.program,
            bundle_record.schedule,
            bundle_record.stats,
            bundle_record.machine,
        )
        assert model.predict(*args, model_name="gcn") == loaded.predict(
            *args, model_name="gcn"
        )

    def test_prediction_clamped_to_roofline(self, records):
        """Predictions never undershoot the analytical lower bound."""
        model = CalibratedCostModel().fit(records)
        base = HeuristicCostModel()
        for record in records[:5]:
            args = (
                record.program,
                record.schedule,
                record.stats,
                record.machine,
            )
            assert model.predict(*args, model_name="gcn") >= base.predict(
                *args
            ) * (1 - 1e-9)

    def test_unknown_model_falls_back_to_global(self, records):
        model = CalibratedCostModel().fit(records)
        record = records[0]
        value = model.predict(
            record.program, record.schedule, record.stats, record.machine,
            model_name="never-seen",
        )
        assert value > 0

    def test_empty_fit_raises(self):
        with pytest.raises(CostModelError):
            CalibratedCostModel().fit([])

    def test_load_rejects_non_artifact(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": 1}')
        with pytest.raises(CostModelError, match="not a cost-model"):
            CalibratedCostModel.load(str(path))

    def test_load_rejects_wrong_version(self, records, tmp_path):
        model = CalibratedCostModel().fit(records)
        path = tmp_path / "cm.json"
        model.save(str(path))
        payload = json.loads(path.read_text())
        payload["version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(CostModelError, match="version"):
            CalibratedCostModel.load(str(path))


class TestCalibrationFromSweepArtifacts:
    def test_fit_from_resultstore_jsonl(self, tmp_path):
        from repro.sweep import SweepSpec, run_sweep

        spec = SweepSpec(
            name="cal", models=["sae"], schedules=["unfused", "partial", "full"],
            machines=["rda"], model_args={"nodes": 12},
        )
        store = tmp_path / "cal.jsonl"
        outcome = run_sweep(spec, store_path=str(store), workers=1)
        assert outcome.failed == 0
        model = CalibratedCostModel().fit_from_store(str(store))
        assert "sae" in model.terms and "*" in model.terms
        assert model.terms["sae"].records == 3

    def test_fit_from_spec_json_runs_in_process(self, tmp_path):
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            name="cal", models=["sae"], schedules=["unfused", "full"],
            machines=["rda"], model_args={"nodes": 12},
        )
        path = tmp_path / "spec.json"
        spec.save(str(path))
        model = CalibratedCostModel().fit_from_store(str(path))
        assert model.terms["sae"].records == 2

    def test_calibrated_search_end_to_end(self, tmp_path, bundles):
        """A calibrated model drives autotune and still reaches parity."""
        bundle = bundles["sae"]
        stats = stats_from_binding(bundle.binding)
        session = Session(cache_size=1024)
        exhaustive = autotune(
            bundle.program, bundle.binding, stats, session=session,
            simulate_top=32, max_candidates=32,
        )
        records = [
            CalibrationRecord(
                model_name="sae", program=bundle.program,
                schedule=Schedule(
                    name=e["schedule"], regions=[list(r) for r in e["regions"]],
                    splits=dict(e["splits"]), par=dict(e["par"]),
                ),
                stats=stats, machine=RDA_MACHINE, cycles=e["cycles"],
            )
            for e in exhaustive.search_trace if e["status"] == "ok"
        ]
        calibrated = CalibratedCostModel().fit(records)
        tuned = autotune(
            bundle.program, bundle.binding, stats, session=session,
            strategy="beam", budget=3, seed=0,
            cost_model=calibrated, model_name="sae",
        )
        assert tuned.measured_cycles <= exhaustive.measured_cycles * 1.01
