"""Fault injection and the hardening it exercises.

Three layers under test:

* the :mod:`repro.reliability` registry itself — spec grammar, trigger
  determinism, zero-overhead-off semantics;
* the sweep supervisor — crashed/hung workers are re-spawned and their
  points re-dispatched, poison points quarantine with terminal records,
  resume converges;
* the serve front end — deadlines (504), load shedding (503 +
  ``Retry-After``), bounded single-flight waits, graceful drain.

Chaos here is *deterministic*: every injected fault uses count or fuse
triggers, so these tests replay identically instead of flaking.
"""

import json
import os
import threading
import time
import urllib.error
import urllib.request
import warnings

import pytest

from repro.driver.diskcache import DiskCache
from repro.reliability import (
    CRASH_EXIT_CODE,
    FAULT_SITES,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    clear_plan,
    fault_point,
    injected_faults,
    install_plan,
)
from repro.serve import SingleFlight, WaitTimeout, make_server, parse_request
from repro.sweep.runner import (
    SweepRunner,
    TRANSIENT_ERROR_TYPES,
    _is_transient,
    run_sweep,
)
from repro.sweep.spec import SweepSpec
from repro.sweep.store import ResultStore


@pytest.fixture(autouse=True)
def _clean_plan():
    """Every test starts and ends with no fault plan installed."""
    os.environ.pop("FUSEFLOW_FAULTS", None)
    clear_plan()
    yield
    os.environ.pop("FUSEFLOW_FAULTS", None)
    clear_plan()


def tiny_spec() -> SweepSpec:
    return SweepSpec(
        name="chaos",
        models=["sae"],
        schedules=["unfused", "full"],
        machines=["rda"],
        model_args={"batch": 1},
    )


# ----------------------------------------------------------------------
# The registry: grammar, triggers, lifecycle
# ----------------------------------------------------------------------


class TestFaultPlanParsing:
    def test_grammar_roundtrip(self):
        plan = FaultPlan.parse(
            "compile:raise@nth=2;sweep.point:hang:1.5@match=*unfused*,times=3;"
            "diskcache.put:crash;serve.request:slow:0.25@p=0.5,seed=7"
        )
        kinds = sorted((r.site, r.kind) for r in plan.rules)
        assert kinds == [
            ("compile", "raise"),
            ("diskcache.put", "crash"),
            ("serve.request", "slow"),
            ("sweep.point", "hang"),
        ]

    def test_rejections(self):
        bad = [
            "nope.site:raise",  # unknown site
            "compile:explode",  # unknown kind
            "compile:hang",  # hang needs seconds
            "compile:hang:-1",  # negative seconds
            "compile:raise@p=2",  # probability out of range
            "compile:raise@every=0",  # every must be >= 1
            "compile:raise@wat=1",  # unknown trigger
            "compile",  # no kind at all
        ]
        for spec in bad:
            with pytest.raises(FaultSpecError):
                FaultPlan.parse(spec)

    def test_sites_registry_is_closed(self):
        assert FAULT_SITES == {
            "compile",
            "diskcache.get",
            "diskcache.put",
            "sweep.point",
            "serve.request",
        }


class TestTriggers:
    def test_nth_fires_exactly_once(self):
        plan = FaultPlan.parse("compile:raise@nth=3")
        install_plan(plan)
        fault_point("compile")
        fault_point("compile")
        with pytest.raises(InjectedFault):
            fault_point("compile")
        fault_point("compile")  # call 4: silent again

    def test_every_and_times(self):
        plan = FaultPlan.parse("compile:raise@every=2,times=2")
        install_plan(plan)
        fired = 0
        for _ in range(10):
            try:
                fault_point("compile")
            except InjectedFault:
                fired += 1
        assert fired == 2  # calls 2 and 4 only; times= caps the rest

    def test_probability_is_seeded_and_deterministic(self):
        def count(seed: int) -> int:
            plan = FaultPlan.parse(f"compile:raise@p=0.5,seed={seed}")
            fired = 0
            for _ in range(50):
                for rule in plan.rules:
                    if rule.should_fire(None):
                        fired += 1
            return fired

        assert count(0) == count(0)  # identical replay
        assert 5 < count(0) < 45  # actually probabilistic

    def test_match_substring_and_glob(self):
        plan = FaultPlan.parse("sweep.point:raise@match=*unfused*")
        install_plan(plan)
        fault_point("sweep.point", key="sae/synthetic/full/rda")
        with pytest.raises(InjectedFault):
            fault_point("sweep.point", key="sae/synthetic/unfused/rda")
        # Plain substring (no metacharacters) selects the same.
        install_plan(FaultPlan.parse("sweep.point:raise@match=unfused"))
        with pytest.raises(InjectedFault):
            fault_point("sweep.point", key="sae/synthetic/unfused/rda")

    def test_fuse_caps_fires_across_plans(self, tmp_path):
        # Two plans (standing in for two processes) share one fuse dir:
        # the rule fires exactly `times` times in total.
        fuse = tmp_path / "fuse"
        spec = f"compile:raise@times=2,fuse={fuse}"
        fired = 0
        for _ in range(2):  # "process" A and B
            plan = FaultPlan.parse(spec)
            for _ in range(5):
                for rule in plan.rules:
                    if rule.should_fire(None):
                        fired += 1
        assert fired == 2
        assert len(list(fuse.iterdir())) == 2

    def test_slow_sleeps_and_continues(self):
        install_plan(FaultPlan.parse("compile:slow:0.05"))
        started = time.perf_counter()
        fault_point("compile")  # no exception
        assert time.perf_counter() - started >= 0.05

    def test_crash_downgrades_to_raise_in_main_process(self):
        # os._exit in the test runner would be catastrophic; in the main
        # process the crash kind must degrade to InjectedFault.
        install_plan(FaultPlan.parse("compile:crash"))
        with pytest.raises(InjectedFault):
            fault_point("compile")


class TestLifecycle:
    def test_no_plan_is_silent(self):
        for site in FAULT_SITES:
            fault_point(site, key="anything")

    def test_env_plan_is_parsed_lazily_and_tracks_changes(self):
        fault_point("compile")  # caches "env empty"
        os.environ["FUSEFLOW_FAULTS"] = "compile:raise"
        with pytest.raises(InjectedFault):
            fault_point("compile")  # re-set env picked up, not shadowed
        del os.environ["FUSEFLOW_FAULTS"]
        fault_point("compile")  # and unset is picked up too

    def test_env_parse_error_is_loud(self):
        os.environ["FUSEFLOW_FAULTS"] = "garbage"
        with pytest.raises(FaultSpecError):
            fault_point("compile")

    def test_injected_faults_context_manager(self):
        with injected_faults("compile:raise"):
            with pytest.raises(InjectedFault):
                fault_point("compile")
        fault_point("compile")  # plan uninstalled on exit

    def test_stats_count_calls_and_fires(self):
        with injected_faults("compile:raise@nth=2") as plan:
            fault_point("compile")
            with pytest.raises(InjectedFault):
                fault_point("compile")
            assert plan.stats() == {
                ("compile", "raise"): {"calls": 2, "fires": 1}
            }


# ----------------------------------------------------------------------
# Sweep hardening
# ----------------------------------------------------------------------


class TestTransientClassification:
    def test_error_type_prefix_allowlist(self):
        assert _is_transient(
            {"status": "error", "error": "InjectedFault: compile: raise"}
        )
        assert _is_transient({"status": "error", "error": "OSError: boom"})
        assert not _is_transient(
            {"status": "error", "error": "ValueError: bad schedule"}
        )
        # Verification failures are deterministic — never retried.
        assert not _is_transient(
            {"status": "error", "error": "verification failed: max_abs_err=1"}
        )
        assert not _is_transient({"status": "ok"})

    def test_allowlist_has_no_catchall(self):
        assert "Exception" not in TRANSIENT_ERROR_TYPES
        assert "RuntimeError" not in TRANSIENT_ERROR_TYPES


class TestRunnerValidation:
    def test_bad_knobs_rejected(self):
        spec = tiny_spec()
        with pytest.raises(ValueError, match="point_timeout"):
            SweepRunner(spec, point_timeout=0)
        with pytest.raises(ValueError, match="max_attempts"):
            SweepRunner(spec, max_attempts=0)
        with pytest.raises(ValueError, match="retry_backoff"):
            SweepRunner(spec, retry_backoff=-1)


class TestSweepChaos:
    def test_worker_crash_redispatches_with_zero_lost_points(self, tmp_path):
        # Two injected os._exit crashes across the worker fleet (the fuse
        # dir bounds them globally); every point must still land ok.
        fuse = tmp_path / "fuse"
        os.environ["FUSEFLOW_FAULTS"] = (
            f"sweep.point:crash@times=2,fuse={fuse}"
        )
        out = run_sweep(
            spec=tiny_spec(),
            store_path=str(tmp_path / "r.jsonl"),
            workers=2,
            point_timeout=60.0,
        )
        assert out.ran == 2
        assert all(r["status"] == "ok" for r in out.records)
        assert out.retries == 2
        retried = [r for r in out.records if "attempts" in r]
        assert retried and all(r["attempts"] >= 2 for r in retried)

    def test_hung_worker_is_killed_and_point_quarantined(self, tmp_path):
        # One point hangs on every attempt: the supervisor kills the
        # worker each time and finally quarantines a terminal "timeout"
        # record instead of wedging the sweep.
        os.environ["FUSEFLOW_FAULTS"] = "sweep.point:hang:30@match=*unfused*"
        store_path = str(tmp_path / "r.jsonl")
        out = run_sweep(
            spec=tiny_spec(),
            store_path=store_path,
            workers=2,
            point_timeout=1.0,
            max_attempts=2,
        )
        by_status = {r["status"]: r for r in out.records}
        assert sorted(by_status) == ["ok", "timeout"]
        quarantined = by_status["timeout"]
        assert quarantined["attempts"] == 2
        assert "wall-clock timeout" in quarantined["error"]
        assert "unfused" in quarantined["label"]

        # Faults off, resume converges: only the quarantined point
        # re-runs, and afterwards every point is complete.
        del os.environ["FUSEFLOW_FAULTS"]
        out2 = run_sweep(
            store_path=store_path, resume=True, workers=2, point_timeout=60.0
        )
        assert (out2.ran, out2.skipped) == (1, 1)
        assert all(r["status"] == "ok" for r in out2.records)
        store = ResultStore.open(store_path)
        try:
            assert len(store.completed_ids()) == 2
        finally:
            store.close()

    def test_inline_transient_retry(self, tmp_path):
        # workers=1 runs inline; a once-only transient raise (fuse-
        # bounded) is retried with backoff and the record annotated.
        fuse = tmp_path / "fuse"
        os.environ["FUSEFLOW_FAULTS"] = (
            f"sweep.point:raise@times=1,fuse={fuse}"
        )
        out = run_sweep(spec=tiny_spec(), workers=1)
        assert all(r["status"] == "ok" for r in out.records)
        assert out.retries == 1
        assert sum(1 for r in out.records if r.get("attempts") == 2) == 1

    def test_healthy_records_carry_no_attempts_field(self):
        # Byte-identity guarantee: with no faults and no retries the
        # record shape is exactly the pre-hardening one.
        out = run_sweep(spec=tiny_spec(), workers=2)
        assert all("attempts" not in r for r in out.records)
        assert out.retries == 0
        assert "retr" not in out.describe()

    def test_poison_raise_quarantines_as_error_record(self, tmp_path):
        # A point that raises transiently on *every* attempt exhausts
        # max_attempts and keeps its last error record (annotated).
        os.environ["FUSEFLOW_FAULTS"] = "sweep.point:raise@match=*unfused*"
        out = run_sweep(
            spec=tiny_spec(),
            store_path=str(tmp_path / "r.jsonl"),
            workers=2,
            max_attempts=2,
        )
        by_status = sorted(r["status"] for r in out.records)
        assert by_status == ["error", "ok"]
        poison = [r for r in out.records if r["status"] == "error"][0]
        assert poison["attempts"] == 2
        assert poison["error"].startswith("InjectedFault")


class TestTornTail:
    def test_torn_trailing_line_warns_and_is_counted(self, tmp_path):
        spec = tiny_spec()
        path = tmp_path / "r.jsonl"
        store = ResultStore.create(str(path), spec)
        store.append({"type": "result", "point_id": "p1", "status": "ok"})
        store.close()
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "result", "point_id": "p2", "sta')  # torn
        reopened = ResultStore.open(str(path))
        try:
            with pytest.warns(UserWarning, match="torn trailing record"):
                completed = reopened.completed_ids()
            assert completed == {"p1"}
            assert reopened.torn_tails_skipped == 1
        finally:
            reopened.close()


# ----------------------------------------------------------------------
# DiskCache breaker
# ----------------------------------------------------------------------


class TestDiskCacheBreaker:
    def test_consecutive_put_failures_disable_the_disk_level(self, tmp_path):
        cache = DiskCache(str(tmp_path / "c"), put_failure_limit=2)
        with injected_faults("diskcache.put:raise"):
            assert cache.put("k1", {"v": 1}) is False
            assert cache.disabled_reason is None  # one failure: still open
            assert cache.put("k2", {"v": 2}) is False
        reason = cache.disabled_reason
        assert reason is not None and "2 consecutive" in reason
        assert "InjectedFault" in reason
        # Disabled means short-circuit: no write, no read, no exception —
        # even now that the fault plan is gone.
        assert cache.put("k3", {"v": 3}) is False
        assert cache.get("k3") is None
        info = cache.info()
        assert info.disabled_reason == reason
        assert info.put_failures == 2
        assert "DISABLED" in str(info)

    def test_success_resets_the_consecutive_count(self, tmp_path):
        cache = DiskCache(str(tmp_path / "c"), put_failure_limit=2)
        with injected_faults("diskcache.put:raise@nth=1"):
            assert cache.put("k1", {"v": 1}) is False
            assert cache.put("k2", {"v": 2}) is True  # resets the streak
            assert cache.disabled_reason is None
        assert cache.info().put_failures == 1

    def test_injected_get_fault_is_a_miss_not_a_crash(self, tmp_path):
        cache = DiskCache(str(tmp_path / "c"))
        assert cache.put("k", {"v": 1}) is True
        with injected_faults("diskcache.get:raise"):
            assert cache.get("k") is None
        assert cache.get("k") == {"v": 1}


# ----------------------------------------------------------------------
# SingleFlight bounded waits
# ----------------------------------------------------------------------


class TestSingleFlightTimeouts:
    def test_follower_wait_is_bounded(self):
        flight = SingleFlight()
        release = threading.Event()
        entered = threading.Event()

        def work():
            entered.set()
            release.wait(timeout=60)
            return "value"

        results = []
        leader = threading.Thread(
            target=lambda: results.append(flight.run("k", work))
        )
        leader.start()
        assert entered.wait(timeout=10)
        with pytest.raises(WaitTimeout) as excinfo:
            flight.run("k", lambda: "unused", timeout=0.1)
        assert excinfo.value.key == "k"
        assert not excinfo.value.leader
        release.set()
        leader.join(timeout=30)
        assert results == [("value", False)]
        assert flight.stats()["wait_timeouts"] == 1

    def test_leader_with_deadline_times_out_but_work_completes(self):
        flight = SingleFlight()
        finished = threading.Event()

        def slow():
            time.sleep(0.4)
            finished.set()
            return "late"

        with pytest.raises(WaitTimeout) as excinfo:
            flight.run("k", slow, timeout=0.05)
        assert excinfo.value.leader
        # The abandoned execution still runs to completion (cache warming).
        assert finished.wait(timeout=10)

    def test_timeout_none_is_the_classic_inline_path(self):
        flight = SingleFlight()
        assert flight.run("k", lambda: 7) == (7, False)
        assert flight.stats()["wait_timeouts"] == 0


# ----------------------------------------------------------------------
# Serve hardening (real HTTP, ephemeral ports)
# ----------------------------------------------------------------------


def _url(server, path: str) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}{path}"


def _post_raw(server, path: str, body: dict):
    """POST returning (status, headers, payload) without raising on 5xx."""
    request = urllib.request.Request(
        _url(server, path),
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=120) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def _get_raw(server, path: str):
    try:
        with urllib.request.urlopen(_url(server, path), timeout=60) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


@pytest.fixture()
def hardened_server(tmp_path):
    srv = make_server(
        port=0,
        cache_dir=str(tmp_path / "cache"),
        quiet=True,
        deadline=1.0,
        max_inflight=2,
    )
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    yield srv
    srv.shutdown()
    srv.server_close()
    thread.join(timeout=30)


SMALL = {"model": "sae", "model_args": {"nodes": 12}}


class TestServeDeadlines:
    def test_server_deadline_maps_hang_to_504(self, hardened_server):
        with injected_faults("serve.request:hang:5@nth=1"):
            status, _, payload = _post_raw(
                hardened_server, "/v1/compile", SMALL
            )
        assert status == 504
        assert "deadline" in payload["error"] or "wait" in payload["error"]
        _, stats = _get_raw(hardened_server, "/v1/stats")
        assert stats["timeouts"] == 1
        assert stats["deadline_seconds"] == 1.0

    def test_request_deadline_ms_tightens_the_server_deadline(
        self, hardened_server
    ):
        # Server allows 1s; the client asks for 100ms and a 0.5s stall
        # (inside the server budget) must still 504.
        with injected_faults("serve.request:hang:0.5@nth=1"):
            status, _, _ = _post_raw(
                hardened_server,
                "/v1/compile",
                {**SMALL, "deadline_ms": 100},
            )
        assert status == 504

    def test_deadline_ms_is_not_part_of_the_content_key(self):
        a = parse_request(json.dumps(SMALL).encode(), "compile")
        b = parse_request(
            json.dumps({**SMALL, "deadline_ms": 5000}).encode(), "compile"
        )
        assert a.key() == b.key()

    def test_deadline_ms_validation(self):
        from repro.serve import ServeError

        for bad in (0, -5, "soon", True, 1.5):
            with pytest.raises(ServeError, match="deadline_ms"):
                parse_request(
                    json.dumps({**SMALL, "deadline_ms": bad}).encode(),
                    "compile",
                )

    def test_fast_requests_are_unaffected(self, hardened_server):
        status, headers, payload = _post_raw(
            hardened_server, "/v1/compile", SMALL
        )
        assert status == 200
        assert payload["cache"] == "compiled"
        assert "X-Fuseflow-Cache" in headers


class TestServeShedding:
    def test_overload_sheds_with_503_and_retry_after(self, tmp_path):
        srv = make_server(
            port=0, cache_dir=str(tmp_path / "c"), quiet=True, max_inflight=1
        )
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            results = []
            with injected_faults("serve.request:hang:2@nth=1"):
                blocker = threading.Thread(
                    target=lambda: results.append(
                        _post_raw(srv, "/v1/compile", SMALL)
                    )
                )
                blocker.start()
                deadline = time.time() + 10
                while time.time() < deadline:
                    _, stats = _get_raw(srv, "/v1/stats")
                    if stats["active_requests"] >= 1:
                        break
                    time.sleep(0.01)
                status, headers, payload = _post_raw(
                    srv,
                    "/v1/compile",
                    {"model": "sae", "model_args": {"nodes": 16}},
                )
                blocker.join(timeout=60)
            assert status == 503
            assert headers["Retry-After"] == "1"
            assert "overloaded" in payload["error"]
            assert results and results[0][0] == 200  # admitted one finished
            _, stats = _get_raw(srv, "/v1/stats")
            assert stats["shed"] == 1
            assert stats["max_inflight"] == 1
        finally:
            srv.shutdown()
            srv.server_close()
            thread.join(timeout=30)


class TestServeDrain:
    def test_drain_refuses_new_work_and_stops_cleanly(self, tmp_path):
        srv = make_server(port=0, cache_dir=str(tmp_path / "c"), quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        try:
            status, _, _ = _post_raw(srv, "/v1/compile", SMALL)
            assert status == 200
            srv.state.begin_drain()
            status, payload = _get_raw(srv, "/healthz")
            assert (status, payload) == (503, {"status": "draining"})
            status, _, payload = _post_raw(srv, "/v1/compile", SMALL)
            assert status == 503
            assert "draining" in payload["error"]
            _, stats = _get_raw(srv, "/v1/stats")
            assert stats["draining"] is True
            srv.drain(timeout=5.0)  # idempotent; unblocks serve_forever
            thread.join(timeout=30)
            assert not thread.is_alive()
        finally:
            srv.server_close()

    def test_drain_waits_for_inflight_work(self, tmp_path):
        srv = make_server(port=0, cache_dir=str(tmp_path / "c"), quiet=True)
        thread = threading.Thread(target=srv.serve_forever, daemon=True)
        thread.start()
        results = []
        try:
            with injected_faults("serve.request:slow:1@nth=1"):
                poster = threading.Thread(
                    target=lambda: results.append(
                        _post_raw(srv, "/v1/compile", SMALL)
                    )
                )
                poster.start()
                deadline = time.time() + 10
                while time.time() < deadline:
                    _, stats = _get_raw(srv, "/v1/stats")
                    if stats["active_requests"] >= 1:
                        break
                    time.sleep(0.01)
                srv.drain(timeout=30.0)
                poster.join(timeout=60)
            # The in-flight request completed during the drain window.
            assert results and results[0][0] == 200
            thread.join(timeout=30)
        finally:
            srv.server_close()


class TestCodegenCompileFaults:
    """Artifact-cache consistency when a codegen compile is interrupted.

    The satellite contract: a fault injected at the ``compile`` site
    while ``backend="codegen"`` must leave no half-registered source in
    the sha256 code cache — the retry compiles cleanly and every
    registered source stays accounted for (``code_files`` matches the
    cache's linecache registrations, retained shas have live owners).
    """

    def _program_binding(self):
        import numpy as np

        from repro.core.einsum.parser import parse_program
        from repro.ftree import SparseTensor, csr, dense

        program = parse_program(
            "tensor A(4, 5): csr\n"
            "tensor X(5, 3): dense\n"
            "T(i, j) = A(i, k) * X(k, j)"
        )
        rng = np.random.default_rng(7)
        a = rng.random((4, 5)) * (rng.random((4, 5)) < 0.5)
        binding = {
            "A": SparseTensor.from_dense(a, csr(), "A"),
            "X": SparseTensor.from_dense(rng.random((5, 3)), dense(2), "X"),
        }
        return program, binding

    def test_interrupted_compile_leaves_caches_consistent(self):
        from repro.backend.codegen import (
            clear_codegen_caches,
            codegen_cache_info,
        )
        from repro.comal.machines import RDA_MACHINE
        from repro.driver import Session

        clear_codegen_caches()
        program, binding = self._program_binding()
        session = Session(machine=RDA_MACHINE, backend="codegen")
        with injected_faults("compile:raise@nth=1"):
            with pytest.raises(InjectedFault):
                session.compile(program)
            # Nothing was emitted for the aborted compile: no orphaned
            # sha256 entries, no dangling linecache registrations.
            info = codegen_cache_info()
            assert info["retained_sources"] == 0
            assert info["code_files"] == 0
            # The retry (same session, same plan — the fault was one-shot)
            # compiles and runs.
            exe = session.compile(program)
        result = exe(binding)
        assert result.metrics.tokens > 0
        info = codegen_cache_info()
        # Every cached code object is linecache-registered exactly once
        # and every retained source backs a live artifact.
        assert info["code_files"] == info["code_entries"]
        assert info["retained_sources"] == info["code_entries"]
        assert info["fallbacks"] == 0

    def test_interrupted_emit_retries_cleanly(self, monkeypatch):
        # Deeper than the compile-site fault: die *inside* artifact
        # emission (after source generation, before the artifact is
        # retained) and verify the retry re-emits without double
        # registration or a stale half-artifact.
        import repro.backend.codegen as cg

        clear = cg.clear_codegen_caches
        clear()
        program, binding = self._program_binding()
        from repro.comal.machines import RDA_MACHINE
        from repro.driver import Session

        real = cg._compile_artifact
        calls = {"n": 0}

        def flaky(graph, order, tier):
            calls["n"] += 1
            artifact = real(graph, order, tier)
            if calls["n"] == 1:
                raise InjectedFault("codegen.emit", graph.name)
            return artifact

        monkeypatch.setattr(cg, "_compile_artifact", flaky)
        session = Session(machine=RDA_MACHINE, backend="codegen")
        with pytest.raises(InjectedFault):
            session.compile(program)
        # The aborted emit compiled a code object but never retained it:
        # the artifact cache must not serve a half-registered entry.
        info = cg.codegen_cache_info()
        assert info["retained_sources"] == 0
        exe = session.compile(program)
        result = exe(binding)
        assert result.metrics.tokens > 0
        info = cg.codegen_cache_info()
        assert info["code_files"] == info["code_entries"]
        assert info["retained_sources"] == info["code_entries"]


class TestServeStatsSurface:
    def test_stats_reports_reliability_fields(self, hardened_server):
        _post_raw(hardened_server, "/v1/compile", SMALL)
        _, stats = _get_raw(hardened_server, "/v1/stats")
        for key in (
            "active_requests",
            "shed",
            "timeouts",
            "wait_timeouts",
            "draining",
            "deadline_seconds",
            "max_inflight",
        ):
            assert key in stats, key
        assert stats["disk_cache"]["disabled_reason"] is None

    def test_compile_fault_is_a_500_not_a_crash(self, hardened_server):
        with injected_faults("compile:raise@nth=1"):
            status, _, payload = _post_raw(
                hardened_server, "/v1/compile", SMALL
            )
        assert status == 500
        assert "InjectedFault" in payload["error"]
        # The server survives and answers the retry.
        status, _, _ = _post_raw(hardened_server, "/v1/compile", SMALL)
        assert status == 200
