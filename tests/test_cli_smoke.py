"""End-to-end smoke tests covering every ``fuseflow`` subcommand.

Each test drives :func:`repro.cli.main` exactly as a shell invocation
would (argv in, exit code out, stdout checked), so argument wiring,
defaults, and output formatting are all exercised — including the sweep
verbs and ``compile --diagnostics``.  One test additionally goes through a
real subprocess to cover the ``python -m repro.cli`` entry path.
"""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as cli_main

SMALL = ["--nodes", "24", "--density", "0.1"]


class TestRun:
    def test_run_each_model(self, capsys):
        for model, extra in (
            ("gcn", SMALL),
            ("graphsage", SMALL),
            ("sae", ["--nodes", "16"]),
            ("gpt3", ["--seq-len", "16", "--d-model", "8", "--block", "4"]),
        ):
            code = cli_main(["run", "--model", model, "--fusion", "partial", *extra])
            out = capsys.readouterr().out
            assert code == 0, f"{model}: {out}"
            assert "cycles" in out and "max |err|" in out

    def test_run_with_machine_and_par(self, capsys):
        code = cli_main(
            ["run", "--model", "gcn", *SMALL, "--machine", "fpga",
             "--fusion", "partial", "--par", "i=2"]
        )
        assert code == 0

    def test_bad_par_spec_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--model", "gcn", *SMALL, "--par", "nonsense"])


class TestSimulate:
    def test_simulate_basic(self, capsys):
        code = cli_main(["simulate", "--model", "gcn", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "cycles" in out and "tokens" in out
        assert "busiest" not in out

    def test_simulate_profile_lists_busiest_nodes(self, capsys):
        code = cli_main(
            ["simulate", "--model", "gcn", *SMALL, "--fusion", "full",
             "--profile", "--top", "5"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "top 5 busiest nodes" in out
        assert "util%" in out
        # Rows name region/node and the primitive.
        assert "scan(" in out or "alu(" in out or "array(" in out

    def test_simulate_mode_flags(self, capsys):
        code = cli_main(
            ["simulate", "--model", "sae", "--nodes", "16", "--profile",
             "--legacy-streams", "--no-sim-cache", "--debug-streams"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "busiest" in out

    def test_simulate_hierarchy_reports_per_level_traffic(self, capsys):
        code = cli_main(
            ["simulate", "--model", "gcn", *SMALL, "--fusion", "unfused",
             "--hierarchy", "fpga-small", "--profile"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fpga-small" in out
        assert "sram bytes" in out and "spill/fill" in out
        assert "memory traffic per region" in out

    def test_simulate_unknown_hierarchy_exits(self):
        with pytest.raises(SystemExit, match="unknown hierarchy"):
            cli_main(
                ["simulate", "--model", "gcn", *SMALL, "--hierarchy", "hbm9"]
            )


class TestSweepVerbs:
    def test_run_resume_report_cycle(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.jsonl")

        code = cli_main(
            ["sweep", "run", *SMALL, "--workers", "2", "--out", out_path,
             "--name", "smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "12 point(s): 12 ran" in out
        assert "speedup" in out and "best point" in out

        code = cli_main(["sweep", "resume", "--out", out_path, "--quiet"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0 ran" in out and "12 resumed from store" in out

        json_path = str(tmp_path / "report.json")
        bench_path = str(tmp_path / "BENCH_sweep_smoke.json")
        code = cli_main(
            ["sweep", "report", "--out", out_path, "--json", json_path,
             "--bench-json", bench_path]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "best point" in out
        with open(json_path) as fh:
            summary = json.load(fh)
        assert summary["points_ok"] == 12 and summary["verified"] is True
        with open(bench_path) as fh:
            assert len(json.load(fh)["results"]) == 12

    def test_run_with_hierarchies_axis(self, capsys, tmp_path):
        out_path = str(tmp_path / "hier.jsonl")
        code = cli_main(
            ["sweep", "run", *SMALL, "--models", "gcn", "--machines", "rda",
             "--schedules", "unfused,full", "--hierarchies",
             "flat,fpga-small", "--workers", "1", "--out", out_path,
             "--name", "hier-smoke"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "4 point(s): 4 ran" in out
        assert "fpga-small" in out
        # Speedup groups keep hierarchies separate.
        assert "gcn/synthetic/rda/fpga-small" in out

    def test_run_refuses_existing_out(self, capsys, tmp_path):
        out_path = str(tmp_path / "sweep.jsonl")
        assert cli_main(
            ["sweep", "run", *SMALL, "--models", "sae", "--machines", "rda",
             "--workers", "1", "--out", out_path, "--quiet"]
        ) == 0
        capsys.readouterr()
        with pytest.raises(SystemExit, match="already exists"):
            cli_main(
                ["sweep", "run", *SMALL, "--models", "sae", "--machines",
                 "rda", "--workers", "1", "--out", out_path, "--quiet"]
            )
        # --force overwrites.
        assert cli_main(
            ["sweep", "run", *SMALL, "--models", "sae", "--machines", "rda",
             "--workers", "1", "--out", out_path, "--quiet", "--force"]
        ) == 0

    def test_report_missing_file_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="no results file"):
            cli_main(["sweep", "report", "--out", str(tmp_path / "nope.jsonl")])

    def test_report_headerless_file_exits(self, tmp_path):
        path = str(tmp_path / "headerless.jsonl")
        with open(path, "w") as fh:
            fh.write('{"type": "result", "point_id": "a", "status": "ok"}\n')
        with pytest.raises(SystemExit, match="no spec header"):
            cli_main(["sweep", "report", "--out", path])

    def test_run_from_spec_file(self, capsys, tmp_path):
        from repro.sweep import SweepSpec

        spec = SweepSpec(
            name="fromfile", models=["sae"], machines=["rda"],
            schedules=["unfused", "full"], model_args={"nodes": 16},
        )
        spec_path = str(tmp_path / "spec.json")
        spec.save(spec_path)
        code = cli_main(
            ["sweep", "run", "--spec", spec_path, "--workers", "1", "--quiet"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 point(s): 2 ran" in out
        assert "sweep fromfile" in out

    def test_failed_points_set_exit_code(self, capsys):
        # SAE has no C+S grouping: every cs point fails, exit code is 1.
        code = cli_main(
            ["sweep", "run", "--models", "sae", "--machines", "rda",
             "--schedules", "cs", "--nodes", "16", "--workers", "1", "--quiet"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "FAILED" in out

    def test_quick(self, capsys):
        code = cli_main(["sweep", "quick", "--model", "sae", "--nodes", "16"])
        out = capsys.readouterr().out
        assert code == 0
        assert "unfused" in out and "full" in out


class TestEstimateAutotuneCompile:
    def test_estimate_hierarchy_changes_byte_estimates(self, capsys):
        """--hierarchy reaches the heuristic via the pinned operand budget."""
        assert cli_main(["estimate", "--model", "gcn", "--nodes", "48"]) == 0
        flat = capsys.readouterr().out
        assert cli_main(
            ["estimate", "--model", "gcn", "--nodes", "48",
             "--hierarchy", "fpga-small@512"]
        ) == 0
        tiny = capsys.readouterr().out
        assert flat != tiny  # a 512 B operand budget must move the estimates

    def test_estimate(self, capsys):
        code = cli_main(["estimate", "--model", "gcn", *SMALL])
        out = capsys.readouterr().out
        assert code == 0
        assert "est cycles" in out

    def test_autotune_with_verify(self, capsys):
        code = cli_main(
            ["autotune", "--model", "sae", "--nodes", "16",
             "--simulate-top", "2", "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "winner" in out and "max |err|" in out

    def test_compile_diagnostics(self, capsys):
        code = cli_main(
            ["compile", "--model", "gcn", *SMALL, "--fusion", "partial",
             "--diagnostics"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "compiled" in out
        # Structured diagnostics: per-pass timings from the pipeline.
        assert "fuse-regions" in out and "lower-region" in out

    def test_compile_show_graph_and_table(self, capsys):
        code = cli_main(
            ["compile", "--model", "sae", "--nodes", "16", "--fusion", "full",
             "--show-graph", "--show-table"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fusion table" in out


class TestTune:
    def test_tune_beam_basic(self, capsys):
        code = cli_main(
            ["tune", "--model", "gcn", *SMALL, "--strategy", "beam",
             "--budget", "4"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "strategy   : beam (seed 0)" in out
        assert "winner" in out
        # The winner was simulated during the search, so its recompile is
        # served from the session's compile cache.
        assert "cache hit" in out

    def test_tune_trace_out_is_seed_deterministic(self, capsys, tmp_path):
        traces = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            code = cli_main(
                ["tune", "--model", "sae", "--nodes", "16", "--strategy",
                 "evolutionary", "--budget", "2", "--seed", "7",
                 "--trace-out", str(path)]
            )
            assert code == 0
            traces.append(path.read_bytes())
        out = capsys.readouterr().out
        assert "trace      :" in out
        assert traces[0] == traces[1]

    def test_tune_verify(self, capsys):
        code = cli_main(
            ["tune", "--model", "sae", "--nodes", "16", "--budget", "2",
             "--verify"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "max |err|" in out

    def test_tune_unknown_strategy_exits(self):
        with pytest.raises(SystemExit):
            cli_main(
                ["tune", "--model", "gcn", *SMALL, "--strategy", "randomly"]
            )

    def test_tune_calibrate_save_load_cycle(self, capsys, tmp_path):
        store = tmp_path / "cal.jsonl"
        assert cli_main(
            ["sweep", "run", "--quiet", "--models", "sae", "--machines",
             "rda", "--nodes", "16", "--workers", "2", "--out", str(store)]
        ) == 0
        capsys.readouterr()
        artifact = tmp_path / "costmodel.json"
        code = cli_main(
            ["tune", "--model", "sae", "--nodes", "16", "--budget", "2",
             "--calibrate", str(store), "--cost-model", str(artifact)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "calibrated :" in out and "rmse" in out
        assert artifact.exists()
        code = cli_main(
            ["tune", "--model", "sae", "--nodes", "16", "--budget", "2",
             "--cost-model", str(artifact)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert f"loaded from {artifact}" in out

    def test_tune_bad_calibration_file_exits(self, tmp_path):
        bad = tmp_path / "junk.json"
        bad.write_text('{"hello": 1}')
        with pytest.raises(SystemExit, match="calibration failed"):
            cli_main(
                ["tune", "--model", "sae", "--nodes", "16", "--calibrate",
                 str(bad)]
            )

    def test_tune_help_lists_strategies(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["tune", "--help"])
        out = " ".join(capsys.readouterr().out.split())
        for flag in ("--strategy", "--budget", "--seed", "--cost-model",
                     "--calibrate", "--trace-out"):
            assert flag in out
        for strategy in ("beam", "evolutionary", "exhaustive"):
            assert strategy in out


class TestHelpNamesScheduleAxes:
    """Regression: the sweep help predates PR 5's grid growth; it and the
    CLI overview must name all six schedule axes and the tune verb."""

    AXES = ("fusion granularity", "dataflow order", "parallelization",
            "index splitting", "mask folding", "global rewrite")

    def test_cli_overview_names_all_axes_and_tune(self):
        import repro.cli as cli

        doc = " ".join(cli.__doc__.split())
        for axis in (*self.AXES[:5], "global-iteration rewrite"):
            assert axis in doc, axis
        assert "fuseflow tune" in doc

    def test_sweep_help_names_grid_axes_and_tune(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--help"])
        out = " ".join(capsys.readouterr().out.split())
        for axis in ("model", "dataset", "schedule", "machine", "hierarchy",
                     "splits", "backend"):
            assert axis in out, axis
        assert "tune" in out

    def test_sweep_quick_help_points_at_tune(self):
        from repro.cli import cmd_sweep_quick

        doc = " ".join(cmd_sweep_quick.__doc__.split())
        for axis in self.AXES:
            assert axis in doc, axis
        assert "`tune`" in doc and "sweep run" in doc


class TestEntryPoint:
    def test_module_subprocess(self, tmp_path):
        """`python -m repro.cli` works as a real process (console entry)."""
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.cli", "sweep", "run", "--quiet",
             "--models", "sae", "--machines", "rda", "--nodes", "16",
             "--workers", "2", "--out", str(tmp_path / "s.jsonl")],
            capture_output=True, text=True, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "3 ran" in proc.stdout

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["run", "--model", "alexnet"])
