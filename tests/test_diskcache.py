"""Persistent compile cache + Session thread safety (repro.driver.diskcache).

Covers the disk cache's safety contract — atomic writes under concurrent
writer *processes*, torn/corrupt entries degrading to misses, LRU
eviction order — plus the two cache levels composed: cross-session and
cross-process warm starts that skip the pass pipeline entirely, and the
Session compile cache hammered from many threads (the serve front end's
access pattern).
"""

import multiprocessing
import os
import threading

import numpy as np
import pytest

from repro.driver import DiskCache, Session
from repro.driver.diskcache import ENTRY_MAGIC, entry_key
from repro.models.gcn import gcn_on_synthetic


@pytest.fixture(scope="module")
def bundle():
    return gcn_on_synthetic(nodes=16, density=0.2, seed=0)


# ----------------------------------------------------------------------
# DiskCache basics
# ----------------------------------------------------------------------


class TestDiskCache:
    def test_put_get_roundtrip(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = entry_key("prog", "sched", "pipe")
        entry = {"compiled": [1, 2, 3], "meta": {"name": "x"}}
        assert cache.put(key, entry)
        assert cache.get(key) == entry
        info = cache.info()
        assert info.writes == 1 and info.hits == 1 and info.entries == 1

    def test_missing_key_is_miss(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert cache.get(entry_key("nope")) is None
        assert cache.info().misses == 1

    def test_entry_key_is_content_addressed(self):
        assert entry_key("a", "b") == entry_key("a", "b")
        assert entry_key("a", "b") != entry_key("a", "c")

    def test_invalid_caps_raise(self, tmp_path):
        with pytest.raises(ValueError, match="max_entries"):
            DiskCache(str(tmp_path), max_entries=0)
        with pytest.raises(ValueError, match="max_bytes"):
            DiskCache(str(tmp_path), max_bytes=0)

    def test_torn_entry_is_a_miss_and_removed(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = entry_key("k")
        cache.put(key, {"v": "x" * 256})
        path = cache.path_for(key)
        blob = open(path, "rb").read()
        # A crash mid-write before the rename never produces this (the
        # rename is atomic), but a torn file from e.g. a copied cache
        # directory must read as a miss, not a crash.
        with open(path, "wb") as fh:
            fh.write(blob[: len(blob) // 2])
        assert cache.get(key) is None
        assert not os.path.exists(path)
        info = cache.info()
        assert info.corrupt == 1 and info.misses == 1

    def test_flipped_payload_byte_fails_digest(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = entry_key("k")
        cache.put(key, {"v": 1})
        path = cache.path_for(key)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        with open(path, "wb") as fh:
            fh.write(bytes(blob))
        assert cache.get(key) is None
        assert cache.info().corrupt == 1

    def test_foreign_file_is_corrupt(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = entry_key("k")
        with open(cache.path_for(key), "wb") as fh:
            fh.write(b"this is not a cache entry")
        assert cache.get(key) is None
        assert cache.info().corrupt == 1

    def test_wrong_magic_is_corrupt(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        key = entry_key("k")
        cache.put(key, {"v": 1})
        blob = open(cache.path_for(key), "rb").read()
        with open(cache.path_for(key), "wb") as fh:
            fh.write(b"XXXX0000" + blob[len(ENTRY_MAGIC) :])
        assert cache.get(key) is None

    def test_unpicklable_entry_is_swallowed(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        assert not cache.put(entry_key("k"), {"fn": lambda: None})
        assert cache.info().writes == 0

    def test_eviction_drops_least_recently_used(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_entries=2)
        ka, kb, kc = entry_key("a"), entry_key("b"), entry_key("c")
        cache.put(ka, {"v": "a"})
        cache.put(kb, {"v": "b"})
        # Pin recency explicitly (mtime is the LRU clock): a is oldest.
        os.utime(cache.path_for(ka), (1000, 1000))
        os.utime(cache.path_for(kb), (2000, 2000))
        cache.put(kc, {"v": "c"})
        assert cache.get(ka) is None  # evicted as LRU
        assert cache.get(kb) == {"v": "b"}
        assert cache.get(kc) == {"v": "c"}
        assert cache.info().evictions == 1

    def test_get_refreshes_recency(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_entries=2)
        ka, kb, kc = entry_key("a"), entry_key("b"), entry_key("c")
        cache.put(ka, {"v": "a"})
        cache.put(kb, {"v": "b"})
        os.utime(cache.path_for(ka), (1000, 1000))
        os.utime(cache.path_for(kb), (2000, 2000))
        # Touch a: the hit refreshes its mtime, so b becomes the LRU.
        assert cache.get(ka) is not None
        cache.put(kc, {"v": "c"})
        assert cache.get(kb) is None
        assert cache.get(ka) is not None

    def test_byte_cap_eviction(self, tmp_path):
        cache = DiskCache(str(tmp_path), max_bytes=2048)
        for i in range(8):
            cache.put(entry_key(str(i)), {"pad": "x" * 512})
        info = cache.info()
        assert info.total_bytes <= 2048
        assert info.evictions > 0

    def test_clear_removes_everything(self, tmp_path):
        cache = DiskCache(str(tmp_path))
        for i in range(3):
            cache.put(entry_key(str(i)), {"i": i})
        assert cache.clear() == 3
        assert cache.info().entries == 0


# ----------------------------------------------------------------------
# Concurrent writer processes
# ----------------------------------------------------------------------


def _hammer_cache(root: str, seed: int, iters: int) -> None:
    cache = DiskCache(root)
    for i in range(iters):
        key = entry_key("shared", str(i % 5))
        cache.put(key, {"writer": seed, "i": i, "pad": "x" * 512})
        entry = cache.get(key)
        # A concurrent writer may have replaced the entry, but a reader
        # must only ever observe a whole one (or a miss), never garbage.
        assert entry is None or (
            isinstance(entry, dict) and len(entry["pad"]) == 512
        )


class TestConcurrentWriters:
    def test_two_processes_never_corrupt_entries(self, tmp_path):
        root = str(tmp_path)
        ctx = multiprocessing.get_context("fork")
        procs = [
            ctx.Process(target=_hammer_cache, args=(root, seed, 200))
            for seed in (1, 2)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        # Every surviving entry decodes cleanly; no torn files, no strays.
        cache = DiskCache(root)
        for i in range(5):
            entry = cache.get(entry_key("shared", str(i)))
            assert isinstance(entry, dict) and entry["writer"] in (1, 2)
        assert cache.info().corrupt == 0
        leftovers = [n for n in os.listdir(root) if n.startswith(".tmp-")]
        assert leftovers == []


# ----------------------------------------------------------------------
# The two cache levels composed: Session + DiskCache
# ----------------------------------------------------------------------


def _compile_in_child(cache_dir: str, queue) -> None:
    bundle = gcn_on_synthetic(nodes=16, density=0.2, seed=0)
    session = Session(disk_cache=cache_dir)
    exe, source = session.compile_detailed(
        bundle.program, bundle.schedule("partial")
    )
    result = exe(bundle.binding)
    queue.put(
        {
            "source": source,
            "cycles": result.metrics.cycles,
            "err": bundle.max_abs_err(result),
        }
    )


class TestSessionDiskCache:
    def test_cross_session_warm_start_is_bit_exact(self, bundle, tmp_path):
        cache_dir = str(tmp_path / "cache")
        cold = Session(disk_cache=cache_dir)
        exe1, source1 = cold.compile_detailed(
            bundle.program, bundle.schedule("partial")
        )
        assert source1 == "compiled"
        assert cold.cache_info().disk_misses == 1
        result1 = exe1(bundle.binding)

        warm = Session(disk_cache=cache_dir)  # fresh in-memory cache
        exe2, source2 = warm.compile_detailed(
            bundle.program, bundle.schedule("partial")
        )
        assert source2 == "disk"
        assert warm.cache_info().disk_hits == 1
        result2 = exe2(bundle.binding)
        assert result2.metrics.cycles == result1.metrics.cycles
        for name, tensor in result1.tensors.items():
            assert np.array_equal(
                tensor.to_dense(), result2.tensors[name].to_dense()
            ), name

    def test_cross_process_warm_start(self, bundle, tmp_path):
        cache_dir = str(tmp_path / "cache")
        ctx = multiprocessing.get_context("fork")
        queue = ctx.Queue()
        # Child one: cold cache, compiles and writes the entry.
        p = ctx.Process(target=_compile_in_child, args=(cache_dir, queue))
        p.start()
        first = queue.get(timeout=120)
        p.join(timeout=120)
        assert p.exitcode == 0 and first["source"] == "compiled"
        # Child two: a genuinely cold *process* served from disk.
        p = ctx.Process(target=_compile_in_child, args=(cache_dir, queue))
        p.start()
        second = queue.get(timeout=120)
        p.join(timeout=120)
        assert p.exitcode == 0 and second["source"] == "disk"
        assert second["cycles"] == first["cycles"]
        assert second["err"] < 1e-6

    def test_memory_hit_shadows_disk(self, bundle, tmp_path):
        session = Session(disk_cache=str(tmp_path / "cache"))
        schedule = bundle.schedule("unfused")
        _, first = session.compile_detailed(bundle.program, schedule)
        _, second = session.compile_detailed(bundle.program, schedule)
        assert (first, second) == ("compiled", "memory")
        info = session.cache_info()
        assert (info.disk_hits, info.disk_misses) == (0, 1)
        assert "disk 0/1" in str(info)

    def test_env_var_configures_disk_cache(self, tmp_path, monkeypatch):
        cache_dir = str(tmp_path / "envcache")
        monkeypatch.setenv("FUSEFLOW_CACHE_DIR", cache_dir)
        assert Session().disk_cache is not None
        assert Session().disk_cache.root == os.path.abspath(cache_dir)
        # Explicit False wins over the environment.
        assert Session(disk_cache=False).disk_cache is None
        monkeypatch.delenv("FUSEFLOW_CACHE_DIR")
        assert Session().disk_cache is None

    def test_hierarchy_partitions_disk_entries(self, bundle, tmp_path):
        # Two sessions over one directory but different hierarchies must
        # not serve each other's entries (the timed engine differs).
        cache_dir = str(tmp_path / "cache")
        flat = Session(disk_cache=cache_dir)
        flat.compile(bundle.program, bundle.schedule("partial"))
        sram = Session(disk_cache=cache_dir, hierarchy="fpga-small")
        _, source = sram.compile_detailed(
            bundle.program, bundle.schedule("partial")
        )
        assert source == "compiled"


# ----------------------------------------------------------------------
# Session compile cache under threads (the serve access pattern)
# ----------------------------------------------------------------------


class TestSessionThreadSafety:
    def test_threaded_compile_hammer(self, bundle):
        session = Session(cache_size=8)
        schedules = [
            bundle.schedule(g) for g in ("unfused", "partial", "full")
        ]
        n_threads, iters = 8, 24
        barrier = threading.Barrier(n_threads)
        errors = []
        seen = [dict() for _ in range(n_threads)]

        def worker(tid: int) -> None:
            barrier.wait()
            for i in range(iters):
                schedule = schedules[(tid + i) % len(schedules)]
                try:
                    exe = session.compile(bundle.program, schedule)
                except Exception as exc:  # pragma: no cover - the regression
                    errors.append(exc)
                    return
                seen[tid].setdefault(schedule.name, set()).add(id(exe))

        threads = [
            threading.Thread(target=worker, args=(tid,))
            for tid in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert errors == []
        # Every thread observed the *same* executable per schedule: the
        # post-compile re-check keeps the cache single-valued even when
        # several threads compiled the same key simultaneously.
        merged: dict = {}
        for per_thread in seen:
            for name, ids in per_thread.items():
                merged.setdefault(name, set()).update(ids)
        assert all(len(ids) == 1 for ids in merged.values()), merged
        # Counters never tear: every call is exactly one hit or miss.
        info = session.cache_info()
        assert info.hits + info.misses == n_threads * iters
        assert info.entries == len(schedules)
