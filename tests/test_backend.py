"""Backend subsystem tests: selection, caching, fallback, and errors.

Covers the :mod:`repro.backend` contract end to end:

* the four-layer resolution precedence (explicit ``backend`` > explicit
  ``columnar`` > ``FUSEFLOW_BACKEND`` > ``FUSEFLOW_LEGACY_STREAMS``);
* the backend registry singletons;
* the compile cache incorporating backend identity — flipping the backend
  between compiles of the *same* program must miss the warm cache and
  yield a distinct executable (the regression satellite of PR 6);
* codegen artifact/source caching and its counters;
* per-region fallback to the columnar interpreter for primitives the
  emitter does not know;
* generated-kernel exceptions re-raised with node id + region context;
* numba gating (optional, never required).
"""

import numpy as np
import pytest

from repro.backend import (
    BACKEND_NAMES,
    InterpreterBackend,
    artifact_for,
    codegen_cache_info,
    get_backend,
    resolve_backend_name,
)
from repro.backend.codegen import clear_codegen_caches, numba_available
from repro.comal.functional import run_functional
from repro.comal.machines import RDA_MACHINE
from repro.core.einsum.parser import parse_program
from repro.driver import Session
from repro.ftree import SparseTensor, csr, dense
from repro.sam.graph import SAMGraph
from repro.sam.primitives.base import Primitive
from repro.sam.primitives.scanner import CrdSource, LevelScanner, Root
from repro.sam.token import (
    VAL,
    StreamProtocolError,
    crd,
    done,
    stop,
    streams_equal,
    val,
)
from repro.sweep.spec import SweepPoint, SweepSpecError

_PROGRAM = (
    "tensor A(4, 5): csr\n"
    "tensor X(5, 3): dense\n"
    "T(i, j) = A(i, k) * X(k, j)"
)


def _program_and_binding(seed=0):
    program = parse_program(_PROGRAM)
    rng = np.random.default_rng(seed)
    a = rng.random((4, 5)) * (rng.random((4, 5)) < 0.5)
    x = rng.random((5, 3))
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
    }
    return program, binding


@pytest.fixture
def clean_env(monkeypatch):
    """No backend-related environment overrides."""
    monkeypatch.delenv("FUSEFLOW_BACKEND", raising=False)
    monkeypatch.delenv("FUSEFLOW_LEGACY_STREAMS", raising=False)
    return monkeypatch


# ----------------------------------------------------------------------
# Resolution precedence
# ----------------------------------------------------------------------


class TestResolution:
    def test_default_is_columnar(self, clean_env):
        assert resolve_backend_name() == "columnar"

    def test_legacy_env_selects_interp(self, clean_env):
        clean_env.setenv("FUSEFLOW_LEGACY_STREAMS", "1")
        assert resolve_backend_name() == "interp"

    def test_backend_env_beats_legacy_env(self, clean_env):
        clean_env.setenv("FUSEFLOW_LEGACY_STREAMS", "1")
        clean_env.setenv("FUSEFLOW_BACKEND", "codegen")
        assert resolve_backend_name() == "codegen"

    def test_columnar_arg_beats_env(self, clean_env):
        clean_env.setenv("FUSEFLOW_BACKEND", "codegen")
        assert resolve_backend_name(columnar=True) == "columnar"
        assert resolve_backend_name(columnar=False) == "interp"

    def test_backend_arg_beats_everything(self, clean_env):
        clean_env.setenv("FUSEFLOW_BACKEND", "codegen")
        assert resolve_backend_name("interp", columnar=True) == "interp"

    def test_name_is_normalized(self):
        assert resolve_backend_name("  Codegen ") == "codegen"

    @pytest.mark.parametrize("bad", ["fancy", "cpp", "numba"])
    def test_unknown_backend_rejected(self, bad):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name(bad)

    def test_unknown_env_backend_rejected(self, clean_env):
        clean_env.setenv("FUSEFLOW_BACKEND", "fancy")
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend_name()

    def test_session_validates_eagerly(self):
        with pytest.raises(ValueError, match="unknown backend"):
            Session(machine=RDA_MACHINE, backend="fancy")

    def test_sweep_point_validates_backend(self):
        point = SweepPoint.make("gcn", backend="fancy")
        with pytest.raises(SweepSpecError, match="unknown backend"):
            point.validate()
        for name in BACKEND_NAMES:
            SweepPoint.make("gcn", backend=name).validate()

    def test_backend_only_in_fingerprint_when_set(self):
        base = SweepPoint.make("gcn")
        same = SweepPoint.make("gcn", backend="")
        flipped = SweepPoint.make("gcn", backend="codegen")
        assert base.point_id == same.point_id
        assert flipped.point_id != base.point_id
        assert "backend:codegen" in flipped.label()
        assert "backend" not in base.label()


class TestRegistry:
    def test_singletons(self, clean_env):
        for name in BACKEND_NAMES:
            backend = get_backend(name)
            assert backend is get_backend(name)
            assert backend.name == name
            assert name in backend.describe()

    def test_default_lookup_follows_env(self, clean_env):
        assert get_backend().name == "columnar"
        clean_env.setenv("FUSEFLOW_BACKEND", "interp")
        assert get_backend().name == "interp"

    def test_interpreter_backend_names(self):
        assert InterpreterBackend(columnar=True).name == "columnar"
        assert InterpreterBackend(columnar=False).name == "interp"

    def test_backend_run_matches_run_functional(self, clean_env):
        program, binding = _program_and_binding()
        session = Session(machine=RDA_MACHINE)
        exe = session.compile(program)
        graph = exe.regions[0].graph
        for name in BACKEND_NAMES:
            got = get_backend(name).run(
                graph, binding, RDA_MACHINE.scratchpad_bytes, cache=False
            )
            want = run_functional(
                graph,
                binding,
                RDA_MACHINE.scratchpad_bytes,
                backend=name,
                cache=False,
            )
            for key in want.streams:
                assert streams_equal(got.streams[key], want.streams[key])


# ----------------------------------------------------------------------
# Compile cache x backend identity (the warm-cache flip regression)
# ----------------------------------------------------------------------


class TestCompileCache:
    def test_backend_flip_misses_warm_cache(self, clean_env):
        program, _ = _program_and_binding()
        session = Session(machine=RDA_MACHINE)
        exe_columnar = session.compile(program)
        assert exe_columnar.backend == "columnar"
        assert session.compile(program) is exe_columnar  # warm hit

        # Flipping the environment backend must miss the warm cache: the
        # key is resolved at call time, so the cached columnar executable
        # must not be served for a codegen request.
        clean_env.setenv("FUSEFLOW_BACKEND", "codegen")
        exe_codegen = session.compile(program)
        assert exe_codegen is not exe_columnar
        assert exe_codegen.backend == "codegen"
        assert exe_codegen.diagnostics.backend == "codegen"

        # Both entries stay warm under their own identity.
        assert session.compile(program) is exe_codegen
        clean_env.delenv("FUSEFLOW_BACKEND")
        assert session.compile(program) is exe_columnar

    def test_explicit_session_backend_beats_env(self, clean_env):
        clean_env.setenv("FUSEFLOW_BACKEND", "interp")
        program, _ = _program_and_binding()
        session = Session(machine=RDA_MACHINE, backend="codegen")
        assert session.compile(program).backend == "codegen"

    def test_executables_of_all_backends_agree(self, clean_env):
        program, binding = _program_and_binding()
        tensors = {}
        for name in BACKEND_NAMES:
            session = Session(
                machine=RDA_MACHINE, backend=name, sim_cache=False
            )
            exe = session.compile(program)
            assert exe.backend == name
            tensors[name] = exe(binding).tensors["T"].to_dense()
        assert np.array_equal(tensors["columnar"], tensors["interp"])
        assert np.array_equal(tensors["columnar"], tensors["codegen"])


# ----------------------------------------------------------------------
# Codegen artifact + source caches
# ----------------------------------------------------------------------


class TestCodegenCaches:
    def test_artifact_cached_per_graph(self, clean_env):
        clear_codegen_caches()
        program, _ = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        graph = exe.regions[0].graph
        first = artifact_for(graph)
        assert first is artifact_for(graph)
        info = codegen_cache_info()
        assert info["artifact_misses"] >= 1
        assert info["artifact_hits"] >= 2  # prewarm miss, then two hits

    def test_source_cache_dedups_across_graphs(self, clean_env):
        clear_codegen_caches()
        program, _ = _program_and_binding()
        exe_a = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        exe_b = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        art_a = artifact_for(exe_a.regions[0].graph)
        art_b = artifact_for(exe_b.regions[0].graph)
        assert art_a is not art_b  # distinct graphs, distinct artifacts
        assert art_a.source == art_b.source
        assert art_a.sha == art_b.sha
        assert art_b.code_cached  # identical source compiled once
        assert codegen_cache_info()["code_hits"] >= 1

    def test_prewarm_fills_diagnostics(self, clean_env):
        program, _ = _program_and_binding()
        session = Session(machine=RDA_MACHINE, backend="codegen")
        exe = session.compile(program)
        assert exe.diagnostics.backend == "codegen"
        for region in exe.diagnostics.regions:
            assert region.codegen_fallback == ""
            assert region.codegen_loc > 0
            assert region.codegen_seconds >= 0.0
        assert "backend codegen" in exe.diagnostics.describe()


# ----------------------------------------------------------------------
# Per-region fallback for unsupported primitives
# ----------------------------------------------------------------------


class _Doubler(Primitive):
    """A primitive the codegen emitter has never heard of."""

    kind = "doubler2x"
    in_ports = ("a",)

    def process(self, ins, ctx, stats):
        out = []
        for kind, payload in ins["a"]:
            stats.tokens_in += 1
            if kind == VAL:
                out.append(val(payload * 2.0))
                stats.ops += 1
            else:
                out.append((kind, payload))
            stats.tokens_out += 1
        return {"out": out}


def _doubler_graph():
    graph = SAMGraph("exotic")
    src = graph.add(
        CrdSource([val(1.0), val(2.5), stop(0), val(-3.0), done()], "v"),
        node_id="src",
    )
    graph.add(_Doubler(), {"a": graph.port(src)}, node_id="dbl")
    return graph


class TestFallback:
    def test_unknown_primitive_marks_fallback(self):
        graph = _doubler_graph()
        artifact = artifact_for(graph)
        assert artifact.fn is None
        assert "doubler2x" in artifact.fallback
        assert "dbl" in artifact.fallback

    def test_fallback_execution_matches_interpreter(self):
        graph = _doubler_graph()
        via_codegen = run_functional(graph, {}, backend="codegen", cache=False)
        reference = run_functional(graph, {}, columnar=True, cache=False)
        assert set(via_codegen.streams) == set(reference.streams)
        for key in reference.streams:
            assert streams_equal(
                via_codegen.streams[key], reference.streams[key]
            ), key
        for node_id, want in reference.stats.items():
            have = via_codegen.stats[node_id]
            assert have.tokens_in == want.tokens_in
            assert have.tokens_out == want.tokens_out
            assert have.ops == want.ops

    def test_fallback_counted(self):
        clear_codegen_caches()
        artifact_for(_doubler_graph())
        assert codegen_cache_info()["fallbacks"] == 1


# ----------------------------------------------------------------------
# Generated-kernel exception context
# ----------------------------------------------------------------------


class TestKernelErrors:
    def _scan_graph(self):
        graph = SAMGraph("kerr")
        root = graph.add(Root(), node_id="root")
        graph.add(
            LevelScanner("A", 0),
            {"ref": graph.port(root, "ref")},
            node_id="scan",
        )
        return graph

    def test_missing_tensor_keeps_keyerror_with_context(self):
        graph = self._scan_graph()
        with pytest.raises(KeyError) as excinfo:
            run_functional(graph, {}, backend="codegen", cache=False)
        message = str(excinfo.value)
        assert "tensor 'A' not bound" in message
        assert "codegen kernel, region 'kerr'" in message
        assert "node scan" in message

    def test_protocol_error_keeps_type_and_message(self):
        graph = SAMGraph("badproto")
        graph.add(CrdSource([crd(0)], "s"), node_id="src")  # no done token
        with pytest.raises(StreamProtocolError) as excinfo:
            run_functional(
                graph, {}, backend="codegen", debug_streams=True, cache=False
            )
        message = str(excinfo.value)
        # The interpreter's own diagnostic survives...
        assert "node src" in message
        # ...and the codegen layer appends where it happened.
        assert "codegen kernel, region 'badproto'" in message

    def test_checks_off_matches_interpreter_leniency(self):
        # With debug_streams off the malformed stream flows through, same
        # as the interpreter paths.
        graph = SAMGraph("lenient")
        graph.add(CrdSource([crd(0)], "s"), node_id="src")
        res = run_functional(
            graph, {}, backend="codegen", debug_streams=False, cache=False
        )
        assert len(res.stream("src")) == 1


# ----------------------------------------------------------------------
# Emission tiers (token vs columnar) and adaptive dispatch
# ----------------------------------------------------------------------


class TestEmissionTiers:
    def test_tier_selector_env(self, monkeypatch):
        from repro.backend.codegen import codegen_tier

        monkeypatch.delenv("FUSEFLOW_CODEGEN_TIER", raising=False)
        assert codegen_tier() == "columnar"
        monkeypatch.setenv("FUSEFLOW_CODEGEN_TIER", "token")
        assert codegen_tier() == "token"
        monkeypatch.setenv("FUSEFLOW_CODEGEN_TIER", "simd")
        with pytest.raises(ValueError):
            codegen_tier()

    def test_tiers_cached_independently(self, clean_env):
        from repro.backend.codegen import cached_artifacts

        clear_codegen_caches()
        program, _ = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        graph = exe.regions[0].graph
        col = artifact_for(graph, "columnar")
        tok = artifact_for(graph, "token")
        assert col.tier == "columnar"
        assert tok.tier == "token"
        assert col is not tok
        assert col.sha != tok.sha
        # Stable per (graph, tier): repeated lookups are cache hits.
        assert col is artifact_for(graph, "columnar")
        assert tok is artifact_for(graph, "token")
        assert cached_artifacts(graph) == {"columnar": col, "token": tok}

    def test_unknown_tier_rejected(self, clean_env):
        program, _ = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        with pytest.raises(ValueError, match="unknown codegen tier"):
            artifact_for(exe.regions[0].graph, "simd")

    def test_both_tiers_match_the_interpreter(self, clean_env, monkeypatch):
        # Forced columnar (cutoff 0 disables adaptive dispatch) and forced
        # token both reproduce the columnar interpreter exactly.
        program, binding = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        graph = exe.regions[0].graph
        want = run_functional(
            graph, binding, columnar=True, cache=False
        )
        for tier, cutoff in (("columnar", "0"), ("token", "0")):
            monkeypatch.setenv("FUSEFLOW_CODEGEN_TIER", tier)
            monkeypatch.setenv("FUSEFLOW_CODEGEN_SMALL_CUTOFF", cutoff)
            clear_codegen_caches()
            have = run_functional(
                graph, binding, backend="codegen", cache=False
            )
            for key in want.streams:
                assert streams_equal(have.streams[key], want.streams[key]), (
                    tier,
                    key,
                )
            for node_id, stats in want.stats.items():
                assert have.stats[node_id].tokens_out == stats.tokens_out, tier

    def test_unsupported_node_bridges_through_token_emitter(
        self, clean_env, monkeypatch
    ):
        # Deleting one _cemit_ handler must not fall the region back to
        # the interpreter: the node rides the per-node token bridge
        # (to_tokens -> token-emitter body -> from_tokens) and the kernel
        # stays bit-exact.
        from repro.backend.codegen import _ColumnarEmitter

        monkeypatch.delattr(_ColumnarEmitter, "_cemit_alu")
        clear_codegen_caches()
        program, binding = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        graph = exe.regions[0].graph
        artifact = artifact_for(graph, "columnar")
        assert artifact.fallback == ""
        assert ".to_tokens()" in artifact.source
        assert "_TS.from_tokens(" in artifact.source
        want = run_functional(graph, binding, columnar=True, cache=False)
        monkeypatch.setenv("FUSEFLOW_CODEGEN_SMALL_CUTOFF", "0")
        have = run_functional(graph, binding, backend="codegen", cache=False)
        for key in want.streams:
            assert streams_equal(have.streams[key], want.streams[key]), key
        for node_id, stats in want.stats.items():
            assert have.stats[node_id].tokens_in == stats.tokens_in
            assert have.stats[node_id].tokens_out == stats.tokens_out
            assert have.stats[node_id].ops == stats.ops
        clear_codegen_caches()

    def test_small_streams_dispatch_to_token_tier(self, clean_env, monkeypatch):
        monkeypatch.setenv("FUSEFLOW_CODEGEN_SMALL_CUTOFF", str(10**9))
        clear_codegen_caches()
        program, binding = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        graph = exe.regions[0].graph
        before = codegen_cache_info()["token_dispatches"]
        have = run_functional(graph, binding, backend="codegen", cache=False)
        assert codegen_cache_info()["token_dispatches"] == before + 1
        want = run_functional(graph, binding, columnar=True, cache=False)
        for key in want.streams:
            assert streams_equal(have.streams[key], want.streams[key]), key

    def test_probe_flags_blocked_payloads(self):
        from repro.backend.codegen import RegionArtifact, _probe_size

        artifact = RegionArtifact(
            region="r", tier="columnar", probe=("A",), probe_base=3
        )

        class _T:
            pass

        flat = _T()
        flat.values = np.zeros(7)
        assert _probe_size(artifact, {"A": flat}) == (10, False)
        blocked = _T()
        blocked.values = np.zeros((4, 2, 2))
        assert _probe_size(artifact, {"A": blocked}) == (19, True)
        # Unbound probe tensors contribute nothing (and do not raise).
        assert _probe_size(artifact, {}) == (3, False)


# ----------------------------------------------------------------------
# Bounded linecache registration
# ----------------------------------------------------------------------


class TestLinecacheBounds:
    def test_sources_unregister_when_graph_collected(self, clean_env):
        import gc
        import linecache

        clear_codegen_caches()
        program, _ = _program_and_binding()
        session = Session(machine=RDA_MACHINE, backend="codegen")
        exe = session.compile(program)
        graph = exe.regions[0].graph
        artifact = artifact_for(graph)
        filename = f"<fuseflow-codegen {graph.name} {artifact.sha[:12]}>"
        assert linecache.getline(filename, 1)  # source is registered
        assert codegen_cache_info()["retained_sources"] >= 1
        # Drop every strong reference to the compiled program (the session
        # compile cache holds the graphs alive) and collect.
        del exe, graph, artifact, session
        gc.collect()
        info = codegen_cache_info()  # drains pending finalizer releases
        assert info["retained_sources"] == 0
        assert info["code_files"] == 0
        assert not linecache.getline(filename, 1)


# ----------------------------------------------------------------------
# Public API docstring audit
# ----------------------------------------------------------------------


class TestDocstrings:
    def test_public_backend_api_is_documented(self):
        """Every public name in repro.backend carries a real docstring."""
        import inspect

        import repro.backend as pkg
        from repro.backend import codegen as cg

        names = [
            (pkg, name) for name in pkg.__all__
        ] + [(cg, name) for name in cg.__all__]
        for module, name in names:
            obj = getattr(module, name)
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue  # constants (BACKEND_NAMES)
            doc = inspect.getdoc(obj)
            assert doc and len(doc.split()) >= 3, f"{name} lacks a docstring"
            if inspect.isfunction(obj) and (
                inspect.signature(obj).parameters
            ):
                assert "Parameters" in doc or doc.count("\n") == 0, (
                    f"{name}: numpydoc Parameters section missing"
                )


# ----------------------------------------------------------------------
# Numba gating
# ----------------------------------------------------------------------


class TestNumba:
    def test_numba_availability_is_boolean(self):
        assert isinstance(numba_available(), bool)

    def test_numba_off_by_default(self, monkeypatch):
        monkeypatch.delenv("FUSEFLOW_CODEGEN_NUMBA", raising=False)
        clear_codegen_caches()
        program, _ = _program_and_binding()
        exe = Session(machine=RDA_MACHINE, backend="codegen").compile(program)
        assert artifact_for(exe.regions[0].graph).uses_numba is False
