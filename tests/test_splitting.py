"""Index splitting (tiling): schedule knob, passes, placement, timing, sweeps.

Covers the full thread of the splitting feature: schedule validation and
fingerprints (hypothesis properties), the ``split-indices`` pass and its
materialization during lowering, footprint scaling in ``place-memory``
(spill -> SRAM conversion), tile-sequential pacing in the timed engine,
the autotuner's bounded split axis and truncation surfacing, the sweep
subsystem's split axis with stable unsplit point IDs, and the CLI flags.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cli import main as cli_main
from repro.comal.machines import RDA_MACHINE
from repro.core.schedule.autotune import (
    autotune,
    contiguous_partitions,
    enumerate_schedules,
    partition_space_size,
    reset_truncation_warnings,
)
from repro.core.schedule.schedule import Schedule, ScheduleError, unfused
from repro.core.schedule.split import (
    apply_split,
    intermediate_row_splits,
    split_footprint_scale,
    tiled_levels,
)
from repro.core.heuristic.model import stats_from_binding
from repro.driver import Session
from repro.sweep import SweepPoint, SweepSpec, build_bundle
from repro.sweep.runner import run_point
from repro.sweep.spec import SweepSpecError


@pytest.fixture(scope="module")
def gcn_bundle():
    return build_bundle(
        SweepPoint.make("gcn", model_args={"nodes": 48, "density": 0.1, "seed": 0})
    )


# ----------------------------------------------------------------------
# Schedule validation + fingerprints
# ----------------------------------------------------------------------


class TestScheduleSplits:
    def _program(self, gcn_bundle):
        return gcn_bundle.program

    @given(
        tiles=st.dictionaries(
            st.sampled_from(["x1", "x4", "u0", "k"]),
            st.integers(min_value=1, max_value=64),
            max_size=4,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_valid_splits_pass_validation(self, gcn_bundle, tiles):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = tiles
        schedule.validate(gcn_bundle.program)

    @given(bad=st.integers(max_value=0))
    @settings(max_examples=20, deadline=None)
    def test_nonpositive_tiles_rejected(self, gcn_bundle, bad):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": bad}
        with pytest.raises(ScheduleError, match=">= 1"):
            schedule.validate(gcn_bundle.program)

    @pytest.mark.parametrize("bad", [2.5, "8", None, True])
    def test_non_int_tiles_rejected(self, gcn_bundle, bad):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": bad}
        with pytest.raises(ScheduleError):
            schedule.validate(gcn_bundle.program)

    def test_empty_index_name_rejected(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"": 4}
        with pytest.raises(ScheduleError, match="non-empty"):
            schedule.validate(gcn_bundle.program)

    def test_unsplit_fingerprint_unchanged_by_empty_dict(self, gcn_bundle):
        """splits={} must not churn pre-splitting schedule fingerprints."""
        a = unfused(gcn_bundle.program)
        b = unfused(gcn_bundle.program)
        b.splits = {}
        assert a.fingerprint() == b.fingerprint()
        # The exact no-op (tiles=1) compiles byte-identically to unsplit,
        # so it must share the same fingerprint (one cache entry).
        b.splits = {"x1": 1}
        assert a.fingerprint() == b.fingerprint()

    def test_splits_change_fingerprint_and_cache_key(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        before = schedule.fingerprint()
        schedule.splits = {"x1": 8}
        after = schedule.fingerprint()
        assert before != after
        schedule.splits = {"x1": 4}
        assert schedule.fingerprint() not in (before, after)

    def test_describe_mentions_splits(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        assert "index splits" in schedule.describe()


# ----------------------------------------------------------------------
# apply_split / helpers
# ----------------------------------------------------------------------


class TestApplySplit:
    def test_tiles_nodes_at_or_below_cut(self, gcn_bundle):
        # Fresh session per test: apply_split mutates the compiled graph,
        # which must not leak into a shared compile cache.
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        region = exe.regions[0]
        order = [idx for idx in region.order if "." not in idx]
        affected = apply_split(region.graph, order, order[0], 4)
        assert affected > 0
        assert order[0] in tiled_levels(region.graph)
        for node in region.graph.nodes.values():
            if node.region == "construct":
                assert node.tile_factor == 1

    def test_factor_one_is_noop(self, gcn_bundle):
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        region = exe.regions[0]
        assert apply_split(region.graph, region.order, region.order[0], 1) == 0
        assert tiled_levels(region.graph) == []

    def test_bad_factor_raises(self, gcn_bundle):
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        region = exe.regions[0]
        with pytest.raises(ValueError, match=">= 1"):
            apply_split(region.graph, region.order, region.order[0], 0)

    def test_unknown_index_raises(self, gcn_bundle):
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        region = exe.regions[0]
        with pytest.raises(ValueError, match="not iterated"):
            apply_split(region.graph, region.order, "nope", 4)

    @given(
        tiles=st.dictionaries(
            st.sampled_from(["i", "j", "k"]),
            st.integers(min_value=2, max_value=8),
            max_size=3,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_footprint_scale_is_product_over_modes(self, tiles):
        scale = split_footprint_scale(tiles, ["i", "j"])
        assert scale == tiles.get("i", 1) * tiles.get("j", 1)
        assert split_footprint_scale(tiles, []) == 1

    def test_intermediate_row_splits_skips_program_outputs(self, gcn_bundle):
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        splits = intermediate_row_splits(exe.compiled, 8)
        assert splits and all(t == 8 for t in splits.values())
        outputs = set(gcn_bundle.program.outputs())
        for region in exe.regions:
            for spec in region.output_specs:
                if spec.name in outputs:
                    assert spec.emission_indices[0] not in splits

    def test_intermediate_row_splits_rejects_bad_tiles(self, gcn_bundle):
        session = Session()
        exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        with pytest.raises(ValueError):
            intermediate_row_splits(exe.compiled, 0)


# ----------------------------------------------------------------------
# The split-indices pass through the pipeline
# ----------------------------------------------------------------------


class TestSplitIndicesPass:
    def test_skipped_without_splits(self, gcn_bundle):
        exe = Session().compile(gcn_bundle.program, unfused(gcn_bundle.program))
        for region in exe.diagnostics.regions:
            assert region.skipped_passes["split-indices"] == (
                "schedule has no splits"
            )

    def test_skipped_for_foreign_index(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"zz9": 8}
        exe = Session().compile(gcn_bundle.program, schedule)
        for region in exe.diagnostics.regions:
            assert "split-indices" in region.skipped_passes
        for region in exe.regions:
            assert not any("." in idx for idx in region.order)

    def test_order_gains_outer_tile_index(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        exe = Session().compile(gcn_bundle.program, schedule)
        assert exe.regions[0].order[0] == "x1.t8"
        assert exe.diagnostics.regions[0].split_indices == {"x1": 8}
        # Only the region iterating x1 is tiled.
        assert tiled_levels(exe.regions[0].graph) != []
        assert tiled_levels(exe.regions[1].graph) == []

    def test_tile_factor_one_configs_are_noops(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 1}
        exe = Session().compile(gcn_bundle.program, schedule)
        assert tiled_levels(exe.regions[0].graph) == []
        assert not any("." in idx for idx in exe.regions[0].order)

    def test_misordered_split_pass_rejected(self, gcn_bundle):
        """split-indices after lower-region would scale footprints without
        ever tiling the graph — the pipeline refuses the ordering."""
        from repro.driver import PassPipeline
        from repro.driver.pipeline import PipelineError

        bad = PassPipeline.default().reordered(
            ["fuse-regions", "fold-masks", "merge-contractions",
             "lower-region", "split-indices", "place-memory", "parallelize"]
        )
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        with pytest.raises(PipelineError, match="must run before"):
            Session(pipeline=bad).compile(gcn_bundle.program, schedule)

    def test_par_cannot_target_tile_index(self, gcn_bundle):
        """The synthetic outer tile index is time-multiplexed, not a lane
        level: a par factor naming it is skipped, never applied."""
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        schedule.par = {"x1.t8": 4}
        exe = Session().compile(gcn_bundle.program, schedule)
        assert all(
            node.par_factor == 1
            for node in exe.regions[0].graph.nodes.values()
        )

    def test_par_composes_with_split_on_real_index(self, gcn_bundle):
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        schedule.par = {"x1": 4}
        exe = Session().compile(gcn_bundle.program, schedule)
        assert any(
            node.par_factor > 1
            for node in exe.regions[0].graph.nodes.values()
        )
        assert gcn_bundle.max_abs_err(exe(gcn_bundle.binding)) < 1e-6

    def test_splits_require_the_pass(self, gcn_bundle):
        """A pipeline without split-indices must reject split schedules —
        silently compiling untiled would mislabel every result."""
        from repro.driver import PassPipeline
        from repro.driver.pipeline import PipelineError

        pipeline = PassPipeline.default().without("split-indices")
        schedule = unfused(gcn_bundle.program)
        schedule.splits = {"x1": 8}
        with pytest.raises(PipelineError, match="split-indices"):
            Session(pipeline=pipeline).compile(gcn_bundle.program, schedule)
        # The exact no-op (tiles=1) stays compilable on such pipelines.
        schedule.splits = {"x1": 1}
        Session(pipeline=pipeline).compile(gcn_bundle.program, schedule)

    def test_split_converts_spill_to_sram(self, gcn_bundle):
        session = Session(hierarchy="fpga-small")
        base_exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        base = base_exe(gcn_bundle.binding).metrics

        schedule = unfused(gcn_bundle.program)
        schedule.splits = intermediate_row_splits(base_exe.compiled, 8)
        tiled_exe = session.compile(gcn_bundle.program, schedule)
        tiled = tiled_exe(gcn_bundle.binding).metrics

        assert tiled.spill_bytes < base.spill_bytes
        assert tiled.sram_bytes > base.sram_bytes
        assert tiled.dram_bytes < base.dram_bytes
        # Work is conserved: the same bytes move, through a better level.
        assert tiled.flops == base.flops
        assert tiled.tokens == base.tokens

    def test_writer_meta_records_tile_scale(self, gcn_bundle):
        session = Session(hierarchy="fpga-small")
        base_exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        schedule = unfused(gcn_bundle.program)
        schedule.splits = intermediate_row_splits(base_exe.compiled, 8)
        exe = session.compile(gcn_bundle.program, schedule)
        scales = [
            node.meta["mem_tile_scale"]
            for region in exe.regions
            for node in region.graph.nodes.values()
            if "mem_tile_scale" in node.meta
        ]
        assert scales and all(s == 8 for s in scales)


# ----------------------------------------------------------------------
# Timed engine: tile-sequential pacing
# ----------------------------------------------------------------------


class TestTiledTiming:
    def test_tiling_costs_boundary_bubbles(self, gcn_bundle):
        session = Session()
        base = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        base_cycles = base(gcn_bundle.binding).metrics.cycles

        schedule = unfused(gcn_bundle.program)
        schedule.splits = intermediate_row_splits(base.compiled, 8)
        tiled = session.compile(gcn_bundle.program, schedule)
        tiled_cycles = tiled(gcn_bundle.binding).metrics.cycles
        # Under the flat hierarchy tiling buys nothing and pays fill/drain
        # bubbles at every tile boundary: strictly slower.
        assert tiled_cycles > base_cycles

    def test_more_tiles_more_bubbles(self, gcn_bundle):
        session = Session()
        base = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        cycles = []
        for tiles in (2, 4, 8):
            schedule = unfused(gcn_bundle.program)
            schedule.splits = intermediate_row_splits(base.compiled, tiles)
            exe = session.compile(gcn_bundle.program, schedule)
            cycles.append(exe(gcn_bundle.binding).metrics.cycles)
        assert cycles == sorted(cycles)

    def test_functional_results_bit_exact(self, gcn_bundle):
        session = Session(hierarchy="fpga-small")
        base = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        base_result = base(gcn_bundle.binding)
        schedule = unfused(gcn_bundle.program)
        schedule.splits = intermediate_row_splits(base.compiled, 4)
        tiled = session.compile(gcn_bundle.program, schedule)
        tiled_result = tiled(gcn_bundle.binding)
        assert set(base_result.tensors) == set(tiled_result.tensors)
        for name, tensor in base_result.tensors.items():
            assert np.array_equal(
                tensor.to_dense(), tiled_result.tensors[name].to_dense()
            ), name


# ----------------------------------------------------------------------
# Autotuner: bounded split axis + truncation surfacing
# ----------------------------------------------------------------------


class TestAutotuneSplits:
    def test_partition_space_size(self):
        assert partition_space_size(0) == 0
        assert partition_space_size(1) == 1
        assert partition_space_size(8) == 128

    def test_truncation_warns_and_is_deterministic(self):
        reset_truncation_warnings()
        with pytest.warns(UserWarning, match="kept 5 of 512"):
            kept = contiguous_partitions(10, max_partitions=5)
        assert len(kept) == 5
        # Deterministic: boundary-count layers taken alternately from the
        # coarse and fine ends, lexicographic cuts within each layer.
        again = contiguous_partitions(10, max_partitions=5)
        assert kept == again
        assert kept[0] == [list(range(10))]  # fully fused survives the cap

    def test_both_baselines_survive_any_cap(self):
        """Any cap >= 2 keeps the fully-fused AND fully-unfused partitions.

        Regression: the pre-balanced order (fewest boundaries first)
        enumerated all C(n-1, k) single-cut partitions before the unfused
        one, so a tight cap silently dropped the only always-feasible
        fallback — exactly on programs where coarse fusion is infeasible.
        """
        for n in (4, 10, 22):
            for cap in (2, 3, 5, 8):
                kept = contiguous_partitions(n, max_partitions=cap)
                assert kept[0] == [list(range(n))], (n, cap)
                assert kept[1] == [[i] for i in range(n)], (n, cap)

    def test_baselines_survive_split_axis_budget_division(self, gcn_bundle):
        """enumerate_schedules divides max_candidates across the split
        axis; both baselines must still appear among the partitions."""
        configs = [{"x1": 4}, {"x1": 8}, {"x2": 4}]
        n = len(gcn_bundle.program.statements)
        # 4 configs (unsplit + 3) under a budget of 8 leaves only 2
        # partitions — precisely the regime that used to lose unfused.
        schedules = enumerate_schedules(
            gcn_bundle.program, max_candidates=8, splits=configs
        )
        regions = {tuple(map(tuple, s.regions)) for s in schedules}
        assert tuple(tuple(r) for r in [list(range(n))]) in regions
        assert tuple((i,) for i in range(n)) in regions
        names = {s.name for s in schedules}
        assert "auto-fully-fused" in names
        assert "auto-unfused" in names

    def test_truncation_warns_once_per_shape(self, recwarn):
        reset_truncation_warnings()
        with pytest.warns(UserWarning, match="kept 5 of 512"):
            contiguous_partitions(10, max_partitions=5)
        # Identical truncation: silent on repeat (per-process seen-set).
        recwarn.clear()
        contiguous_partitions(10, max_partitions=5)
        assert not [w for w in recwarn if "kept" in str(w.message)]
        # A *different* truncation still warns.
        with pytest.warns(UserWarning, match="kept 4 of 512"):
            contiguous_partitions(10, max_partitions=4)

    def test_no_warning_when_exhaustive(self, recwarn):
        contiguous_partitions(4, max_partitions=64)
        assert not [w for w in recwarn if "kept" in str(w.message)]

    def test_enumerate_schedules_split_axis(self, gcn_bundle):
        configs = [{"x1": 4}, {"x1": 8}]
        schedules = enumerate_schedules(
            gcn_bundle.program, max_candidates=30, splits=configs
        )
        assert len(schedules) <= 30
        names = [s.name for s in schedules]
        assert len(set(names)) == len(names)  # unique, deterministic names
        # Each partition pairs with unsplit first, then each config.
        assert schedules[0].splits == {}
        assert schedules[1].splits == {"x1": 4}
        assert schedules[2].splits == {"x1": 8}
        assert "+split(x1=4)" in schedules[1].name

    def test_autotune_surfaces_truncation(self, gcn_bundle):
        reset_truncation_warnings()
        stats = stats_from_binding(gcn_bundle.binding)
        with pytest.warns(UserWarning, match="kept"):
            tuned = autotune(
                gcn_bundle.program,
                gcn_bundle.binding,
                stats,
                max_candidates=8,
                simulate_top=2,
                session=Session(),
            )
        assert tuned.partition_space == partition_space_size(
            len(gcn_bundle.program.statements)
        )
        assert tuned.partitions_dropped > 0
        assert tuned.partitions_dropped < tuned.partition_space

    def test_autotune_cooptimizes_splits(self, gcn_bundle):
        stats = stats_from_binding(gcn_bundle.binding)
        session = Session(hierarchy="fpga-small")
        base_exe = session.compile(gcn_bundle.program, unfused(gcn_bundle.program))
        config = intermediate_row_splits(base_exe.compiled, 8)
        tuned = autotune(
            gcn_bundle.program,
            gcn_bundle.binding,
            stats,
            max_candidates=8,
            simulate_top=4,
            session=session,
            splits=[config],
        )
        assert any("+split(" in name for name, _ in tuned.ranking)
        err = gcn_bundle.max_abs_err(tuned.executable(gcn_bundle.binding))
        assert err < 1e-6


# ----------------------------------------------------------------------
# Sweep subsystem: splits axis + point-ID stability
# ----------------------------------------------------------------------

OLD_DEFAULT_ORDER = (
    "fuse-regions",
    "fold-masks",
    "merge-contractions",
    "lower-region",
    "place-memory",
    "parallelize",
)


class TestSweepSplits:
    def test_unsplit_point_ids_survive_pipeline_growth(self):
        """A pre-splitting results file must resume against the new grid."""
        old = SweepPoint.make("gcn", pipeline=OLD_DEFAULT_ORDER)
        new = SweepPoint.make("gcn")
        assert old.point_id == new.point_id

    def test_split_points_get_distinct_ids_and_labels(self):
        base = SweepPoint.make("gcn")
        split = SweepPoint.make("gcn", splits={"x1": 8})
        assert base.point_id != split.point_id
        assert base.label() != split.label()
        assert "split:x1=8" in split.label()

    def test_record_roundtrip(self):
        point = SweepPoint.make(
            "gpt3", splits={"x16": 8, "x25": 4}, hierarchy="fpga-small"
        )
        assert SweepPoint.from_record(point.to_record()) == point

    def test_validation_rejects_bad_tiles(self):
        with pytest.raises(SweepSpecError, match=">= 1"):
            SweepPoint.make("gcn", splits={"x1": 0}).validate()
        with pytest.raises(SweepSpecError, match=">= 1"):
            SweepPoint.make("gcn", splits={"x1": True}).validate()
        with pytest.raises(SweepSpecError, match="non-empty"):
            SweepPoint.make("gcn", splits={"": 4}).validate()

    def test_noop_tiles_collapse_into_baseline_point(self):
        """splits={'x1': 1} is byte-identical to unsplit — same point ID."""
        assert (
            SweepPoint.make("gcn", splits={"x1": 1}).point_id
            == SweepPoint.make("gcn").point_id
        )

    def test_spec_splits_axis_expands_grid(self):
        spec = SweepSpec(
            models=["gcn"],
            schedules=["unfused"],
            machines=["rda"],
            splits=[{}, {"x1": 4}, {"x1": 8}],
        )
        points = spec.points()
        assert len(points) == 3
        assert sorted(dict(p.splits).get("x1", 0) for p in points) == [0, 4, 8]
        rebuilt = SweepSpec.from_record(spec.to_record())
        assert [p.point_id for p in rebuilt.points()] == [
            p.point_id for p in points
        ]

    def test_report_groups_split_and_unsplit_separately(self):
        """Speedup grouping must not let split configs overwrite each other."""
        from repro.sweep.report import summarize

        def record(splits, cycles):
            point = SweepPoint.make("gcn", schedule="unfused", splits=splits)
            return {
                "status": "ok",
                "verified": True,
                "point_id": point.point_id,
                "label": point.label(),
                "point": point.to_record(),
                "metrics": {
                    "cycles": cycles,
                    "flops": 1,
                    "dram_bytes": 1,
                    "compute_utilization": 0.0,
                    "memory_utilization": 0.0,
                    "operational_intensity": 0.0,
                },
                "max_abs_err": 0.0,
            }

        summary = summarize(
            [record(None, 100.0), record({"x1": 4}, 200.0)], "unfused"
        )
        assert len(summary["speedups"]) == 2
        cycles = sorted(
            entry["cycles"]["unfused"] for entry in summary["speedups"]
        )
        assert cycles == [100.0, 200.0]
        split_groups = [e["splits"] for e in summary["speedups"]]
        assert sorted(split_groups) == ["", "x1=4"]

    def test_run_point_applies_splits(self):
        point = SweepPoint.make(
            "gcn",
            schedule="unfused",
            model_args={"nodes": 32, "density": 0.1},
            splits={"x1": 4},
            hierarchy="fpga-small",
        )
        record = run_point(point)
        assert record["status"] == "ok", record.get("error")
        assert record["point"]["splits"] == {"x1": 4}


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------


class TestSplitCLI:
    def test_run_with_split(self, capsys):
        rc = cli_main(
            [
                "run", "--model", "gcn", "--nodes", "32", "--density", "0.1",
                "--fusion", "unfused", "--hierarchy", "fpga-small",
                "--split", "x1=4,x4=4",
            ]
        )
        assert rc == 0
        assert "cycles" in capsys.readouterr().out

    def test_compile_shows_tile_index(self, capsys):
        rc = cli_main(
            [
                "compile", "--model", "gcn", "--nodes", "32", "--density",
                "0.1", "--fusion", "unfused", "--split", "x1=8",
                "--diagnostics",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "x1.t8" in out
        assert "split x1/8" in out

    def test_bad_split_spec_exits(self):
        with pytest.raises(SystemExit, match="index=tiles"):
            cli_main(
                ["run", "--model", "gcn", "--nodes", "32", "--split", "x1:8"]
            )

    def test_autotune_with_split_axis(self, capsys):
        rc = cli_main(
            [
                "autotune", "--model", "gcn", "--nodes", "24", "--density",
                "0.1", "--hierarchy", "fpga-small", "--split", "x1=4",
                "--simulate-top", "4", "--max-candidates", "16",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "truncated" in out
        assert "winner" in out
