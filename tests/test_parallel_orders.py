"""Parallelization and dataflow-order exploration tests (Sections 8.6, 8.8)."""

import numpy as np
import pytest

from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fuse_region
from repro.core.fusion.orders import (
    enumerate_orders,
    order_label,
    order_space,
    program_order_space,
)
from repro.core.schedule.par import apply_parallelization, parallelized_levels
from repro.core.schedule.schedule import fully_fused, unfused
from repro.core.tables.lower import RegionLowerer
from repro.comal import run_timed
from repro.ftree import SparseTensor, csr, dense
from repro.models.gcn import gcn_on_synthetic
from repro.driver.session import default_session

# Session-backed equivalent of the deprecated repro.pipeline.run shim.
run = default_session().run


@pytest.fixture
def spmm():
    prog = parse_program(
        "tensor A(10, 10): csr\ntensor X(10, 6): dense\nT(i, j) = A(i, k) * X(k, j)"
    )
    fused = fuse_region(prog, [0])
    rng = np.random.default_rng(0)
    a = (rng.random((10, 10)) < 0.4) * rng.random((10, 10))
    x = rng.random((10, 6))
    binding = {
        "A": SparseTensor.from_dense(a, csr(), "A"),
        "X": SparseTensor.from_dense(x, dense(2), "X"),
    }
    return prog, fused, binding, a @ x


class TestParallelization:
    def test_marks_nodes(self, spmm):
        prog, fused, binding, _ = spmm
        lowerer = RegionLowerer(fused, prog.decls)
        graph = lowerer.lower()
        order = lowerer.order
        affected = apply_parallelization(graph, order, order[0], 4)
        assert affected > 0
        assert parallelized_levels(graph)

    def test_functional_result_unchanged(self, spmm):
        prog, fused, binding, expected = spmm
        lowerer = RegionLowerer(fused, prog.decls)
        graph = lowerer.lower()
        apply_parallelization(graph, lowerer.order, lowerer.order[0], 8)
        result = run_timed(graph, binding)
        np.testing.assert_allclose(result.results["T"].to_dense(), expected)

    def test_speedup_monotone(self, spmm):
        prog, fused, binding, _ = spmm
        cycles = []
        for factor in (1, 4, 16):
            lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls)
            graph = lowerer.lower()
            apply_parallelization(graph, lowerer.order, lowerer.order[0], factor)
            cycles.append(run_timed(graph, binding).cycles)
        assert cycles[0] >= cycles[1] >= cycles[2]

    def test_factor_one_noop(self, spmm):
        prog, fused, _, _ = spmm
        lowerer = RegionLowerer(fused, prog.decls)
        graph = lowerer.lower()
        assert apply_parallelization(graph, lowerer.order, lowerer.order[0], 1) == 0

    def test_invalid_factor_rejected(self, spmm):
        prog, fused, _, _ = spmm
        lowerer = RegionLowerer(fused, prog.decls)
        graph = lowerer.lower()
        with pytest.raises(ValueError):
            apply_parallelization(graph, lowerer.order, lowerer.order[0], 0)

    def test_unknown_index_rejected(self, spmm):
        prog, fused, _, _ = spmm
        lowerer = RegionLowerer(fused, prog.decls)
        graph = lowerer.lower()
        with pytest.raises(ValueError):
            apply_parallelization(graph, lowerer.order, "zz", 2)

    def test_schedule_par_through_pipeline(self, spmm):
        prog, _, binding, expected = spmm
        schedule = fully_fused(prog)
        base = run(prog, binding, schedule).metrics.cycles
        fused = fuse_region(prog, [0])
        schedule_par = fully_fused(prog)
        schedule_par.par = {fused.first_order()[0]: 8}
        fast = run(prog, binding, schedule_par)
        np.testing.assert_allclose(fast.tensors["T"].to_dense(), expected)
        assert fast.metrics.cycles < base


NESTED_MATMUL = """
tensor A(8, 8): csr
tensor B(8, 6): dense
tensor C(6, 4): dense
E(i, j) = A(i, k) * B(k, j)
D(i, l) = E(i, j2) * C(j2, l)
"""

# Inner-product form with ordering freedom: both operands row-major over
# different outer indices, so i and j may be interleaved freely.
FREE_ORDER = """
tensor A(8, 6): dense
tensor Bt(4, 6): dense
T(i, j) = A(i, k) * Bt(j, k)
"""


class TestOrders:
    def test_enumerate_orders_valid(self):
        prog = parse_program(NESTED_MATMUL)
        fused = fuse_region(prog, [0, 1])
        orders = enumerate_orders(fused, limit=50)
        assert orders
        for order in orders:
            assert fused.pog.is_valid_order(order)

    def test_orders_change_cycles(self):
        """Different dataflow orders give different performance (Fig 18)."""
        prog = parse_program(FREE_ORDER)
        rng = np.random.default_rng(1)
        a = rng.random((8, 6))
        b = rng.random((4, 6))
        binding = {
            "A": SparseTensor.from_dense(a, dense(2), "A"),
            "Bt": SparseTensor.from_dense(b, dense(2), "Bt"),
        }
        fused = fuse_region(prog, [0])
        orders = enumerate_orders(fused, limit=10)
        assert len(orders) >= 2
        cycles = []
        for order in orders:
            lowerer = RegionLowerer(fuse_region(prog, [0]), prog.decls, order=order)
            result = run_timed(lowerer.lower(), binding)
            np.testing.assert_allclose(
                result.results["T"].to_dense(), a @ b.T, atol=1e-12
            )
            cycles.append(result.cycles)
        assert len(set(cycles)) > 1

    def test_order_space_counts(self):
        prog = parse_program(NESTED_MATMUL)
        fused = fuse_region(prog, [0, 1])
        space = order_space(fused)
        assert space.constrained <= space.unconstrained
        assert space.constrained == len(list(fused.pog.all_orders(10**6)))

    def test_local_constraints_shrink_space(self):
        """Table 4: per-kernel order constraints shrink the design space."""
        prog = parse_program(FREE_ORDER)
        schedule = fully_fused(prog)
        # Pin the statement to its concordant Gustavson-style order.
        best_orders = {0: ("i", "j", "k")}
        unconstrained, constrained = program_order_space(
            prog, schedule, best_order_constraints=best_orders
        )
        baseline_unc, baseline_con = program_order_space(prog, schedule)
        assert constrained < baseline_con <= baseline_unc

    def test_order_label(self):
        assert order_label(["i", "k", "j"]) == "ikj"
        assert order_label(["u0", "i"], rename={"u0": "k"}) == "ki"
