"""Cross-expression fusion algorithm tests (paper Section 5)."""

import numpy as np
import pytest

from repro.core.einsum.parser import parse_program
from repro.core.fusion.fuse import fold_masks, fuse_region, merge_contractions
from repro.core.fusion.pog import OrderConflictError, PartialOrderGraph


class TestPOG:
    def test_constraints_and_order(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="t1")
        pog.add_constraint("j", "k", tag="t2")
        order = pog.first_order()
        assert order.index("i") < order.index("j") < order.index("k")

    def test_cycle_detection(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="a")
        pog.add_constraint("j", "i", tag="b")
        assert not pog.is_acyclic()
        assert pog.find_cycle()
        with pytest.raises(OrderConflictError):
            pog.first_order()

    def test_remove_tag_breaks_cycle(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="a")
        pog.add_constraint("j", "i", tag="b")
        pog.remove_tag("b")
        assert pog.is_acyclic()

    def test_count_orders_free(self):
        pog = PartialOrderGraph()
        for idx in "ijk":
            pog.add_index(idx)
        assert pog.count_orders() == 6

    def test_count_orders_chain(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="t")
        pog.add_constraint("j", "k", tag="t")
        assert pog.count_orders() == 1

    def test_count_orders_partial(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="t")
        pog.add_index("k")
        assert pog.count_orders() == 3

    def test_count_matches_enumeration(self):
        pog = PartialOrderGraph()
        pog.add_constraint("a", "b", tag="t")
        pog.add_constraint("c", "d", tag="t")
        assert pog.count_orders() == len(list(pog.all_orders(100)))

    def test_is_valid_order(self):
        pog = PartialOrderGraph()
        pog.add_constraint("i", "j", tag="t")
        assert pog.is_valid_order(["i", "j"])
        assert not pog.is_valid_order(["j", "i"])
        assert not pog.is_valid_order(["i"])


GCN_TEXT = """
tensor A(8, 8): csr
tensor X(8, 4): dense
tensor W(4, 3): dense
T0(i, f) = A(i, k) * X(k, f)
T1(i, h) = T0(i, f2) * W(f2, h)
"""


class TestFuseRegion:
    def test_unifies_producer_consumer(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0, 1])
        # T0's access in statement 1 must use the same names as its lhs.
        t0_producer = fused.statements[0]
        consumer = fused.statements[1]
        t0_access = next(a for a in consumer.operands if a.tensor == "T0")
        assert t0_access.indices == t0_producer.lhs.indices

    def test_reduction_renamed_to_u(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0, 1])
        reds = fused.statements[0].reduction_indices()
        assert all(r.startswith("u") for r in reds)

    def test_mode_order_constraints(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0])
        order = fused.first_order()
        # CSR A: row index before column (reduction) index.
        stmt = fused.statements[0]
        i, f = stmt.lhs.indices
        (u,) = stmt.reduction_indices()
        assert order.index(i) < order.index(u)

    def test_region_outputs(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0, 1])
        assert fused.outputs == ["T1"]
        fused0 = fuse_region(prog, [0])
        assert fused0.outputs == ["T0"]

    def test_index_sizes(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0, 1])
        sizes = set(fused.index_sizes.values())
        assert {8, 4, 3} <= sizes

    def test_user_order_constrains(self):
        prog = parse_program(GCN_TEXT)
        stmt = prog.statements[0]
        fused = fuse_region(prog, [0], extra_orders={0: ("i", "k", "f")})
        order = fused.first_order()
        names = fused.statements[0].all_indices()
        assert order == [names[0], names[2], names[1]]  # i, u(k), f

    def test_fused_einsum_string(self):
        prog = parse_program(GCN_TEXT)
        fused = fuse_region(prog, [0, 1])
        text = fused.fused_einsum_string()
        assert text.startswith("forall ")
        assert "T0" in text and "T1" in text


class TestViewConflictCloning:
    def test_dual_use_clones_chain(self):
        """A tensor consumed through two incompatible paths gets cloned."""
        prog = parse_program(
            """
tensor A(6, 6): csr
tensor X(6, 4): dense
tensor W(4, 4): dense
H(i, h) = X(i, f) * W(f, h)
AG(i2, h2) = A(i2, k) * H(k, h2)
Y(i3, h3) = AG(i3, h3) + H(i3, h3)
"""
        )
        fused = fuse_region(prog, [0, 1, 2])
        producers = [s.lhs.tensor for s in fused.statements]
        # H must appear twice: original + clone for the conflicting use.
        assert sum(1 for t in producers if t.startswith("H")) == 2
        # No statement may access a tensor diagonally.
        for stmt in fused.statements:
            for acc in [stmt.lhs, *stmt.operands]:
                assert len(set(acc.indices)) == len(acc.indices)

    def test_cycle_resolved_by_transpose(self):
        """Conflicting mode orders of two views force a permuted copy."""
        prog = parse_program(
            """
tensor B(4, 4): csr
tensor C(4, 4): csr
E(i, j) = B(i, k) * C(k, j)
F(i, j2) = E(i, k2) * B(j2, k2)
"""
        )
        # B viewed as (i,k) row-major and as (j2,k2) with k2 innermost; the
        # second view's traversal is discordant with the first fused order.
        fused = fuse_region(prog, [0, 1])
        assert fused.pog.is_acyclic()


class TestFoldMasks:
    def test_sddmm_fold(self):
        prog = parse_program(
            """
tensor Q(4, 3): dense
tensor Kt(5, 3): dense
tensor M(4, 5): csr
P(i, j) = Q(i, k) * Kt(j, k)
S(i, j) = P(i, j) * M(i, j)
"""
        )
        fused = fold_masks(fuse_region(prog, [0, 1]))
        assert len(fused.statements) == 1
        stmt = fused.statements[0]
        assert stmt.lhs.tensor == "S"
        assert len(stmt.operands) == 3
        assert {a.tensor for a in stmt.operands} == {"Q", "Kt", "M"}

    def test_no_fold_when_output(self):
        prog = parse_program(
            """
tensor Q(4, 3): dense
tensor Kt(5, 3): dense
tensor M(4, 5): csr
P(i, j) = Q(i, k) * Kt(j, k)
S(i, j) = P(i, j) * M(i, j)
Z(i, j) = relu(P(i, j))
"""
        )
        fused = fold_masks(fuse_region(prog, [0, 1, 2]))
        # P has two consumers, so it cannot be folded away.
        assert any(s.lhs.tensor == "P" for s in fused.statements)


class TestMergeContractions:
    def test_chain_merges_to_nary(self):
        prog = parse_program(
            """
tensor A(3, 4): csr
tensor B(4, 5): dense
tensor C(5, 2): dense
E(i, j) = A(i, k) * B(k, j)
D(i, l) = E(i, j2) * C(j2, l)
"""
        )
        fused = merge_contractions(fuse_region(prog, [0, 1]))
        assert len(fused.statements) == 1
        assert len(fused.statements[0].operands) == 3
        assert len(fused.statements[0].reduction_indices()) == 2
