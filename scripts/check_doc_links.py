#!/usr/bin/env python
"""Fail on broken intra-repo links in the repo's Markdown documentation.

Scans every tracked ``*.md`` file (repo root, ``docs/``, and any other
directory) for Markdown links and image references, resolves relative
targets against the linking file, and reports targets that do not exist.
External links (``http(s)://``, ``mailto:``) and pure in-page anchors
(``#section``) are skipped; a ``file.md#anchor`` target is checked for the
file part only.

Usage::

    python scripts/check_doc_links.py [root]

Exits nonzero listing every broken link.  Run by the docs-and-examples CI
job so documentation drift fails the build instead of rotting quietly.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterator, List, Tuple

#: Inline links/images: [text](target) / ![alt](target); reference-style
#: definitions: [label]: target
_INLINE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
_REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+(\S+)", re.MULTILINE)

#: Directories never worth scanning.
_SKIP_DIRS = {".git", "__pycache__", ".pytest_cache", "node_modules", ".venv"}


def iter_markdown_files(root: str) -> Iterator[str]:
    """Yield every ``*.md`` path under ``root``, skipping junk dirs."""
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in _SKIP_DIRS]
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                yield os.path.join(dirpath, name)


def iter_links(text: str) -> Iterator[str]:
    """Yield every link target in one Markdown document."""
    for match in _INLINE.finditer(text):
        yield match.group(1)
    for match in _REFDEF.finditer(text):
        yield match.group(1)


def is_external(target: str) -> bool:
    return target.startswith(("http://", "https://", "mailto:", "ftp://"))


def check_file(path: str, root: str) -> List[Tuple[str, str]]:
    """Return (link, reason) for every broken intra-repo link in ``path``."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    broken: List[Tuple[str, str]] = []
    for target in iter_links(text):
        if is_external(target) or target.startswith("#"):
            continue
        file_part = target.split("#", 1)[0]
        if not file_part:
            continue
        if file_part.startswith("/"):
            resolved = os.path.join(root, file_part.lstrip("/"))
        else:
            resolved = os.path.join(os.path.dirname(path), file_part)
        resolved = os.path.normpath(resolved)
        if not os.path.exists(resolved):
            broken.append((target, f"no such file: {os.path.relpath(resolved, root)}"))
    return broken


def main(argv: List[str] | None = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    root = os.path.abspath(argv[0]) if argv else os.getcwd()
    failures = 0
    checked = 0
    for path in iter_markdown_files(root):
        checked += 1
        for target, reason in check_file(path, root):
            failures += 1
            print(f"BROKEN {os.path.relpath(path, root)}: ({target}) -> {reason}")
    print(f"checked {checked} markdown file(s): {failures} broken link(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
