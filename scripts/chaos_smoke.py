#!/usr/bin/env python
"""Deterministic chaos smoke: injected faults, zero lost work.

Two scenarios, both driven by the :mod:`repro.reliability` registry with
count/fuse triggers only (no probabilistic faults), so this gate replays
identically instead of flaking:

1. **Sweep**: a multi-worker sweep under two fuse-bounded injected
   worker crashes plus a one-shot hang.  Asserts the run completes
   without raising, every point lands a terminal record, zero points are
   lost (all ``"ok"`` after retries), and a faults-off resume is a
   no-op.
2. **Serve**: a request burst against ``fuseflow serve`` running with a
   tight deadline and ``--max-inflight 1`` while every request hangs.
   Asserts the admitted request 504s, the overflow sheds as 503 with
   ``Retry-After`` (never a hung socket or a 500), and SIGTERM drains
   the process to a clean zero exit.

Run it locally with ``PYTHONPATH=src python scripts/chaos_smoke.py``;
CI runs it on every build (the "Chaos smoke" step).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.sweep.runner import run_sweep  # noqa: E402
from repro.sweep.spec import SweepSpec  # noqa: E402
from repro.sweep.store import ResultStore  # noqa: E402

PORT = 8178
BASE = f"http://127.0.0.1:{PORT}"


def sweep_chaos() -> None:
    spec = SweepSpec(
        name="chaos-smoke",
        models=["sae"],
        schedules=["unfused", "full"],
        machines=["rda"],
        model_args={"batch": 1},
    )
    with tempfile.TemporaryDirectory() as tmp:
        fuse = os.path.join(tmp, "fuse")
        store_path = os.path.join(tmp, "chaos.jsonl")
        # Two worker crashes on the full-fusion point (bounded globally
        # by the fuse dir, so the third attempt succeeds) plus one hang
        # on the unfused point, detected by the point timeout.  Disjoint
        # match filters keep the two failure modes independent, so the
        # retry count this asserts is exact, not racy.
        os.environ["FUSEFLOW_FAULTS"] = (
            f"sweep.point:crash@match=*/full/*,times=2,fuse={fuse};"
            f"sweep.point:hang:120@match=*unfused*,times=1,fuse={fuse}"
        )
        try:
            outcome = run_sweep(
                spec=spec,
                store_path=store_path,
                workers=2,
                point_timeout=5.0,
                max_attempts=4,
            )
        finally:
            del os.environ["FUSEFLOW_FAULTS"]
        points = spec.points()
        assert outcome.ran == len(points), outcome.describe()
        bad = [r for r in outcome.records if r.get("status") != "ok"]
        assert not bad, [(r["status"], r.get("error")) for r in bad]
        assert outcome.retries == 3, outcome.retries  # 2 crashes + 1 hang
        # Faults off: resume over the completed store is a no-op.
        resumed = run_sweep(store_path=store_path, resume=True, workers=2)
        assert resumed.ran == 0, resumed.describe()
        assert resumed.skipped == len(points), resumed.describe()
        store = ResultStore.open(store_path)
        try:
            assert len(store.completed_ids()) == len(points)
        finally:
            store.close()
    print(
        f"chaos smoke (sweep) ok: {outcome.ran} points survived 2 injected "
        f"crashes + 1 hang with {outcome.retries} retries, 0 lost; "
        "resume converged"
    )


def _get(path: str, timeout: float = 30.0):
    try:
        with urllib.request.urlopen(BASE + path, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def _post(path: str, body: dict, timeout: float = 120.0):
    request = urllib.request.Request(
        BASE + path,
        data=json.dumps(body).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, dict(err.headers), json.loads(err.read())


def serve_chaos() -> None:
    env = dict(os.environ)
    env["FUSEFLOW_FAULTS"] = "serve.request:hang:30"
    env["PYTHONPATH"] = (
        os.path.join(os.path.dirname(__file__), "..", "src")
        + os.pathsep
        + env.get("PYTHONPATH", "")
    )
    with tempfile.TemporaryDirectory() as tmp:
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.cli",
                "serve",
                "--port",
                str(PORT),
                "--cache-dir",
                os.path.join(tmp, "cache"),
                "--quiet",
                "--deadline",
                "2",
                "--max-inflight",
                "1",
                "--drain-timeout",
                "10",
            ],
            env=env,
        )
        try:
            for _ in range(100):
                try:
                    status, _, payload = _get("/healthz", timeout=5)
                    assert (status, payload) == (200, {"status": "ok"})
                    break
                except OSError:
                    time.sleep(0.1)
            else:
                raise SystemExit("serve did not come up")

            body = {"model": "sae", "model_args": {"nodes": 12}}
            results: list = []

            def fire():
                results.append(_post("/v1/compile", body))

            # One admitted request (hung, will 504 at the 2s deadline)...
            blocker = threading.Thread(target=fire)
            blocker.start()
            deadline = time.time() + 20
            while time.time() < deadline:
                _, _, stats = _get("/v1/stats")
                if stats["active_requests"] >= 1:
                    break
                time.sleep(0.05)
            else:
                raise SystemExit("admitted request never became active")
            # ...then a burst of two more: both shed immediately as 503.
            shed = [
                _post("/v1/compile", {"model": "sae", "model_args": {"nodes": n}})
                for n in (16, 20)
            ]
            for status, headers, payload in shed:
                assert status == 503, (status, payload)
                assert headers.get("Retry-After") == "1", headers
                assert "overloaded" in payload["error"], payload
            blocker.join(timeout=60)
            assert results, "admitted request never returned"
            status, _, payload = results[0]
            assert status == 504, (status, payload)
            _, _, stats = _get("/v1/stats")
            assert stats["shed"] == 2, stats["shed"]
            assert stats["timeouts"] == 1, stats["timeouts"]

            # SIGTERM: graceful drain to a clean zero exit.
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60)
            assert code == 0, f"serve exited {code} on SIGTERM"
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
    print(
        "chaos smoke (serve) ok: hung request 504ed at the deadline, "
        "burst shed as 503 + Retry-After, SIGTERM drained to exit 0"
    )


def main() -> int:
    sweep_chaos()
    serve_chaos()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
