"""Dev harness: compare legacy vs columnar execution on the golden models.

Usage: PYTHONPATH=src python scripts/diffcheck.py [model ...]
"""

import sys

import numpy as np

from repro.comal.engine import run_timed
from repro.comal.functional import run_functional
from repro.comal.machines import RDA_MACHINE
from repro.driver import Session
from repro.sam.token import streams_equal, as_token_list
from repro.sweep import SweepPoint, build_bundle

POINTS = {
    "gcn": {"nodes": 30, "density": 0.1, "seed": 0},
    "graphsage": {"nodes": 30, "density": 0.1, "seed": 0},
    "sae": {"nodes": 16, "seed": 0},
    "gpt3": {"seq_len": 16, "d_model": 8, "block": 4, "n_layers": 1, "seed": 0},
}


def check_model(model):
    bundle = build_bundle(SweepPoint.make(model, model_args=POINTS[model]))
    session = Session(machine=RDA_MACHINE)
    for gran in ("unfused", "partial", "full"):
        exe = session.compile(bundle.program, bundle.schedule(gran))
        bind_l = dict(bundle.binding)
        bind_c = dict(bundle.binding)
        for region in exe.regions:
            for orig, new_name, mode_order in region.transposes:
                for bind in (bind_l, bind_c):
                    if new_name not in bind:
                        bind[new_name] = bind[orig].permuted_copy(
                            mode_order, name=new_name
                        )
            g = region.graph
            fl = run_functional(g, bind_l, RDA_MACHINE.scratchpad_bytes, columnar=False)
            fc = run_functional(g, bind_c, RDA_MACHINE.scratchpad_bytes, columnar=True)
            assert set(fl.streams) == set(fc.streams), (model, gran, g.name)
            for key in fl.streams:
                sl, sc = fl.streams[key], fc.streams[key]
                if not streams_equal(sc, sl):
                    print(f"STREAM MISMATCH {model}/{gran}/{g.name} {key}")
                    print("  legacy  :", as_token_list(sl)[:20])
                    print("  columnar:", as_token_list(sc)[:20])
                    return False
            for nid in fl.stats:
                a, b = fl.stats[nid], fc.stats[nid]
                for f in ("tokens_in", "tokens_out", "ops", "dram_reads", "dram_writes"):
                    if getattr(a, f) != getattr(b, f):
                        print(
                            f"STATS MISMATCH {model}/{gran}/{g.name} {nid}.{f}: "
                            f"legacy {getattr(a, f)} columnar {getattr(b, f)}"
                        )
                        return False
            for name in fl.results:
                tl, tc = fl.results[name], fc.results[name]
                if not np.array_equal(tl.to_dense(), tc.to_dense()):
                    print(f"RESULT MISMATCH {model}/{gran}/{g.name} {name}")
                    return False
            rl = run_timed(g, bind_l, RDA_MACHINE, functional=fl)
            rc = run_timed(g, bind_c, RDA_MACHINE, functional=fc)
            if abs(rl.cycles - rc.cycles) > 1e-9 * max(rl.cycles, 1.0):
                print(f"CYCLES MISMATCH {model}/{gran}/{g.name}: {rl.cycles} vs {rc.cycles}")
                return False
            for bind, f in ((bind_l, fl), (bind_c, fc)):
                bind.update(f.results)
    print(f"{model}: OK")
    return True


if __name__ == "__main__":
    models = sys.argv[1:] or list(POINTS)
    ok = all([check_model(m) for m in models])
    sys.exit(0 if ok else 1)
