"""Reliability engineering: deterministic fault injection for chaos tests.

See :mod:`repro.reliability.faults` for the model and ``docs/reliability.md``
for the ``FUSEFLOW_FAULTS`` spec grammar and the hardening each consumer
(sweeps, serving, caches) builds on top of these sites.
"""

from .faults import (
    CRASH_EXIT_CODE,
    FAULT_SITES,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    InjectedFault,
    active_plan,
    clear_plan,
    fault_point,
    injected_faults,
    install_plan,
)

__all__ = [
    "CRASH_EXIT_CODE",
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "active_plan",
    "clear_plan",
    "fault_point",
    "injected_faults",
    "install_plan",
]
