"""Deterministic fault injection: named sites, seedable triggers, zero cost off.

Every long-running subsystem — compilation, the persistent disk cache,
sweep workers, the serve front end — declares *fault sites*: named points
where a :class:`FaultPlan` may inject a failure.  With no plan installed a
site is a single ``None`` check, so production paths pay nothing; with a
plan, each matching rule decides deterministically (call counts, seeded
probabilities, cross-process fuse files) whether to fire one of four
fault kinds:

``raise``
    Raise :class:`InjectedFault` (a ``RuntimeError``) at the site.
``hang:<seconds>``
    Sleep for ``seconds`` — long enough to trip the consumer's deadline
    or wall-clock timeout.  Semantically identical to ``slow``; the two
    names document intent (a hang should be *detected*, slowness
    *absorbed*).
``slow:<seconds>``
    Sleep for ``seconds`` and continue normally (transient latency).
``crash``
    ``os._exit`` the process — the OOM-killer simulation.  Fires only in
    worker (non-main) processes; in the main process it downgrades to
    ``raise`` so an injected crash can never take out the test runner or
    an interactive session.

Plans come from the ``FUSEFLOW_FAULTS`` environment variable (parsed
lazily on the first site call, so worker processes — forked *or* spawned
— inherit the same spec) or programmatically via :func:`install_plan` /
:func:`injected_faults`.  The spec grammar (see ``docs/reliability.md``)::

    FUSEFLOW_FAULTS = rule (";" rule)*
    rule    = site ":" kind ["@" trigger ("," trigger)*]
    site    = "compile" | "diskcache.get" | "diskcache.put"
            | "sweep.point" | "serve.request"
    kind    = "raise" | "crash" | "hang:" seconds | "slow:" seconds
    trigger = "p=" float        # fire with this probability (seeded RNG)
            | "every=" n        # fire on calls n, 2n, 3n, ...
            | "nth=" n          # fire only on call n
            | "times=" n        # at most n fires (per process, or per
                                # fuse directory when fuse= is set)
            | "match=" text     # only at calls whose key contains text
                                # (or fnmatch-globs it, e.g. "*unfused*")
            | "seed=" n         # RNG seed for p= (default 0)
            | "fuse=" dir       # claim fire tokens as files in dir, so
                                # "times" bounds fires ACROSS processes

Call counts, RNG streams, and fire caps are all per (plan, rule, site)
— and per process, except when ``fuse=`` pins them to a directory — so a
given spec replays the same fault sequence every run: chaos tests are
deterministic, not flaky.
"""

from __future__ import annotations

import fnmatch
import os
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "InjectedFault",
    "clear_plan",
    "fault_point",
    "injected_faults",
    "install_plan",
]

#: Every fault site declared in the codebase.  Parsing rejects unknown
#: sites loudly — a typoed site that silently never fires would make a
#: chaos test vacuously green.
FAULT_SITES = frozenset(
    {
        "compile",
        "diskcache.get",
        "diskcache.put",
        "sweep.point",
        "serve.request",
    }
)

_KINDS = ("raise", "hang", "slow", "crash")

#: Exit status used by the ``crash`` kind, chosen to be distinguishable
#: from Python's own exits (0/1/2) in worker post-mortems.
CRASH_EXIT_CODE = 86


class FaultSpecError(ValueError):
    """Malformed ``FUSEFLOW_FAULTS`` spec string."""


class InjectedFault(RuntimeError):
    """The failure raised by a firing ``raise`` (or main-process ``crash``)."""

    def __init__(self, site: str, key: Optional[str] = None) -> None:
        detail = f" (key {key!r})" if key else ""
        super().__init__(f"injected fault at site {site!r}{detail}")
        self.site = site
        self.key = key


@dataclass
class FaultRule:
    """One parsed rule: a site, a fault kind, and its firing triggers."""

    site: str
    kind: str  # "raise" | "hang" | "slow" | "crash"
    seconds: float = 0.0
    p: Optional[float] = None
    every: Optional[int] = None
    nth: Optional[int] = None
    times: Optional[int] = None
    match: Optional[str] = None
    seed: int = 0
    fuse: Optional[str] = None
    # Mutable per-process state (never shared between rules).
    calls: int = field(default=0, repr=False)
    fires: int = field(default=0, repr=False)
    _rng: Optional[random.Random] = field(default=None, repr=False)

    def should_fire(self, key: Optional[str]) -> bool:
        """Decide (and record) whether this call fires the fault."""
        if self.match is not None:
            # Substring test, or an fnmatch glob when the pattern carries
            # metacharacters — "unfused" and "*unfused*" both select
            # "sae/synthetic/unfused/rda".
            if key is None:
                return False
            if self.match not in key and not fnmatch.fnmatchcase(
                key, self.match
            ):
                return False
        self.calls += 1
        if self.nth is not None and self.calls != self.nth:
            return False
        if self.every is not None and self.calls % self.every != 0:
            return False
        if self.p is not None:
            if self._rng is None:
                self._rng = random.Random(self.seed)
            if self._rng.random() >= self.p:
                return False
        if self.fuse is not None:
            if not self._claim_fuse_token():
                return False
        elif self.times is not None and self.fires >= self.times:
            return False
        self.fires += 1
        return True

    def _claim_fuse_token(self) -> bool:
        """Atomically claim one of the rule's ``times`` cross-process tokens.

        Tokens are ``O_CREAT|O_EXCL`` marker files in the fuse directory,
        so N cooperating processes (sweep workers, serve threads, resumed
        runs) fire this rule at most ``times`` times *in total* — the
        exactly-N semantics chaos tests need to assert that a retried
        point eventually succeeds.
        """
        limit = self.times if self.times is not None else 1
        os.makedirs(self.fuse, exist_ok=True)
        stem = f"{self.site}.{self.kind}".replace("/", "_")
        for index in range(limit):
            path = os.path.join(self.fuse, f"{stem}.{index}.fired")
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            except OSError:
                return False
            with os.fdopen(fd, "w") as fh:
                fh.write(f"pid={os.getpid()} call={self.calls}\n")
            return True
        return False

    def execute(self, key: Optional[str]) -> None:
        """Perform the fault's effect (raise / sleep / exit)."""
        if self.kind in ("hang", "slow"):
            time.sleep(self.seconds)
            return
        if self.kind == "crash":
            import multiprocessing

            if multiprocessing.current_process().name != "MainProcess":
                os._exit(CRASH_EXIT_CODE)
            # Crashing the main process would take out the test runner /
            # CLI itself; degrade to a raise that is still a hard failure.
            raise InjectedFault(self.site, key)
        raise InjectedFault(self.site, key)


class FaultPlan:
    """A set of fault rules, consulted by :func:`fault_point` calls.

    Thread-safe: rule counters advance under a lock, so concurrent serve
    threads observe one global call sequence per rule.
    """

    def __init__(self, rules: List[FaultRule]) -> None:
        self.rules = list(rules)
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # Parsing
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse a ``FUSEFLOW_FAULTS`` spec string (see module docstring).

        Raises
        ------
        FaultSpecError
            On unknown sites/kinds/triggers or unparsable values — a
            typoed chaos spec must fail loudly, never silently no-op.
        """
        rules: List[FaultRule] = []
        for chunk in spec.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            rules.append(cls._parse_rule(chunk))
        if not rules:
            raise FaultSpecError(f"fault spec {spec!r} contains no rules")
        return cls(rules)

    @staticmethod
    def _parse_rule(text: str) -> FaultRule:
        body, _, trigger_text = text.partition("@")
        site, sep, kind_text = body.partition(":")
        site = site.strip()
        kind_text = kind_text.strip()
        if not sep or not kind_text:
            raise FaultSpecError(
                f"fault rule {text!r} must look like 'site:kind[@trigger,...]'"
            )
        if site not in FAULT_SITES:
            raise FaultSpecError(
                f"unknown fault site {site!r}; expected one of "
                f"{sorted(FAULT_SITES)}"
            )
        kind, _, seconds_text = kind_text.partition(":")
        if kind not in _KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r}; expected one of {list(_KINDS)}"
            )
        seconds = 0.0
        if kind in ("hang", "slow"):
            if not seconds_text:
                raise FaultSpecError(
                    f"fault kind {kind!r} needs a duration: '{kind}:<seconds>'"
                )
            try:
                seconds = float(seconds_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad {kind} duration {seconds_text!r} in {text!r}"
                ) from None
            if seconds < 0:
                raise FaultSpecError(f"{kind} duration must be >= 0, got {seconds}")
        elif seconds_text:
            raise FaultSpecError(
                f"fault kind {kind!r} takes no argument, got {kind_text!r}"
            )
        rule = FaultRule(site=site, kind=kind, seconds=seconds)
        for part in filter(None, (p.strip() for p in trigger_text.split(","))):
            name, sep, value = part.partition("=")
            if not sep:
                raise FaultSpecError(
                    f"trigger {part!r} in {text!r} must look like name=value"
                )
            try:
                if name == "p":
                    rule.p = float(value)
                    if not 0.0 <= rule.p <= 1.0:
                        raise FaultSpecError(f"p must be in [0, 1], got {value}")
                elif name == "every":
                    rule.every = int(value)
                    if rule.every < 1:
                        raise FaultSpecError(
                            f"every must be >= 1, got {value}"
                        )
                elif name == "nth":
                    rule.nth = int(value)
                    if rule.nth < 1:
                        raise FaultSpecError(f"nth must be >= 1, got {value}")
                elif name == "times":
                    rule.times = int(value)
                    if rule.times < 0:
                        raise FaultSpecError(
                            f"times must be >= 0, got {value}"
                        )
                elif name == "match":
                    rule.match = value
                elif name == "seed":
                    rule.seed = int(value)
                elif name == "fuse":
                    rule.fuse = value
                else:
                    raise FaultSpecError(
                        f"unknown trigger {name!r} in {text!r}; expected "
                        "p/every/nth/times/match/seed/fuse"
                    )
            except ValueError:
                raise FaultSpecError(
                    f"bad value {value!r} for trigger {name!r} in {text!r}"
                ) from None
        return rule

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def check(self, site: str, key: Optional[str] = None) -> None:
        """Fire every matching rule's fault for one call at ``site``."""
        due: List[FaultRule] = []
        with self._lock:
            for rule in self.rules:
                if rule.site == site and rule.should_fire(key):
                    due.append(rule)
        # Effects run outside the lock: a hang must not serialize every
        # other site behind it.
        for rule in due:
            rule.execute(key)

    def stats(self) -> Dict[Tuple[str, str], Dict[str, int]]:
        """Per-rule call/fire counters, keyed by (site, kind) — for tests."""
        with self._lock:
            out: Dict[Tuple[str, str], Dict[str, int]] = {}
            for rule in self.rules:
                entry = out.setdefault(
                    (rule.site, rule.kind), {"calls": 0, "fires": 0}
                )
                entry["calls"] += rule.calls
                entry["fires"] += rule.fires
            return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan {len(self.rules)} rule(s)>"


# ----------------------------------------------------------------------
# The process-wide active plan
# ----------------------------------------------------------------------

#: Programmatically installed plan (overrides the environment).
_PLAN: Optional[FaultPlan] = None
#: Lazily parsed environment plan: ``None`` = not looked yet, ``False`` =
#: looked, no faults configured.  Lazy (not import-time) so spawned
#: worker processes and late ``os.environ`` edits both take effect.
_ENV_PLAN = None  # type: ignore[assignment]


#: The spec string the cached ``_ENV_PLAN`` was parsed from, so a changed
#: environment variable (tests, long-lived processes) is picked up instead
#: of being shadowed by a stale parse.
_ENV_SPEC: Optional[str] = None


def _env_plan() -> Optional[FaultPlan]:
    global _ENV_PLAN, _ENV_SPEC
    spec = os.environ.get("FUSEFLOW_FAULTS", "").strip()
    if _ENV_PLAN is None or spec != _ENV_SPEC:
        _ENV_SPEC = spec
        _ENV_PLAN = FaultPlan.parse(spec) if spec else False
    return _ENV_PLAN or None


def install_plan(plan: Optional[FaultPlan]) -> None:
    """Install ``plan`` as the process-wide fault plan (``None`` = env only)."""
    global _PLAN
    _PLAN = plan


def clear_plan() -> None:
    """Remove any active plan and forget the cached environment parse."""
    global _PLAN, _ENV_PLAN, _ENV_SPEC
    _PLAN = None
    _ENV_PLAN = None
    _ENV_SPEC = None


def active_plan() -> Optional[FaultPlan]:
    """The plan :func:`fault_point` currently consults, if any."""
    return _PLAN or _env_plan()


class injected_faults:
    """Context manager: install a plan (or spec string) for a ``with`` block.

    >>> with injected_faults("compile:raise@nth=1") as plan:
    ...     ...  # the first compile in this block raises InjectedFault
    """

    def __init__(self, plan) -> None:
        self.plan = FaultPlan.parse(plan) if isinstance(plan, str) else plan

    def __enter__(self) -> FaultPlan:
        self._previous = _PLAN
        install_plan(self.plan)
        return self.plan

    def __exit__(self, *exc) -> None:
        install_plan(self._previous)


def fault_point(site: str, key: Optional[str] = None) -> None:
    """Declare a fault site: inject the active plan's faults, if any.

    The hot-path cost with no plan configured is one global read, a
    cached-``False`` check, and one environ lookup — measured in
    nanoseconds, so sites can sit on compile and serve hot paths
    permanently.

    Parameters
    ----------
    site:
        A name from :data:`FAULT_SITES`.
    key:
        Optional identity of the work unit (point ID, request key, cache
        key) that ``match=`` triggers select on.
    """
    plan = _PLAN
    if plan is None:
        if _ENV_PLAN is False and not os.environ.get("FUSEFLOW_FAULTS"):
            return
        plan = _env_plan()
        if plan is None:
            return
    plan.check(site, key)
