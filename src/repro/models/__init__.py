"""Model zoo: the paper's four evaluated model classes."""

from .common import ModelBundle
from .gcn import build_gcn, gcn_on_synthetic
from .gpt3 import build_gpt3
from .graphsage import build_graphsage, graphsage_on_synthetic
from .sae import build_sae

__all__ = [
    "ModelBundle",
    "build_gcn",
    "gcn_on_synthetic",
    "build_graphsage",
    "graphsage_on_synthetic",
    "build_sae",
    "build_gpt3",
]
