"""GPT-3-style decoder stack with BigBird block-sparse attention.

Paper Section 8.1 evaluates GPT-3 Small (125M parameters, sequence 1024)
with BigBird attention at block sizes 16/32/64.  This reproduction builds a
dimensionally scaled decoder with the same operator graph per block
(Figure 22d): LN1 -> QKV projections -> (reshape barrier) -> QK^T ->
attention mask -> scale -> softmax -> (reshape barrier) -> AV -> output
projection -> residual -> LN2 -> FFN -> residual.

The whole decoder runs in *block space*: sequence-dimension tensors are
blocked (block x d_model blocks for activations, block x block for
attention scores), so value tokens carry dense blocks and contractions use
block-matmul ALUs — the paper's sparsity-blocking optimization (§7, §8.7).
Reshape operations are fusion barriers: partial fusion groups the three
subsets within each decoder; full fusion additionally merges subset 3 of
decoder *n* with subset 1 of decoder *n+1* (Figure 22d), which is why full
fusion wins for GPT-3 — no recomputation is introduced.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..data.text import bigbird_mask, token_embeddings
from ..frontend.api import ModelBuilder, SymTensor
from ..ftree.format import Format, LevelKind
from .common import ModelBundle, gelu_ref, layernorm_rows, softmax_rows


def _blocked_activation_fmt(block: int, d_model: int) -> Format:
    """(seq, d) activation blocked as (block x d_model) row blocks."""
    return Format((LevelKind.DENSE, LevelKind.DENSE), block_shape=(block, d_model))


def _blocked_weight_fmt(rows: int, cols: int) -> Format:
    """A weight matrix stored as one dense block."""
    return Format((LevelKind.DENSE, LevelKind.DENSE), block_shape=(rows, cols))


def _blocked_bias_fmt(dim: int) -> Format:
    return Format((LevelKind.DENSE,), block_shape=(dim,))


def _blocked_mask_fmt(block: int) -> Format:
    """Attention mask: dense block-rows, compressed kept block-columns."""
    return Format(
        (LevelKind.DENSE, LevelKind.COMPRESSED), block_shape=(block, block)
    )


def build_gpt3(
    seq_len: int = 64,
    d_model: int = 16,
    block: int = 8,
    n_layers: int = 2,
    ffn_mult: int = 2,
    seed: int = 0,
    name: str = "gpt3-bigbird",
    mask_seed: int = 7,
) -> ModelBundle:
    """Trace an ``n_layers``-decoder GPT-3-like model with BigBird attention."""
    rng = np.random.default_rng(seed)
    x = token_embeddings(seq_len, d_model, seed=seed)
    mask = bigbird_mask(seq_len, block, seed=mask_seed)
    d_ffn = d_model * ffn_mult
    scale = 1.0 / math.sqrt(d_model)

    builder = ModelBuilder(name)
    x_sym = builder.input("X0", x, _blocked_activation_fmt(block, d_model))
    mask_sym = builder.input("Mask", mask, _blocked_mask_fmt(block))

    subset1: List[List[int]] = []
    subset2: List[List[int]] = []
    subset3: List[List[int]] = []

    x_ref = x.copy()
    current = x_sym
    for layer in range(n_layers):
        tag = f"d{layer}"
        wq = rng.standard_normal((d_model, d_model)) / math.sqrt(d_model)
        wk = rng.standard_normal((d_model, d_model)) / math.sqrt(d_model)
        wv = rng.standard_normal((d_model, d_model)) / math.sqrt(d_model)
        wo = rng.standard_normal((d_model, d_model)) / math.sqrt(d_model)
        wf1 = rng.standard_normal((d_model, d_ffn)) / math.sqrt(d_model)
        wf2 = rng.standard_normal((d_ffn, d_model)) / math.sqrt(d_ffn)
        bq, bk, bv, bo = (rng.standard_normal(d_model) * 0.02 for _ in range(4))
        bf1 = rng.standard_normal(d_ffn) * 0.02
        bf2 = rng.standard_normal(d_model) * 0.02

        w_fmt = _blocked_weight_fmt(d_model, d_model)
        wq_s = builder.input(f"{tag}_wq", wq, w_fmt)
        wk_s = builder.input(f"{tag}_wk", wk, w_fmt)
        wv_s = builder.input(f"{tag}_wv", wv, w_fmt)
        wo_s = builder.input(f"{tag}_wo", wo, w_fmt)
        wf1_s = builder.input(f"{tag}_wf1", wf1, _blocked_weight_fmt(d_model, d_ffn))
        wf2_s = builder.input(f"{tag}_wf2", wf2, _blocked_weight_fmt(d_ffn, d_model))
        bq_s = builder.input(f"{tag}_bq", bq, _blocked_bias_fmt(d_model))
        bk_s = builder.input(f"{tag}_bk", bk, _blocked_bias_fmt(d_model))
        bv_s = builder.input(f"{tag}_bv", bv, _blocked_bias_fmt(d_model))
        bo_s = builder.input(f"{tag}_bo", bo, _blocked_bias_fmt(d_model))
        bf1_s = builder.input(f"{tag}_bf1", bf1, _blocked_bias_fmt(d_ffn))
        bf2_s = builder.input(f"{tag}_bf2", bf2, _blocked_bias_fmt(d_model))

        # Subset 1: LN1 + QKV projections (up to the reshape barrier).
        ln1 = builder.layer_norm(current, label=f"{tag}_ln1")
        q = builder.add(builder.matmul(ln1, wq_s, label=f"{tag}_q_mm"), bq_s, label=f"{tag}_q_bias")
        k = builder.add(builder.matmul(ln1, wk_s, label=f"{tag}_k_mm"), bk_s, label=f"{tag}_k_bias")
        v = builder.add(builder.matmul(ln1, wv_s, label=f"{tag}_v_mm"), bv_s, label=f"{tag}_v_bias")
        subset1.append(
            builder.sids(
                f"{tag}_ln1", f"{tag}_q_mm", f"{tag}_q_bias", f"{tag}_k_mm",
                f"{tag}_k_bias", f"{tag}_v_mm", f"{tag}_v_bias",
            )
        )

        # Subset 2: QK^T, mask, scale, softmax (between reshape barriers).
        s_raw = builder.matmul(q, k, transpose_b=True, label=f"{tag}_qk")
        s_masked = builder.masked(s_raw, mask_sym, label=f"{tag}_mask")
        s_scaled = builder.scale(s_masked, scale, label=f"{tag}_scale")
        probs = builder.softmax(s_scaled, label=f"{tag}_soft")
        subset2.append(
            builder.sids(f"{tag}_qk", f"{tag}_mask", f"{tag}_scale", f"{tag}_soft")
        )

        # Subset 3a: AV, output projection, first residual.  The residual
        # buffers a full activation, so it forms a natural materialization
        # point: res1 is written once and read twice (by LN2 and by the
        # second residual) — see DESIGN.md on residual handling.
        att = builder.matmul(probs, v, label=f"{tag}_av")
        out = builder.add(
            builder.matmul(att, wo_s, label=f"{tag}_out_mm"), bo_s, label=f"{tag}_out_bias"
        )
        res1 = builder.add(out, current, label=f"{tag}_res1")
        # Subset 3b: LN2 + FFN + second residual.
        ln2 = builder.layer_norm(res1, label=f"{tag}_ln2")
        f1 = builder.gelu(
            builder.add(
                builder.matmul(ln2, wf1_s, label=f"{tag}_ffn1_mm"),
                bf1_s,
                label=f"{tag}_ffn1_bias",
            ),
            label=f"{tag}_gelu",
        )
        f2 = builder.add(
            builder.matmul(f1, wf2_s, label=f"{tag}_ffn2_mm"),
            bf2_s,
            label=f"{tag}_ffn2_bias",
        )
        res2 = builder.add(f2, res1, label=f"{tag}_res2")
        subset3.append(
            [
                builder.sids(
                    f"{tag}_av", f"{tag}_out_mm", f"{tag}_out_bias", f"{tag}_res1"
                ),
                builder.sids(
                    f"{tag}_ln2", f"{tag}_ffn1_mm", f"{tag}_ffn1_bias",
                    f"{tag}_gelu", f"{tag}_ffn2_mm", f"{tag}_ffn2_bias",
                    f"{tag}_res2",
                ),
            ]
        )
        current = res2

        # Reference in dense space.
        ln1_ref = layernorm_rows(x_ref)
        q_ref = ln1_ref @ wq + bq
        k_ref = ln1_ref @ wk + bk
        v_ref = ln1_ref @ wv + bv
        scores = (q_ref @ k_ref.T) * mask * scale
        probs_ref = softmax_rows(scores, keep=mask > 0)
        att_ref = probs_ref @ v_ref
        out_ref = att_ref @ wo + bo
        res1_ref = out_ref + x_ref
        ln2_ref = layernorm_rows(res1_ref)
        ffn_ref = gelu_ref(ln2_ref @ wf1 + bf1) @ wf2 + bf2
        x_ref = ffn_ref + res1_ref

    partial_groups: List[List[int]] = []
    for layer in range(n_layers):
        s3a, s3b = subset3[layer]
        partial_groups.extend([subset1[layer], subset2[layer], s3a, s3b])

    # Fully fused: subset3 of decoder n merges with subset1 of decoder n+1.
    full_groups: List[List[int]] = [subset1[0]]
    for layer in range(n_layers):
        s3a, s3b = subset3[layer]
        full_groups.append(subset2[layer])
        full_groups.append(s3a)
        if layer + 1 < n_layers:
            full_groups.append(s3b + subset1[layer + 1])
        else:
            full_groups.append(s3b)

    return ModelBundle(
        name=name,
        builder=builder,
        output=current.name,
        reference=x_ref,
        partial_groups=partial_groups,
        full_groups=full_groups,
        metadata={
            "seq_len": seq_len,
            "d_model": d_model,
            "block": block,
            "n_layers": n_layers,
            "mask_sparsity": 1.0 - float(np.count_nonzero(mask)) / mask.size,
        },
    )
