"""Model bundle: a traced model plus its fusion schedules and reference.

Each model builder returns a :class:`ModelBundle` holding the Einsum
program, the runtime binding, the dense numpy reference output (the
verification oracle, mirroring the paper's dense-PyTorch checks), and the
fusion groups that define the three granularities of Section 8.3 /
Figure 22: unfused, partially fused, fully fused — plus the C+S rewrite
groups for the Section 8.4 comparison when applicable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..core.schedule.schedule import (
    Schedule,
    cs_rewrite,
    fully_fused,
    fused_groups,
    unfused,
)
from ..frontend.api import ModelBuilder

#: Shared functional-correctness tolerance vs the dense numpy reference.
VERIFY_TOLERANCE = 1e-6


@dataclass
class ModelBundle:
    """A traced model ready for compilation and simulation."""

    name: str
    builder: ModelBuilder
    output: str
    reference: np.ndarray
    partial_groups: List[List[int]]
    # Fully fused grouping; None means one single region.
    full_groups: Optional[List[List[int]]] = None
    # Custard+Stardust rewrite grouping (contraction chains only).
    cs_groups: Optional[List[List[int]]] = None
    metadata: Dict[str, object] = field(default_factory=dict)

    @property
    def program(self):
        return self.builder.program

    @property
    def binding(self):
        return self.builder.binding

    def schedule(self, granularity: str) -> Schedule:
        """Build the schedule for 'unfused' | 'partial' | 'full' | 'cs'."""
        if granularity == "unfused":
            return unfused(self.program)
        if granularity == "partial":
            return fused_groups(self.program, self.partial_groups, name="partial")
        if granularity == "full":
            if self.full_groups is None:
                return fully_fused(self.program)
            return fused_groups(self.program, self.full_groups, name="fully-fused")
        if granularity == "cs":
            if self.cs_groups is None:
                raise ValueError(f"{self.name} has no C+S rewrite grouping")
            return cs_rewrite(self.program, self.cs_groups)
        raise ValueError(f"unknown granularity {granularity!r}")

    def schedules(self, granularities: Sequence[str] = ("unfused", "partial", "full")) -> List[Schedule]:
        return [self.schedule(g) for g in granularities]

    def max_abs_err(self, result) -> float:
        """Max absolute error of a run's output vs the dense reference."""
        out = result.tensors[self.output].to_dense()
        return float(np.abs(out - self.reference).max())

    def verify(self, result, tolerance: float = VERIFY_TOLERANCE) -> float:
        """Assert a run matches the dense reference; returns the error.

        The single source of the correctness check that the CLI, the sweep
        subsystem, and the benchmark harness all report.
        """
        err = self.max_abs_err(result)
        if not err < tolerance:
            raise AssertionError(
                f"{self.name}: max |err| {err:.3e} exceeds {tolerance:.0e} "
                "vs dense reference"
            )
        return err

    def executable(self, granularity: str = "partial", session=None):
        """Compile this model at a granularity via the driver Session.

        Returns a callable :class:`~repro.driver.Executable`; pass a
        session to control the machine/pipeline or share a compile cache,
        otherwise the process-wide default session is used.
        """
        from ..driver.session import default_session

        session = session or default_session()
        return session.compile(self.program, self.schedule(granularity))


def softmax_rows(x: np.ndarray, keep: np.ndarray | None = None) -> np.ndarray:
    """Row softmax over kept entries (sparse-attention semantics)."""
    if keep is None:
        keep = np.ones_like(x, dtype=bool)
    out = np.zeros_like(x)
    for r in range(x.shape[0]):
        cols = np.nonzero(keep[r])[0]
        if cols.size == 0:
            continue
        row = x[r, cols]
        row = row - row.max()
        e = np.exp(row)
        out[r, cols] = e / e.sum()
    return out


def layernorm_rows(x: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    """Row-wise layernorm matching the FiberNorm primitive."""
    mean = x.mean(axis=1, keepdims=True)
    var = x.var(axis=1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


def gelu_ref(x: np.ndarray) -> np.ndarray:
    """tanh-approximated GeLU matching the UnaryALU kernel."""
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x**3)))
