"""Two-layer Graph Convolutional Network (Kipf & Welling), paper Section 8.1.

Per Figure 22b, each layer is Adj matmul -> Linear matmul -> Linear bias ->
nonlinearity (ReLU after layer 1, softmax after layer 2).  Partial fusion
groups the operations of each layer; full fusion merges both layers, which
forces recomputation of the layer-1 activations per layer-2 adjacency row.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..data.graphs import node_features, synthetic_graph, weighted_adjacency
from ..frontend.api import Linear, ModelBuilder
from ..ftree.format import csr
from .common import ModelBundle, softmax_rows


def build_gcn(
    adj: np.ndarray,
    feats: np.ndarray,
    hidden: int = 8,
    classes: int = 4,
    seed: int = 0,
    name: str = "gcn",
) -> ModelBundle:
    """Trace a 2-layer GCN over the given adjacency/features."""
    rng = np.random.default_rng(seed)
    n, f = feats.shape
    builder = ModelBuilder(name)
    a_sym = builder.input("A", adj, csr())
    x_sym = builder.input("X", feats)
    lin1 = Linear(builder, f, hidden, name="lin1", rng=rng)
    lin2 = Linear(builder, hidden, classes, name="lin2", rng=rng)

    t0 = builder.matmul(a_sym, x_sym, label="adj1")
    t1 = lin1(t0, label_prefix="lin1")
    x1 = builder.relu(t1, label="relu1")
    t2 = builder.matmul(a_sym, x1, label="adj2")
    t3 = lin2(t2, label_prefix="lin2")
    y = builder.softmax(t3, label="soft")

    # Dense numpy reference.
    w1 = builder.binding["lin1_w"].to_dense()
    b1 = builder.binding["lin1_b"].to_dense()
    w2 = builder.binding["lin2_w"].to_dense()
    b2 = builder.binding["lin2_b"].to_dense()
    h = np.maximum(adj @ feats @ w1 + b1, 0.0)
    logits = adj @ h @ w2 + b2
    reference = softmax_rows(logits)

    layer1 = builder.sids("adj1", "lin1_mm", "lin1_bias", "relu1")
    layer2 = builder.sids("adj2", "lin2_mm", "lin2_bias", "soft")
    return ModelBundle(
        name=name,
        builder=builder,
        output=y.name,
        reference=reference,
        partial_groups=[layer1, layer2],
        full_groups=None,
        cs_groups=_cs_groups(builder),
        metadata={"nodes": n, "features": f, "hidden": hidden, "classes": classes},
    )


def _cs_groups(builder: ModelBuilder) -> List[List[int]]:
    """Custard+Stardust rewrite: contraction chains fuse (via a handwritten
    global Einsum); nonlinear/bias operations break fusion."""
    return [
        builder.sids("adj1", "lin1_mm"),
        builder.sids("lin1_bias"),
        builder.sids("relu1"),
        builder.sids("adj2", "lin2_mm"),
        builder.sids("lin2_bias"),
        builder.sids("soft"),
    ]


def gcn_on_synthetic(
    nodes: int = 200,
    features: int = 12,
    density: float = 0.03,
    pattern: str = "uniform",
    hidden: int = 8,
    classes: int = 4,
    seed: int = 0,
) -> ModelBundle:
    """GCN on a synthetic graph (used by ablations and tests)."""
    adj = weighted_adjacency(
        synthetic_graph(nodes, density, pattern, seed),
        np.random.default_rng(seed),
    )
    feats = node_features(nodes, features, seed=seed + 1)
    return build_gcn(adj, feats, hidden=hidden, classes=classes, seed=seed)
