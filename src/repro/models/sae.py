"""Sparse Autoencoder (Ng 2011-style), paper Section 8.1 / Figure 22a.

Three weight-sparse layers (50% magnitude-pruned weights, Table 2) applied
to a batch of flattened images: SpMM -> bias -> ReLU stages followed by a
final softmax, matching Figure 22a's operator list (SpMM1, Add1, ReLU,
SpMM2, Add2, Soft).  Partial fusion groups each layer's operations; full
fusion merges all layers, which streams layer to layer without
recomputation (dense row spaces), so full fusion wins for SAE.
"""

from __future__ import annotations

import numpy as np

from ..frontend.api import ModelBuilder
from ..ftree.format import csr
from .common import ModelBundle, softmax_rows


def _pruned(rng: np.random.Generator, shape, density: float) -> np.ndarray:
    """Magnitude-pruned weight matrix with the given stored density."""
    w = rng.standard_normal(shape) / np.sqrt(shape[0])
    threshold = np.quantile(np.abs(w), 1.0 - density)
    return w * (np.abs(w) >= threshold)


def build_sae(
    x: np.ndarray,
    hidden: int | None = None,
    weight_density: float = 0.5,
    seed: int = 0,
    name: str = "sae",
) -> ModelBundle:
    """Trace a sparse autoencoder over a batch of flattened inputs."""
    rng = np.random.default_rng(seed)
    batch, dim = x.shape
    hidden = hidden or max(dim // 2, 4)
    builder = ModelBuilder(name)
    x_sym = builder.input("X", x)
    w1 = _pruned(rng, (dim, hidden), weight_density)
    w2 = _pruned(rng, (hidden, dim), weight_density)
    b1 = rng.standard_normal(hidden) * 0.1
    b2 = rng.standard_normal(dim) * 0.1
    w1_sym = builder.input("W1", w1, csr())
    w2_sym = builder.input("W2", w2, csr())
    b1_sym = builder.input("b1", b1)
    b2_sym = builder.input("b2", b2)

    t1 = builder.matmul(x_sym, w1_sym, label="spmm1")
    t1b = builder.add(t1, b1_sym, label="add1")
    h = builder.relu(t1b, label="relu1")
    t2 = builder.matmul(h, w2_sym, label="spmm2")
    t2b = builder.add(t2, b2_sym, label="add2")
    y = builder.softmax(t2b, label="soft")

    hidden_ref = np.maximum(x @ w1 + b1, 0.0)
    reference = softmax_rows(hidden_ref @ w2 + b2)

    return ModelBundle(
        name=name,
        builder=builder,
        output=y.name,
        reference=reference,
        partial_groups=[
            builder.sids("spmm1", "add1", "relu1"),
            builder.sids("spmm2", "add2", "soft"),
        ],
        full_groups=None,
        metadata={
            "batch": batch,
            "dim": dim,
            "hidden": hidden,
            "weight_density": weight_density,
        },
    )
