"""Two-layer GraphSAGE (Hamilton et al.), paper Section 8.1 / Figure 22c.

Each layer aggregates neighborhood features (Adj matmul), applies separate
linear transforms to the aggregated and self features, sums them, and
applies the nonlinearity: exactly the ``T_nbor`` / ``T_self`` decomposition
the paper uses as its running example (Figures 6 and 10).
"""

from __future__ import annotations

import numpy as np

from ..data.graphs import node_features, synthetic_graph, weighted_adjacency
from ..frontend.api import Linear, ModelBuilder
from ..ftree.format import csr
from .common import ModelBundle, softmax_rows


def build_graphsage(
    adj: np.ndarray,
    feats: np.ndarray,
    hidden: int = 8,
    classes: int = 4,
    seed: int = 0,
    name: str = "graphsage",
) -> ModelBundle:
    """Trace a 2-layer GraphSAGE over the given adjacency/features."""
    rng = np.random.default_rng(seed)
    n, f = feats.shape
    builder = ModelBuilder(name)
    a_sym = builder.input("A", adj, csr())
    x_sym = builder.input("X", feats)
    nbor1 = Linear(builder, f, hidden, name="nbor1", rng=rng)
    self1 = Linear(builder, f, hidden, name="self1", rng=rng)
    nbor2 = Linear(builder, hidden, classes, name="nbor2", rng=rng)
    self2 = Linear(builder, hidden, classes, name="self2", rng=rng)

    # Layer 1.
    agg1 = builder.matmul(a_sym, x_sym, label="adj1")
    t_nbor1 = nbor1(agg1, label_prefix="nbor1")
    t_self1 = self1(x_sym, label_prefix="self1")
    summed1 = builder.add(t_nbor1, t_self1, label="add1")
    x1 = builder.relu(summed1, label="relu1")
    # Layer 2.
    agg2 = builder.matmul(a_sym, x1, label="adj2")
    t_nbor2 = nbor2(agg2, label_prefix="nbor2")
    t_self2 = self2(x1, label_prefix="self2")
    summed2 = builder.add(t_nbor2, t_self2, label="add2")
    y = builder.softmax(summed2, label="soft")

    wn1 = builder.binding["nbor1_w"].to_dense(); bn1 = builder.binding["nbor1_b"].to_dense()
    ws1 = builder.binding["self1_w"].to_dense(); bs1 = builder.binding["self1_b"].to_dense()
    wn2 = builder.binding["nbor2_w"].to_dense(); bn2 = builder.binding["nbor2_b"].to_dense()
    ws2 = builder.binding["self2_w"].to_dense(); bs2 = builder.binding["self2_b"].to_dense()
    h1 = np.maximum((adj @ feats) @ wn1 + bn1 + feats @ ws1 + bs1, 0.0)
    logits = (adj @ h1) @ wn2 + bn2 + h1 @ ws2 + bs2
    reference = softmax_rows(logits)

    layer1 = builder.sids(
        "adj1", "nbor1_mm", "nbor1_bias", "self1_mm", "self1_bias", "add1", "relu1"
    )
    layer2 = builder.sids(
        "adj2", "nbor2_mm", "nbor2_bias", "self2_mm", "self2_bias", "add2", "soft"
    )
    return ModelBundle(
        name=name,
        builder=builder,
        output=y.name,
        reference=reference,
        partial_groups=[layer1, layer2],
        full_groups=None,
        cs_groups=[
            builder.sids("adj1", "nbor1_mm"),
            builder.sids("nbor1_bias"),
            builder.sids("self1_mm"),
            builder.sids("self1_bias"),
            builder.sids("add1"),
            builder.sids("relu1"),
            builder.sids("adj2", "nbor2_mm"),
            builder.sids("nbor2_bias"),
            builder.sids("self2_mm"),
            builder.sids("self2_bias"),
            builder.sids("add2"),
            builder.sids("soft"),
        ],
        metadata={"nodes": n, "features": f, "hidden": hidden, "classes": classes},
    )


def graphsage_on_synthetic(
    nodes: int = 200,
    features: int = 12,
    density: float = 0.03,
    pattern: str = "uniform",
    hidden: int = 8,
    classes: int = 4,
    seed: int = 0,
) -> ModelBundle:
    """GraphSAGE on a synthetic graph."""
    adj = weighted_adjacency(
        synthetic_graph(nodes, density, pattern, seed),
        np.random.default_rng(seed),
    )
    feats = node_features(nodes, features, seed=seed + 1)
    return build_graphsage(adj, feats, hidden=hidden, classes=classes, seed=seed)
