"""PyTorch-like tracing frontend (Torch-MLIR / MPACT stand-in).

Models are written against a small imperative API — symbolic tensors,
``Linear`` modules, ``relu``/``gelu``/``softmax``/``layer_norm`` functions,
``matmul`` — and every operation records one Einsum statement into an
:class:`~repro.core.einsum.ast.EinsumProgram`.  Sparse tensors carry format
annotations exactly as MPACT/Scorch sparse annotations do; the compiler
proper only ever sees the Einsum program, mirroring how FuseFlow consumes
the MLIR Linalg + SparseTensor dialects.

The :class:`ModelBuilder` also keeps the runtime binding (tensor name ->
:class:`~repro.ftree.tensor.SparseTensor`) for declared inputs, so a traced
model is immediately runnable through :mod:`repro.pipeline`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.einsum.ast import EinsumProgram
from ..ftree.format import Format, dense as dense_format
from ..ftree.tensor import SparseTensor


@dataclass
class SymTensor:
    """A symbolic tensor handle produced by tracing."""

    builder: "ModelBuilder"
    name: str
    dims: Tuple[int, ...]
    blocked: bool = False

    @property
    def order(self) -> int:
        return len(self.dims)

    # Sugar so models read like PyTorch code.
    def __matmul__(self, other: "SymTensor") -> "SymTensor":
        return self.builder.matmul(self, other)

    def __add__(self, other: "SymTensor") -> "SymTensor":
        return self.builder.add(self, other)

    def __mul__(self, other: "SymTensor") -> "SymTensor":
        return self.builder.mul(self, other)


class ModelBuilder:
    """Records operations into an Einsum program plus a runtime binding."""

    def __init__(self, name: str = "model") -> None:
        self.program = EinsumProgram(name)
        self.binding: Dict[str, SparseTensor] = {}
        self._tensor_counter = 0
        self._index_counter = 0
        # Statement id -> human label (used to define fusion groups).
        self.labels: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # Declarations
    # ------------------------------------------------------------------
    def input(
        self,
        name: str,
        data: np.ndarray,
        fmt: Format | None = None,
    ) -> SymTensor:
        """Declare an input tensor with data and optional sparse format."""
        data = np.asarray(data, dtype=np.float64)
        fmt = fmt or dense_format(data.ndim)
        self.program.declare(name, data.shape, fmt)
        self.binding[name] = SparseTensor.from_dense(data, fmt, name=name)
        if fmt.is_blocked:
            grid = tuple(s // b for s, b in zip(data.shape, fmt.block_shape))
            return SymTensor(self, name, grid, blocked=True)
        return SymTensor(self, name, data.shape)

    def fresh_name(self, base: str = "t") -> str:
        self._tensor_counter += 1
        return f"{base}{self._tensor_counter}"

    def fresh_indices(self, count: int) -> List[str]:
        out = []
        for _ in range(count):
            self._index_counter += 1
            out.append(f"x{self._index_counter}")
        return out

    def _record(self, sid: int, label: Optional[str]) -> None:
        if label:
            self.labels[sid] = label

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def matmul(
        self,
        a: SymTensor,
        b: SymTensor,
        label: str | None = None,
        order: str | None = None,
        transpose_b: bool = False,
    ) -> SymTensor:
        """``out = a @ b`` (or ``a @ b.T`` with ``transpose_b``).

        ``order`` optionally schedules the statement's dataflow order as a
        permutation of ``"ikj"`` (i = rows of a, k = contraction, j = the
        other operand's free dimension).
        """
        if a.order != 2 or b.order != 2:
            raise ValueError("matmul expects 2-D tensors")
        i, k, j = self.fresh_indices(3)
        if transpose_b:
            if a.dims[1] != b.dims[1]:
                raise ValueError(f"matmul_t dims mismatch: {a.dims} x {b.dims}")
            out_dims = (a.dims[0], b.dims[0])
            b_access = (b.name, (j, k))
        else:
            if a.dims[1] != b.dims[0]:
                raise ValueError(f"matmul dims mismatch: {a.dims} x {b.dims}")
            out_dims = (a.dims[0], b.dims[1])
            b_access = (b.name, (k, j))
        blocked = a.blocked or b.blocked
        op = ("bmt" if transpose_b else "bmm") if blocked else "mul"
        name = self.fresh_name("mm")
        stmt_order = None
        if order:
            mapping = {"i": i, "k": k, "j": j}
            stmt_order = tuple(mapping[c] for c in order)
        stmt = self.program.contract(
            name, (i, j), op, [(a.name, (i, k)), b_access], order=stmt_order
        )
        self._record(stmt.sid, label)
        return SymTensor(self, name, out_dims, blocked=blocked)

    def mul(self, a: SymTensor, b: SymTensor, label: str | None = None) -> SymTensor:
        """Elementwise product, broadcasting ``b`` over missing leading dims."""
        return self._ewise("mul", a, b, label)

    def add(self, a: SymTensor, b: SymTensor, label: str | None = None) -> SymTensor:
        """Elementwise sum; ``b`` may be a vector broadcast over rows."""
        return self._ewise("add", a, b, label)

    def _ewise(self, op: str, a: SymTensor, b: SymTensor, label: str | None) -> SymTensor:
        idx = self.fresh_indices(a.order)
        if b.order == a.order:
            if a.dims != b.dims:
                raise ValueError(f"elementwise dims mismatch: {a.dims} vs {b.dims}")
            b_idx = tuple(idx)
        elif b.order == 1 and b.dims[0] == a.dims[-1]:
            b_idx = (idx[-1],)
        else:
            raise ValueError(f"cannot broadcast {b.dims} against {a.dims}")
        name = self.fresh_name("ew")
        stmt = self.program.contract(
            name, tuple(idx), op, [(a.name, tuple(idx)), (b.name, b_idx)]
        )
        self._record(stmt.sid, label)
        return SymTensor(self, name, a.dims, blocked=a.blocked or b.blocked)

    def unary(
        self,
        op: str,
        x: SymTensor,
        scale: float = 1.0,
        offset: float = 0.0,
        label: str | None = None,
    ) -> SymTensor:
        idx = tuple(self.fresh_indices(x.order))
        name = self.fresh_name(op)
        stmt = self.program.unary(name, idx, op, (x.name, idx), scale=scale, offset=offset)
        self._record(stmt.sid, label)
        return SymTensor(self, name, x.dims, blocked=x.blocked)

    def relu(self, x: SymTensor, label: str | None = None) -> SymTensor:
        return self.unary("relu", x, label=label)

    def gelu(self, x: SymTensor, label: str | None = None) -> SymTensor:
        return self.unary("gelu", x, label=label)

    def scale(self, x: SymTensor, factor: float, label: str | None = None) -> SymTensor:
        return self.unary("identity", x, scale=factor, label=label)

    def softmax(self, x: SymTensor, label: str | None = None) -> SymTensor:
        """Softmax over the innermost dimension (stored entries only)."""
        idx = tuple(self.fresh_indices(x.order))
        name = self.fresh_name("soft")
        stmt = self.program.fiber(name, idx, "softmax", (x.name, idx))
        self._record(stmt.sid, label)
        return SymTensor(self, name, x.dims, blocked=x.blocked)

    def layer_norm(self, x: SymTensor, label: str | None = None) -> SymTensor:
        """Mean/variance normalization over the innermost dimension."""
        idx = tuple(self.fresh_indices(x.order))
        name = self.fresh_name("ln")
        stmt = self.program.fiber(name, idx, "layernorm", (x.name, idx))
        self._record(stmt.sid, label)
        return SymTensor(self, name, x.dims, blocked=x.blocked)

    def masked(self, x: SymTensor, mask: SymTensor, label: str | None = None) -> SymTensor:
        """Apply a sparsity mask (elementwise product with a sparse tensor).

        Under fusion this folds into the producing contraction (SDDMM).
        """
        return self._ewise("mul", x, mask, label)

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def compile(self, schedule=None, session=None):
        """Compile the traced program into an :class:`~repro.driver.Executable`.

        Uses the process-wide default session unless one is given, so
        repeated compiles of an identical trace are served from cache.
        The driver import is deferred: the frontend layer otherwise only
        depends on the Einsum IR.
        """
        from ..driver.session import default_session

        session = session or default_session()
        return session.compile(self.program, schedule)

    # ------------------------------------------------------------------
    # Bookkeeping helpers for schedules
    # ------------------------------------------------------------------
    def sids(self, *labels: str) -> List[int]:
        """Statement ids carrying any of the given labels, in order."""
        wanted = set(labels)
        return [sid for sid, lab in sorted(self.labels.items()) if lab in wanted]

    def all_sids(self) -> List[int]:
        return list(range(len(self.program.statements)))


class Linear:
    """A dense (or sparse-weight) linear layer: ``y = x W + b``."""

    def __init__(
        self,
        builder: ModelBuilder,
        in_features: int,
        out_features: int,
        weight: np.ndarray | None = None,
        bias: np.ndarray | None = None,
        weight_fmt: Format | None = None,
        name: str = "lin",
        rng: np.random.Generator | None = None,
    ) -> None:
        rng = rng or np.random.default_rng(0)
        if weight is None:
            weight = rng.standard_normal((in_features, out_features)) / np.sqrt(in_features)
        if bias is None:
            bias = rng.standard_normal(out_features) * 0.1
        self.builder = builder
        self.weight = builder.input(f"{name}_w", weight, weight_fmt)
        self.bias = builder.input(f"{name}_b", bias)
        self.name = name

    def __call__(self, x: SymTensor, label_prefix: str = "") -> SymTensor:
        prefix = label_prefix or self.name
        y = self.builder.matmul(x, self.weight, label=f"{prefix}_mm")
        return self.builder.add(y, self.bias, label=f"{prefix}_bias")
