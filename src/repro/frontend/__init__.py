"""PyTorch-like tracing frontend."""

from .api import Linear, ModelBuilder, SymTensor

__all__ = ["ModelBuilder", "SymTensor", "Linear"]
