"""End-to-end FuseFlow pipeline: Einsum program -> fused SAMML -> simulation.

The pipeline orchestrates the full compilation flow of Figure 6:

1. fuse each scheduled region (cross-expression fusion, Section 5),
2. optionally fold masks / apply the global-iteration rewrite,
3. lower each region through fusion tables (Section 6),
4. apply parallelization,
5. execute region graphs in order on the Comal-like simulator, materializing
   region outputs and binding them as inputs of later regions.

The public entry points are :func:`compile_program` and :func:`execute`
(plus :func:`run` which does both).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .comal.engine import SimResult, run_timed
from .comal.machines import Machine, RDA_MACHINE
from .comal.metrics import ProgramMetrics
from .core.einsum.ast import EinsumProgram, TensorDecl
from .core.fusion.fuse import FusedEinsum, fold_masks, fuse_region, merge_contractions
from .core.schedule.par import apply_parallelization
from .core.schedule.schedule import Schedule, unfused
from .core.tables.lower import OutputSpec, RegionLowerer
from .ftree.tensor import SparseTensor
from .sam.graph import SAMGraph


@dataclass
class CompiledRegion:
    """One fused region's compiled form."""

    graph: SAMGraph
    fused: FusedEinsum
    order: List[str]
    output_specs: List[OutputSpec]
    table_text: str
    # Permuted copies to materialize: (original tensor, new name, mode order).
    transposes: List[Tuple[str, str, Tuple[int, ...]]] = field(default_factory=list)


@dataclass
class CompiledProgram:
    """A compiled model: region graphs plus declaration registry."""

    program: EinsumProgram
    schedule: Schedule
    regions: List[CompiledRegion]
    decls: Dict[str, TensorDecl]
    compile_seconds: float = 0.0

    def total_nodes(self) -> int:
        return sum(r.graph.node_count() for r in self.regions)

    def describe(self) -> str:
        lines = [
            f"compiled {self.program.name} under {self.schedule.name}: "
            f"{len(self.regions)} region(s), {self.total_nodes()} nodes, "
            f"{self.compile_seconds * 1e3:.1f} ms"
        ]
        for region in self.regions:
            lines.append(
                f"  {region.graph.name}: order {region.order}, "
                f"{region.graph.node_count()} nodes, outputs "
                f"{[s.name for s in region.output_specs]}"
            )
        return "\n".join(lines)


@dataclass
class ProgramResult:
    """Outcome of executing a compiled program."""

    metrics: ProgramMetrics
    tensors: Dict[str, SparseTensor]
    region_results: List[SimResult] = field(default_factory=list)

    def output(self, name: str) -> SparseTensor:
        return self.tensors[name]


def compile_program(
    program: EinsumProgram, schedule: Schedule | None = None
) -> CompiledProgram:
    """Compile ``program`` under ``schedule`` (default: unfused)."""
    start = time.perf_counter()
    program.validate()
    schedule = schedule or unfused(program)
    schedule.validate(program)
    decls = dict(program.decls)
    regions: List[CompiledRegion] = []
    for pos, sids in enumerate(schedule.regions):
        fused = fuse_region(
            program,
            sids,
            name=f"{schedule.name}-r{pos}",
            extra_orders={
                sid: order
                for sid, order in schedule.stmt_orders.items()
                if sid in sids
            },
            decls=decls,
        )
        if schedule.fold_masks and len(sids) > 1:
            fused = fold_masks(fused)
        if schedule.global_rewrite and len(sids) > 1:
            fused = merge_contractions(fused)
        lowerer, graph, order = _lower_with_order_fallback(
            fused, decls, schedule.orders.get(pos)
        )
        for index_var, factor in schedule.par.items():
            if index_var in order:
                apply_parallelization(graph, order, index_var, factor)
        transposes = [
            (self_orig(fused, key), name, mode_order)
            for key, (name, mode_order) in lowerer.transpose_requests.items()
        ]
        for spec in lowerer.output_specs:
            decls[spec.name] = TensorDecl(
                spec.name, spec.shape, spec.fmt, is_input=False
            )
        regions.append(
            CompiledRegion(
                graph=graph,
                fused=fused,
                order=list(order),
                output_specs=list(lowerer.output_specs),
                table_text=lowerer.table.render(),
                transposes=transposes,
            )
        )
    compiled = CompiledProgram(
        program=program,
        schedule=schedule,
        regions=regions,
        decls=decls,
    )
    compiled.compile_seconds = time.perf_counter() - start
    return compiled


def _lower_with_order_fallback(
    fused: FusedEinsum,
    decls: Dict[str, TensorDecl],
    pinned_order: Optional[List[str]],
    max_attempts: int = 200,
):
    """Lower a region, falling back across valid dataflow orders.

    The first topological sort is usually lowerable, but transposed views or
    unusual POGs can leave it stream-incompatible; FuseFlow then walks other
    valid orders (it "enumerates valid dataflow orders that do not break
    fusion", Section 7) until one lowers.  A pinned order from the schedule
    is never overridden — its failure is the user's to resolve.
    """
    from .core.tables.lower import LoweringError

    if pinned_order is not None:
        lowerer = RegionLowerer(fused, decls, order=pinned_order)
        return lowerer, lowerer.lower(), list(pinned_order)
    candidates = [fused.first_order()]
    errors: List[str] = []
    tried = 0
    seen = {tuple(candidates[0])}
    generator = fused.pog.all_orders(limit=max_attempts)
    while True:
        for order in candidates:
            tried += 1
            try:
                lowerer = RegionLowerer(fused, decls, order=order)
                return lowerer, lowerer.lower(), list(order)
            except LoweringError as exc:
                errors.append(str(exc))
        candidates = []
        if tried >= max_attempts:
            break
        for order in generator:
            if tuple(order) not in seen:
                seen.add(tuple(order))
                candidates = [order]
                break
        if not candidates:
            break
    raise LoweringError(
        f"no valid dataflow order lowers region {fused.name}; "
        f"last error: {errors[-1] if errors else 'none'}"
    )


def self_orig(fused: FusedEinsum, key: Tuple[int, int]) -> str:
    """Original tensor name behind a transpose request key."""
    sid, pos = key
    for view in fused.transposed_views:
        if view.sid == sid and view.operand_pos == pos:
            return view.tensor
    raise KeyError(key)


def execute(
    compiled: CompiledProgram,
    binding: Dict[str, SparseTensor],
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Run all region graphs in order, chaining materialized outputs."""
    bind: Dict[str, Any] = dict(binding)
    metrics = ProgramMetrics(label=compiled.schedule.name)
    produced: Dict[str, SparseTensor] = {}
    region_results: List[SimResult] = []
    for region in compiled.regions:
        for orig, new_name, mode_order in region.transposes:
            if new_name not in bind:
                source = bind[orig]
                bind[new_name] = source.permuted_copy(mode_order, name=new_name)
                # A permuted copy is a DRAM round trip of the whole tensor.
                extra = 2 * source.bytes_total()
                metrics.dram_bytes += extra
                metrics.cycles += extra / machine.dram_bandwidth
        result = run_timed(region.graph, bind, machine)
        metrics.add(result, region.graph.name)
        for name, tensor in result.results.items():
            bind[name] = tensor
            produced[name] = tensor
        region_results.append(result)
    return ProgramResult(metrics=metrics, tensors=produced, region_results=region_results)


def run(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedule: Schedule | None = None,
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Compile and execute in one call."""
    compiled = compile_program(program, schedule)
    return execute(compiled, binding, machine)


def compare_schedules(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedules: Sequence[Schedule],
    machine: Machine = RDA_MACHINE,
) -> Dict[str, ProgramResult]:
    """Run the program under several schedules (fusion sweeps)."""
    return {
        schedule.name: run(program, binding, schedule, machine)
        for schedule in schedules
    }
