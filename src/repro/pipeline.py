"""DEPRECATED legacy compile/execute entry points — use :class:`repro.driver.Session`.

The pipeline orchestration lives in the driver subsystem: named passes
(:mod:`repro.driver.passes`) run by a :class:`~repro.driver.PassPipeline`
under a caching :class:`~repro.driver.Session`.  These free functions keep
the original seed API importable — same signatures, same returned
dataclasses, routed through one process-wide default session — but every
call now emits a :class:`DeprecationWarning`: the Session API exposes
everything this module does plus the knobs that came after it (memory
hierarchies, columnar streams, compile diagnostics, index splitting).

Migrate by replacing the free functions with a session::

    from repro import Session

    session = Session()
    exe = session.compile(program, schedule)   # cached by fingerprint
    result = exe(binding)                      # or exe.run(A=..., X=...)

(``run(program, binding, schedule)`` becomes ``session.run(...)`` with the
same signature; ``compare_schedules`` lives on the session too.)
"""

from __future__ import annotations

import warnings
from typing import Dict, Sequence

from .comal.machines import Machine, RDA_MACHINE
from .core.einsum.ast import EinsumProgram
from .core.schedule.schedule import Schedule
from .driver.compiled import (
    CompiledProgram,
    CompiledRegion,
    ProgramResult,
    execute_compiled,
)
from .driver.session import default_session
from .ftree.tensor import SparseTensor

__all__ = [
    "CompiledProgram",
    "CompiledRegion",
    "ProgramResult",
    "compile_program",
    "execute",
    "run",
    "compare_schedules",
]


def _deprecated(name: str, replacement: str) -> None:
    """Emit the module's call-time deprecation warning.

    Call-time (not import-time) because :mod:`repro` re-exports these
    functions eagerly — an import-time warning would fire on every
    ``import repro`` regardless of whether the legacy API is used.
    """
    warnings.warn(
        f"repro.pipeline.{name} is deprecated; use {replacement} instead "
        "(see repro.driver.Session)",
        DeprecationWarning,
        stacklevel=3,
    )


def compile_program(
    program: EinsumProgram, schedule: Schedule | None = None
) -> CompiledProgram:
    """Deprecated: compile ``program`` under ``schedule`` (default: unfused).

    The result is served from the default session's cache: fingerprint-
    identical calls return the *same* :class:`CompiledProgram` object.
    Treat it as immutable — mutating it would corrupt the cached
    executable for every later identical compile in the process.
    """
    _deprecated("compile_program", "Session.compile(program, schedule)")
    return default_session().compile(program, schedule).compiled


def execute(
    compiled: CompiledProgram,
    binding: Dict[str, SparseTensor],
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Deprecated: run all region graphs in order, chaining outputs."""
    _deprecated("execute", "calling the Executable from Session.compile")
    return execute_compiled(compiled, binding, machine)


def run(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedule: Schedule | None = None,
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Deprecated: compile (cached) and execute in one call."""
    _deprecated("run", "Session.run(program, binding, schedule)")
    executable = default_session().compile(program, schedule)
    return executable(binding, machine=machine)


def compare_schedules(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedules: Sequence[Schedule],
    machine: Machine = RDA_MACHINE,
) -> Dict[str, ProgramResult]:
    """Deprecated: run the program under several schedules (fusion sweeps)."""
    _deprecated("compare_schedules", "Session.compare_schedules")
    session = default_session()
    return {
        schedule.name: session.compile(program, schedule)(
            binding, machine=machine
        )
        for schedule in schedules
    }
