"""Legacy compile/execute entry points, now thin shims over :mod:`repro.driver`.

The pipeline orchestration itself lives in the driver subsystem: named
passes (:mod:`repro.driver.passes`) run by a :class:`~repro.driver.PassPipeline`
under a caching :class:`~repro.driver.Session`.  These free functions keep
the original seed API working unchanged — same signatures, same returned
dataclasses — while routing everything through one process-wide default
session, so repeated calls (sweeps, benchmarks, autotuning) no longer pay
full compile cost each time.

Prefer the Session API in new code::

    from repro import Session

    session = Session()
    exe = session.compile(program, schedule)   # cached by fingerprint
    result = exe(binding)                      # or exe.run(A=..., X=...)
"""

from __future__ import annotations

from typing import Dict, Sequence

from .comal.machines import Machine, RDA_MACHINE
from .core.einsum.ast import EinsumProgram
from .core.schedule.schedule import Schedule
from .driver.compiled import (
    CompiledProgram,
    CompiledRegion,
    ProgramResult,
    execute_compiled,
)
from .driver.session import default_session
from .ftree.tensor import SparseTensor

__all__ = [
    "CompiledProgram",
    "CompiledRegion",
    "ProgramResult",
    "compile_program",
    "execute",
    "run",
    "compare_schedules",
]


def compile_program(
    program: EinsumProgram, schedule: Schedule | None = None
) -> CompiledProgram:
    """Compile ``program`` under ``schedule`` (default: unfused).

    The result is served from the default session's cache: fingerprint-
    identical calls return the *same* :class:`CompiledProgram` object.
    Treat it as immutable — mutating it would corrupt the cached
    executable for every later identical compile in the process.
    """
    return default_session().compile(program, schedule).compiled


def execute(
    compiled: CompiledProgram,
    binding: Dict[str, SparseTensor],
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Run all region graphs in order, chaining materialized outputs."""
    return execute_compiled(compiled, binding, machine)


def run(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedule: Schedule | None = None,
    machine: Machine = RDA_MACHINE,
) -> ProgramResult:
    """Compile (cached) and execute in one call."""
    executable = default_session().compile(program, schedule)
    return executable(binding, machine=machine)


def compare_schedules(
    program: EinsumProgram,
    binding: Dict[str, SparseTensor],
    schedules: Sequence[Schedule],
    machine: Machine = RDA_MACHINE,
) -> Dict[str, ProgramResult]:
    """Run the program under several schedules (fusion sweeps)."""
    return {
        schedule.name: run(program, binding, schedule, machine)
        for schedule in schedules
    }
