"""Code-generating backend: one compiled Python kernel per fusion region.

Instead of walking the region graph node by node (paying a dict-dispatched
``process`` call, an :class:`~repro.sam.primitives.base.ExecutionContext`,
and per-port stream plumbing for every node on every execution), this
backend walks the graph **once**, emits a single specialized Python source
function that inlines every node's per-token logic — scanner/joiner/ALU/
reduce/writer loops with the node's configuration folded in as constants
and streams collapsed into local lists — compiles it with
:func:`compile`/``exec``, and caches the artifact.

Two emission tiers share this machinery (``FUSEFLOW_CODEGEN_TIER``):

* **token** — the original tier: per-token Python loops over ``(kind,
  payload)`` tuples, semantics copied line for line from the legacy
  ``process`` kernels.  Fastest when streams are tiny (gpt3's blocked
  streams), because it pays no numpy per-call overhead.
* **columnar** (default) — kernels whose locals are the numpy arrays
  backing each :class:`~repro.sam.token.TokenStream` (``kinds`` int8 /
  ``data`` float64 / ``objs`` escape hatch).  The vectorized
  ``process_columnar`` bodies from ``sam/primitives/`` are inlined with
  node configuration and token-kind literals folded in as constants;
  structure-preserving nodes (repsig, aligncheck) forward streams by
  reference so nothing is rematerialized.  Nodes whose inputs carry
  object payloads escape, per node, to the bound primitive's columnar
  kernel; kinds with no columnar emitter bridge, per node, through the
  token-tier body; regions the columnar emitter cannot handle at all
  fall back to the token tier, then to the columnar interpreter.

Both tiers are bit-exact against the interpreters: identical streams,
per-node statistics, result tensors, and therefore identical timed
metrics (the timed engine reads only stream lengths, stats, and node
metadata).  Because they are interchangeable, the columnar tier delegates
*runs* over tiny inputs (payload count below
:func:`small_stream_cutoff`) to the token-tier kernel — numpy dispatch
overhead dominates short arrays — so ``backend=codegen`` wins on every
model regardless of stream length.

Two cache levels:

* per-graph (weak, validated by topological-order identity — the same
  idiom as the timed engine's plan cache): repeated executions of one
  graph reuse its compiled kernel;
* per-source (keyed by the SHA-256 of the emitted source): structurally
  identical regions from *different* graph objects share one code object
  and pay ``compile()`` once per process.

Regions containing a primitive kind the emitter does not know fall back
to the columnar interpreter, per region, with a recorded reason — every
model runs under ``--backend codegen`` regardless.

Exceptions raised inside a generated kernel are re-raised with the node id
and region name appended (protocol errors keep their type and message so
``pytest.raises(..., match=...)`` assertions hold under
``FUSEFLOW_BACKEND=codegen``); emitted sources are registered with
:mod:`linecache` so tracebacks show real kernel lines, not ``<string>``.

When :mod:`numba` is importable *and* ``FUSEFLOW_CODEGEN_NUMBA=1`` is set,
kernels are additionally ``@njit``-wrapped, falling back to the plain
compiled function on any numba typing failure (the kernels traffic in
tuples, dicts, and tensor objects, which nopython mode typically rejects
— see ``docs/backends.md`` for the caveats).
"""

from __future__ import annotations

import hashlib
import linecache
import os
import threading
import time
import weakref
from array import array
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ftree.tensor import SparseTensor
from ..sam.graph import SAMGraph
from ..sam.primitives.base import ExecutionContext, NodeStats
from ..sam.primitives.compute import _BINARY_OPS, _UNARY_OPS
from ..sam.primitives.fiberops import _apply_over_fiber, _layernorm, _softmax
from ..sam.primitives.joiner import (
    _check_controls,
    _control_mismatch,
    _payload_columns,
    _require_aligned,
    _split_segments,
)
from ..sam.primitives.reduce import _segment_sums
from ..sam.primitives.scanner import (
    _B_CRD,
    _B_DONE,
    _B_REF,
    _B_STOP,
    _wrap_columns,
)
from ..sam.token import (
    StreamProtocolError,
    TokenStream,
    check_stream,
    stream_to_nest,
    streams_equal,
)
from .base import Backend

__all__ = [
    "CodegenBackend",
    "CodegenError",
    "RegionArtifact",
    "artifact_for",
    "cached_artifacts",
    "codegen_cache_info",
    "codegen_tier",
    "clear_codegen_caches",
    "numba_available",
    "small_stream_cutoff",
    "try_run_codegen",
]

_TRUTHY = ("1", "true", "yes", "on")


class CodegenError(RuntimeError):
    """A generated kernel failed for a non-protocol reason."""


def numba_available() -> bool:
    """Whether :mod:`numba` can be imported (never installs anything)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _numba_requested() -> bool:
    return os.environ.get("FUSEFLOW_CODEGEN_NUMBA", "").lower() in _TRUTHY


_TIERS = ("token", "columnar")

#: Payload-count cutoff under which a columnar-tier run delegates to the
#: token-tier kernel.  Calibrated on the BENCH_codegen golden points: the
#: sae hot path probes at ~120-150 payloads per region and runs faster
#: through plain Python loops than through numpy calls on short arrays,
#: while the gcn / graphsage golden points probe at ~380-670 and win
#: columnar (blocked gpt3 routes to the token tier separately, via the
#: blocked-payload probe, regardless of size).
DEFAULT_SMALL_STREAM_CUTOFF = 256


def codegen_tier() -> str:
    """The selected emission tier (``FUSEFLOW_CODEGEN_TIER``).

    Returns ``"columnar"`` (the default) or ``"token"``.  Any other value
    raises so typos fail loudly instead of silently changing tiers.
    """
    tier = os.environ.get("FUSEFLOW_CODEGEN_TIER", "").strip().lower()
    if not tier:
        return "columnar"
    if tier not in _TIERS:
        raise ValueError(
            f"FUSEFLOW_CODEGEN_TIER must be one of {_TIERS}, got {tier!r}"
        )
    return tier


def small_stream_cutoff() -> int:
    """Adaptive-dispatch threshold (``FUSEFLOW_CODEGEN_SMALL_CUTOFF``).

    When a columnar-tier kernel is about to run and the region's bound
    input tensors carry fewer than this many payload values in total, the
    run is delegated to the (bit-exact) token-tier kernel instead.  ``0``
    disables the dispatch; unset/unparsable falls back to
    :data:`DEFAULT_SMALL_STREAM_CUTOFF`.
    """
    raw = os.environ.get("FUSEFLOW_CODEGEN_SMALL_CUTOFF", "").strip()
    if not raw:
        return DEFAULT_SMALL_STREAM_CUTOFF
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_SMALL_STREAM_CUTOFF


@dataclass
class RegionArtifact:
    """The compiled form of one region under the codegen backend.

    Attributes
    ----------
    region : str
        Name of the region graph this artifact was emitted from.
    tier : str
        Emission tier the artifact was built with (``token``/``columnar``).
    source : str
        The emitted Python source (empty when the region fell back).
    loc : int
        Emitted lines of code.
    node_count : int
        Nodes of the region graph.
    emit_seconds : float
        Wall time spent emitting the source.
    compile_seconds : float
        Wall time spent in ``compile()``/``exec`` (0 on a code-cache hit).
    fallback : str
        Empty when the region compiled; otherwise the reason the region
        runs on the columnar interpreter instead.
    code_cached : bool
        True when the code object came from the per-source cache.
    uses_numba : bool
        True when the kernel was additionally ``@njit``-wrapped.
    fn : callable or None
        The compiled kernel, or ``None`` when ``fallback`` is set.
    sha : str
        SHA-256 hex digest of ``source`` (the code-cache key).
    probe : tuple of str
        Tensor names the region scans/locates/gathers, used by the
        adaptive small-stream dispatch to size a run before executing it.
    probe_base : int
        Emit-time-known payload contribution (replayed source streams).
    runs : int
        Executions of this kernel (for ``--profile`` amortization).
    run_seconds : float
        Total wall time spent inside this kernel across ``runs``.
    """

    region: str
    tier: str = "token"
    source: str = ""
    loc: int = 0
    node_count: int = 0
    emit_seconds: float = 0.0
    compile_seconds: float = 0.0
    fallback: str = ""
    code_cached: bool = False
    uses_numba: bool = False
    fn: Optional[Callable] = None
    sha: str = ""
    probe: Tuple[str, ...] = ()
    probe_base: int = 0
    runs: int = 0
    run_seconds: float = 0.0


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------

#: graph -> (topological order list, {tier: artifact}, retentions).  The
#: order list's identity doubles as a structure-version tag: SAMGraph
#: rebuilds it on mutation.  Weak keys bound this cache by graph
#: lifetime.  ``retentions`` is a list of ``(sha, finalizer)`` pairs
#: pinning source-cache entries (and their linecache registrations) for
#: as long as the graph lives — see :func:`_retain_sha_locked`.
_GRAPH_ARTIFACTS: "weakref.WeakKeyDictionary[SAMGraph, Tuple[Any, Dict[str, RegionArtifact], List[Tuple[str, Any]]]]" = (
    weakref.WeakKeyDictionary()
)

#: source sha -> number of live graph retentions.  When the last graph
#: referencing a source is collected (or its artifacts are invalidated by
#: structural mutation), the entry drops to zero and the source is purged
#: from both the code cache and linecache, so long sweep/serve processes
#: do not grow linecache without bound.
_SHA_REFS: Dict[str, int] = {}

#: Releases requested by a gc finalizer that fired while another frame on
#: this thread held the (non-reentrant) cache lock; drained by the next
#: locked section.
_PENDING_SHA_RELEASES: List[str] = []

#: source sha -> compiled code object, shared across graphs.  A bounded
#: LRU: unlike the weak per-graph cache, nothing ties these entries to a
#: live object, so an unbounded dict leaks every distinct emitted source
#: for the life of a serve process.
_CODE_CACHE: "OrderedDict[str, Any]" = OrderedDict()

#: source sha -> linecache filenames registered for it, purged on eviction
#: (multiple graphs may register the same source under different names).
_CODE_FILES: Dict[str, List[str]] = {}

#: Entry cap for the cross-graph source cache.
CODE_CACHE_LIMIT = 256

#: Guards the caches and counters: the threaded serve front end compiles
#: from many threads, and unguarded ``dict`` updates lose counts (and can
#: tear the LRU ordering).
_CACHE_LOCK = threading.Lock()

_COUNTERS = {
    "artifact_hits": 0,
    "artifact_misses": 0,
    "code_hits": 0,
    "code_misses": 0,
    "code_evictions": 0,
    "fallbacks": 0,
    "token_dispatches": 0,
}


def codegen_cache_info() -> Dict[str, int]:
    """Snapshot of the artifact/code cache counters (for ``--profile``).

    Includes ``code_entries``/``code_limit`` so a long-lived process can
    observe the bounded LRU's occupancy alongside the hit counters, and
    ``code_files``/``retained_sources`` so linecache growth stays
    observable (generated sources are unregistered when the last graph
    holding them is collected or evicted).
    """
    with _CACHE_LOCK:
        _drain_pending_releases_locked()
        info = dict(_COUNTERS)
        info["code_entries"] = len(_CODE_CACHE)
        info["code_limit"] = CODE_CACHE_LIMIT
        info["code_files"] = sum(len(v) for v in _CODE_FILES.values())
        info["retained_sources"] = len(_SHA_REFS)
    return info


def cached_artifacts(graph) -> Dict[str, "RegionArtifact"]:
    """Already-emitted artifacts for ``graph``, keyed by tier.

    Pure lookup — nothing is emitted or compiled — so profilers can
    inspect which tiers actually ran (``runs``/``run_seconds``) without
    perturbing the caches.

    Parameters
    ----------
    graph:
        The region :class:`~repro.sam.graph.SAMGraph` to look up.
    """
    with _CACHE_LOCK:
        cached = _GRAPH_ARTIFACTS.get(graph)
        return dict(cached[1]) if cached is not None else {}


def clear_codegen_caches() -> None:
    """Drop compiled artifacts and reset counters (tests only)."""
    with _CACHE_LOCK:
        for _order, _tiers, retentions in _GRAPH_ARTIFACTS.values():
            for _sha, finalizer in retentions:
                finalizer.detach()
        _GRAPH_ARTIFACTS.clear()
        _SHA_REFS.clear()
        _PENDING_SHA_RELEASES.clear()
        for sha in list(_CODE_FILES):
            _purge_code_entry_locked(sha)
        _CODE_CACHE.clear()
        _CODE_FILES.clear()
        for key in _COUNTERS:
            _COUNTERS[key] = 0


def _purge_code_entry_locked(sha: str) -> None:
    """Drop one source-cache entry and its linecache registrations."""
    _CODE_CACHE.pop(sha, None)
    for filename in _CODE_FILES.pop(sha, ()):
        linecache.cache.pop(filename, None)


def _release_sha_locked(sha: str) -> None:
    count = _SHA_REFS.get(sha)
    if count is None:
        return
    if count <= 1:
        del _SHA_REFS[sha]
        _purge_code_entry_locked(sha)
    else:
        _SHA_REFS[sha] = count - 1


def _drain_pending_releases_locked() -> None:
    while _PENDING_SHA_RELEASES:
        _release_sha_locked(_PENDING_SHA_RELEASES.pop())


def _on_graph_collected(sha: str) -> None:
    # weakref.finalize callback: a graph holding this source died.  gc can
    # run this re-entrantly on a thread that already holds the
    # (non-reentrant) cache lock, so never block here — defer instead.
    if _CACHE_LOCK.acquire(blocking=False):
        try:
            _drain_pending_releases_locked()
            _release_sha_locked(sha)
        finally:
            _CACHE_LOCK.release()
    else:
        _PENDING_SHA_RELEASES.append(sha)


def _retain_sha_locked(graph: SAMGraph, sha: str, retentions: List) -> None:
    """Pin a source-cache entry to ``graph``'s lifetime."""
    if not sha:
        return
    _SHA_REFS[sha] = _SHA_REFS.get(sha, 0) + 1
    finalizer = weakref.finalize(graph, _on_graph_collected, sha)
    finalizer.atexit = False
    retentions.append((sha, finalizer))


# ----------------------------------------------------------------------
# Shared kernel runtime (exec globals)
# ----------------------------------------------------------------------


def _get_tensor(binding: Dict[str, Any], name: str):
    """Bound tensor lookup with the interpreter's error message."""
    try:
        return binding[name]
    except KeyError:
        raise KeyError(
            f"tensor {name!r} not bound (have {sorted(binding)})"
        ) from None


def _level_arrays(lvl):
    """Cached int64 views of a compressed level's ``pos``/``crd`` lists.

    Levels store plain Python lists; vectorized scanner expansion needs
    numpy arrays.  The cache is keyed on list lengths so a level that is
    still being built (``append_fiber``) never serves a stale view.
    """
    cached = getattr(lvl, "_cg_arrays", None)
    if (
        cached is not None
        and len(cached[0]) == len(lvl.pos)
        and len(cached[1]) == len(lvl.crd)
    ):
        return cached
    arrays = (
        np.asarray(lvl.pos, dtype=np.int64),
        np.asarray(lvl.crd, dtype=np.int64),
    )
    try:
        lvl._cg_arrays = arrays
    except AttributeError:  # pragma: no cover - slotted level classes
        pass
    return arrays


def _dbg_check(stream, node_id: str, port_name: str) -> None:
    """Per-stream protocol validation, worded like the interpreter's."""
    if len(stream):
        try:
            check_stream(stream)
        except StreamProtocolError as exc:
            raise StreamProtocolError(
                f"node {node_id} port {port_name!r}: {exc}"
            ) from exc


def _fibermax_fn(x: np.ndarray, axis: int) -> np.ndarray:
    return np.broadcast_to(np.max(x, axis=axis, keepdims=True), x.shape).copy()


_FIBER_FNS: Dict[str, Callable] = {
    "softmax": _softmax,
    "layernorm": _layernorm,
    "fibermax": _fibermax_fn,
}

#: Names every generated kernel can reference.  Per-graph runtime objects
#: (writer formats, source streams) are layered on top per exec.
_SHARED_GLOBALS: Dict[str, Any] = {
    "np": np,
    "StreamProtocolError": StreamProtocolError,
    "SparseTensor": SparseTensor,
    "stream_to_nest": stream_to_nest,
    "_apply_over_fiber": _apply_over_fiber,
    "_require_aligned": _require_aligned,
    "_control_mismatch": _control_mismatch,
    "_get_tensor": _get_tensor,
    "_dbg": _dbg_check,
    "_BINARY_OPS": _BINARY_OPS,
    "_UNARY_OPS": _UNARY_OPS,
    "_FIBER_FNS": _FIBER_FNS,
    # Columnar-tier runtime: the same helpers the interpreter kernels in
    # sam/primitives/ call, so emitted bodies stay line-for-line faithful.
    "array": array,
    "check_stream": check_stream,
    "_TS": TokenStream,
    "_Ctx": ExecutionContext,
    "_streams_equal": streams_equal,
    "_split_segments": _split_segments,
    "_check_controls": _check_controls,
    "_payload_columns": _payload_columns,
    "_segment_sums": _segment_sums,
    "_lvl_arrays": _level_arrays,
    "_wrap_cols": _wrap_columns,
    "_B_CRD": _B_CRD,
    "_B_REF": _B_REF,
    "_B_STOP": _B_STOP,
    "_B_DONE": _B_DONE,
}


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------


class _Unsupported(Exception):
    """Raised by an emitter to trigger region-level interpreter fallback."""


class _Emitter:
    """Walks one region graph and emits its kernel source."""

    def __init__(self, graph: SAMGraph, order: List[str]) -> None:
        self.graph = graph
        self.order = order
        self.lines: List[str] = []
        self.indent = 1
        # Runtime objects the source cannot express literally, injected
        # into the exec globals per graph (names are deterministic given
        # the source, so sharing the code object across graphs is sound).
        self.env: Dict[str, Any] = {}
        # (node_id, port) -> local variable holding the stream.
        self.var: Dict[Tuple[str, str], str] = {}

    # -- infrastructure -------------------------------------------------
    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    @contextmanager
    def _indented(self):
        self.indent += 1
        try:
            yield
        finally:
            self.indent -= 1

    def _prelude(self) -> None:
        self.w("_ET = (5, None)")
        self.w("_DT = (4, None)")

    def _node_emitter(self, prim, node_id: str) -> Callable:
        emitter = getattr(self, f"_emit_{prim.kind}", None)
        if emitter is None:
            raise _Unsupported(
                f"unsupported primitive kind {prim.kind!r} at node {node_id}"
            )
        return emitter

    def emit(self) -> str:
        self.lines.append(
            "def _region_kernel(binding, stats, results, "
            "scratchpad_bytes, debug_streams, _cur):"
        )
        self._prelude()
        for i, node_id in enumerate(self.order):
            node = self.graph.nodes[node_id]
            prim = node.prim
            emitter = self._node_emitter(prim, node_id)
            self.w()
            self.w(f"# -- {node_id}: {prim.describe()} --")
            self.w(f"_cur[0] = {node_id!r}")
            self.w(f"_st = stats[{node_id!r}]")
            outs = [f"s{i}_{p}" for p in prim.out_ports]
            emitter(i, node_id, node, prim)
            for port, var in zip(prim.out_ports, outs):
                self.var[(node_id, port)] = var
            self.w("if debug_streams:")
            for port, var in zip(prim.out_ports, outs):
                self.w(f"    _dbg({var}, {node_id!r}, {port!r})")
        self.w()
        self.w("return {")
        for node_id in self.order:
            node = self.graph.nodes[node_id]
            for port in node.prim.out_ports:
                var = self.var[(node_id, port)]
                self.w(f"    ({node_id!r}, {port!r}): {var},")
        self.w("}")
        return "\n".join(self.lines) + "\n"

    def _in(self, node, port: str) -> str:
        src = node.inputs[port]
        return self.var[(src.node_id, src.port)]

    def _bind(self, name: str, obj: Any) -> str:
        self.env[name] = obj
        return name

    # -- per-kind emitters ----------------------------------------------
    def _emit_root(self, i, node_id, node, prim) -> None:
        self.w(f"s{i}_ref = [(1, 0), _DT]")
        self.w("_st.tokens_out += 2")

    def _emit_source(self, i, node_id, node, prim) -> None:
        src = self._bind(f"_SRC{i}", prim.stream)
        self.w(f"s{i}_out = list({src})")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_scan(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w(f"_lvl = _t.levels[{prim.level}]")
        self.w('_comp = _lvl.kind == "compressed"')
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_ref = []")
        self.w(f"_ca = s{i}_crd.append")
        self.w(f"_ra = s{i}_ref.append")
        self.w("_open = False")
        if dram:
            self.w("_ab = 0")
        self.w(f"_st.tokens_in += len({ref_in})")
        self.w(f"for _tok in {ref_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 1:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _coords, _children = _lvl.fiber(_tok[1])")
        self.w("        for _c, _ch in zip(_coords, _children):")
        self.w("            _ca((0, _c))")
        self.w("            _ra((1, _ch))")
        if dram:
            self.w("        if _comp:")
            self.w("            _ab += 8 + 4 * len(_coords)")
        self.w("        _open = True")
        self.w("    elif _k == 5:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _open = True")
        self.w("    elif _k == 3:")
        self.w("        _p = _tok[1] + 1")
        self.w("        _ca((3, _p))")
        self.w("        _ra((3, _p))")
        self.w("        _open = False")
        self.w("    elif _k == 4:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _ca(_DT)")
        self.w("        _ra(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"scanner got unexpected token kind {_k}\")"
        )
        if dram:
            self.w("if _comp:")
            self.w("    _fp = _t.bytes_structure()")
            self.w("    if _fp <= scratchpad_bytes:")
            self.w("        _st.dram_reads += min(_ab, _fp)")
            self.w("    else:")
            self.w("        _st.dram_reads += _ab")
        self.w(f"_st.tokens_out += len(s{i}_crd) + len(s{i}_ref)")

    def _emit_locate(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w(f"_lvl = _t.levels[{prim.level}]")
        self.w('_dense = _lvl.kind == "dense"')
        self.w(f"s{i}_ref = []")
        self.w(f"_o = s{i}_ref.append")
        self.w(f"_st.tokens_in += len({crd_in})")
        self.w(f"for _tok in {crd_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w("        if _dense:")
        self.w("            _o((1, _tok[1]))")
        self.w("        else:")
        self.w("            _coords, _children = _lvl.fiber(0)")
        self.w("            _found = False")
        self.w("            for _c, _ch in zip(_coords, _children):")
        self.w("                if _c == _tok[1]:")
        self.w("                    _o((1, _ch))")
        self.w("                    _found = True")
        self.w("                    break")
        self.w("            if not _found:")
        self.w("                _o(_ET)")
        if dram:
            self.w("            _st.dram_reads += 8")
        self.w("    elif _k == 3 or _k == 4 or _k == 5:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"locate got unexpected token kind {_k}\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_ref)")

    def _emit_joiner(self, i, node_id, node, prim, keep_all: bool) -> None:
        kind = prim.kind
        ca, ra = self._in(node, "crd_a"), self._in(node, "ref_a")
        cb, rb = self._in(node, "crd_b"), self._in(node, "ref_b")
        self.w(f"_require_aligned({ca}, {ra}, \"{kind}(a)\", {node_id!r})")
        self.w(f"_require_aligned({cb}, {rb}, \"{kind}(b)\", {node_id!r})")
        self.w(
            f"_st.tokens_in += len({ca}) + len({cb}) + len({ra}) + len({rb})"
        )
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_ref_a = []")
        self.w(f"s{i}_ref_b = []")
        self.w(f"_oc = s{i}_crd.append")
        self.w(f"_oa = s{i}_ref_a.append")
        self.w(f"_ob = s{i}_ref_b.append")
        self.w("_ia = 0")
        self.w("_ib = 0")
        self.w(f"_na = len({ca})")
        self.w(f"_nb = len({cb})")
        self.w("while _ia < _na and _ib < _nb:")
        self.w(f"    _ta = {ca}[_ia]")
        self.w(f"    _tb = {cb}[_ib]")
        self.w("    _ka = _ta[0]")
        self.w("    _kb = _tb[0]")
        self.w("    if _ka == 0 and _kb == 0:")
        self.w("        _va = _ta[1]")
        self.w("        _vb = _tb[1]")
        self.w("        if _va == _vb:")
        self.w("            _oc(_ta)")
        self.w(f"            _oa({ra}[_ia])")
        self.w(f"            _ob({rb}[_ib])")
        self.w("            _ia += 1")
        self.w("            _ib += 1")
        self.w("        elif _va < _vb:")
        if keep_all:
            self.w("            _oc(_ta)")
            self.w(f"            _oa({ra}[_ia])")
            self.w("            _ob(_ET)")
        self.w("            _ia += 1")
        self.w("        else:")
        if keep_all:
            self.w("            _oc(_tb)")
            self.w("            _oa(_ET)")
            self.w(f"            _ob({rb}[_ib])")
        self.w("            _ib += 1")
        self.w("    elif _ka == 0:")
        if keep_all:
            self.w("        _oc(_ta)")
            self.w(f"        _oa({ra}[_ia])")
            self.w("        _ob(_ET)")
        self.w("        _ia += 1")
        self.w("    elif _kb == 0:")
        if keep_all:
            self.w("        _oc(_tb)")
            self.w("        _oa(_ET)")
            self.w(f"        _ob({rb}[_ib])")
        self.w("        _ib += 1")
        self.w("    else:")
        self.w("        if _ta != _tb:")
        self.w(
            f"            raise _control_mismatch({kind!r}, {node_id!r}, "
            "_ia, _ib, _ta, _tb)"
        )
        self.w("        _oc(_ta)")
        self.w("        _oa(_ta)")
        self.w("        _ob(_ta)")
        self.w("        _ia += 1")
        self.w("        _ib += 1")
        self.w("        if _ka == 4:")
        self.w("            break")
        self.w(
            f"_st.tokens_out += len(s{i}_crd) + len(s{i}_ref_a) "
            f"+ len(s{i}_ref_b)"
        )

    def _emit_intersect(self, i, node_id, node, prim) -> None:
        self._emit_joiner(i, node_id, node, prim, keep_all=False)

    def _emit_union(self, i, node_id, node, prim) -> None:
        self._emit_joiner(i, node_id, node, prim, keep_all=True)

    #: Binary ops worth inlining as expressions (the rest call the table fn).
    _INLINE_BINARY = {"add": "_va + _vb", "sub": "_va - _vb", "mul": "_va * _vb"}

    def _emit_alu(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        op = prim.op
        expr = self._INLINE_BINARY.get(op)
        if expr is None:
            self.w(f"_fn = _BINARY_OPS[{op!r}]")
            expr = "_fn(_va, _vb)"
        self.w(f"if len({a}) != len({b}):")
        self.w(
            "    raise StreamProtocolError("
            f"f\"alu({op}): misaligned inputs ({{len({a})}} vs {{len({b})}})\")"
        )
        self.w(f"_st.tokens_in += len({a}) + len({b})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_ops = 0")
        self.w(f"for _ta, _tb in zip({a}, {b}):")
        self.w("    _ka = _ta[0]")
        self.w("    if _ka == 3 or _ka == 4:")
        self.w("        if _ta != _tb:")
        self.w(
            "            raise StreamProtocolError("
            f"f\"alu({op}): control mismatch {{_ta}} vs {{_tb}}\")"
        )
        self.w("        _o(_ta)")
        self.w("    elif _ka == 5 and _tb[0] == 5:")
        self.w("        _o(_ta)")
        self.w("    else:")
        self.w("        _va = 0.0 if _ka == 5 else _ta[1]")
        self.w("        _vb = 0.0 if _tb[0] == 5 else _tb[1]")
        self.w(f"        _r = {expr}")
        if op in ("bmm", "bmt"):
            self.w("        if isinstance(_r, np.ndarray) and _r.ndim == 2:")
            self.w(
                "            _ops += 2 * _r.shape[0] * _r.shape[1] * ("
                "_va.shape[1] if isinstance(_va, np.ndarray) "
                "and _va.ndim == 2 else 1)"
            )
            self.w("        else:")
            self.w(
                "            _ops += int(_r.size) "
                "if isinstance(_r, np.ndarray) else 1"
            )
        else:
            self.w(
                "        _ops += int(_r.size) "
                "if isinstance(_r, np.ndarray) else 1"
            )
        self.w("        _o((2, _r))")
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_ualu(self, i, node_id, node, prim) -> None:
        a = self._in(node, "a")
        scaled = prim.scale != 1.0 or prim.offset != 0.0
        self.w(f"_fn = _UNARY_OPS[{prim.op!r}]")
        self.w(f"_st.tokens_in += len({a})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_ops = 0")
        self.w(f"for _tok in {a}:")
        self.w("    if _tok[0] == 2:")
        if scaled:
            self.w(f"        _x = {prim.scale!r} * _tok[1] + {prim.offset!r}")
        else:
            self.w("        _x = _tok[1]")
        self.w("        _r = _fn(_x)")
        self.w(
            "        _ops += int(_r.size) if isinstance(_r, np.ndarray) else 1"
        )
        self.w("        _o((2, _r))")
        self.w("    else:")
        self.w("        _o(_tok)")
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_array(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w("_vals = _t.values")
        self.w("_blocked = _vals.ndim > 1")
        self.w("_zero = np.zeros(_vals.shape[1:]) if _blocked else 0.0")
        if dram:
            self.w(
                "_eb = int(np.prod(_vals.shape[1:])) * 8 if _blocked else 8"
            )
            self.w("_nref = 0")
        self.w(f"s{i}_val = []")
        self.w(f"_o = s{i}_val.append")
        self.w(f"_st.tokens_in += len({ref_in})")
        self.w(f"for _tok in {ref_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 1:")
        self.w("        _o((2, _vals[_tok[1]]))")
        if dram:
            self.w("        _nref += 1")
        self.w("    elif _k == 5:")
        self.w("        _o((2, _zero))")
        self.w("    elif _k == 3 or _k == 4:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"array got unexpected token kind {_k}\")"
        )
        if dram:
            self.w("_fp = int(_vals.size) * 8")
            self.w("_ab = _eb * _nref")
            self.w("if _fp <= scratchpad_bytes:")
            self.w("    _st.dram_reads += min(_ab, _fp)")
            self.w("else:")
            self.w("    _st.dram_reads += _ab")
        self.w(f"_st.tokens_out += len(s{i}_val)")

    def _emit_reduce(self, i, node_id, node, prim) -> None:
        val_in = self._in(node, "val")
        self.w(f"s{i}_val = []")
        self.w(f"_o = s{i}_val.append")
        self.w("_acc = None")
        self.w("_ops = 0")
        self.w(f"_st.tokens_in += len({val_in})")
        self.w(f"for _tok in {val_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 2:")
        self.w("        if _acc is None:")
        self.w("            _acc = _tok[1]")
        self.w("        else:")
        self.w("            _acc = _acc + _tok[1]")
        self.w(
            "            _ops += 1 if not isinstance(_acc, np.ndarray) "
            "else int(_acc.size)"
        )
        self.w("    elif _k == 5:")
        self.w("        if _acc is None:")
        self.w("            _acc = 0.0")
        self.w("    elif _k == 3:")
        self.w("        _o((2, _acc if _acc is not None else 0.0))")
        self.w("        _acc = None")
        self.w("        if _tok[1] > 0:")
        self.w("            _o((3, _tok[1] - 1))")
        self.w("    elif _k == 4:")
        self.w("        if _acc is not None:")
        self.w("            _o((2, _acc))")
        self.w("            _acc = None")
        self.w("        _o(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"reduce got unexpected token kind {_k}\")"
        )
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_val)")

    def _emit_vreduce(self, i, node_id, node, prim) -> None:
        n = prim.order
        val_in = self._in(node, "val")
        crd_ins = [self._in(node, f"crd{d}") for d in range(n)]
        self.w(f"_crds = [{', '.join(crd_ins)}]")
        self.w(f"for _d in range({n}):")
        self.w(f"    if len(_crds[_d]) != len({val_in}):")
        self.w(
            "        raise StreamProtocolError("
            "f\"vreduce: crd{_d}/val misaligned \""
            f"f\"({{len(_crds[_d])}} vs {{len({val_in})}})\")"
        )
        self.w(f"_st.tokens_in += len({val_in}) * {n + 1}")
        self.w(f"_ocrds{i} = [[] for _d in range({n})]")
        self.w(f"_oval{i} = []")
        self.w(f"_acc{i} = {{}}")
        self.w(f"def _emit_group{i}():")
        self.w(f"    _keys = sorted(_acc{i})")
        self.w("    _prev = None")
        self.w("    for _key in _keys:")
        self.w("        if _prev is not None:")
        self.w("            _common = 0")
        self.w(
            f"            while _common < {n} "
            "and _prev[_common] == _key[_common]:"
        )
        self.w("                _common += 1")
        self.w(f"            for _d in range({n}):")
        self.w("                if _common <= _d - 1:")
        self.w(
            f"                    _ocrds{i}[_d].append((3, _d - 1 - _common))"
        )
        self.w(f"            if _common <= {n - 2}:")
        self.w(f"                _oval{i}.append((3, {n - 2} - _common))")
        self.w(f"        for _d in range({n}):")
        self.w(
            "        "
            "    if _prev is None or _key[: _d + 1] != _prev[: _d + 1]:"
        )
        self.w(f"                _ocrds{i}[_d].append((0, _key[_d]))")
        self.w(f"        _oval{i}.append((2, _acc{i}[_key]))")
        self.w("        _prev = _key")
        self.w(f"    _acc{i}.clear()")
        self.w(f"def _close_group{i}(_lvl):")
        self.w(f"    _extra = _lvl - {n}")
        self.w(f"    for _d in range({n}):")
        self.w(f"        _ocrds{i}[_d].append((3, _d + _extra))")
        self.w(f"    _oval{i}.append((3, _lvl - 1))")
        self.w("_ops = 0")
        self.w("_pos = 0")
        self.w(f"for _tv in {val_in}:")
        self.w("    _kv = _tv[0]")
        self.w("    if _kv == 2 or _kv == 5:")
        self.w("        _key = []")
        self.w(f"        for _d in range({n}):")
        self.w("            _tc = _crds[_d][_pos]")
        self.w("            if _tc[0] != 0:")
        self.w(
            "                raise StreamProtocolError("
            "f\"vreduce: crd{_d} token {_tc} does not align with value\")"
        )
        self.w("            _key.append(_tc[1])")
        self.w("        _key_t = tuple(_key)")
        self.w("        _value = 0.0 if _kv == 5 else _tv[1]")
        self.w(f"        if _key_t in _acc{i}:")
        self.w(f"            _acc{i}[_key_t] = _acc{i}[_key_t] + _value")
        self.w(
            "            _ops += int(_value.size) "
            "if isinstance(_value, np.ndarray) else 1"
        )
        self.w("        else:")
        self.w(f"            _acc{i}[_key_t] = _value")
        self.w("    elif _kv == 3:")
        self.w("        _lvl = _tv[1]")
        self.w(f"        for _d in range({n}):")
        self.w("            _tc = _crds[_d][_pos]")
        self.w("            if _tc[0] != 3 or _tc[1] != _lvl:")
        self.w(
            "                raise StreamProtocolError("
            "\"vreduce: stop tokens disagree\")"
        )
        self.w(f"        if _lvl >= {n}:")
        self.w(f"            _emit_group{i}()")
        self.w(f"            _close_group{i}(_lvl)")
        self.w("    elif _kv == 4:")
        self.w(f"        if _acc{i}:")
        self.w(f"            _emit_group{i}()")
        self.w(f"            _close_group{i}({n})")
        self.w(f"        for _d in range({n}):")
        self.w(f"            _ocrds{i}[_d].append(_DT)")
        self.w(f"        _oval{i}.append(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"vreduce got unexpected token kind {_kv}\")"
        )
        self.w("    _pos += 1")
        self.w("_st.ops += _ops")
        self.w(
            f"_st.tokens_out += sum(len(_s) for _s in _ocrds{i}) "
            f"+ len(_oval{i})"
        )
        for d in range(n):
            self.w(f"s{i}_crd{d} = _ocrds{i}[{d}]")
        self.w(f"s{i}_val = _oval{i}")

    def _emit_crddrop(self, i, node_id, node, prim) -> None:
        crd_in, val_in = self._in(node, "crd"), self._in(node, "val")
        self.w(f"if len({crd_in}) != len({val_in}):")
        self.w(
            "    raise StreamProtocolError(\"crddrop: crd/val misaligned\")"
        )
        self.w(f"_st.tokens_in += len({crd_in}) + len({val_in})")
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_val = []")
        self.w(f"_oc = s{i}_crd.append")
        self.w(f"_ov = s{i}_val.append")
        self.w(f"for _tc, _tv in zip({crd_in}, {val_in}):")
        self.w("    if _tc[0] == 0:")
        self.w("        _v = _tv[1]")
        self.w("        if isinstance(_v, np.ndarray):")
        self.w("            _is_zero = float(np.abs(_v).max()) == 0.0")
        self.w("        else:")
        self.w("            _is_zero = _v == 0.0")
        self.w("        if not _is_zero:")
        self.w("            _oc(_tc)")
        self.w("            _ov(_tv)")
        self.w("    else:")
        self.w("        _oc(_tc)")
        self.w("        _ov(_tv)")
        self.w(f"_st.tokens_out += len(s{i}_crd) + len(s{i}_val)")

    def _emit_aligncheck(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        self.w(f"_st.tokens_in += len({a}) + len({b})")
        self.w(f"if {a} != {b}:")
        self.w(
            "    raise StreamProtocolError("
            "\"aligned-adopt streams differ; the fusion schedule requires a \""
            "\"materialization boundary between these statements\")"
        )
        self.w(f"_st.tokens_out += len({a})")
        self.w(f"s{i}_out = list({a})")

    def _emit_repeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_bi = 0")
        self.w(f"_nb = len({base})")
        self.w(f"for _tok in {rep}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w(f"        _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("        if _bk == 3 or _bk == 4:")
        self.w(
            "            raise StreamProtocolError(\"repeat: rep stream has "
            "coordinates but base has none current\")"
        )
        self.w(f"        _o({base}[_bi])")
        self.w("    elif _k == 3:")
        self.w("        _o(_tok)")
        self.w(f"        _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("        if _bk != 3 and _bk != 4:")
        self.w("            _bi += 1")
        self.w("        if _tok[1] >= 1:")
        self.w(f"            _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("            if _bk != 3:")
        self.w(
            "                raise StreamProtocolError("
            "f\"repeat: rep stop {_tok[1]} expects a base stop \""
            f"f\"{{_tok[1] - 1}}, found "
            f"{{{base}[_bi] if _bi < _nb else 'EOS'}}\")"
        )
        self.w(f"            if {base}[_bi][1] != _tok[1] - 1:")
        self.w(
            "                raise StreamProtocolError("
            "f\"repeat: rep stop {_tok[1]} mismatches base stop \""
            f"f\"{{{base}[_bi][1]}}\")"
        )
        self.w("            _bi += 1")
        self.w("    elif _k == 4:")
        self.w("        _o(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"repeat: unexpected token kind {_k} on rep stream\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_repsig(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        self.w(f"s{i}_out = list({crd_in})")
        self.w(f"_st.tokens_in += len(s{i}_out)")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_srepeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(
            f"_pays = [_t for _t in {base} if _t[0] != 3 and _t[0] != 4]"
        )
        self.w("if len(_pays) != 1:")
        self.w(
            "    raise StreamProtocolError("
            "f\"scalar repeat expects exactly one base payload, "
            "got {len(_pays)}\")"
        )
        self.w("_p = _pays[0]")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w(f"for _tok in {rep}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w("        _o(_p)")
        self.w("    elif _k == 3 or _k == 4:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"scalar repeat: unexpected token kind {_k} on rep stream\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_fiberop(self, i, node_id, node, prim) -> None:
        val_in = self._in(node, "val")
        kind = prim.kind
        fpe = prim.flops_per_elem
        self.w(f"_fn = _FIBER_FNS[{kind!r}]")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w(f"_buf{i} = []")
        self.w(f"_st.tokens_in += len({val_in})")
        self.w("_ops = 0")
        self.w(f"for _tok in {val_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 2:")
        self.w(f"        _buf{i}.append(_tok[1])")
        self.w("    elif _k == 5:")
        self.w(f"        _buf{i}.append(0.0)")
        self.w("    elif _k == 3 or _k == 4:")
        self.w(f"        if _buf{i}:")
        self.w(f"            for _r in _apply_over_fiber(_buf{i}, _fn):")
        self.w("                _o((2, _r))")
        self.w(
            f"                _ops += {fpe} * (int(_r.size) "
            "if isinstance(_r, np.ndarray) else 1)"
        )
        self.w(f"            _buf{i}.clear()")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            f"f\"{kind} got token kind {{_k}}\")"
        )
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    _emit_softmax = _emit_fiberop
    _emit_layernorm = _emit_fiberop
    _emit_fibermax = _emit_fiberop

    def _emit_write(self, i, node_id, node, prim) -> None:
        n = len(prim.shape)
        name = prim.tensor_name
        crd_ins = [self._in(node, f"crd{d}") for d in range(n)]
        val_in = self._in(node, "val")
        fmt = self._bind(f"_fmt{i}", prim.fmt)
        self.w(
            "_st.tokens_in += "
            + " + ".join(f"len({s})" for s in crd_ins + [val_in])
        )
        self.w(f"_nests{i} = [")
        for d, s in enumerate(crd_ins):
            self.w(f"    stream_to_nest({s}, {d + 1}, check=debug_streams),")
        self.w("]")
        self.w(f"_vals{i} = stream_to_nest({val_in}, {n}, check=debug_streams)")
        self.w(f"_coords{i} = {{}}")
        self.w(f"def _rec{i}(_depth, _frames, _vals, _prefix):")
        self.w("    _ch = _frames[0]")
        self.w("    if len(_ch) != len(_vals):")
        self.w(
            "        raise StreamProtocolError("
            f"f\"writer {name}: level {{_depth}} crd/val fan-out \""
            "f\"mismatch ({len(_ch)} vs {len(_vals)})\")"
        )
        self.w("    for _j, _c in enumerate(_ch):")
        self.w("        _path = _prefix + (_c,)")
        self.w(f"        if _depth == {n - 1}:")
        self.w(f"            _coords{i}[_path] = _vals[_j]")
        self.w("        else:")
        self.w(
            f"            _rec{i}(_depth + 1, "
            "[_f[_j] for _f in _frames[1:]], _vals[_j], _path)"
        )
        self.w(f"_rec{i}(0, _nests{i}, _vals{i}, ())")
        if prim.drop_zeros:
            self.w(f"_coords{i} = {{")
            self.w(f"    _p: _v for _p, _v in _coords{i}.items()")
            self.w(
                "    if (np.abs(_v).max() if isinstance(_v, np.ndarray) "
                "else abs(_v)) != 0.0"
            )
            self.w("}")
        self.w(
            f"_tw = SparseTensor.from_coords({prim.shape!r}, {fmt}, "
            f"_coords{i}, name={name!r})"
        )
        if prim.dram:
            self.w("_st.dram_writes += _tw.bytes_total()")
        self.w(f"results[{name!r}] = _tw")
        self.w(f"s{i}_tensor = []")


class _ColumnarEmitter(_Emitter):
    """Emits kernels over TokenStream columns instead of token tuples.

    Per node the emitter picks, in order:

    1. a ``_cemit_{kind}`` method — the inlined columnar body, specialized
       with the node's configuration folded in (nodes whose inputs carry
       object payloads guard with a whole-node escape to the bound
       primitive's ``process_columnar``, reproducing the interpreter's
       blocked paths — and their stats accounting — exactly);
    2. the token-tier ``_emit_{kind}`` body bridged through
       ``to_tokens()``/``from_tokens()`` at this node's ports only;
    3. region-level fallback (``_Unsupported``) when neither exists.
    """

    tier = "columnar"

    def _prelude(self) -> None:
        super()._prelude()
        self.w("_I8_VAL = np.int8(2)")
        self.w("_I8_REF = np.int8(1)")
        self.w("_I8_EMPTY = np.int8(5)")
        # One ExecutionContext per run, shared by every escape-to-primitive
        # call site; results is the kernel's dict so writer escapes land in
        # the same place as inlined writers.
        self.w(
            "_ctx = _Ctx(None, scratchpad_bytes=scratchpad_bytes, "
            "debug_streams=debug_streams)"
        )
        self.w("_ctx.binding = binding")
        self.w("_ctx.results = results")

    def _node_emitter(self, prim, node_id: str) -> Callable:
        emitter = getattr(self, f"_cemit_{prim.kind}", None)
        if emitter is not None:
            return emitter
        token_emitter = getattr(_Emitter, f"_emit_{prim.kind}", None)
        if token_emitter is None:
            raise _Unsupported(
                f"unsupported primitive kind {prim.kind!r} at node {node_id}"
            )

        def bridged(i, nid, node, p, _fn=token_emitter):
            self._emit_token_bridge(_fn, i, nid, node, p)

        return bridged

    def _emit_token_bridge(self, token_emitter, i, node_id, node, prim) -> None:
        """Run one node through its token-tier body (per-node fallback)."""
        self.w(f"# (token-tier bridge: no columnar emitter for {prim.kind!r})")
        saved: Dict[Tuple[str, str], str] = {}
        for port in prim.in_ports:
            src = node.inputs[port]
            key = (src.node_id, src.port)
            if key in saved:
                continue
            saved[key] = self.var[key]
            self.w(f"_tb{i}_{port} = {saved[key]}.to_tokens()")
            self.var[key] = f"_tb{i}_{port}"
        token_emitter(self, i, node_id, node, prim)
        self.var.update(saved)
        for port in prim.out_ports:
            var = f"s{i}_{port}"
            self.w(f"{var} = _TS.from_tokens({var})")

    def _emit_prim_call(self, i, node_id, node, prim) -> None:
        """Escape hatch: run the bound primitive's columnar kernel whole.

        Used for input shapes the inlined bodies do not cover (object
        payloads / blocked values); the primitive performs the exact
        interpreter computation *and* stats accounting, so escapes must be
        emitted before any inline stats updates.
        """
        pname = self._bind(f"_P{i}", prim)
        ins = ", ".join(
            f"{port!r}: {self._in(node, port)}" for port in prim.in_ports
        )
        self.w(f"_ctx.current_node = {node_id!r}")
        self.w(f"_po{i} = {pname}.process_columnar({{{ins}}}, _ctx, _st)")
        for port in prim.out_ports:
            self.w(f"s{i}_{port} = _po{i}[{port!r}]")

    # -- per-kind columnar emitters -------------------------------------
    def _cemit_root(self, i, node_id, node, prim) -> None:
        const = self._bind(f"_R{i}", type(prim)._COLUMNAR)
        self.w(f"s{i}_ref = {const}")
        self.w("_st.tokens_out += 2")

    def _cemit_source(self, i, node_id, node, prim) -> None:
        # Convert the replayed stream once at emit time and bind the
        # columnar form (the primitive caches it on the same attribute).
        cached = getattr(prim, "_columnar", None)
        if cached is None:
            cached = TokenStream.from_tokens(prim.stream)
            prim._columnar = cached
        src = self._bind(f"_SRC{i}", cached)
        self.w(f"s{i}_out = {src}")
        self.w(f"_st.tokens_out += {len(cached)}")

    def _cemit_scan(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        self.w(f"if {ref_in}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            # Vectorized CSR-style expansion: per-token output counts from
            # shifted-kind masks, offsets by cumsum, fibers gathered with
            # one repeat/arange scatter.  Observable behavior (stats order,
            # error wording, emitted values) matches the per-token kernel
            # in sam/primitives/scanner.py exactly.
            self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
            self.w(f"_lvl = _t.levels[{prim.level}]")
            self.w(f"_ki = {ref_in}.kinds")
            self.w(f"_di = {ref_in}.data")
            self.w("_n = len(_ki)")
            self.w("_st.tokens_in += _n")
            self.w("_isr = _ki == 1")
            self.w("_iss = _ki == 3")
            self.w("_isd = _ki == 4")
            self.w("_ise = _ki == 5")
            self.w("_setv = _isr | _ise")
            self.w("_bad = ~(_setv | _iss | _isd)")
            self.w("if _bad.any():")
            self.w(
                "    raise StreamProtocolError("
                "f\"scanner got unexpected token kind "
                "{int(_ki[np.argmax(_bad)])}\")"
            )
            # open_fiber before token t == value set by the last open/close
            # token (REF/EMPTY open, STOP closes; DONE leaves it untouched)
            # strictly before t.
            self.w("_mi = np.where(_setv | _iss, np.arange(_n), -1)")
            self.w("np.maximum.accumulate(_mi, out=_mi)")
            self.w("_opens = np.zeros(_n, dtype=bool)")
            self.w("if _n > 1:")
            self.w("    _lb = _mi[:-1]")
            self.w("    _hv = _lb >= 0")
            self.w("    _opens[1:][_hv] = _setv[_lb[_hv]]")
            self.w("_ins = _opens & (_setv | _isd)")
            self.w("_refs = _di[_isr].astype(np.int64)")
            self.w("_nf = len(_refs)")
            self.w("if _lvl.kind == 'dense':")
            self.w("    _sz = _lvl.size")
            self.w("    _starts = _refs * _sz")
            self.w("    _lens = np.full(_nf, _sz, dtype=np.int64)")
            self.w("else:")
            self.w("    _pos, _crd = _lvl_arrays(_lvl)")
            self.w("    _starts = _pos[_refs]")
            self.w("    _lens = _pos[_refs + 1] - _starts")
            self.w("_nnz = int(_lens.sum())")
            self.w("_cnt = _ins.astype(np.int64)")
            self.w("_cnt[_isr] += _lens")
            self.w("_cnt[_iss] += 1")
            self.w("_cnt[_isd] += 1")
            self.w("_off = np.zeros(_n + 1, dtype=np.int64)")
            self.w("np.cumsum(_cnt, out=_off[1:])")
            self.w("_total = int(_off[_n])")
            self.w("_ck = np.zeros(_total, dtype=np.int8)")
            self.w("_rk = np.ones(_total, dtype=np.int8)")
            self.w("_cd = np.zeros(_total, dtype=np.float64)")
            self.w("_rd = np.zeros(_total, dtype=np.float64)")
            self.w("_s0 = _off[:-1][_ins]")
            self.w("_ck[_s0] = 3")
            self.w("_rk[_s0] = 3")
            self.w("_ss = _off[:-1][_iss]")
            self.w("_ck[_ss] = 3")
            self.w("_rk[_ss] = 3")
            self.w("_sp = _di[_iss] + 1.0")
            self.w("_cd[_ss] = _sp")
            self.w("_rd[_ss] = _sp")
            self.w("_sd = _off[:-1][_isd] + _ins[_isd]")
            self.w("_ck[_sd] = 4")
            self.w("_rk[_sd] = 4")
            self.w("if _nnz:")
            self.w("    _pb = _off[:-1][_isr] + _ins[_isr]")
            self.w("    _csum = np.zeros(_nf, dtype=np.int64)")
            self.w("    np.cumsum(_lens[:-1], out=_csum[1:])")
            self.w(
                "    _within = np.arange(_nnz, dtype=np.int64)"
                " - np.repeat(_csum, _lens)"
            )
            self.w("    _slots = np.repeat(_pb, _lens) + _within")
            self.w("    if _lvl.kind == 'dense':")
            self.w("        _cd[_slots] = _within")
            self.w("        _rd[_slots] = np.repeat(_starts, _lens) + _within")
            self.w("    else:")
            self.w("        _src = np.repeat(_starts, _lens) + _within")
            self.w("        _cd[_slots] = _crd[_src]")
            self.w("        _rd[_slots] = _src")
            if prim.dram:
                self.w("if _lvl.kind == 'compressed':")
                self.w("    _ab = 8 * _nf + 4 * _nnz")
                self.w("    _fp = _t.bytes_structure()")
                self.w("    if _fp <= scratchpad_bytes:")
                self.w("        _st.dram_reads += min(_ab, _fp)")
                self.w("    else:")
                self.w("        _st.dram_reads += _ab")
            self.w("_st.tokens_out += 2 * _total")
            self.w(f"s{i}_crd = _TS(_ck, _cd)")
            self.w(f"s{i}_ref = _TS(_rk, _rd)")

    def _cemit_locate(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w(f"_lvl = _t.levels[{prim.level}]")
        self.w(f"_kk = {crd_in}.kinds")
        self.w(f"_st.tokens_in += len({crd_in})")
        self.w("_bad = np.nonzero((_kk == 1) | (_kk == 2))[0]")
        self.w("if _bad.size:")
        self.w(
            "    raise StreamProtocolError("
            "f\"locate got unexpected token kind {int(_kk[_bad[0]])}\")"
        )
        self.w("_ic = _kk == 0")
        self.w("if _lvl.kind == 'dense':")
        self.w("    _ok = np.where(_ic, _I8_REF, _kk)")
        self.w(f"    s{i}_ref = _TS(_ok, {crd_in}.data)")
        self.w("else:")
        self.w("    _coords, _children = _lvl.fiber(0)")
        self.w("    _carr = np.asarray(_coords, dtype=np.int64)")
        self.w(f"    _q = {crd_in}.data[_ic].astype(np.int64)")
        self.w("    _idx = np.searchsorted(_carr, _q)")
        self.w("    _clip = np.minimum(_idx, max(len(_carr) - 1, 0))")
        self.w("    if len(_carr):")
        self.w("        _found = (_carr[_clip] == _q) & (_idx < len(_carr))")
        self.w("    else:")
        self.w("        _found = np.zeros(len(_q), dtype=bool)")
        self.w("    _cb = _children[0] if len(_carr) else 0")
        self.w("    _ok = _kk.copy()")
        self.w(f"    _od = {crd_in}.data.copy()")
        self.w("    _cp = np.nonzero(_ic)[0]")
        self.w("    _ok[_cp] = np.where(_found, _I8_REF, _I8_EMPTY)")
        self.w(
            "    _od[_cp] = np.where(_found, "
            "(_cb + _clip).astype(np.float64), 0.0)"
        )
        if prim.dram:
            self.w("    _st.dram_reads += 8 * len(_q)")
        self.w(f"    s{i}_ref = _TS(_ok, _od)")
        self.w(f"_st.tokens_out += len(s{i}_ref)")

    def _cemit_joiner(self, i, node_id, node, prim, keep_all: bool) -> None:
        kind = prim.kind
        ca, ra = self._in(node, "crd_a"), self._in(node, "ref_a")
        cb, rb = self._in(node, "crd_b"), self._in(node, "ref_b")
        self.w(f"_require_aligned({ca}, {ra}, \"{kind}(a)\", {node_id!r})")
        self.w(f"_require_aligned({cb}, {rb}, \"{kind}(b)\", {node_id!r})")
        self.w(
            f"_st.tokens_in += len({ca}) + len({cb}) + len({ra}) + len({rb})"
        )
        self.w(
            f"_ctA, _payA, _segA, _crdsA = _split_segments({ca}, "
            f"\"{kind}(a)\", {node_id!r})"
        )
        self.w(
            f"_ctB, _payB, _segB, _crdsB = _split_segments({cb}, "
            f"\"{kind}(b)\", {node_id!r})"
        )
        self.w(
            f"_check_controls({ca}, {cb}, _ctA, _ctB, {kind!r}, {node_id!r})"
        )
        self.w("_cmax = 0")
        self.w("if _crdsA.size:")
        self.w("    _cmax = int(_crdsA.max())")
        self.w("if _crdsB.size:")
        self.w("    _cmax = max(_cmax, int(_crdsB.max()))")
        self.w("_cspan = _cmax + 2")
        self.w("_keyA = _segA * _cspan + _crdsA")
        self.w("_keyB = _segB * _cspan + _crdsB")
        if not keep_all:
            self.w(
                "_x0, _ja, _jb = np.intersect1d("
                "_keyA, _keyB, assume_unique=True, return_indices=True)"
            )
            self.w("_posA = _payA[_ja]")
            self.w("_posB = _payB[_jb]")
            self.w("_ocrd = _crdsA[_ja]")
            self.w("_oseg = _segA[_ja]")
            self.w(f"_ka, _da, _oa = _payload_columns({ra}, _posA, None)")
            self.w(f"_kb, _db, _ob = _payload_columns({rb}, _posB, None)")
        else:
            self.w("_keys = np.union1d(_keyA, _keyB)")
            self.w("_ia = np.searchsorted(_keyA, _keys)")
            self.w("_inA = np.zeros(len(_keys), dtype=bool)")
            self.w("if len(_keyA):")
            self.w("    _iac = np.minimum(_ia, len(_keyA) - 1)")
            self.w("    _inA = _keyA[_iac] == _keys")
            self.w("_ib = np.searchsorted(_keyB, _keys)")
            self.w("_inB = np.zeros(len(_keys), dtype=bool)")
            self.w("if len(_keyB):")
            self.w("    _ibc = np.minimum(_ib, len(_keyB) - 1)")
            self.w("    _inB = _keyB[_ibc] == _keys")
            self.w(
                "_posA = _payA[_iac[_inA]] if len(_keyA) "
                "else np.empty(0, dtype=np.int64)"
            )
            self.w(
                "_posB = _payB[_ibc[_inB]] if len(_keyB) "
                "else np.empty(0, dtype=np.int64)"
            )
            self.w("_oseg, _ocrd = np.divmod(_keys, _cspan)")
            self.w(f"_ka, _da, _oa = _payload_columns({ra}, _posA, _inA)")
            self.w(f"_kb, _db, _ob = _payload_columns({rb}, _posB, _inB)")
        self.w("_npay = len(_ocrd)")
        self.w("_nctrl = len(_ctA)")
        self.w(
            "_ckeys = np.arange(_nctrl, dtype=np.int64) * _cspan "
            "+ (_cspan - 1)"
        )
        self.w("_pkeys = _oseg * _cspan + _ocrd")
        self.w(
            "_ord = np.argsort(np.concatenate([_pkeys, _ckeys]), "
            "kind='stable')"
        )
        self.w(f"_ctk = {ca}.kinds[_ctA]")
        self.w(f"_ctd = {ca}.data[_ctA]")
        self.w(
            "_crdk = np.concatenate("
            "[np.zeros(_npay, dtype=np.int8), _ctk])[_ord]"
        )
        self.w(
            "_crdd = np.concatenate("
            "[_ocrd.astype(np.float64), _ctd])[_ord]"
        )
        self.w(f"s{i}_crd = _TS(_crdk, _crdd)")
        for port, k, d, o in (
            ("ref_a", "_ka", "_da", "_oa"),
            ("ref_b", "_kb", "_db", "_ob"),
        ):
            self.w(f"_sk = np.concatenate([{k}, _ctk])[_ord]")
            self.w(f"_sd = np.concatenate([{d}, _ctd])[_ord]")
            self.w(f"if {o} is not None:")
            self.w(
                f"    _so = np.concatenate([{o}, "
                "np.full(_nctrl, None, dtype=object)])[_ord]"
            )
            self.w("else:")
            self.w("    _so = None")
            self.w(f"s{i}_{port} = _TS(_sk, _sd, _so)")
        self.w(
            f"_st.tokens_out += len(s{i}_crd) + len(s{i}_ref_a) "
            f"+ len(s{i}_ref_b)"
        )

    def _cemit_intersect(self, i, node_id, node, prim) -> None:
        self._cemit_joiner(i, node_id, node, prim, keep_all=False)

    def _cemit_union(self, i, node_id, node, prim) -> None:
        self._cemit_joiner(i, node_id, node, prim, keep_all=True)

    #: Binary ops inlined as vector expressions over the data columns
    #: (mirrors _vec_binary in sam/primitives/compute.py; div is special).
    _INLINE_VEC_BINARY = {
        "add": "{a}.data + {b}.data",
        "sub": "{a}.data - {b}.data",
        "mul": "{a}.data * {b}.data",
        "bmm": "{a}.data * {b}.data",
        "bmt": "{a}.data * {b}.data",
        "max": "np.maximum({a}.data, {b}.data)",
        "min": "np.minimum({a}.data, {b}.data)",
    }

    def _cemit_alu(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        op = prim.op
        self.w(f"if {a}.objs is not None or {b}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"if len({a}) != len({b}):")
            self.w(
                "    raise StreamProtocolError("
                f"f\"alu({op}): misaligned inputs "
                f"({{len({a})}} vs {{len({b})}})\")"
            )
            self.w(f"_n = len({a})")
            self.w("_st.tokens_in += 2 * _n")
            self.w(f"_ka = {a}.kinds")
            self.w(f"_kb = {b}.kinds")
            self.w("_cta = (_ka == 3) | (_ka == 4)")
            self.w("_ctb = (_kb == 3) | (_kb == 4)")
            self.w(
                "_mm = (_cta != _ctb) | (_cta & ((_ka != _kb) "
                f"| ({a}.data != {b}.data)))"
            )
            self.w("if _mm.any():")
            self.w("    _i = int(np.nonzero(_mm)[0][0])")
            self.w("    raise StreamProtocolError(")
            self.w(
                f"        f\"alu({op}): control mismatch "
                f"{{{a}.token_at(_i)}} vs \""
            )
            self.w(f"        f\"{{{b}.token_at(_i)}} at position {{_i}}\"")
            self.w("    )")
            self.w("_be = (_ka == 5) & (_kb == 5)")
            self.w("_cm = ~_cta & ~_be")
            self.w("_ok = np.where(_cm, _I8_VAL, _ka)")
            if op == "div":
                self.w("with np.errstate(divide='ignore', invalid='ignore'):")
                self.w(
                    f"    _res = np.where({b}.data != 0.0, "
                    f"{a}.data / {b}.data, 0.0)"
                )
            else:
                self.w(f"_res = {self._INLINE_VEC_BINARY[op].format(a=a, b=b)}")
            self.w(f"_od = np.where(_cm, _res, {a}.data)")
            self.w("_st.ops += int(np.count_nonzero(_cm))")
            self.w(f"s{i}_out = _TS(_ok, _od)")
            self.w("_st.tokens_out += _n")

    #: Unary ops inlined as vector expressions over ``_x`` (mirrors
    #: _UNARY_OPS; anything not listed calls the shared table function).
    _INLINE_VEC_UNARY = {
        "relu": "np.maximum(_x, 0.0)",
        "exp": "np.exp(_x)",
        "neg": "-_x",
        "abs": "np.abs(_x)",
        "sigmoid": "1.0 / (1.0 + np.exp(-_x))",
        "tanh": "np.tanh(_x)",
        "sqrt": "np.sqrt(_x)",
        "identity": "_x",
        "square": "_x * _x",
    }

    def _cemit_ualu(self, i, node_id, node, prim) -> None:
        a = self._in(node, "a")
        op = prim.op
        self.w(f"if {a}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"_n = len({a})")
            self.w("_st.tokens_in += _n")
            self.w(f"_kk = {a}.kinds")
            self.w("_iv = _kk == 2")
            if prim.scale != 1.0 or prim.offset != 0.0:
                self.w(f"_x = {prim.scale!r} * {a}.data + {prim.offset!r}")
            else:
                self.w(f"_x = {a}.data")
            expr = self._INLINE_VEC_UNARY.get(op)
            if expr is None:
                expr = f"_UNARY_OPS[{op!r}](_x)"
            self.w("with np.errstate(all='ignore'):")
            self.w(f"    _res = {expr}")
            self.w(f"_od = np.where(_iv, _res, {a}.data)")
            self.w("_st.ops += int(np.count_nonzero(_iv))")
            self.w("_st.tokens_out += _n")
            self.w(f"s{i}_out = _TS(_kk, _od)")

    def _cemit_array(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w("_vals = _t.values")
        self.w("if _vals.ndim > 1:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"_n = len({ref_in})")
            self.w("_st.tokens_in += _n")
            self.w(f"_kk = {ref_in}.kinds")
            self.w("_bad = np.nonzero((_kk == 0) | (_kk == 2))[0]")
            self.w("if _bad.size:")
            self.w(
                "    raise StreamProtocolError("
                "f\"array got unexpected token kind {int(_kk[_bad[0]])}\")"
            )
            self.w("_ir = _kk == 1")
            self.w("_ie = _kk == 5")
            self.w("_rp = np.nonzero(_ir)[0]")
            self.w(f"_idx = {ref_in}.data[_rp].astype(np.int64)")
            self.w("_ok = np.where(_ir | _ie, _I8_VAL, _kk)")
            self.w(f"_od = np.where(_ir | _ie, 0.0, {ref_in}.data)")
            self.w("_od[_rp] = _vals[_idx]")
            if prim.dram:
                self.w("_ab = 8 * len(_rp)")
                self.w("_fp = int(_vals.size) * 8")
                self.w("if _fp <= scratchpad_bytes:")
                self.w("    _st.dram_reads += min(_ab, _fp)")
                self.w("else:")
                self.w("    _st.dram_reads += _ab")
            self.w("_st.tokens_out += _n")
            self.w(f"s{i}_val = _TS(_ok, _od)")

    def _cemit_reduce(self, i, node_id, node, prim) -> None:
        v = self._in(node, "val")
        self.w(f"if {v}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"_n = len({v})")
            self.w("_st.tokens_in += _n")
            self.w(f"_kk = {v}.kinds")
            self.w("_bad = np.nonzero((_kk == 0) | (_kk == 1))[0]")
            self.w("if _bad.size:")
            self.w(
                "    raise StreamProtocolError("
                "f\"reduce got unexpected token kind {int(_kk[_bad[0]])}\")"
            )
            self.w("_sp = np.nonzero(_kk == 3)[0]")
            self.w(f"_sl = {v}.data[_sp].astype(np.int64)")
            self.w("_ns = len(_sp)")
            self.w("_vp = np.nonzero(_kk == 2)[0]")
            self.w("_ep = np.nonzero(_kk == 5)[0]")
            self.w("_sv = np.searchsorted(_sp, _vp)")
            self.w("_se = np.searchsorted(_sp, _ep)")
            self.w("_nseg = _ns + 1")
            self.w(f"_sums, _vc = _segment_sums({v}.data[_vp], _sv, _nseg)")
            self.w("_ec = np.bincount(_se, minlength=_nseg)")
            self.w("_hv = _vc > 0")
            self.w("_fv = np.full(_nseg, _n, dtype=np.int64)")
            self.w("_fv[_sv[::-1]] = _vp[::-1]")
            self.w("_fe = np.full(_nseg, _n, dtype=np.int64)")
            self.w("_fe[_se[::-1]] = _ep[::-1]")
            self.w("_ee = _hv & (_fe < _fv)")
            self.w(
                "_st.ops += int(np.sum(_vc[_hv] - 1) "
                "+ np.count_nonzero(_ee))"
            )
            self.w("_tr = bool(_hv[-1] or _ec[-1] > 0)")
            self.w("_dp = _sl > 0")
            self.w("_sz = 1 + _dp.astype(np.int64)")
            self.w("_off = np.concatenate([[0], np.cumsum(_sz)])")
            self.w("_tot = int(_off[-1]) + (1 if _tr else 0) + 1")
            self.w("_okk = np.full(_tot, 2, dtype=np.int8)")
            self.w("_odd = np.zeros(_tot, dtype=np.float64)")
            self.w("_vsl = _off[:-1]")
            self.w("_odd[_vsl] = _sums[:_ns]")
            self.w("_dsl = _vsl[_dp] + 1")
            self.w("_okk[_dsl] = 3")
            self.w("_odd[_dsl] = (_sl[_dp] - 1).astype(np.float64)")
            self.w("if _tr:")
            self.w("    _odd[_tot - 2] = _sums[_ns]")
            self.w("_okk[_tot - 1] = 4")
            self.w("_odd[_tot - 1] = 0.0")
            self.w(f"s{i}_val = _TS(_okk, _odd)")
            self.w("_st.tokens_out += _tot")

    def _cemit_vreduce(self, i, node_id, node, prim) -> None:
        # VectorReducer's columnar kernel is already lexsort-vectorized and
        # carries its own internal escapes; call it whole.
        self._emit_prim_call(i, node_id, node, prim)

    def _cemit_crddrop(self, i, node_id, node, prim) -> None:
        c, v = self._in(node, "crd"), self._in(node, "val")
        self.w(f"if {v}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"if len({c}) != len({v}):")
            self.w(
                "    raise StreamProtocolError("
                "\"crddrop: crd/val misaligned\")"
            )
            self.w(f"_n = len({c})")
            self.w("_st.tokens_in += 2 * _n")
            self.w(f"_ic = {c}.kinds == 0")
            self.w(f"_ne = {v}.kinds != 5")
            self.w(f"_z = ({v}.data == 0.0) & _ne")
            self.w("_keep = np.nonzero(~(_ic & _z))[0]")
            self.w(f"s{i}_crd = {c}.gather(_keep)")
            self.w(f"s{i}_val = {v}.gather(_keep)")
            self.w(f"_st.tokens_out += len(s{i}_crd) + len(s{i}_val)")

    def _cemit_aligncheck(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        self.w(f"_st.tokens_in += len({a}) + len({b})")
        self.w(f"if not _streams_equal({a}, {b}):")
        self.w("    raise StreamProtocolError(")
        self.w(
            "        \"aligned-adopt streams differ; the fusion schedule "
            "requires a \""
        )
        self.w("        \"materialization boundary between these statements\"")
        self.w("    )")
        self.w(f"_st.tokens_out += len({a})")
        self.w(f"s{i}_out = {a}")

    def _cemit_repeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(f"_rk = {rep}.kinds")
        self.w("_n = len(_rk)")
        self.w("_bad = np.nonzero((_rk == 1) | (_rk == 2) | (_rk == 5))[0]")
        self.w("if _bad.size:")
        self.w(
            "    raise StreamProtocolError("
            "f\"repeat: unexpected token kind {int(_rk[_bad[0]])} "
            "on rep stream\")"
        )
        self.w(f"_bk = {base}.kinds.tolist()")
        self.w(f"_bd = {base}.data")
        self.w("_nb = len(_bk)")
        self.w("_sp = np.nonzero(_rk == 3)[0]")
        self.w(f"_sl = {rep}.data[_sp].astype(np.int64).tolist()")
        self.w("_curs = [0]")
        self.w("_bi = 0")
        self.w("for _lvl in _sl:")
        self.w("    _k = _bk[_bi] if _bi < _nb else 4")
        self.w("    if _k != 3 and _k != 4:")
        self.w("        _bi += 1")
        self.w("    if _lvl >= 1:")
        self.w("        _k = _bk[_bi] if _bi < _nb else 4")
        self.w("        if _k != 3:")
        self.w(
            f"            _found = {base}.token_at(_bi) "
            "if _bi < _nb else 'EOS'"
        )
        self.w("            raise StreamProtocolError(")
        self.w(
            "                f\"repeat: rep stop {_lvl} expects a base "
            "stop \""
        )
        self.w("                f\"{_lvl - 1}, found {_found}\"")
        self.w("            )")
        self.w("        if int(_bd[_bi]) != _lvl - 1:")
        self.w("            raise StreamProtocolError(")
        self.w(
            "                f\"repeat: rep stop {_lvl} mismatches base "
            "stop \""
        )
        self.w("                f\"{int(_bd[_bi])}\"")
        self.w("            )")
        self.w("        _bi += 1")
        self.w("    _curs.append(_bi)")
        self.w("_cp = np.nonzero(_rk == 0)[0]")
        self.w("_ok = _rk.copy()")
        self.w(f"_od = {rep}.data.copy()")
        self.w("_oo = None")
        self.w("if _cp.size:")
        self.w("    _fc = np.searchsorted(_sp, _cp)")
        self.w("    _src = np.asarray(_curs, dtype=np.int64)[_fc]")
        self.w("    _valid = _src < _nb")
        self.w("    _srck = np.where(_valid, _src, 0)")
        self.w(f"    _kat = {base}.kinds[_srck]")
        self.w("    _pok = _valid & (_kat != 3) & (_kat != 4)")
        self.w("    if not _pok.all():")
        self.w("        raise StreamProtocolError(")
        self.w(
            "            \"repeat: rep stream has coordinates but base "
            "has none current\""
        )
        self.w("        )")
        self.w("    _ok[_cp] = _kat")
        self.w("    _od[_cp] = _bd[_srck]")
        self.w(f"    if {base}.objs is not None:")
        self.w("        _oo = np.full(_n, None, dtype=object)")
        self.w(f"        _oo[_cp] = {base}.objs[_srck]")
        self.w(f"s{i}_out = _TS(_ok, _od, _oo)")
        self.w("_st.tokens_out += _n")

    def _cemit_repsig(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        self.w(f"_st.tokens_in += len({crd_in})")
        self.w(f"_st.tokens_out += len({crd_in})")
        self.w(f"s{i}_out = {crd_in}")

    def _cemit_srepeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(f"_bk = {base}.kinds")
        self.w("_pp = np.nonzero((_bk != 3) & (_bk != 4))[0]")
        self.w("if len(_pp) != 1:")
        self.w(
            "    raise StreamProtocolError("
            "f\"scalar repeat expects exactly one base payload, "
            "got {len(_pp)}\")"
        )
        self.w("_p = int(_pp[0])")
        self.w(f"_rk = {rep}.kinds")
        self.w("_n = len(_rk)")
        self.w("_bad = np.nonzero((_rk != 0) & (_rk != 3) & (_rk != 4))[0]")
        self.w("if _bad.size:")
        self.w(
            "    raise StreamProtocolError("
            "f\"scalar repeat: unexpected token kind {int(_rk[_bad[0]])} "
            "on rep stream\")"
        )
        self.w("_ic = _rk == 0")
        self.w("_ok = np.where(_ic, _bk[_p], _rk)")
        self.w(f"_od = np.where(_ic, {base}.data[_p], {rep}.data)")
        self.w("_oo = None")
        self.w(
            f"if {base}.objs is not None and {base}.objs[_p] is not None:"
        )
        self.w("    _oo = np.full(_n, None, dtype=object)")
        self.w("    _fill = np.empty(int(np.count_nonzero(_ic)), dtype=object)")
        self.w(f"    _fill.fill({base}.objs[_p])")
        self.w("    _oo[_ic] = _fill")
        self.w(f"s{i}_out = _TS(_ok, _od, _oo)")
        self.w("_st.tokens_out += _n")

    def _cemit_fiberop(self, i, node_id, node, prim) -> None:
        v = self._in(node, "val")
        kind = prim.kind
        fpe = prim.flops_per_elem
        self.w(f"if {v}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(f"_fn = _FIBER_FNS[{kind!r}]")
            self.w(f"_n = len({v})")
            self.w("_st.tokens_in += _n")
            self.w(f"_kk = {v}.kinds")
            self.w("_bad = np.nonzero((_kk == 0) | (_kk == 1))[0]")
            self.w("if _bad.size:")
            self.w(
                "    raise StreamProtocolError("
                f"f\"{kind} got token kind {{int(_kk[_bad[0]])}}\")"
            )
            self.w("_cp = np.nonzero((_kk == 3) | (_kk == 4))[0]")
            self.w("_pm = (_kk == 2) | (_kk == 5)")
            self.w("_pp = np.nonzero(_pm)[0]")
            self.w("_ok = np.where(_pm, _I8_VAL, _kk)")
            self.w(f"_od = {v}.data.copy()")
            self.w("_bounds = np.searchsorted(_pp, _cp)")
            self.w(f"_va = {v}.data[_pp]")
            self.w("_s = 0")
            self.w("for _e in _bounds.tolist():")
            self.w("    if _e > _s:")
            self.w("        _od[_pp[_s:_e]] = _fn(_va[_s:_e], axis=0)")
            self.w(f"        _st.ops += {fpe} * (_e - _s)")
            self.w("    _s = _e")
            self.w(f"s{i}_out = _TS(_ok, _od)")
            self.w("_st.tokens_out += _n")

    _cemit_softmax = _cemit_fiberop
    _cemit_layernorm = _cemit_fiberop
    _cemit_fibermax = _cemit_fiberop

    def _cemit_write(self, i, node_id, node, prim) -> None:
        n = len(prim.shape)
        name = prim.tensor_name
        crd_ins = [self._in(node, f"crd{d}") for d in range(n)]
        val_in = self._in(node, "val")
        fmt = self._bind(f"_fmt{i}", prim.fmt)
        self.w(f"if {val_in}.objs is not None:")
        with self._indented():
            self._emit_prim_call(i, node_id, node, prim)
        self.w("else:")
        with self._indented():
            self.w(
                "_st.tokens_in += "
                + " + ".join(f"len({s})" for s in crd_ins + [val_in])
            )
            self.w("if debug_streams:")
            for s in crd_ins + [val_in]:
                self.w(f"    check_stream({s})")
            self.w(f"_vk = {val_in}.kinds")
            self.w("_vp = np.nonzero((_vk != 3) & (_vk != 4))[0]")
            self.w("_m = len(_vp)")
            self.w("_cols = []")
            for d, s in enumerate(crd_ins):
                self.w(f"_ck = {s}.kinds")
                self.w("_pay = np.nonzero((_ck != 3) & (_ck != 4))[0]")
                self.w("if (_ck[_pay] != 0).any():")
                self.w("    raise StreamProtocolError(")
                self.w(
                    f"        \"writer {name}: crd{d} carries "
                    "non-coordinate \""
                )
                self.w("        \"payload tokens\"")
                self.w("    )")
                self.w(f"_pl = {s}.data[_pay].astype(np.int64)")
                if d == n - 1:
                    self.w("if len(_pl) != _m:")
                    self.w("    raise StreamProtocolError(")
                    self.w(
                        f"        f\"writer {name}: level {d} crd/val "
                        "fan-out \""
                    )
                    self.w("        f\"mismatch ({len(_pl)} vs {_m})\"")
                    self.w("    )")
                    self.w("_cols.append(_pl)")
                else:
                    self.w(
                        f"_closes = (_vk == 3) & ({val_in}.data >= {n - 2 - d})"
                    )
                    self.w("_grp = np.cumsum(_closes)[_vp]")
                    self.w("if _m and (len(_pl) <= int(_grp.max())):")
                    self.w("    raise StreamProtocolError(")
                    self.w(
                        f"        f\"writer {name}: level {d} crd/val "
                        "fan-out \""
                    )
                    self.w(
                        "        f\"mismatch ({len(_pl)} vs "
                        "{int(_grp.max()) + 1})\""
                    )
                    self.w("    )")
                    self.w("_cols.append(_pl[_grp] if _m else _pl[:0])")
            self.w(f"_vv = {val_in}.data[_vp]")
            if prim.drop_zeros:
                self.w("_keep = _vv != 0.0")
                self.w("_vv = _vv[_keep]")
                self.w("_cols = [_c[_keep] for _c in _cols]")
            if n:
                self.w("_paths = zip(*(_c.tolist() for _c in _cols))")
            else:
                self.w("_paths = iter(())")
            self.w("_coords = dict(zip(_paths, _vv.tolist()))")
            self.w(
                f"_tw = SparseTensor.from_coords({prim.shape!r}, {fmt}, "
                f"_coords, name={name!r})"
            )
            if prim.dram:
                self.w("_st.dram_writes += _tw.bytes_total()")
            self.w(f"results[{name!r}] = _tw")
            self.w(f"s{i}_tensor = _TS.empty()")


# ----------------------------------------------------------------------
# Compilation and execution
# ----------------------------------------------------------------------


def _probe_spec(graph: SAMGraph, order: List[str]) -> Tuple[Tuple[str, ...], int]:
    """Tensor names + constant token floor used to size a run's input.

    The adaptive dispatcher estimates how much work a run carries by
    summing the nnz of the tensors the region reads plus the length of
    any replayed source streams; both are knowable without executing.
    """
    names: Dict[str, None] = {}
    base = 0
    for node_id in order:
        prim = graph.nodes[node_id].prim
        if prim.kind in ("scan", "array", "locate"):
            names[prim.tensor_name] = None
        elif prim.kind == "source":
            base += len(prim.stream)
    return tuple(names), base


def _compile_artifact(
    graph: SAMGraph, order: List[str], tier: str
) -> RegionArtifact:
    started = time.perf_counter()
    emitter_cls = _ColumnarEmitter if tier == "columnar" else _Emitter
    emitter = emitter_cls(graph, order)
    probe, probe_base = _probe_spec(graph, order)
    try:
        source = emitter.emit()
    except _Unsupported as exc:
        with _CACHE_LOCK:
            _COUNTERS["fallbacks"] += 1
        return RegionArtifact(
            region=graph.name,
            tier=tier,
            node_count=len(order),
            emit_seconds=time.perf_counter() - started,
            fallback=str(exc),
            probe=probe,
            probe_base=probe_base,
        )
    emit_seconds = time.perf_counter() - started
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    filename = f"<fuseflow-codegen {graph.name} {sha[:12]}>"
    compile_started = time.perf_counter()
    with _CACHE_LOCK:
        code = _CODE_CACHE.get(sha)
        cached = code is not None
        if cached:
            _COUNTERS["code_hits"] += 1
            _CODE_CACHE.move_to_end(sha)
    if not cached:
        # compile() runs outside the lock (it is the slow part); the
        # re-insert below keeps the cache single-valued under races.
        code = compile(source, filename, "exec")
        with _CACHE_LOCK:
            incumbent = _CODE_CACHE.get(sha)
            if incumbent is not None:
                code = incumbent
                _CODE_CACHE.move_to_end(sha)
            else:
                _CODE_CACHE[sha] = code
                # Register the source so tracebacks out of the kernel show
                # real lines instead of an opaque <string> frame.
                linecache.cache[filename] = (
                    len(source),
                    None,
                    source.splitlines(True),
                    filename,
                )
                _CODE_FILES.setdefault(sha, []).append(filename)
                while len(_CODE_CACHE) > CODE_CACHE_LIMIT:
                    oldest = next(iter(_CODE_CACHE))
                    _purge_code_entry_locked(oldest)
                    _COUNTERS["code_evictions"] += 1
            _COUNTERS["code_misses"] += 1
    namespace = dict(_SHARED_GLOBALS)
    namespace.update(emitter.env)
    exec(code, namespace)
    fn = namespace["_region_kernel"]
    fn, uses_numba = _maybe_njit(fn)
    return RegionArtifact(
        region=graph.name,
        tier=tier,
        source=source,
        loc=source.count("\n"),
        node_count=len(order),
        emit_seconds=emit_seconds,
        compile_seconds=time.perf_counter() - compile_started,
        code_cached=cached,
        uses_numba=uses_numba,
        fn=fn,
        sha=sha,
        probe=probe,
        probe_base=probe_base,
    )


def _maybe_njit(fn: Callable) -> Tuple[Callable, bool]:
    """Optionally wrap ``fn`` with numba, falling back on typing failure."""
    if not _numba_requested() or not numba_available():
        return fn, False
    import numba

    try:
        jitted = numba.njit(fn)
    except Exception:
        return fn, False

    def wrapper(*args, _jitted=jitted, _plain=fn):
        try:
            return _jitted(*args)
        except numba.errors.NumbaError:
            # nopython typing rejected the kernel (tuple/dict/object
            # traffic); the plain compiled function is the result.
            return _plain(*args)

    return wrapper, True


def artifact_for(graph: SAMGraph, tier: Optional[str] = None) -> RegionArtifact:
    """The compiled :class:`RegionArtifact` for ``graph``, cached per tier.

    Parameters
    ----------
    graph:
        A lowered region graph.  Artifacts are cached weakly per graph
        (one slot per emission tier) and invalidated when the graph's
        topological order is rebuilt (i.e. on structural mutation).
    tier:
        ``"token"`` or ``"columnar"``; ``None`` reads
        :func:`codegen_tier` (the ``FUSEFLOW_CODEGEN_TIER`` selector).

    Returns
    -------
    RegionArtifact
        With ``fn`` set, or ``fallback`` naming the unsupported primitive.
    """
    if tier is None:
        tier = codegen_tier()
    elif tier not in _TIERS:
        raise ValueError(
            f"unknown codegen tier {tier!r}; expected one of {_TIERS}"
        )
    graph.ensure_validated()
    order = graph.topological_order()
    with _CACHE_LOCK:
        _drain_pending_releases_locked()
        cached = _GRAPH_ARTIFACTS.get(graph)
        if cached is not None and cached[0] is order:
            incumbent = cached[1].get(tier)
            if incumbent is not None:
                _COUNTERS["artifact_hits"] += 1
                return incumbent
        _COUNTERS["artifact_misses"] += 1
    artifact = _compile_artifact(graph, order, tier)
    with _CACHE_LOCK:
        cached = _GRAPH_ARTIFACTS.get(graph)
        if cached is None or cached[0] is not order:
            if cached is not None:
                # Structural mutation: the old tiers' sources no longer
                # correspond to this graph — drop their linecache pins.
                for sha, finalizer in cached[2]:
                    if finalizer.detach():
                        _release_sha_locked(sha)
            cached = (order, {}, [])
            _GRAPH_ARTIFACTS[graph] = cached
        incumbent = cached[1].get(tier)
        if incumbent is not None:
            return incumbent
        cached[1][tier] = artifact
        _retain_sha_locked(graph, artifact.sha, cached[2])
    return artifact


def _probe_size(artifact: RegionArtifact, binding: Dict[str, Any]):
    """Adaptive-dispatch probe: (estimated input tokens, blocked payloads).

    ``blocked`` is True when any probed tensor carries multi-dimensional
    payloads (e.g. gpt3's block-sparse matrices): those ride the ``objs``
    escape hatch through every columnar kernel, so the token tier's
    specialized loops are the faster choice regardless of stream length.
    """
    size = artifact.probe_base
    blocked = False
    for name in artifact.probe:
        values = getattr(binding.get(name), "values", None)
        if values is not None:
            size += int(values.size)
            if values.ndim > 1:
                blocked = True
    return size, blocked


def try_run_codegen(
    graph: SAMGraph,
    binding: Dict[str, Any],
    scratchpad_bytes: int,
    debug_streams: bool,
):
    """Execute ``graph`` through its generated kernel.

    Parameters
    ----------
    graph, binding, scratchpad_bytes, debug_streams:
        As for :func:`repro.comal.functional.run_functional` (memoization
        is handled by the caller).

    Returns
    -------
    FunctionalResult or None
        ``None`` signals the caller to fall back to the columnar
        interpreter (no tier could emit the region).

    Raises
    ------
    StreamProtocolError
        Protocol violations, re-raised with node id + region context
        appended (type and original message preserved).
    KeyError
        Unbound tensors, likewise annotated.
    CodegenError
        Any other failure inside the generated kernel.
    """
    from ..comal.functional import FunctionalResult

    tier = codegen_tier()
    artifact = artifact_for(graph, tier)
    if artifact.fn is None and tier == "columnar":
        # Region-level fallback: retry with the token tier before giving
        # the region to the columnar interpreter.
        artifact = artifact_for(graph, "token")
    if artifact.fn is None:
        return None
    if artifact.tier == "columnar":
        # Adaptive dispatch (cutoff 0 disables it, forcing the columnar
        # kernels — the differential suite uses that to test the tier in
        # isolation): blocked payloads escape every columnar kernel, and
        # short streams drown in numpy call overhead.  Either way the
        # token tier's plain loops win (DEFAULT_SMALL_STREAM_CUTOFF).
        cutoff = small_stream_cutoff()
        if cutoff:
            size, blocked = _probe_size(artifact, binding)
            if blocked or size < cutoff:
                token_artifact = artifact_for(graph, "token")
                if token_artifact.fn is not None:
                    artifact = token_artifact
                    with _CACHE_LOCK:
                        _COUNTERS["token_dispatches"] += 1
    order = graph.topological_order()
    stats = {node_id: NodeStats() for node_id in order}
    results: Dict[str, Any] = {}
    cursor = ["?"]
    run_started = time.perf_counter()
    try:
        streams = artifact.fn(
            binding, stats, results, scratchpad_bytes, debug_streams, cursor
        )
    except StreamProtocolError as exc:
        raise StreamProtocolError(
            f"{exc} [codegen kernel, region {graph.name!r}, node {cursor[0]}]"
        ) from exc
    except KeyError as exc:
        detail = exc.args[0] if exc.args else exc
        raise KeyError(
            f"{detail} [codegen kernel, region {graph.name!r}, "
            f"node {cursor[0]}]"
        ) from exc
    except Exception as exc:
        raise CodegenError(
            f"generated kernel for region {graph.name!r} failed at node "
            f"{cursor[0]}: {type(exc).__name__}: {exc}"
        ) from exc
    artifact.runs += 1
    artifact.run_seconds += time.perf_counter() - run_started
    result = FunctionalResult()
    result.order = order
    result.streams = streams
    result.stats = stats
    result.results = results
    return result


class CodegenBackend(Backend):
    """Backend that executes regions through generated, compiled kernels."""

    name = "codegen"

    def describe(self) -> str:
        """One-line human-readable description."""
        numba = "numba available" if numba_available() else "no numba"
        return (
            "codegen: per-region specialized Python kernels "
            f"({codegen_tier()} emission tier, compile()/exec, {numba}; "
            "unsupported nodes bridge to the token tier, unsupported "
            "regions fall back to the columnar interpreter)"
        )
