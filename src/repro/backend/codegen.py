"""Code-generating backend: one compiled Python kernel per fusion region.

Instead of walking the region graph node by node (paying a dict-dispatched
``process`` call, an :class:`~repro.sam.primitives.base.ExecutionContext`,
and per-port stream plumbing for every node on every execution), this
backend walks the graph **once**, emits a single specialized Python source
function that inlines every node's per-token logic — scanner/joiner/ALU/
reduce/writer loops with the node's configuration folded in as constants
and streams collapsed into local lists — compiles it with
:func:`compile`/``exec``, and caches the artifact.

Semantics are copied line for line from the legacy ``process`` kernels,
which the columnar interpreter is differentially tested against, so the
generated kernels inherit bit-exactness: identical streams, per-node
statistics, result tensors, and therefore identical timed metrics (the
timed engine reads only stream lengths, stats, and node metadata).

Two cache levels:

* per-graph (weak, validated by topological-order identity — the same
  idiom as the timed engine's plan cache): repeated executions of one
  graph reuse its compiled kernel;
* per-source (keyed by the SHA-256 of the emitted source): structurally
  identical regions from *different* graph objects share one code object
  and pay ``compile()`` once per process.

Regions containing a primitive kind the emitter does not know fall back
to the columnar interpreter, per region, with a recorded reason — every
model runs under ``--backend codegen`` regardless.

Exceptions raised inside a generated kernel are re-raised with the node id
and region name appended (protocol errors keep their type and message so
``pytest.raises(..., match=...)`` assertions hold under
``FUSEFLOW_BACKEND=codegen``); emitted sources are registered with
:mod:`linecache` so tracebacks show real kernel lines, not ``<string>``.

When :mod:`numba` is importable *and* ``FUSEFLOW_CODEGEN_NUMBA=1`` is set,
kernels are additionally ``@njit``-wrapped, falling back to the plain
compiled function on any numba typing failure (the kernels traffic in
tuples, dicts, and tensor objects, which nopython mode typically rejects
— see ``docs/backends.md`` for the caveats).
"""

from __future__ import annotations

import hashlib
import linecache
import os
import threading
import time
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..ftree.tensor import SparseTensor
from ..sam.graph import SAMGraph
from ..sam.primitives.base import NodeStats
from ..sam.primitives.compute import _BINARY_OPS, _UNARY_OPS
from ..sam.primitives.fiberops import _apply_over_fiber, _layernorm, _softmax
from ..sam.primitives.joiner import _control_mismatch, _require_aligned
from ..sam.token import StreamProtocolError, check_stream, stream_to_nest
from .base import Backend

__all__ = [
    "CodegenBackend",
    "CodegenError",
    "RegionArtifact",
    "artifact_for",
    "codegen_cache_info",
    "clear_codegen_caches",
    "numba_available",
    "try_run_codegen",
]

_TRUTHY = ("1", "true", "yes", "on")


class CodegenError(RuntimeError):
    """A generated kernel failed for a non-protocol reason."""


def numba_available() -> bool:
    """Whether :mod:`numba` can be imported (never installs anything)."""
    try:
        import numba  # noqa: F401
    except Exception:
        return False
    return True


def _numba_requested() -> bool:
    return os.environ.get("FUSEFLOW_CODEGEN_NUMBA", "").lower() in _TRUTHY


@dataclass
class RegionArtifact:
    """The compiled form of one region under the codegen backend.

    Attributes
    ----------
    region : str
        Name of the region graph this artifact was emitted from.
    source : str
        The emitted Python source (empty when the region fell back).
    loc : int
        Emitted lines of code.
    node_count : int
        Nodes of the region graph.
    emit_seconds : float
        Wall time spent emitting the source.
    compile_seconds : float
        Wall time spent in ``compile()``/``exec`` (0 on a code-cache hit).
    fallback : str
        Empty when the region compiled; otherwise the reason the region
        runs on the columnar interpreter instead.
    code_cached : bool
        True when the code object came from the per-source cache.
    uses_numba : bool
        True when the kernel was additionally ``@njit``-wrapped.
    fn : callable or None
        The compiled kernel, or ``None`` when ``fallback`` is set.
    sha : str
        SHA-256 hex digest of ``source`` (the code-cache key).
    """

    region: str
    source: str = ""
    loc: int = 0
    node_count: int = 0
    emit_seconds: float = 0.0
    compile_seconds: float = 0.0
    fallback: str = ""
    code_cached: bool = False
    uses_numba: bool = False
    fn: Optional[Callable] = None
    sha: str = ""


# ----------------------------------------------------------------------
# Caches
# ----------------------------------------------------------------------

#: graph -> (topological order list, artifact).  The order list's identity
#: doubles as a structure-version tag: SAMGraph rebuilds it on mutation.
#: Weak keys bound this cache by graph lifetime.
_GRAPH_ARTIFACTS: "weakref.WeakKeyDictionary[SAMGraph, Tuple[Any, RegionArtifact]]" = (
    weakref.WeakKeyDictionary()
)

#: source sha -> compiled code object, shared across graphs.  A bounded
#: LRU: unlike the weak per-graph cache, nothing ties these entries to a
#: live object, so an unbounded dict leaks every distinct emitted source
#: for the life of a serve process.
_CODE_CACHE: "OrderedDict[str, Any]" = OrderedDict()

#: source sha -> linecache filenames registered for it, purged on eviction
#: (multiple graphs may register the same source under different names).
_CODE_FILES: Dict[str, List[str]] = {}

#: Entry cap for the cross-graph source cache.
CODE_CACHE_LIMIT = 256

#: Guards the caches and counters: the threaded serve front end compiles
#: from many threads, and unguarded ``dict`` updates lose counts (and can
#: tear the LRU ordering).
_CACHE_LOCK = threading.Lock()

_COUNTERS = {
    "artifact_hits": 0,
    "artifact_misses": 0,
    "code_hits": 0,
    "code_misses": 0,
    "code_evictions": 0,
    "fallbacks": 0,
}


def codegen_cache_info() -> Dict[str, int]:
    """Snapshot of the artifact/code cache counters (for ``--profile``).

    Includes ``code_entries``/``code_limit`` so a long-lived process can
    observe the bounded LRU's occupancy alongside the hit counters.
    """
    with _CACHE_LOCK:
        info = dict(_COUNTERS)
        info["code_entries"] = len(_CODE_CACHE)
        info["code_limit"] = CODE_CACHE_LIMIT
    return info


def clear_codegen_caches() -> None:
    """Drop compiled artifacts and reset counters (tests only)."""
    with _CACHE_LOCK:
        _GRAPH_ARTIFACTS.clear()
        for sha in list(_CODE_FILES):
            _purge_code_entry_locked(sha)
        _CODE_CACHE.clear()
        _CODE_FILES.clear()
        for key in _COUNTERS:
            _COUNTERS[key] = 0


def _purge_code_entry_locked(sha: str) -> None:
    """Drop one source-cache entry and its linecache registrations."""
    _CODE_CACHE.pop(sha, None)
    for filename in _CODE_FILES.pop(sha, ()):
        linecache.cache.pop(filename, None)


# ----------------------------------------------------------------------
# Shared kernel runtime (exec globals)
# ----------------------------------------------------------------------


def _get_tensor(binding: Dict[str, Any], name: str):
    """Bound tensor lookup with the interpreter's error message."""
    try:
        return binding[name]
    except KeyError:
        raise KeyError(
            f"tensor {name!r} not bound (have {sorted(binding)})"
        ) from None


def _dbg_check(stream, node_id: str, port_name: str) -> None:
    """Per-stream protocol validation, worded like the interpreter's."""
    if len(stream):
        try:
            check_stream(stream)
        except StreamProtocolError as exc:
            raise StreamProtocolError(
                f"node {node_id} port {port_name!r}: {exc}"
            ) from exc


def _fibermax_fn(x: np.ndarray, axis: int) -> np.ndarray:
    return np.broadcast_to(np.max(x, axis=axis, keepdims=True), x.shape).copy()


_FIBER_FNS: Dict[str, Callable] = {
    "softmax": _softmax,
    "layernorm": _layernorm,
    "fibermax": _fibermax_fn,
}

#: Names every generated kernel can reference.  Per-graph runtime objects
#: (writer formats, source streams) are layered on top per exec.
_SHARED_GLOBALS: Dict[str, Any] = {
    "np": np,
    "StreamProtocolError": StreamProtocolError,
    "SparseTensor": SparseTensor,
    "stream_to_nest": stream_to_nest,
    "_apply_over_fiber": _apply_over_fiber,
    "_require_aligned": _require_aligned,
    "_control_mismatch": _control_mismatch,
    "_get_tensor": _get_tensor,
    "_dbg": _dbg_check,
    "_BINARY_OPS": _BINARY_OPS,
    "_UNARY_OPS": _UNARY_OPS,
    "_FIBER_FNS": _FIBER_FNS,
}


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------


class _Unsupported(Exception):
    """Raised by an emitter to trigger region-level interpreter fallback."""


class _Emitter:
    """Walks one region graph and emits its kernel source."""

    def __init__(self, graph: SAMGraph, order: List[str]) -> None:
        self.graph = graph
        self.order = order
        self.lines: List[str] = []
        self.indent = 1
        # Runtime objects the source cannot express literally, injected
        # into the exec globals per graph (names are deterministic given
        # the source, so sharing the code object across graphs is sound).
        self.env: Dict[str, Any] = {}
        # (node_id, port) -> local variable holding the stream.
        self.var: Dict[Tuple[str, str], str] = {}

    # -- infrastructure -------------------------------------------------
    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def emit(self) -> str:
        self.lines.append(
            "def _region_kernel(binding, stats, results, "
            "scratchpad_bytes, debug_streams, _cur):"
        )
        self.w("_ET = (5, None)")
        self.w("_DT = (4, None)")
        for i, node_id in enumerate(self.order):
            node = self.graph.nodes[node_id]
            prim = node.prim
            emitter = getattr(self, f"_emit_{prim.kind}", None)
            if emitter is None:
                raise _Unsupported(
                    f"unsupported primitive kind {prim.kind!r} at node {node_id}"
                )
            self.w()
            self.w(f"# -- {node_id}: {prim.describe()} --")
            self.w(f"_cur[0] = {node_id!r}")
            self.w(f"_st = stats[{node_id!r}]")
            outs = [f"s{i}_{p}" for p in prim.out_ports]
            emitter(i, node_id, node, prim)
            for port, var in zip(prim.out_ports, outs):
                self.var[(node_id, port)] = var
            self.w("if debug_streams:")
            for port, var in zip(prim.out_ports, outs):
                self.w(f"    _dbg({var}, {node_id!r}, {port!r})")
        self.w()
        self.w("return {")
        for node_id in self.order:
            node = self.graph.nodes[node_id]
            for port in node.prim.out_ports:
                var = self.var[(node_id, port)]
                self.w(f"    ({node_id!r}, {port!r}): {var},")
        self.w("}")
        return "\n".join(self.lines) + "\n"

    def _in(self, node, port: str) -> str:
        src = node.inputs[port]
        return self.var[(src.node_id, src.port)]

    def _bind(self, name: str, obj: Any) -> str:
        self.env[name] = obj
        return name

    # -- per-kind emitters ----------------------------------------------
    def _emit_root(self, i, node_id, node, prim) -> None:
        self.w(f"s{i}_ref = [(1, 0), _DT]")
        self.w("_st.tokens_out += 2")

    def _emit_source(self, i, node_id, node, prim) -> None:
        src = self._bind(f"_SRC{i}", prim.stream)
        self.w(f"s{i}_out = list({src})")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_scan(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w(f"_lvl = _t.levels[{prim.level}]")
        self.w('_comp = _lvl.kind == "compressed"')
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_ref = []")
        self.w(f"_ca = s{i}_crd.append")
        self.w(f"_ra = s{i}_ref.append")
        self.w("_open = False")
        if dram:
            self.w("_ab = 0")
        self.w(f"_st.tokens_in += len({ref_in})")
        self.w(f"for _tok in {ref_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 1:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _coords, _children = _lvl.fiber(_tok[1])")
        self.w("        for _c, _ch in zip(_coords, _children):")
        self.w("            _ca((0, _c))")
        self.w("            _ra((1, _ch))")
        if dram:
            self.w("        if _comp:")
            self.w("            _ab += 8 + 4 * len(_coords)")
        self.w("        _open = True")
        self.w("    elif _k == 5:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _open = True")
        self.w("    elif _k == 3:")
        self.w("        _p = _tok[1] + 1")
        self.w("        _ca((3, _p))")
        self.w("        _ra((3, _p))")
        self.w("        _open = False")
        self.w("    elif _k == 4:")
        self.w("        if _open:")
        self.w("            _ca((3, 0))")
        self.w("            _ra((3, 0))")
        self.w("        _ca(_DT)")
        self.w("        _ra(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"scanner got unexpected token kind {_k}\")"
        )
        if dram:
            self.w("if _comp:")
            self.w("    _fp = _t.bytes_structure()")
            self.w("    if _fp <= scratchpad_bytes:")
            self.w("        _st.dram_reads += min(_ab, _fp)")
            self.w("    else:")
            self.w("        _st.dram_reads += _ab")
        self.w(f"_st.tokens_out += len(s{i}_crd) + len(s{i}_ref)")

    def _emit_locate(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w(f"_lvl = _t.levels[{prim.level}]")
        self.w('_dense = _lvl.kind == "dense"')
        self.w(f"s{i}_ref = []")
        self.w(f"_o = s{i}_ref.append")
        self.w(f"_st.tokens_in += len({crd_in})")
        self.w(f"for _tok in {crd_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w("        if _dense:")
        self.w("            _o((1, _tok[1]))")
        self.w("        else:")
        self.w("            _coords, _children = _lvl.fiber(0)")
        self.w("            _found = False")
        self.w("            for _c, _ch in zip(_coords, _children):")
        self.w("                if _c == _tok[1]:")
        self.w("                    _o((1, _ch))")
        self.w("                    _found = True")
        self.w("                    break")
        self.w("            if not _found:")
        self.w("                _o(_ET)")
        if dram:
            self.w("            _st.dram_reads += 8")
        self.w("    elif _k == 3 or _k == 4 or _k == 5:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"locate got unexpected token kind {_k}\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_ref)")

    def _emit_joiner(self, i, node_id, node, prim, keep_all: bool) -> None:
        kind = prim.kind
        ca, ra = self._in(node, "crd_a"), self._in(node, "ref_a")
        cb, rb = self._in(node, "crd_b"), self._in(node, "ref_b")
        self.w(f"_require_aligned({ca}, {ra}, \"{kind}(a)\", {node_id!r})")
        self.w(f"_require_aligned({cb}, {rb}, \"{kind}(b)\", {node_id!r})")
        self.w(
            f"_st.tokens_in += len({ca}) + len({cb}) + len({ra}) + len({rb})"
        )
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_ref_a = []")
        self.w(f"s{i}_ref_b = []")
        self.w(f"_oc = s{i}_crd.append")
        self.w(f"_oa = s{i}_ref_a.append")
        self.w(f"_ob = s{i}_ref_b.append")
        self.w("_ia = 0")
        self.w("_ib = 0")
        self.w(f"_na = len({ca})")
        self.w(f"_nb = len({cb})")
        self.w("while _ia < _na and _ib < _nb:")
        self.w(f"    _ta = {ca}[_ia]")
        self.w(f"    _tb = {cb}[_ib]")
        self.w("    _ka = _ta[0]")
        self.w("    _kb = _tb[0]")
        self.w("    if _ka == 0 and _kb == 0:")
        self.w("        _va = _ta[1]")
        self.w("        _vb = _tb[1]")
        self.w("        if _va == _vb:")
        self.w("            _oc(_ta)")
        self.w(f"            _oa({ra}[_ia])")
        self.w(f"            _ob({rb}[_ib])")
        self.w("            _ia += 1")
        self.w("            _ib += 1")
        self.w("        elif _va < _vb:")
        if keep_all:
            self.w("            _oc(_ta)")
            self.w(f"            _oa({ra}[_ia])")
            self.w("            _ob(_ET)")
        self.w("            _ia += 1")
        self.w("        else:")
        if keep_all:
            self.w("            _oc(_tb)")
            self.w("            _oa(_ET)")
            self.w(f"            _ob({rb}[_ib])")
        self.w("            _ib += 1")
        self.w("    elif _ka == 0:")
        if keep_all:
            self.w("        _oc(_ta)")
            self.w(f"        _oa({ra}[_ia])")
            self.w("        _ob(_ET)")
        self.w("        _ia += 1")
        self.w("    elif _kb == 0:")
        if keep_all:
            self.w("        _oc(_tb)")
            self.w("        _oa(_ET)")
            self.w(f"        _ob({rb}[_ib])")
        self.w("        _ib += 1")
        self.w("    else:")
        self.w("        if _ta != _tb:")
        self.w(
            f"            raise _control_mismatch({kind!r}, {node_id!r}, "
            "_ia, _ib, _ta, _tb)"
        )
        self.w("        _oc(_ta)")
        self.w("        _oa(_ta)")
        self.w("        _ob(_ta)")
        self.w("        _ia += 1")
        self.w("        _ib += 1")
        self.w("        if _ka == 4:")
        self.w("            break")
        self.w(
            f"_st.tokens_out += len(s{i}_crd) + len(s{i}_ref_a) "
            f"+ len(s{i}_ref_b)"
        )

    def _emit_intersect(self, i, node_id, node, prim) -> None:
        self._emit_joiner(i, node_id, node, prim, keep_all=False)

    def _emit_union(self, i, node_id, node, prim) -> None:
        self._emit_joiner(i, node_id, node, prim, keep_all=True)

    #: Binary ops worth inlining as expressions (the rest call the table fn).
    _INLINE_BINARY = {"add": "_va + _vb", "sub": "_va - _vb", "mul": "_va * _vb"}

    def _emit_alu(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        op = prim.op
        expr = self._INLINE_BINARY.get(op)
        if expr is None:
            self.w(f"_fn = _BINARY_OPS[{op!r}]")
            expr = "_fn(_va, _vb)"
        self.w(f"if len({a}) != len({b}):")
        self.w(
            "    raise StreamProtocolError("
            f"f\"alu({op}): misaligned inputs ({{len({a})}} vs {{len({b})}})\")"
        )
        self.w(f"_st.tokens_in += len({a}) + len({b})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_ops = 0")
        self.w(f"for _ta, _tb in zip({a}, {b}):")
        self.w("    _ka = _ta[0]")
        self.w("    if _ka == 3 or _ka == 4:")
        self.w("        if _ta != _tb:")
        self.w(
            "            raise StreamProtocolError("
            f"f\"alu({op}): control mismatch {{_ta}} vs {{_tb}}\")"
        )
        self.w("        _o(_ta)")
        self.w("    elif _ka == 5 and _tb[0] == 5:")
        self.w("        _o(_ta)")
        self.w("    else:")
        self.w("        _va = 0.0 if _ka == 5 else _ta[1]")
        self.w("        _vb = 0.0 if _tb[0] == 5 else _tb[1]")
        self.w(f"        _r = {expr}")
        if op in ("bmm", "bmt"):
            self.w("        if isinstance(_r, np.ndarray) and _r.ndim == 2:")
            self.w(
                "            _ops += 2 * _r.shape[0] * _r.shape[1] * ("
                "_va.shape[1] if isinstance(_va, np.ndarray) "
                "and _va.ndim == 2 else 1)"
            )
            self.w("        else:")
            self.w(
                "            _ops += int(_r.size) "
                "if isinstance(_r, np.ndarray) else 1"
            )
        else:
            self.w(
                "        _ops += int(_r.size) "
                "if isinstance(_r, np.ndarray) else 1"
            )
        self.w("        _o((2, _r))")
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_ualu(self, i, node_id, node, prim) -> None:
        a = self._in(node, "a")
        scaled = prim.scale != 1.0 or prim.offset != 0.0
        self.w(f"_fn = _UNARY_OPS[{prim.op!r}]")
        self.w(f"_st.tokens_in += len({a})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_ops = 0")
        self.w(f"for _tok in {a}:")
        self.w("    if _tok[0] == 2:")
        if scaled:
            self.w(f"        _x = {prim.scale!r} * _tok[1] + {prim.offset!r}")
        else:
            self.w("        _x = _tok[1]")
        self.w("        _r = _fn(_x)")
        self.w(
            "        _ops += int(_r.size) if isinstance(_r, np.ndarray) else 1"
        )
        self.w("        _o((2, _r))")
        self.w("    else:")
        self.w("        _o(_tok)")
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_array(self, i, node_id, node, prim) -> None:
        ref_in = self._in(node, "ref")
        dram = prim.dram
        self.w(f"_t = _get_tensor(binding, {prim.tensor_name!r})")
        self.w("_vals = _t.values")
        self.w("_blocked = _vals.ndim > 1")
        self.w("_zero = np.zeros(_vals.shape[1:]) if _blocked else 0.0")
        if dram:
            self.w(
                "_eb = int(np.prod(_vals.shape[1:])) * 8 if _blocked else 8"
            )
            self.w("_nref = 0")
        self.w(f"s{i}_val = []")
        self.w(f"_o = s{i}_val.append")
        self.w(f"_st.tokens_in += len({ref_in})")
        self.w(f"for _tok in {ref_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 1:")
        self.w("        _o((2, _vals[_tok[1]]))")
        if dram:
            self.w("        _nref += 1")
        self.w("    elif _k == 5:")
        self.w("        _o((2, _zero))")
        self.w("    elif _k == 3 or _k == 4:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"array got unexpected token kind {_k}\")"
        )
        if dram:
            self.w("_fp = int(_vals.size) * 8")
            self.w("_ab = _eb * _nref")
            self.w("if _fp <= scratchpad_bytes:")
            self.w("    _st.dram_reads += min(_ab, _fp)")
            self.w("else:")
            self.w("    _st.dram_reads += _ab")
        self.w(f"_st.tokens_out += len(s{i}_val)")

    def _emit_reduce(self, i, node_id, node, prim) -> None:
        val_in = self._in(node, "val")
        self.w(f"s{i}_val = []")
        self.w(f"_o = s{i}_val.append")
        self.w("_acc = None")
        self.w("_ops = 0")
        self.w(f"_st.tokens_in += len({val_in})")
        self.w(f"for _tok in {val_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 2:")
        self.w("        if _acc is None:")
        self.w("            _acc = _tok[1]")
        self.w("        else:")
        self.w("            _acc = _acc + _tok[1]")
        self.w(
            "            _ops += 1 if not isinstance(_acc, np.ndarray) "
            "else int(_acc.size)"
        )
        self.w("    elif _k == 5:")
        self.w("        if _acc is None:")
        self.w("            _acc = 0.0")
        self.w("    elif _k == 3:")
        self.w("        _o((2, _acc if _acc is not None else 0.0))")
        self.w("        _acc = None")
        self.w("        if _tok[1] > 0:")
        self.w("            _o((3, _tok[1] - 1))")
        self.w("    elif _k == 4:")
        self.w("        if _acc is not None:")
        self.w("            _o((2, _acc))")
        self.w("            _acc = None")
        self.w("        _o(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"reduce got unexpected token kind {_k}\")"
        )
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_val)")

    def _emit_vreduce(self, i, node_id, node, prim) -> None:
        n = prim.order
        val_in = self._in(node, "val")
        crd_ins = [self._in(node, f"crd{d}") for d in range(n)]
        self.w(f"_crds = [{', '.join(crd_ins)}]")
        self.w(f"for _d in range({n}):")
        self.w(f"    if len(_crds[_d]) != len({val_in}):")
        self.w(
            "        raise StreamProtocolError("
            "f\"vreduce: crd{_d}/val misaligned \""
            f"f\"({{len(_crds[_d])}} vs {{len({val_in})}})\")"
        )
        self.w(f"_st.tokens_in += len({val_in}) * {n + 1}")
        self.w(f"_ocrds{i} = [[] for _d in range({n})]")
        self.w(f"_oval{i} = []")
        self.w(f"_acc{i} = {{}}")
        self.w(f"def _emit_group{i}():")
        self.w(f"    _keys = sorted(_acc{i})")
        self.w("    _prev = None")
        self.w("    for _key in _keys:")
        self.w("        if _prev is not None:")
        self.w("            _common = 0")
        self.w(
            f"            while _common < {n} "
            "and _prev[_common] == _key[_common]:"
        )
        self.w("                _common += 1")
        self.w(f"            for _d in range({n}):")
        self.w("                if _common <= _d - 1:")
        self.w(
            f"                    _ocrds{i}[_d].append((3, _d - 1 - _common))"
        )
        self.w(f"            if _common <= {n - 2}:")
        self.w(f"                _oval{i}.append((3, {n - 2} - _common))")
        self.w(f"        for _d in range({n}):")
        self.w(
            "        "
            "    if _prev is None or _key[: _d + 1] != _prev[: _d + 1]:"
        )
        self.w(f"                _ocrds{i}[_d].append((0, _key[_d]))")
        self.w(f"        _oval{i}.append((2, _acc{i}[_key]))")
        self.w("        _prev = _key")
        self.w(f"    _acc{i}.clear()")
        self.w(f"def _close_group{i}(_lvl):")
        self.w(f"    _extra = _lvl - {n}")
        self.w(f"    for _d in range({n}):")
        self.w(f"        _ocrds{i}[_d].append((3, _d + _extra))")
        self.w(f"    _oval{i}.append((3, _lvl - 1))")
        self.w("_ops = 0")
        self.w("_pos = 0")
        self.w(f"for _tv in {val_in}:")
        self.w("    _kv = _tv[0]")
        self.w("    if _kv == 2 or _kv == 5:")
        self.w("        _key = []")
        self.w(f"        for _d in range({n}):")
        self.w("            _tc = _crds[_d][_pos]")
        self.w("            if _tc[0] != 0:")
        self.w(
            "                raise StreamProtocolError("
            "f\"vreduce: crd{_d} token {_tc} does not align with value\")"
        )
        self.w("            _key.append(_tc[1])")
        self.w("        _key_t = tuple(_key)")
        self.w("        _value = 0.0 if _kv == 5 else _tv[1]")
        self.w(f"        if _key_t in _acc{i}:")
        self.w(f"            _acc{i}[_key_t] = _acc{i}[_key_t] + _value")
        self.w(
            "            _ops += int(_value.size) "
            "if isinstance(_value, np.ndarray) else 1"
        )
        self.w("        else:")
        self.w(f"            _acc{i}[_key_t] = _value")
        self.w("    elif _kv == 3:")
        self.w("        _lvl = _tv[1]")
        self.w(f"        for _d in range({n}):")
        self.w("            _tc = _crds[_d][_pos]")
        self.w("            if _tc[0] != 3 or _tc[1] != _lvl:")
        self.w(
            "                raise StreamProtocolError("
            "\"vreduce: stop tokens disagree\")"
        )
        self.w(f"        if _lvl >= {n}:")
        self.w(f"            _emit_group{i}()")
        self.w(f"            _close_group{i}(_lvl)")
        self.w("    elif _kv == 4:")
        self.w(f"        if _acc{i}:")
        self.w(f"            _emit_group{i}()")
        self.w(f"            _close_group{i}({n})")
        self.w(f"        for _d in range({n}):")
        self.w(f"            _ocrds{i}[_d].append(_DT)")
        self.w(f"        _oval{i}.append(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"vreduce got unexpected token kind {_kv}\")"
        )
        self.w("    _pos += 1")
        self.w("_st.ops += _ops")
        self.w(
            f"_st.tokens_out += sum(len(_s) for _s in _ocrds{i}) "
            f"+ len(_oval{i})"
        )
        for d in range(n):
            self.w(f"s{i}_crd{d} = _ocrds{i}[{d}]")
        self.w(f"s{i}_val = _oval{i}")

    def _emit_crddrop(self, i, node_id, node, prim) -> None:
        crd_in, val_in = self._in(node, "crd"), self._in(node, "val")
        self.w(f"if len({crd_in}) != len({val_in}):")
        self.w(
            "    raise StreamProtocolError(\"crddrop: crd/val misaligned\")"
        )
        self.w(f"_st.tokens_in += len({crd_in}) + len({val_in})")
        self.w(f"s{i}_crd = []")
        self.w(f"s{i}_val = []")
        self.w(f"_oc = s{i}_crd.append")
        self.w(f"_ov = s{i}_val.append")
        self.w(f"for _tc, _tv in zip({crd_in}, {val_in}):")
        self.w("    if _tc[0] == 0:")
        self.w("        _v = _tv[1]")
        self.w("        if isinstance(_v, np.ndarray):")
        self.w("            _is_zero = float(np.abs(_v).max()) == 0.0")
        self.w("        else:")
        self.w("            _is_zero = _v == 0.0")
        self.w("        if not _is_zero:")
        self.w("            _oc(_tc)")
        self.w("            _ov(_tv)")
        self.w("    else:")
        self.w("        _oc(_tc)")
        self.w("        _ov(_tv)")
        self.w(f"_st.tokens_out += len(s{i}_crd) + len(s{i}_val)")

    def _emit_aligncheck(self, i, node_id, node, prim) -> None:
        a, b = self._in(node, "a"), self._in(node, "b")
        self.w(f"_st.tokens_in += len({a}) + len({b})")
        self.w(f"if {a} != {b}:")
        self.w(
            "    raise StreamProtocolError("
            "\"aligned-adopt streams differ; the fusion schedule requires a \""
            "\"materialization boundary between these statements\")"
        )
        self.w(f"_st.tokens_out += len({a})")
        self.w(f"s{i}_out = list({a})")

    def _emit_repeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w("_bi = 0")
        self.w(f"_nb = len({base})")
        self.w(f"for _tok in {rep}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w(f"        _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("        if _bk == 3 or _bk == 4:")
        self.w(
            "            raise StreamProtocolError(\"repeat: rep stream has "
            "coordinates but base has none current\")"
        )
        self.w(f"        _o({base}[_bi])")
        self.w("    elif _k == 3:")
        self.w("        _o(_tok)")
        self.w(f"        _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("        if _bk != 3 and _bk != 4:")
        self.w("            _bi += 1")
        self.w("        if _tok[1] >= 1:")
        self.w(f"            _bk = {base}[_bi][0] if _bi < _nb else 4")
        self.w("            if _bk != 3:")
        self.w(
            "                raise StreamProtocolError("
            "f\"repeat: rep stop {_tok[1]} expects a base stop \""
            f"f\"{{_tok[1] - 1}}, found "
            f"{{{base}[_bi] if _bi < _nb else 'EOS'}}\")"
        )
        self.w(f"            if {base}[_bi][1] != _tok[1] - 1:")
        self.w(
            "                raise StreamProtocolError("
            "f\"repeat: rep stop {_tok[1]} mismatches base stop \""
            f"f\"{{{base}[_bi][1]}}\")"
        )
        self.w("            _bi += 1")
        self.w("    elif _k == 4:")
        self.w("        _o(_DT)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"repeat: unexpected token kind {_k} on rep stream\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_repsig(self, i, node_id, node, prim) -> None:
        crd_in = self._in(node, "crd")
        self.w(f"s{i}_out = list({crd_in})")
        self.w(f"_st.tokens_in += len(s{i}_out)")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_srepeat(self, i, node_id, node, prim) -> None:
        base, rep = self._in(node, "base"), self._in(node, "rep")
        self.w(f"_st.tokens_in += len({base}) + len({rep})")
        self.w(
            f"_pays = [_t for _t in {base} if _t[0] != 3 and _t[0] != 4]"
        )
        self.w("if len(_pays) != 1:")
        self.w(
            "    raise StreamProtocolError("
            "f\"scalar repeat expects exactly one base payload, "
            "got {len(_pays)}\")"
        )
        self.w("_p = _pays[0]")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w(f"for _tok in {rep}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 0:")
        self.w("        _o(_p)")
        self.w("    elif _k == 3 or _k == 4:")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            "f\"scalar repeat: unexpected token kind {_k} on rep stream\")"
        )
        self.w(f"_st.tokens_out += len(s{i}_out)")

    def _emit_fiberop(self, i, node_id, node, prim) -> None:
        val_in = self._in(node, "val")
        kind = prim.kind
        fpe = prim.flops_per_elem
        self.w(f"_fn = _FIBER_FNS[{kind!r}]")
        self.w(f"s{i}_out = []")
        self.w(f"_o = s{i}_out.append")
        self.w(f"_buf{i} = []")
        self.w(f"_st.tokens_in += len({val_in})")
        self.w("_ops = 0")
        self.w(f"for _tok in {val_in}:")
        self.w("    _k = _tok[0]")
        self.w("    if _k == 2:")
        self.w(f"        _buf{i}.append(_tok[1])")
        self.w("    elif _k == 5:")
        self.w(f"        _buf{i}.append(0.0)")
        self.w("    elif _k == 3 or _k == 4:")
        self.w(f"        if _buf{i}:")
        self.w(f"            for _r in _apply_over_fiber(_buf{i}, _fn):")
        self.w("                _o((2, _r))")
        self.w(
            f"                _ops += {fpe} * (int(_r.size) "
            "if isinstance(_r, np.ndarray) else 1)"
        )
        self.w(f"            _buf{i}.clear()")
        self.w("        _o(_tok)")
        self.w("    else:")
        self.w(
            "        raise StreamProtocolError("
            f"f\"{kind} got token kind {{_k}}\")"
        )
        self.w("_st.ops += _ops")
        self.w(f"_st.tokens_out += len(s{i}_out)")

    _emit_softmax = _emit_fiberop
    _emit_layernorm = _emit_fiberop
    _emit_fibermax = _emit_fiberop

    def _emit_write(self, i, node_id, node, prim) -> None:
        n = len(prim.shape)
        name = prim.tensor_name
        crd_ins = [self._in(node, f"crd{d}") for d in range(n)]
        val_in = self._in(node, "val")
        fmt = self._bind(f"_fmt{i}", prim.fmt)
        self.w(
            "_st.tokens_in += "
            + " + ".join(f"len({s})" for s in crd_ins + [val_in])
        )
        self.w(f"_nests{i} = [")
        for d, s in enumerate(crd_ins):
            self.w(f"    stream_to_nest({s}, {d + 1}, check=debug_streams),")
        self.w("]")
        self.w(f"_vals{i} = stream_to_nest({val_in}, {n}, check=debug_streams)")
        self.w(f"_coords{i} = {{}}")
        self.w(f"def _rec{i}(_depth, _frames, _vals, _prefix):")
        self.w("    _ch = _frames[0]")
        self.w("    if len(_ch) != len(_vals):")
        self.w(
            "        raise StreamProtocolError("
            f"f\"writer {name}: level {{_depth}} crd/val fan-out \""
            "f\"mismatch ({len(_ch)} vs {len(_vals)})\")"
        )
        self.w("    for _j, _c in enumerate(_ch):")
        self.w("        _path = _prefix + (_c,)")
        self.w(f"        if _depth == {n - 1}:")
        self.w(f"            _coords{i}[_path] = _vals[_j]")
        self.w("        else:")
        self.w(
            f"            _rec{i}(_depth + 1, "
            "[_f[_j] for _f in _frames[1:]], _vals[_j], _path)"
        )
        self.w(f"_rec{i}(0, _nests{i}, _vals{i}, ())")
        if prim.drop_zeros:
            self.w(f"_coords{i} = {{")
            self.w(f"    _p: _v for _p, _v in _coords{i}.items()")
            self.w(
                "    if (np.abs(_v).max() if isinstance(_v, np.ndarray) "
                "else abs(_v)) != 0.0"
            )
            self.w("}")
        self.w(
            f"_tw = SparseTensor.from_coords({prim.shape!r}, {fmt}, "
            f"_coords{i}, name={name!r})"
        )
        if prim.dram:
            self.w("_st.dram_writes += _tw.bytes_total()")
        self.w(f"results[{name!r}] = _tw")
        self.w(f"s{i}_tensor = []")


# ----------------------------------------------------------------------
# Compilation and execution
# ----------------------------------------------------------------------


def _compile_artifact(graph: SAMGraph, order: List[str]) -> RegionArtifact:
    started = time.perf_counter()
    emitter = _Emitter(graph, order)
    try:
        source = emitter.emit()
    except _Unsupported as exc:
        with _CACHE_LOCK:
            _COUNTERS["fallbacks"] += 1
        return RegionArtifact(
            region=graph.name,
            node_count=len(order),
            emit_seconds=time.perf_counter() - started,
            fallback=str(exc),
        )
    emit_seconds = time.perf_counter() - started
    sha = hashlib.sha256(source.encode("utf-8")).hexdigest()
    filename = f"<fuseflow-codegen {graph.name} {sha[:12]}>"
    compile_started = time.perf_counter()
    with _CACHE_LOCK:
        code = _CODE_CACHE.get(sha)
        cached = code is not None
        if cached:
            _COUNTERS["code_hits"] += 1
            _CODE_CACHE.move_to_end(sha)
    if not cached:
        # compile() runs outside the lock (it is the slow part); the
        # re-insert below keeps the cache single-valued under races.
        code = compile(source, filename, "exec")
        with _CACHE_LOCK:
            incumbent = _CODE_CACHE.get(sha)
            if incumbent is not None:
                code = incumbent
                _CODE_CACHE.move_to_end(sha)
            else:
                _CODE_CACHE[sha] = code
                # Register the source so tracebacks out of the kernel show
                # real lines instead of an opaque <string> frame.
                linecache.cache[filename] = (
                    len(source),
                    None,
                    source.splitlines(True),
                    filename,
                )
                _CODE_FILES.setdefault(sha, []).append(filename)
                while len(_CODE_CACHE) > CODE_CACHE_LIMIT:
                    oldest = next(iter(_CODE_CACHE))
                    _purge_code_entry_locked(oldest)
                    _COUNTERS["code_evictions"] += 1
            _COUNTERS["code_misses"] += 1
    namespace = dict(_SHARED_GLOBALS)
    namespace.update(emitter.env)
    exec(code, namespace)
    fn = namespace["_region_kernel"]
    fn, uses_numba = _maybe_njit(fn)
    return RegionArtifact(
        region=graph.name,
        source=source,
        loc=source.count("\n"),
        node_count=len(order),
        emit_seconds=emit_seconds,
        compile_seconds=time.perf_counter() - compile_started,
        code_cached=cached,
        uses_numba=uses_numba,
        fn=fn,
        sha=sha,
    )


def _maybe_njit(fn: Callable) -> Tuple[Callable, bool]:
    """Optionally wrap ``fn`` with numba, falling back on typing failure."""
    if not _numba_requested() or not numba_available():
        return fn, False
    import numba

    try:
        jitted = numba.njit(fn)
    except Exception:
        return fn, False

    def wrapper(*args, _jitted=jitted, _plain=fn):
        try:
            return _jitted(*args)
        except numba.errors.NumbaError:
            # nopython typing rejected the kernel (tuple/dict/object
            # traffic); the plain compiled function is the result.
            return _plain(*args)

    return wrapper, True


def artifact_for(graph: SAMGraph) -> RegionArtifact:
    """The compiled :class:`RegionArtifact` for ``graph``, cached.

    Parameters
    ----------
    graph:
        A lowered region graph.  The artifact is cached weakly per graph
        and invalidated when the graph's topological order is rebuilt
        (i.e. on structural mutation).

    Returns
    -------
    RegionArtifact
        With ``fn`` set, or ``fallback`` naming the unsupported primitive.
    """
    graph.ensure_validated()
    order = graph.topological_order()
    with _CACHE_LOCK:
        cached = _GRAPH_ARTIFACTS.get(graph)
        if cached is not None and cached[0] is order:
            _COUNTERS["artifact_hits"] += 1
            return cached[1]
        _COUNTERS["artifact_misses"] += 1
    artifact = _compile_artifact(graph, order)
    with _CACHE_LOCK:
        _GRAPH_ARTIFACTS[graph] = (order, artifact)
    return artifact


def try_run_codegen(
    graph: SAMGraph,
    binding: Dict[str, Any],
    scratchpad_bytes: int,
    debug_streams: bool,
):
    """Execute ``graph`` through its generated kernel.

    Parameters
    ----------
    graph, binding, scratchpad_bytes, debug_streams:
        As for :func:`repro.comal.functional.run_functional` (memoization
        is handled by the caller).

    Returns
    -------
    FunctionalResult or None
        ``None`` signals the caller to fall back to the columnar
        interpreter (unsupported primitive in the region).

    Raises
    ------
    StreamProtocolError
        Protocol violations, re-raised with node id + region context
        appended (type and original message preserved).
    KeyError
        Unbound tensors, likewise annotated.
    CodegenError
        Any other failure inside the generated kernel.
    """
    from ..comal.functional import FunctionalResult

    artifact = artifact_for(graph)
    if artifact.fn is None:
        return None
    order = graph.topological_order()
    stats = {node_id: NodeStats() for node_id in order}
    results: Dict[str, Any] = {}
    cursor = ["?"]
    try:
        streams = artifact.fn(
            binding, stats, results, scratchpad_bytes, debug_streams, cursor
        )
    except StreamProtocolError as exc:
        raise StreamProtocolError(
            f"{exc} [codegen kernel, region {graph.name!r}, node {cursor[0]}]"
        ) from exc
    except KeyError as exc:
        detail = exc.args[0] if exc.args else exc
        raise KeyError(
            f"{detail} [codegen kernel, region {graph.name!r}, "
            f"node {cursor[0]}]"
        ) from exc
    except Exception as exc:
        raise CodegenError(
            f"generated kernel for region {graph.name!r} failed at node "
            f"{cursor[0]}: {type(exc).__name__}: {exc}"
        ) from exc
    result = FunctionalResult()
    result.order = order
    result.streams = streams
    result.stats = stats
    result.results = results
    return result


class CodegenBackend(Backend):
    """Backend that executes regions through generated, compiled kernels."""

    name = "codegen"

    def describe(self) -> str:
        """One-line human-readable description."""
        numba = "numba available" if numba_available() else "no numba"
        return (
            "codegen: per-region specialized Python kernels "
            f"(compile()/exec, {numba}; unsupported regions fall back to "
            "the columnar interpreter)"
        )
