"""Backend abstraction: how a lowered fusion region gets executed.

A *backend* turns a lowered SAMML region graph plus a tensor binding into a
:class:`~repro.comal.functional.FunctionalResult`.  Three backends exist:

* ``"interp"`` — the legacy per-token interpreter (tuple-list streams);
* ``"columnar"`` — the vectorized interpreter over
  :class:`~repro.sam.token.TokenStream` columns (the default);
* ``"codegen"`` — the code-generating backend in
  :mod:`repro.backend.codegen`, which emits and compiles one specialized
  Python kernel per region and falls back to the columnar interpreter per
  region when a primitive is unsupported.

All three produce identical streams, statistics, and result tensors — the
interpreter is the executable specification, and
``tests/test_codegen_differential.py`` enforces the equivalence model by
model.  Backend selection threads through :class:`~repro.driver.session.Session`,
:class:`~repro.driver.executable.Executable`, sweeps, and the CLI; the
resolution precedence is implemented by :func:`resolve_backend_name`.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

#: Valid backend names, in documentation order.
BACKEND_NAMES = ("interp", "columnar", "codegen")

_TRUTHY = ("1", "true", "yes", "on")


def _validated(name: str) -> str:
    name = name.strip().lower()
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r} (choose from {', '.join(BACKEND_NAMES)})"
        )
    return name


def default_backend_name() -> str:
    """The environment-default backend name.

    ``FUSEFLOW_BACKEND`` wins when set; otherwise the legacy
    ``FUSEFLOW_LEGACY_STREAMS`` toggle selects between ``"interp"`` and the
    ``"columnar"`` default, exactly as before backends existed.

    Returns
    -------
    str
        One of :data:`BACKEND_NAMES`.
    """
    env = os.environ.get("FUSEFLOW_BACKEND", "")
    if env.strip():
        return _validated(env)
    legacy = os.environ.get("FUSEFLOW_LEGACY_STREAMS", "").lower() in _TRUTHY
    return "interp" if legacy else "columnar"


def resolve_backend_name(
    backend: Optional[str] = None, columnar: Optional[bool] = None
) -> str:
    """Resolve an effective backend name from the layered selectors.

    Precedence, most specific first:

    1. an explicit ``backend`` argument;
    2. an explicit ``columnar`` argument (``True`` -> ``"columnar"``,
       ``False`` -> ``"interp"`` — the pre-backend API, kept so code and
       tests that pin a stream representation keep getting it);
    3. the ``FUSEFLOW_BACKEND`` environment variable;
    4. the ``FUSEFLOW_LEGACY_STREAMS`` environment default.

    Parameters
    ----------
    backend:
        Explicit backend name or ``None``.
    columnar:
        Explicit stream-representation flag or ``None``.

    Returns
    -------
    str
        One of :data:`BACKEND_NAMES`.

    Raises
    ------
    ValueError
        If ``backend`` (or ``FUSEFLOW_BACKEND``) names no known backend.
    """
    if backend is not None:
        return _validated(backend)
    if columnar is not None:
        return "columnar" if columnar else "interp"
    return default_backend_name()


class Backend:
    """Executes lowered region graphs; subclasses define the *how*.

    Attributes
    ----------
    name : str
        The backend's registry name (one of :data:`BACKEND_NAMES`).
    """

    name = "abstract"

    def run(
        self,
        graph: Any,
        binding: Dict[str, Any],
        scratchpad_bytes: int = 1 << 16,
        *,
        debug_streams: Optional[bool] = None,
        cache: Optional[bool] = None,
    ):
        """Execute ``graph`` functionally under this backend.

        Parameters
        ----------
        graph:
            A lowered :class:`~repro.sam.graph.SAMGraph`.
        binding:
            Tensor name -> :class:`~repro.ftree.tensor.SparseTensor`.
        scratchpad_bytes:
            On-chip scratchpad capacity for the DRAM-traffic model.
        debug_streams, cache:
            Per-stream protocol validation and result memoization
            (``None`` = environment defaults).

        Returns
        -------
        FunctionalResult
            Streams, per-node statistics, and materialized tensors —
            identical across backends.
        """
        from ..comal.functional import run_functional

        return run_functional(
            graph,
            binding,
            scratchpad_bytes,
            backend=self.name,
            debug_streams=debug_streams,
            cache=cache,
        )

    def describe(self) -> str:
        """One-line human-readable description."""
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


class InterpreterBackend(Backend):
    """The reference interpreter, in either stream representation.

    Parameters
    ----------
    columnar:
        ``True`` (default) runs the vectorized ``process_columnar``
        kernels over :class:`~repro.sam.token.TokenStream` columns;
        ``False`` runs the legacy per-token ``process`` loops over
        tuple-list streams.
    """

    def __init__(self, columnar: bool = True) -> None:
        self.columnar = bool(columnar)
        self.name = "columnar" if columnar else "interp"

    def describe(self) -> str:
        """One-line human-readable description."""
        rep = "columnar TokenStream" if self.columnar else "legacy tuple-list"
        return f"{self.name}: node-by-node interpreter ({rep} streams)"


_BACKENDS: Dict[str, Backend] = {}


def get_backend(name: Optional[str] = None) -> Backend:
    """The singleton :class:`Backend` registered under ``name``.

    Parameters
    ----------
    name:
        A backend name, or ``None`` for the environment default.

    Returns
    -------
    Backend

    Raises
    ------
    ValueError
        If ``name`` names no known backend.
    """
    resolved = resolve_backend_name(name)
    backend = _BACKENDS.get(resolved)
    if backend is None:
        if resolved == "codegen":
            from .codegen import CodegenBackend

            backend = CodegenBackend()
        else:
            backend = InterpreterBackend(columnar=resolved == "columnar")
        _BACKENDS[resolved] = backend
    return backend
