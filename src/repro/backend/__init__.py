"""Pluggable execution backends for lowered fusion regions.

``repro.backend`` separates *what* a region computes (the SAM token
protocol, defined by the interpreter in :mod:`repro.comal.functional`)
from *how* it is executed.  :mod:`repro.backend.base` defines the
:class:`Backend` abstraction and name resolution;
:mod:`repro.backend.codegen` adds the code-generating backend that emits
one specialized, compiled Python kernel per region.

The codegen module is imported lazily so that importing this package (as
:mod:`repro.comal.functional` does for name resolution) never recurses
back into the functional executor mid-import.
"""

from .base import (
    BACKEND_NAMES,
    Backend,
    InterpreterBackend,
    default_backend_name,
    get_backend,
    resolve_backend_name,
)

__all__ = [
    "BACKEND_NAMES",
    "Backend",
    "InterpreterBackend",
    "CodegenBackend",
    "CodegenError",
    "RegionArtifact",
    "artifact_for",
    "codegen_cache_info",
    "default_backend_name",
    "get_backend",
    "resolve_backend_name",
]

_LAZY = {
    "CodegenBackend",
    "CodegenError",
    "RegionArtifact",
    "artifact_for",
    "codegen_cache_info",
}


def __getattr__(name):
    if name in _LAZY:
        from . import codegen

        return getattr(codegen, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
