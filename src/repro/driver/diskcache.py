"""Content-addressed persistent compile cache.

The Session cache (PR 1) is in-memory and per-process: every new process
re-pays compilation even for the schedules autotune, sweeps, and serving
traffic hit over and over.  :class:`DiskCache` is the second cache level —
a directory of entries keyed by the sha256 of everything the compiler
reads (program, schedule, pipeline, backend, hierarchy), each holding a
pickled :class:`~repro.driver.compiled.CompiledProgram` plus its compile
diagnostics and metadata.  A warm cache directory turns a cold process's
compile into a read-and-unpickle.

Safety properties, in decreasing order of importance:

* **Atomic under concurrent writers.**  Entries are written to a temp file
  in the cache directory and ``os.replace``d into place, so a reader never
  observes a half-written entry and two processes racing on the same key
  both leave a valid file (last writer wins; the entries are
  content-identical by construction).
* **Torn/corrupt entries are misses, not crashes.**  Every entry carries a
  magic header and a sha256 digest of its payload; a truncated, corrupted,
  or foreign file fails validation, is deleted, and reads as a miss — the
  caller just recompiles and rewrites it.
* **Bounded.**  ``max_entries``/``max_bytes`` caps are enforced after every
  write by evicting the least-recently-used entries (recency = file mtime,
  refreshed on every hit), so a long-lived serve fleet cannot grow the
  directory without bound.
* **Self-disabling when the disk is sick.**  Repeated consecutive ``put``
  failures (ENOSPC, a read-only directory, a vanished mount) trip a
  breaker: the disk level disables itself for the rest of the session —
  no more serialize+write attempts per compile — and reports why via
  ``info().disabled_reason`` (surfaced in ``Session.cache_info()`` and
  the serve front end's ``/v1/stats``).  One successful write resets the
  consecutive count, so a transient hiccup does not trip it.

Both ``get`` and ``put`` are fault-injection sites (``diskcache.get`` /
``diskcache.put`` — see :mod:`repro.reliability`): injected failures are
absorbed exactly like real ones (a failed read is a miss, a failed write
feeds the breaker), which is how the breaker semantics are tested.

Entries are versioned: :data:`ENTRY_MAGIC` changes whenever the serialized
form does, so caches written by an incompatible build read as misses
instead of unpickling garbage.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..reliability import InjectedFault, fault_point

__all__ = ["DiskCache", "DiskCacheInfo", "ENTRY_MAGIC", "entry_key"]

#: File magic + on-disk format version.  Bump when the entry layout or the
#: pickled object graph changes incompatibly.
ENTRY_MAGIC = b"FFDC0001"

_DIGEST_BYTES = 32  # sha256
_SUFFIX = ".ffc"


def entry_key(*parts: str) -> str:
    """The content-addressed key for one compile: sha256 over its inputs.

    Parameters
    ----------
    *parts:
        Canonical fingerprint strings, typically ``(program, schedule,
        pipeline, backend, hierarchy)``.  Same idiom as
        ``EinsumProgram.fingerprint``: a sha256 over a newline-joined
        textual rendering, so the key depends only on content.
    """
    return hashlib.sha256("\n".join(parts).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class DiskCacheInfo:
    """Snapshot of a disk cache's counters and occupancy."""

    hits: int
    misses: int
    writes: int
    corrupt: int
    evictions: int
    entries: int
    total_bytes: int
    put_failures: int = 0
    disabled_reason: Optional[str] = None

    def __str__(self) -> str:
        text = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s), {self.corrupt} corrupt, "
            f"{self.evictions} evicted, {self.entries} entr(ies), "
            f"{self.total_bytes} B"
        )
        if self.disabled_reason:
            text += f", DISABLED ({self.disabled_reason})"
        return text


class DiskCache:
    """Content-addressed on-disk cache of compiled programs.

    Parameters
    ----------
    root:
        Cache directory (created if missing).  Multiple processes may
        share one directory; writes are atomic renames.
    max_entries:
        Entry-count cap; least-recently-used entries are evicted past it.
    max_bytes:
        Total-size cap in bytes, enforced the same way.
    put_failure_limit:
        Consecutive-``put``-failure count that trips the breaker and
        disables the disk level for this instance's lifetime (a
        successful write resets the count).

    Raises
    ------
    ValueError
        If either cap or the failure limit is not positive.
    """

    def __init__(
        self,
        root: str,
        max_entries: int = 1024,
        max_bytes: int = 256 * 1024 * 1024,
        put_failure_limit: int = 5,
    ) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be positive")
        if max_bytes < 1:
            raise ValueError("max_bytes must be positive")
        if put_failure_limit < 1:
            raise ValueError("put_failure_limit must be positive")
        self.root = os.path.abspath(root)
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.put_failure_limit = put_failure_limit
        os.makedirs(self.root, exist_ok=True)
        # Guards the counters; file operations are individually atomic and
        # deliberately run outside any lock (other processes share the
        # directory, so a process-local lock cannot order them anyway).
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._writes = 0
        self._corrupt = 0
        self._evictions = 0
        self._put_failures = 0
        self._consecutive_put_failures = 0
        self._disabled_reason: Optional[str] = None

    @property
    def disabled_reason(self) -> Optional[str]:
        """Why the breaker disabled this cache, or ``None`` while healthy."""
        with self._lock:
            return self._disabled_reason

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def path_for(self, key: str) -> str:
        """Absolute path of the entry file for ``key``."""
        return os.path.join(self.root, key + _SUFFIX)

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """Load the entry stored under ``key``, or ``None`` on a miss.

        A torn or corrupt entry (bad magic, digest mismatch, unpicklable
        payload) counts as a miss: the file is removed and ``None`` is
        returned, so the caller recompiles instead of crashing.

        Returns
        -------
        dict or None
            The mapping passed to :meth:`put` (conventionally
            ``{"compiled": ..., "diagnostics": ..., "meta": ...}``).
        """
        if self.disabled_reason is not None:
            with self._lock:
                self._misses += 1
            return None
        path = self.path_for(key)
        try:
            fault_point("diskcache.get", key=key)
            with open(path, "rb") as fh:
                blob = fh.read()
        except (
            FileNotFoundError,
            IsADirectoryError,
            PermissionError,
            InjectedFault,
        ):
            with self._lock:
                self._misses += 1
            return None
        entry = self._decode(blob)
        if entry is None:
            # Torn write or foreign file: drop it so the next writer
            # replaces it with a whole entry.
            self._remove(path)
            with self._lock:
                self._corrupt += 1
                self._misses += 1
            return None
        # Refresh recency for LRU eviction.  Best effort: a concurrent
        # eviction may have removed the file already.
        try:
            os.utime(path)
        except OSError:
            pass
        with self._lock:
            self._hits += 1
        return entry

    def _decode(self, blob: bytes) -> Optional[Dict[str, Any]]:
        header = len(ENTRY_MAGIC) + _DIGEST_BYTES
        if len(blob) < header or not blob.startswith(ENTRY_MAGIC):
            return None
        digest = blob[len(ENTRY_MAGIC) : header]
        payload = blob[header:]
        if hashlib.sha256(payload).digest() != digest:
            return None
        try:
            entry = pickle.loads(payload)
        except Exception:
            return None
        return entry if isinstance(entry, dict) else None

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def put(self, key: str, entry: Dict[str, Any]) -> bool:
        """Store ``entry`` under ``key`` atomically; returns success.

        The blob is written to a temp file in the cache directory and
        renamed into place, so concurrent writers (other threads *and*
        other processes) never produce a torn entry — the digest a reader
        validates always covers a complete payload.  Serialization
        failures are swallowed: the disk cache is an accelerator, never a
        correctness dependency.

        Write failures (real ENOSPC/EROFS or an injected
        ``diskcache.put`` fault) feed the consecutive-failure breaker;
        past ``put_failure_limit`` of them in a row the disk level
        disables itself so callers stop paying a doomed serialize+write
        on every compile.
        """
        if self.disabled_reason is not None:
            return False
        try:
            payload = pickle.dumps(entry, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            return False
        blob = ENTRY_MAGIC + hashlib.sha256(payload).digest() + payload
        path = self.path_for(key)
        try:
            fault_point("diskcache.put", key=key)
            fd, tmp = tempfile.mkstemp(
                prefix=".tmp-" + key[:8] + "-", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(blob)
                    fh.flush()
                    os.fsync(fh.fileno())
                os.replace(tmp, path)
            except BaseException:
                self._remove(tmp)
                raise
        except (OSError, InjectedFault) as exc:
            self._note_put_failure(exc)
            return False
        with self._lock:
            self._writes += 1
            self._consecutive_put_failures = 0
        self._evict()
        return True

    def _note_put_failure(self, exc: BaseException) -> None:
        """Count one failed write; trip the breaker past the limit."""
        with self._lock:
            self._put_failures += 1
            self._consecutive_put_failures += 1
            if (
                self._disabled_reason is None
                and self._consecutive_put_failures >= self.put_failure_limit
            ):
                self._disabled_reason = (
                    f"disabled after {self._consecutive_put_failures} "
                    f"consecutive write failure(s); last: "
                    f"{type(exc).__name__}: {exc}"
                )

    # ------------------------------------------------------------------
    # Eviction
    # ------------------------------------------------------------------
    def _entries(self) -> List[Tuple[float, int, str]]:
        """(mtime, size, path) for every entry file, oldest first."""
        out: List[Tuple[float, int, str]] = []
        try:
            names = os.listdir(self.root)
        except OSError:
            return out
        for name in names:
            if not name.endswith(_SUFFIX):
                continue
            path = os.path.join(self.root, name)
            try:
                stat = os.stat(path)
            except OSError:
                continue  # evicted by a concurrent process
            out.append((stat.st_mtime, stat.st_size, path))
        out.sort()
        return out

    def _evict(self) -> None:
        """Drop least-recently-used entries past the size/count caps."""
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        while entries and (
            len(entries) > self.max_entries or total > self.max_bytes
        ):
            _, size, path = entries.pop(0)
            if self._remove(path):
                evicted += 1
            total -= size
        if evicted:
            with self._lock:
                self._evictions += evicted

    @staticmethod
    def _remove(path: str) -> bool:
        try:
            os.remove(path)
            return True
        except OSError:
            return False

    # ------------------------------------------------------------------
    # Introspection / maintenance
    # ------------------------------------------------------------------
    def info(self) -> DiskCacheInfo:
        """Counters plus current directory occupancy."""
        entries = self._entries()
        with self._lock:
            return DiskCacheInfo(
                hits=self._hits,
                misses=self._misses,
                writes=self._writes,
                corrupt=self._corrupt,
                evictions=self._evictions,
                entries=len(entries),
                total_bytes=sum(size for _, size, _ in entries),
                put_failures=self._put_failures,
                disabled_reason=self._disabled_reason,
            )

    def clear(self) -> int:
        """Remove every entry file; returns how many were removed."""
        removed = 0
        for _, _, path in self._entries():
            if self._remove(path):
                removed += 1
        return removed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<DiskCache {self.root!r} ({self.info()})>"
