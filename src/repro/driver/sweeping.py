"""In-process schedule sweeps: one program, many schedules, one session.

This is the loop primitive the autotuner's simulate-top-k stage,
``Session.compare_schedules``, the benchmark harness, and the higher-level
:mod:`repro.sweep` subsystem all share instead of hand-rolling.  It lives
in the driver (below those layers) because it needs nothing beyond a
session-like object with ``run``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..comal.machines import Machine
from ..core.einsum.ast import EinsumProgram
from ..core.schedule.schedule import Schedule
from .compiled import ProgramResult


@dataclass
class ScheduleRun:
    """Outcome of one schedule in an in-process sweep."""

    schedule: Schedule
    result: ProgramResult

    @property
    def cycles(self) -> float:
        """Total simulated cycles of this run (the sweep's rank key)."""
        return self.result.metrics.cycles


def sweep_schedules(
    session,
    program: EinsumProgram,
    binding: Dict[str, object],
    schedules: Sequence[Schedule],
    machine: Optional[Machine] = None,
    limit: Optional[int] = None,
    skip_errors: bool = False,
) -> List[ScheduleRun]:
    """Run ``program`` under each schedule via ``session`` (compile-cached).

    Parameters
    ----------
    session:
        Any session-like object with ``run(program, binding, schedule,
        machine)``; compiles are served from its cache.
    program:
        The Einsum program to sweep.
    binding:
        Tensor name -> tensor, shared by every run.
    schedules:
        Schedules to execute, in order.
    machine:
        Per-run machine override (``None`` uses the session's).
    limit:
        Caps the number of *successful* runs (the autotuner's
        simulate-top-k budget: infeasible candidates don't consume
        budget).
    skip_errors:
        Drop schedules that fail to compile or execute instead of raising
        (an unfused fallback always exists in the candidate space).

    Returns
    -------
    list of ScheduleRun
        One entry per successful schedule, in input order.
    """
    runs: List[ScheduleRun] = []
    for schedule in schedules:
        if limit is not None and len(runs) >= limit:
            break
        try:
            result = session.run(program, binding, schedule, machine)
        except Exception:
            if skip_errors:
                continue
            raise
        runs.append(ScheduleRun(schedule=schedule, result=result))
    return runs
