"""The Session: machine + pipeline + fingerprint-keyed compile cache.

A :class:`Session` owns a simulated machine and a :class:`PassPipeline`,
and memoizes compilation: the cache key is the canonical content
fingerprint of the program, the schedule, and the pipeline configuration
— every knob the compiler reads, fusion regions through ``par`` and
``splits`` — so any in-place mutation of a schedule (or a differently
configured pipeline) misses the cache rather than serving a stale
executable, while
repeated identical compiles — autotuning sweeps, benchmark loops, serving
the same model over and over — return the same :class:`Executable` object
at dictionary-lookup cost.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple, Union

from ..backend.base import resolve_backend_name
from ..comal.hierarchy import resolve_hierarchy
from ..comal.machines import Machine, RDA_MACHINE
from ..core.einsum.ast import EinsumProgram
from ..core.schedule.schedule import Schedule, unfused
from ..ftree.tensor import SparseTensor
from ..reliability import fault_point
from .compiled import CompiledProgram, ProgramResult
from .diskcache import DiskCache, entry_key
from .executable import Executable
from .pipeline import PassPipeline
from .sweeping import sweep_schedules

CacheKey = Tuple[str, str, str, str]


@dataclass(frozen=True)
class CacheInfo:
    """Snapshot of a session's compile-cache counters.

    ``disk_hits``/``disk_misses`` count only the in-memory misses that fell
    through to a configured disk cache (0 when the session has none).
    ``disk_disabled_reason`` reports a disk cache whose write breaker
    tripped (see :class:`~repro.driver.diskcache.DiskCache`); ``None``
    while healthy or when no disk cache is configured.
    """

    hits: int
    misses: int
    entries: int
    max_entries: int
    disk_hits: int = 0
    disk_misses: int = 0
    disk_disabled_reason: Optional[str] = None

    def __str__(self) -> str:
        text = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.entries}/{self.max_entries} cached"
        )
        if self.disk_hits or self.disk_misses:
            text += f", disk {self.disk_hits}/{self.disk_hits + self.disk_misses}"
        if self.disk_disabled_reason:
            text += f", disk {self.disk_disabled_reason}"
        return text


class Session:
    """Compile-and-run context with a fingerprint-keyed executable cache.

    Parameters
    ----------
    machine:
        Timing model simulations run on (default: the RDA machine).
    pipeline:
        Compile pass pipeline; default is :meth:`PassPipeline.default`.
    cache_size:
        Maximum cached executables (LRU eviction).
    columnar, debug_streams, sim_cache:
        Simulation options threaded into every executable this session
        compiles: stream representation (columnar numpy kernels vs legacy
        tuple lists), per-stream protocol checking, and functional/timed
        result memoization.  ``None`` defers to the environment defaults
        (``FUSEFLOW_LEGACY_STREAMS`` / ``FUSEFLOW_DEBUG_STREAMS`` /
        ``FUSEFLOW_NO_SIM_CACHE``).
    backend:
        Execution backend name (``"interp"``, ``"columnar"``, or
        ``"codegen"``).  ``None`` defers to ``columnar`` and then the
        ``FUSEFLOW_BACKEND`` / ``FUSEFLOW_LEGACY_STREAMS`` environment
        defaults (see :func:`repro.backend.base.resolve_backend_name`).
        The resolved name is part of the compile-cache key, so an
        executable compiled under one backend is never served to another.
    hierarchy:
        Memory hierarchy: a preset name (``"fpga-small"``),
        ``"preset@capacity_bytes"``, or a
        :class:`~repro.comal.hierarchy.HierarchySpec`.  Configures the
        machine (timed engine + scratchpad budget, via
        :meth:`Machine.with_hierarchy`) and the pipeline's ``place-memory``
        pass so they agree; ``None`` inherits the machine's.  A supplied
        pipeline *without* a ``place-memory`` pass is left alone — that is
        the placement ablation, and the SRAM level then simply goes
        unused.
    disk_cache:
        Second cache level behind the in-memory one: a
        :class:`~repro.driver.diskcache.DiskCache`, a cache-directory
        path, ``None`` to follow the ``FUSEFLOW_CACHE_DIR`` environment
        variable (no disk cache when unset), or ``False`` to disable even
        when the variable is set.  An in-memory miss consults the disk
        cache before compiling, and fresh compiles are written back, so a
        warm directory makes cold-process compiles a read-and-unpickle.

    Raises
    ------
    ValueError
        If ``cache_size < 1`` or the hierarchy cannot be resolved.
    """

    def __init__(
        self,
        machine: Machine = RDA_MACHINE,
        pipeline: Optional[PassPipeline] = None,
        cache_size: int = 256,
        columnar: Optional[bool] = None,
        debug_streams: Optional[bool] = None,
        sim_cache: Optional[bool] = None,
        hierarchy: Optional[object] = None,
        backend: Optional[str] = None,
        disk_cache: Union[DiskCache, str, bool, None] = None,
    ) -> None:
        if cache_size < 1:
            raise ValueError("cache_size must be positive")
        if backend is not None:
            # Validate eagerly: a typo should fail at session construction,
            # not at the first compile.
            backend = resolve_backend_name(backend)
        # Memory hierarchy: keep the machine (which the timed engine reads)
        # and the place-memory pass (which decides placements at compile
        # time) in agreement.  ``hierarchy`` accepts a preset name,
        # "preset@capacity_bytes", or a HierarchySpec; None inherits
        # whatever hierarchy the machine already carries.  An explicitly
        # supplied pipeline *without* a place-memory pass is respected —
        # that is the placement ablation — so the pass is configured where
        # present, never force-inserted.
        if hierarchy is not None:
            spec = resolve_hierarchy(hierarchy)
            if spec is not machine.hierarchy:
                machine = machine.with_hierarchy(spec)
        else:
            spec = machine.hierarchy
        pipeline = pipeline or PassPipeline.default()
        if spec.has_sram and "place-memory" in pipeline.names():
            pipeline = pipeline.with_hierarchy(spec)
        self.machine = machine
        self.pipeline = pipeline
        self.cache_size = cache_size
        #: Simulation options threaded into every executable this session
        #: compiles: stream representation (columnar numpy kernels vs legacy
        #: tuple lists), per-stream protocol checking, and functional/timed
        #: result memoization.  ``None`` defers to the environment defaults
        #: (FUSEFLOW_LEGACY_STREAMS / FUSEFLOW_DEBUG_STREAMS /
        #: FUSEFLOW_NO_SIM_CACHE).
        self.columnar = columnar
        self.debug_streams = debug_streams
        self.sim_cache = sim_cache
        #: Execution backend name; None defers to columnar/environment.
        self.backend = backend
        if disk_cache is None:
            disk_cache = os.environ.get("FUSEFLOW_CACHE_DIR") or False
        if disk_cache is False:
            self.disk_cache: Optional[DiskCache] = None
        elif isinstance(disk_cache, DiskCache):
            self.disk_cache = disk_cache
        else:
            self.disk_cache = DiskCache(str(disk_cache))
        self._cache: "OrderedDict[CacheKey, Executable]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._disk_hits = 0
        self._disk_misses = 0
        # The compile cache is shared state under the threaded serve front
        # end: get/move_to_end/popitem and the counters all race without a
        # guard.  Compilation itself runs outside the lock (it is the slow
        # part); the post-compile re-check keeps the cache single-valued.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def cache_key(
        self, program: EinsumProgram, schedule: Schedule
    ) -> CacheKey:
        """The compile-cache key: canonical content fingerprints.

        Returns
        -------
        tuple of str
            ``(program.fingerprint(), schedule.fingerprint(),
            pipeline.fingerprint(), backend)`` — every input the compiler
            reads plus the execution backend the executable will run
            under.  The backend is resolved at call time, so flipping
            ``FUSEFLOW_BACKEND`` between compiles misses the cache rather
            than serving an executable bound to the old backend.
        """
        return (
            program.fingerprint(),
            schedule.fingerprint(),
            self.pipeline.fingerprint(),
            resolve_backend_name(self.backend, self.columnar),
        )

    def compile(
        self, program: EinsumProgram, schedule: Optional[Schedule] = None
    ) -> Executable:
        """Compile ``program`` under ``schedule`` (default: unfused), cached.

        Parameters
        ----------
        program:
            The Einsum program to compile.
        schedule:
            Fusion/ordering/parallelization schedule; ``None`` compiles
            unfused (one region per statement).

        Returns
        -------
        Executable
            Callable on bindings; fingerprint-identical compiles return
            the *same* object at dictionary-lookup cost.
        """
        return self.compile_detailed(program, schedule)[0]

    def compile_detailed(
        self, program: EinsumProgram, schedule: Optional[Schedule] = None
    ) -> Tuple[Executable, str]:
        """Like :meth:`compile`, but also reports where the result came from.

        Returns
        -------
        tuple
            ``(executable, source)`` where ``source`` is ``"memory"``
            (in-memory cache hit), ``"disk"`` (loaded from the persistent
            cache), or ``"compiled"`` (fresh pipeline run).  The serve
            front end surfaces this as the ``X-Fuseflow-Cache`` header.
        """
        schedule = schedule or unfused(program)
        key = self.cache_key(program, schedule)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._cache.move_to_end(key)
                return cached, "memory"
            self._misses += 1
        executable, source = self._load_or_compile(key, program, schedule)
        with self._lock:
            existing = self._cache.get(key)
            if existing is not None:
                # Another thread compiled the same key while we did: keep
                # the incumbent so every caller shares one Executable.
                self._cache.move_to_end(key)
                return existing, source
            self._cache[key] = executable
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
        return executable, source

    def _disk_key(self, key: CacheKey) -> str:
        """The disk-cache key: the session key plus the memory hierarchy.

        The in-memory key omits the hierarchy because a Session's pipeline
        fingerprint already reflects its configured ``place-memory`` pass;
        on disk, entries from differently-configured sessions share one
        directory, so the hierarchy is hashed in explicitly.
        """
        return entry_key(*key, self.machine.hierarchy.describe())

    def _load_or_compile(
        self, key: CacheKey, program: EinsumProgram, schedule: Schedule
    ) -> Tuple[Executable, str]:
        resolved = key[3]
        dkey = None
        if self.disk_cache is not None:
            dkey = self._disk_key(key)
            entry = self.disk_cache.get(dkey)
            with self._lock:
                if entry is not None:
                    self._disk_hits += 1
                else:
                    self._disk_misses += 1
            if entry is not None:
                compiled = entry["compiled"]
                diagnostics = entry["diagnostics"]
                if resolved == "codegen":
                    self._prewarm_codegen(compiled, diagnostics)
                return self._wrap(compiled, diagnostics, key), "disk"
        # Fault site: an injected raise/hang here behaves exactly like a
        # compiler bug or a pathological schedule — what sweep retries and
        # serve deadlines are tested against.
        fault_point("compile", key=key[0])
        start = time.perf_counter()
        regions, decls, diagnostics = self.pipeline.run(program, schedule)
        compiled = CompiledProgram(
            program=program,
            schedule=schedule,
            regions=regions,
            decls=decls,
            compile_seconds=time.perf_counter() - start,
        )
        diagnostics.compile_seconds = compiled.compile_seconds
        diagnostics.backend = resolved
        if resolved == "codegen":
            self._prewarm_codegen(compiled, diagnostics)
        if self.disk_cache is not None and dkey is not None:
            self.disk_cache.put(
                dkey,
                {
                    "compiled": compiled,
                    "diagnostics": diagnostics,
                    "meta": {
                        "program": program.name,
                        "schedule": schedule.name,
                        "backend": resolved,
                        "hierarchy": self.machine.hierarchy.describe(),
                        "compile_seconds": compiled.compile_seconds,
                        "created": time.time(),
                    },
                },
            )
        return self._wrap(compiled, diagnostics, key), "compiled"

    def _wrap(
        self, compiled: CompiledProgram, diagnostics, key: CacheKey
    ) -> Executable:
        return Executable(
            compiled,
            self.machine,
            diagnostics,
            key,
            columnar=self.columnar,
            debug_streams=self.debug_streams,
            sim_cache=self.sim_cache,
            backend=key[3],
        )

    @staticmethod
    def _prewarm_codegen(compiled: CompiledProgram, diagnostics) -> None:
        """Emit + compile every region kernel now, recording per-region cost.

        Codegen cost thereby lands in compile diagnostics (where it is
        observable via ``--profile``) instead of silently inflating the
        first execution.
        """
        from ..backend.codegen import artifact_for

        by_name = {region.name: region for region in diagnostics.regions}
        for region in compiled.regions:
            if region.graph is None:
                continue
            artifact = artifact_for(region.graph)
            if artifact.fn is None and artifact.tier == "columnar":
                # Mirror the run-time tier chain: a region the columnar
                # emitter cannot cover retries on the token tier before
                # falling back to the interpreter.
                token = artifact_for(region.graph, "token")
                if token.fn is not None:
                    artifact = token
            diag = by_name.get(region.graph.name)
            if diag is None:
                continue
            diag.codegen_loc = artifact.loc
            diag.codegen_seconds = (
                artifact.emit_seconds + artifact.compile_seconds
            )
            diag.codegen_cached = artifact.code_cached
            diag.codegen_fallback = artifact.fallback
            diag.codegen_tier = artifact.tier if artifact.fn is not None else ""

    # ------------------------------------------------------------------
    # Convenience execution
    # ------------------------------------------------------------------
    def run(
        self,
        program: EinsumProgram,
        binding: Dict[str, SparseTensor],
        schedule: Optional[Schedule] = None,
        machine: Optional[Machine] = None,
    ) -> ProgramResult:
        """Compile (cached) and execute in one call.

        Parameters
        ----------
        program, schedule:
            Forwarded to :meth:`compile`.
        binding:
            Tensor name -> :class:`~repro.ftree.tensor.SparseTensor`.
        machine:
            Per-call machine override; ``None`` uses the session's.

        Returns
        -------
        ProgramResult
            Metrics plus the materialized output tensors.
        """
        return self.compile(program, schedule)(binding, machine=machine)

    def compare_schedules(
        self,
        program: EinsumProgram,
        binding: Dict[str, SparseTensor],
        schedules: Sequence[Schedule],
        machine: Optional[Machine] = None,
    ) -> Dict[str, ProgramResult]:
        """Run the program under several schedules (fusion sweeps).

        Returns
        -------
        dict
            Schedule name -> :class:`ProgramResult`, one per schedule.
        """
        return {
            run.schedule.name: run.result
            for run in sweep_schedules(self, program, binding, schedules, machine)
        }

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def cache_info(self) -> CacheInfo:
        """Snapshot of the compile-cache counters (hits/misses/entries)."""
        with self._lock:
            return CacheInfo(
                hits=self._hits,
                misses=self._misses,
                entries=len(self._cache),
                max_entries=self.cache_size,
                disk_hits=self._disk_hits,
                disk_misses=self._disk_misses,
                disk_disabled_reason=(
                    self.disk_cache.disabled_reason
                    if self.disk_cache is not None
                    else None
                ),
            )

    def clear_cache(self) -> None:
        """Drop every cached executable and reset the hit/miss counters.

        The persistent disk cache (when configured) is left alone; use
        ``session.disk_cache.clear()`` to empty it.
        """
        with self._lock:
            self._cache.clear()
            self._hits = 0
            self._misses = 0
            self._disk_hits = 0
            self._disk_misses = 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Session machine={self.machine.name!r} "
            f"pipeline={self.pipeline.names()} cache={self.cache_info()}>"
        )


_DEFAULT_SESSION: Optional[Session] = None


def default_session() -> Session:
    """The process-wide Session backing the legacy ``repro.pipeline`` API.

    Sharing one cache here is what makes the old free functions
    (``run``/``compare_schedules``) stop recompiling on every call: compiled
    artifacts depend only on program/schedule/pipeline content, never on
    tensor data, so reuse across callers is sound.
    """
    global _DEFAULT_SESSION
    if _DEFAULT_SESSION is None:
        _DEFAULT_SESSION = Session()
    return _DEFAULT_SESSION
