"""Structured compile diagnostics.

The monolithic seed pipeline was opaque: order fallback happened silently,
mask folding was skipped without a trace, and the only observable output
was the final graph.  The driver records what each pass actually did —
per-pass wall time, per-region statistics, which passes were skipped and
why, and how many dataflow orders the lowerer had to try before one was
stream-compatible (the paper's Section 7 order enumeration).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass
class RegionDiagnostics:
    """What the pipeline did to one fusion region."""

    name: str
    position: int
    sids: List[int]
    # Fused statement count (after cloning/recomputation during fusion).
    statements: int = 0
    # Lowering attempts; 1 means the first candidate order worked.
    order_attempts: int = 0
    # The dataflow orders tried, in attempt order (last one succeeded).
    orders_tried: List[Tuple[str, ...]] = field(default_factory=list)
    # True when the schedule pinned this region's order (no fallback runs).
    pinned_order: bool = False
    node_count: int = 0
    # Views resolved by materializing a permuted copy (POG cycle breaks).
    transposed_views: int = 0
    # Index splits applied to this region (split-indices pass): index
    # variable -> tile count, after filtering to indices the region
    # actually iterates.
    split_indices: Dict[str, int] = field(default_factory=dict)
    # Memory placement (place-memory pass): nodes served by the on-chip
    # buffer, region outputs that spilled to DRAM, and the cumulative
    # on-chip bytes reserved after this region compiled.
    sram_placed: int = 0
    spilled_outputs: int = 0
    sram_reserved: int = 0
    # Passes that ran but decided they did not apply, with a reason.
    skipped_passes: Dict[str, str] = field(default_factory=dict)
    # Codegen backend (filled only when the session compiles under
    # backend="codegen"): emitted lines of code, emission + compile wall
    # time, whether the compiled code object came from the cross-graph
    # source cache, and the fallback reason when the region runs on the
    # columnar interpreter instead.
    codegen_loc: int = 0
    codegen_seconds: float = 0.0
    codegen_cached: bool = False
    codegen_fallback: str = ""
    # Emission tier the region's kernel was generated with ("columnar"
    # default, "token" when the columnar emitter could not cover a node).
    codegen_tier: str = ""

    @property
    def order_fallbacks(self) -> int:
        """Orders rejected before one lowered (0 = first order worked)."""
        return max(0, self.order_attempts - 1)


@dataclass
class CompileDiagnostics:
    """Everything one :meth:`PassPipeline.run` observed."""

    program: str = ""
    schedule: str = ""
    pass_names: List[str] = field(default_factory=list)
    pass_seconds: Dict[str, float] = field(default_factory=dict)
    regions: List[RegionDiagnostics] = field(default_factory=list)
    compile_seconds: float = 0.0
    # The resolved execution backend name ("interp"/"columnar"/"codegen")
    # of the session that compiled this program.
    backend: str = ""

    def order_fallbacks(self) -> int:
        """Total rejected dataflow orders across all regions."""
        return sum(region.order_fallbacks for region in self.regions)

    def skipped(self) -> Dict[str, List[str]]:
        """Pass name -> region names where the pass did not apply."""
        out: Dict[str, List[str]] = {}
        for region in self.regions:
            for name in region.skipped_passes:
                out.setdefault(name, []).append(region.name)
        return out

    def describe(self) -> str:
        """Multi-line rendering: per-pass timings, then per-region stats."""
        lines = [
            f"compile diagnostics for {self.program} under {self.schedule}: "
            f"{len(self.regions)} region(s), {self.compile_seconds * 1e3:.1f} ms"
            + (f", backend {self.backend}" if self.backend else "")
        ]
        for name in self.pass_names:
            seconds = self.pass_seconds.get(name, 0.0)
            lines.append(f"  pass {name:20s} {seconds * 1e3:8.2f} ms")
        for region in self.regions:
            bits = [
                f"{region.statements} stmt(s)",
                f"{region.node_count} nodes",
                f"{region.order_attempts} order attempt(s)",
            ]
            if region.pinned_order:
                bits.append("pinned order")
            if region.transposed_views:
                bits.append(f"{region.transposed_views} permuted copy(ies)")
            if region.split_indices:
                bits.append(
                    "split "
                    + ",".join(
                        f"{idx}/{t}" for idx, t in region.split_indices.items()
                    )
                )
            if region.sram_placed:
                bits.append(
                    f"{region.sram_placed} node(s) on-chip "
                    f"({region.sram_reserved} B reserved)"
                )
            if region.spilled_outputs:
                bits.append(f"{region.spilled_outputs} output(s) spilled")
            if region.skipped_passes:
                bits.append(f"skipped {sorted(region.skipped_passes)}")
            if region.codegen_fallback:
                bits.append(f"codegen fallback: {region.codegen_fallback}")
            elif region.codegen_loc:
                tier = f" {region.codegen_tier}" if region.codegen_tier else ""
                bits.append(
                    f"codegen{tier} {region.codegen_loc} LoC in "
                    f"{region.codegen_seconds * 1e3:.2f} ms"
                    + (" (cached)" if region.codegen_cached else "")
                )
            lines.append(f"  region {region.name}: " + ", ".join(bits))
        return "\n".join(lines)
