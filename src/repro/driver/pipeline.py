"""The pass pipeline: an ordered, reconfigurable list of named passes.

A :class:`PassPipeline` is immutable in use: ``without``/``with_pass``/
``reordered`` return new pipelines, so a Session can hand out derived
configurations without invalidating its compile cache (the pipeline's
:meth:`fingerprint` is part of the cache key).

``run`` feeds each fusion region of a schedule through the pass list in
order, timing every pass and collecting :class:`CompileDiagnostics`.
"""

from __future__ import annotations

import hashlib
import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.einsum.ast import EinsumProgram, TensorDecl
from ..core.schedule.schedule import Schedule
from .compiled import CompiledRegion
from .diagnostics import CompileDiagnostics, RegionDiagnostics
from .passes import PASS_REGISTRY, Pass, PassContext, RegionState

#: The standard compile flow (paper Figure 6 plus memory placement and
#: index splitting): splitting is scheduled *before* lowering (the tile
#: decision shapes the dataflow order and the placement footprints), and
#: placement runs right after lowering so every materialized edge gets a
#: hierarchy level before parallelization retimes the compute lanes.
DEFAULT_PASS_ORDER: Tuple[str, ...] = (
    "fuse-regions",
    "fold-masks",
    "merge-contractions",
    "split-indices",
    "lower-region",
    "place-memory",
    "parallelize",
)


class PipelineError(RuntimeError):
    """Raised for malformed pipelines (unknown, duplicate, misordered passes)."""


class PassPipeline:
    """An ordered list of passes applied region-by-region."""

    def __init__(self, passes: Sequence[Pass]) -> None:
        self.passes: List[Pass] = list(passes)
        names = self.names()
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise PipelineError(f"duplicate pass name(s) {sorted(dupes)}")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def default(cls) -> "PassPipeline":
        """The standard fuse → fold → merge → lower → parallelize flow."""
        return cls([PASS_REGISTRY[name]() for name in DEFAULT_PASS_ORDER])

    @classmethod
    def from_names(cls, names: Sequence[str]) -> "PassPipeline":
        """Build a pipeline of registered passes by name.

        Parameters
        ----------
        names:
            Pass names, in execution order; each must be registered in
            :data:`~repro.driver.passes.PASS_REGISTRY`.

        Raises
        ------
        PipelineError
            For unknown or duplicate names.
        """
        missing = [n for n in names if n not in PASS_REGISTRY]
        if missing:
            raise PipelineError(
                f"unknown pass name(s) {missing}; "
                f"registered: {sorted(PASS_REGISTRY)}"
            )
        return cls([PASS_REGISTRY[n]() for n in names])

    def names(self) -> List[str]:
        """Pass names in execution order."""
        return [p.name for p in self.passes]

    def without(self, *names: str) -> "PassPipeline":
        """A new pipeline with the named passes removed.

        Raises
        ------
        PipelineError
            If any name is not in this pipeline.
        """
        self._check_known(names)
        return PassPipeline([p for p in self.passes if p.name not in names])

    def with_pass(
        self,
        new_pass: Pass,
        before: Optional[str] = None,
        after: Optional[str] = None,
    ) -> "PassPipeline":
        """A new pipeline with ``new_pass`` inserted (appended by default).

        Parameters
        ----------
        new_pass:
            The pass instance to insert.
        before, after:
            Anchor pass name; give at most one.

        Returns
        -------
        PassPipeline
            The extended pipeline; this one is unchanged.
        """
        if before is not None and after is not None:
            raise PipelineError("give at most one of before/after")
        anchor = before if before is not None else after
        if anchor is None:
            return PassPipeline([*self.passes, new_pass])
        self._check_known((anchor,))
        index = self.names().index(anchor) + (0 if before is not None else 1)
        return PassPipeline([*self.passes[:index], new_pass, *self.passes[index:]])

    def with_hierarchy(self, hierarchy) -> "PassPipeline":
        """A new pipeline whose ``place-memory`` pass uses ``hierarchy``.

        Parameters
        ----------
        hierarchy:
            Anything :func:`repro.comal.hierarchy.resolve_hierarchy`
            accepts (preset name, ``"preset@bytes"``, or a spec).

        Returns
        -------
        PassPipeline
            A copy with the existing ``place-memory`` pass replaced by one
            configured for ``hierarchy`` — or, if this pipeline has no
            placement pass, with one appended after ``lower-region``.
        """
        from .passes import PlaceMemory

        new_pass = PlaceMemory(hierarchy)
        if "place-memory" in self.names():
            return PassPipeline(
                [new_pass if p.name == "place-memory" else p for p in self.passes]
            )
        if "lower-region" in self.names():
            return self.with_pass(new_pass, after="lower-region")
        return self.with_pass(new_pass)

    def reordered(self, names: Sequence[str]) -> "PassPipeline":
        """A new pipeline running this one's passes in the given order."""
        if sorted(names) != sorted(self.names()):
            raise PipelineError(
                f"reordered names {list(names)} must be a permutation of "
                f"{self.names()}"
            )
        by_name = {p.name: p for p in self.passes}
        return PassPipeline([by_name[n] for n in names])

    def _check_known(self, names: Sequence[str]) -> None:
        unknown = [n for n in names if n not in self.names()]
        if unknown:
            raise PipelineError(
                f"pass name(s) {unknown} not in pipeline {self.names()}"
            )

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hash of pass names, order, and per-pass configuration."""
        parts = [f"{p.name} {p.config()}" for p in self.passes]
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def run(
        self, program: EinsumProgram, schedule: Schedule
    ) -> Tuple[List[CompiledRegion], Dict[str, TensorDecl], CompileDiagnostics]:
        """Compile every region of ``schedule`` through the pass list.

        Parameters
        ----------
        program:
            The (validated) Einsum program.
        schedule:
            The schedule whose regions drive the region-by-region flow.

        Returns
        -------
        tuple
            ``(regions, decls, diagnostics)``: one
            :class:`~repro.driver.compiled.CompiledRegion` per fusion
            region, the grown declaration registry, and the structured
            :class:`~repro.driver.diagnostics.CompileDiagnostics`.
        """
        program.validate()
        schedule.validate(program)
        if (
            any(tiles > 1 for tiles in schedule.splits.values())
            and "split-indices" not in self.names()
        ):
            # Unlike a hierarchy without place-memory (a meaningful
            # placement ablation), splits without the split pass do
            # literally nothing — compiling would produce results labeled
            # as tiled that never were.
            raise PipelineError(
                f"schedule {schedule.name!r} requests index splits "
                f"{schedule.splits} but this pipeline has no "
                f"'split-indices' pass ({self.names()}); add the pass or "
                "clear schedule.splits"
            )
        diagnostics = CompileDiagnostics(
            program=program.name,
            schedule=schedule.name,
            pass_names=self.names(),
        )
        ctx = PassContext(
            program=program, schedule=schedule, decls=dict(program.decls)
        )
        regions: List[CompiledRegion] = []
        for position, sids in enumerate(schedule.regions):
            state = RegionState(
                position=position,
                sids=list(sids),
                name=f"{schedule.name}-r{position}",
                diag=RegionDiagnostics(
                    name=f"{schedule.name}-r{position}",
                    position=position,
                    sids=list(sids),
                ),
            )
            diagnostics.regions.append(state.diag)
            for pass_ in self.passes:
                self._check_requirements(pass_, state)
                start = time.perf_counter()
                pass_.run(ctx, state)
                elapsed = time.perf_counter() - start
                diagnostics.pass_seconds[pass_.name] = (
                    diagnostics.pass_seconds.get(pass_.name, 0.0) + elapsed
                )
            if state.graph is not None:
                # Validate at compile time so executions (which may replay a
                # cached Executable thousands of times) never re-validate.
                state.graph.validate()
            regions.append(
                CompiledRegion(
                    graph=state.graph,
                    fused=state.fused,
                    order=list(state.order) if state.order else [],
                    output_specs=list(state.output_specs),
                    table_text=state.table_text,
                    transposes=list(state.transposes),
                )
            )
        return regions, ctx.decls, diagnostics

    @staticmethod
    def _check_requirements(pass_: Pass, state: RegionState) -> None:
        missing = [
            attr for attr in pass_.requires if getattr(state, attr) is None
        ]
        if missing:
            raise PipelineError(
                f"pass {pass_.name!r} needs region state {missing} which no "
                "earlier pass produced; is the pipeline missing or "
                "misordering its producer?"
            )
        premature = [
            attr for attr in pass_.forbids if getattr(state, attr) is not None
        ]
        if premature:
            raise PipelineError(
                f"pass {pass_.name!r} must run before region state "
                f"{premature} exists (a later pass materializes its "
                "decisions); is the pipeline misordered?"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PassPipeline({self.names()})"
