"""Named compilation passes over fusion regions.

The seed's ``compile_program`` inlined the whole Figure 6 flow in one loop;
here each step is a :class:`Pass` with a stable name, registered in
:data:`PASS_REGISTRY` so pipelines can be built, reordered, trimmed, and
extended by name (the transformation-registry pattern of pass-driven
compiler frameworks).

Passes are *region-scoped*: the pipeline feeds every region through the
pass list in schedule order, because lowering region *i* registers the
declarations (materialized outputs) that constrain the fusion of region
*i + 1* — the stages cannot be globally barriered without losing that
dataflow.  A pass mutates the :class:`RegionState` it is given and records
what it did in the region's diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from ..core.einsum.ast import EinsumProgram, TensorDecl
from ..core.fusion.fuse import (
    FusedEinsum,
    fold_masks,
    fuse_region,
    merge_contractions,
)
from ..core.schedule.par import apply_parallelization
from ..core.schedule.schedule import Schedule
from ..core.tables.lower import LoweringError, OutputSpec, RegionLowerer
from ..sam.graph import SAMGraph
from .diagnostics import RegionDiagnostics


@dataclass
class RegionState:
    """Mutable per-region state threaded through the pass list."""

    position: int
    sids: List[int]
    name: str
    diag: RegionDiagnostics
    fused: Optional[FusedEinsum] = None
    graph: Optional[SAMGraph] = None
    order: Optional[List[str]] = None
    output_specs: List[OutputSpec] = field(default_factory=list)
    table_text: str = ""
    transposes: List[Tuple[str, str, Tuple[int, ...]]] = field(default_factory=list)


@dataclass
class PassContext:
    """Shared state: the program, schedule, and growing declaration set."""

    program: EinsumProgram
    schedule: Schedule
    # Starts as the program's declarations; lowering appends materialized
    # region outputs so later regions see their shapes and formats.
    decls: Dict[str, TensorDecl] = field(default_factory=dict)


class Pass:
    """One named compilation step applied to each region in order."""

    #: Stable registry name (also the handle for reorder/disable).
    name: str = "pass"
    #: RegionState attributes that must be populated before this pass runs.
    requires: Tuple[str, ...] = ()

    def config(self) -> Tuple:
        """Hashable parameterization, folded into pipeline fingerprints."""
        return ()

    def run(self, ctx: PassContext, region: RegionState) -> None:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


#: Name -> pass class, for building pipelines from configuration.
PASS_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator adding a pass to :data:`PASS_REGISTRY`."""
    if cls.name in PASS_REGISTRY:
        raise ValueError(f"pass {cls.name!r} registered twice")
    PASS_REGISTRY[cls.name] = cls
    return cls


@register_pass
class FuseRegions(Pass):
    """Cross-expression fusion (paper Section 5, Algorithm 1)."""

    name = "fuse-regions"

    def run(self, ctx: PassContext, region: RegionState) -> None:
        region.fused = fuse_region(
            ctx.program,
            region.sids,
            name=region.name,
            extra_orders={
                sid: order
                for sid, order in ctx.schedule.stmt_orders.items()
                if sid in region.sids
            },
            decls=ctx.decls,
        )
        region.diag.statements = len(region.fused.statements)


@register_pass
class FoldMasks(Pass):
    """Fold elementwise masks into producing contractions (SDDMM-style)."""

    name = "fold-masks"
    requires = ("fused",)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        if not ctx.schedule.fold_masks:
            region.diag.skipped_passes[self.name] = "disabled by schedule"
        elif len(region.sids) < 2:
            region.diag.skipped_passes[self.name] = "singleton region"
        else:
            region.fused = fold_masks(region.fused)
            region.diag.statements = len(region.fused.statements)


@register_pass
class MergeContractions(Pass):
    """Custard/Stardust-style global-iteration rewrite (Section 8.4)."""

    name = "merge-contractions"
    requires = ("fused",)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        if not ctx.schedule.global_rewrite:
            region.diag.skipped_passes[self.name] = "schedule has no global rewrite"
        elif len(region.sids) < 2:
            region.diag.skipped_passes[self.name] = "singleton region"
        else:
            region.fused = merge_contractions(region.fused)
            region.diag.statements = len(region.fused.statements)


@register_pass
class LowerRegion(Pass):
    """Lower through fusion tables, walking valid dataflow orders.

    The first topological sort is usually lowerable, but transposed views or
    unusual POGs can leave it stream-incompatible; FuseFlow then walks other
    valid orders (it "enumerates valid dataflow orders that do not break
    fusion", Section 7) until one lowers.  A pinned order from the schedule
    is never overridden — its failure is the user's to resolve.  Every
    attempt lands in the region diagnostics.
    """

    name = "lower-region"
    requires = ("fused",)

    def __init__(self, max_attempts: int = 200) -> None:
        self.max_attempts = max_attempts

    def config(self) -> Tuple:
        return (self.max_attempts,)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        pinned = ctx.schedule.orders.get(region.position)
        lowerer, graph, order = self._lower_with_fallback(region, ctx.decls, pinned)
        region.graph = graph
        region.order = list(order)
        region.output_specs = list(lowerer.output_specs)
        region.table_text = lowerer.table.render()
        region.transposes = [
            (self._original_tensor(region.fused, key), name, mode_order)
            for key, (name, mode_order) in lowerer.transpose_requests.items()
        ]
        for spec in lowerer.output_specs:
            ctx.decls[spec.name] = TensorDecl(
                spec.name, spec.shape, spec.fmt, is_input=False
            )
        region.diag.node_count = graph.node_count()
        region.diag.transposed_views = len(region.fused.transposed_views)

    def _candidate_orders(self, fused: FusedEinsum):
        first = fused.first_order()
        yield first
        seen = {tuple(first)}
        for order in fused.pog.all_orders(limit=self.max_attempts):
            if tuple(order) not in seen:
                seen.add(tuple(order))
                yield order

    def _lower_with_fallback(
        self,
        region: RegionState,
        decls: Dict[str, TensorDecl],
        pinned: Optional[List[str]],
    ):
        fused = region.fused
        diag = region.diag
        if pinned is not None:
            diag.pinned_order = True
            diag.order_attempts = 1
            diag.orders_tried.append(tuple(pinned))
            lowerer = RegionLowerer(fused, decls, order=pinned)
            return lowerer, lowerer.lower(), list(pinned)
        errors: List[str] = []
        for attempt, order in enumerate(self._candidate_orders(fused), start=1):
            if attempt > self.max_attempts:
                break
            diag.order_attempts = attempt
            diag.orders_tried.append(tuple(order))
            try:
                lowerer = RegionLowerer(fused, decls, order=order)
                return lowerer, lowerer.lower(), list(order)
            except LoweringError as exc:
                errors.append(str(exc))
        raise LoweringError(
            f"no valid dataflow order lowers region {fused.name}; "
            f"last error: {errors[-1] if errors else 'none'}"
        )

    @staticmethod
    def _original_tensor(fused: FusedEinsum, key: Tuple[int, int]) -> str:
        """Original tensor name behind a transpose request key."""
        sid, pos = key
        for view in fused.transposed_views:
            if view.sid == sid and view.operand_pos == pos:
                return view.tensor
        raise KeyError(key)


@register_pass
class Parallelize(Pass):
    """Duplicate compute lanes per the schedule's parallelization factors."""

    name = "parallelize"
    requires = ("graph", "order")

    def run(self, ctx: PassContext, region: RegionState) -> None:
        applied = False
        for index_var, factor in ctx.schedule.par.items():
            if index_var in region.order:
                apply_parallelization(region.graph, region.order, index_var, factor)
                applied = True
        if not applied:
            region.diag.skipped_passes[self.name] = (
                "no parallelized index in region order"
                if ctx.schedule.par
                else "schedule has no parallelization"
            )
