"""Named compilation passes over fusion regions.

The seed's ``compile_program`` inlined the whole Figure 6 flow in one loop;
here each step is a :class:`Pass` with a stable name, registered in
:data:`PASS_REGISTRY` so pipelines can be built, reordered, trimmed, and
extended by name (the transformation-registry pattern of pass-driven
compiler frameworks).

Passes are *region-scoped*: the pipeline feeds every region through the
pass list in schedule order, because lowering region *i* registers the
declarations (materialized outputs) that constrain the fusion of region
*i + 1* — the stages cannot be globally barriered without losing that
dataflow.  A pass mutates the :class:`RegionState` it is given and records
what it did in the region's diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

from ..comal.hierarchy import (
    HierarchySpec,
    dense_estimate_bytes,
    resolve_hierarchy,
)
from ..core.einsum.ast import EinsumProgram, TensorDecl
from ..core.fusion.fuse import (
    FusedEinsum,
    fold_masks,
    fuse_region,
    merge_contractions,
)
from ..core.schedule.par import apply_parallelization
from ..core.schedule.schedule import Schedule
from ..core.schedule.split import (
    apply_split,
    is_tile_index,
    split_footprint_scale,
    tile_index_name,
)
from ..core.tables.lower import LoweringError, OutputSpec, RegionLowerer
from ..sam.graph import SAMGraph
from .diagnostics import RegionDiagnostics


@dataclass
class RegionState:
    """Mutable per-region state threaded through the pass list."""

    position: int
    sids: List[int]
    name: str
    diag: RegionDiagnostics
    fused: Optional[FusedEinsum] = None
    graph: Optional[SAMGraph] = None
    order: Optional[List[str]] = None
    # Index splits that apply to this region (split-indices pass), in the
    # schedule's declaration order; lower-region materializes them as an
    # outer tile index + node tile factors, place-memory scales footprints.
    splits: Dict[str, int] = field(default_factory=dict)
    output_specs: List[OutputSpec] = field(default_factory=list)
    table_text: str = ""
    transposes: List[Tuple[str, str, Tuple[int, ...]]] = field(default_factory=list)


@dataclass
class PassContext:
    """Shared state: the program, schedule, and growing declaration set.

    Attributes
    ----------
    program:
        The Einsum program being compiled.
    schedule:
        The schedule driving fusion/ordering/parallelization decisions.
    decls:
        Starts as the program's declarations; lowering appends materialized
        region outputs so later regions see their shapes and formats.
    placements:
        Tensor name -> memory level (``"sram"``/``"dram"``) decided by the
        ``place-memory`` pass when the producing region was compiled;
        consuming regions look their operands up here.
    sram_reserved:
        Bytes of on-chip buffer capacity already granted to resident
        intermediates (the allocation is program-lifetime: regions execute
        back to back and resident tensors persist across the boundary).
    """

    program: EinsumProgram
    schedule: Schedule
    # Starts as the program's declarations; lowering appends materialized
    # region outputs so later regions see their shapes and formats.
    decls: Dict[str, TensorDecl] = field(default_factory=dict)
    placements: Dict[str, str] = field(default_factory=dict)
    sram_reserved: int = 0


class Pass:
    """One named compilation step applied to each region in order."""

    #: Stable registry name (also the handle for reorder/disable).
    name: str = "pass"
    #: RegionState attributes that must be populated before this pass runs.
    requires: Tuple[str, ...] = ()
    #: RegionState attributes that must NOT yet be populated — for passes
    #: whose decisions a later pass materializes (running them after the
    #: materializer would silently decide things nothing ever applies).
    forbids: Tuple[str, ...] = ()

    def config(self) -> Tuple:
        """Hashable parameterization, folded into pipeline fingerprints."""
        return ()

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Apply this pass to one region.

        Parameters
        ----------
        ctx:
            Shared :class:`PassContext` (program, schedule, declarations,
            placement state).
        region:
            The :class:`RegionState` to mutate; record decisions in
            ``region.diag``.
        """
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"


#: Name -> pass class, for building pipelines from configuration.
PASS_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator adding a pass to :data:`PASS_REGISTRY`.

    Parameters
    ----------
    cls:
        A :class:`Pass` subclass with a unique ``name``.

    Returns
    -------
    type
        ``cls`` unchanged, so the decorator stacks.

    Raises
    ------
    ValueError
        If a pass with the same name is already registered.
    """
    if cls.name in PASS_REGISTRY:
        raise ValueError(f"pass {cls.name!r} registered twice")
    PASS_REGISTRY[cls.name] = cls
    return cls


@register_pass
class FuseRegions(Pass):
    """Cross-expression fusion (paper Section 5, Algorithm 1)."""

    name = "fuse-regions"

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Fuse the region's statements into one ``FusedEinsum``."""
        region.fused = fuse_region(
            ctx.program,
            region.sids,
            name=region.name,
            extra_orders={
                sid: order
                for sid, order in ctx.schedule.stmt_orders.items()
                if sid in region.sids
            },
            decls=ctx.decls,
        )
        region.diag.statements = len(region.fused.statements)


@register_pass
class FoldMasks(Pass):
    """Fold elementwise masks into producing contractions (SDDMM-style)."""

    name = "fold-masks"
    requires = ("fused",)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Fold masks when the schedule allows and the region is fused."""
        if not ctx.schedule.fold_masks:
            region.diag.skipped_passes[self.name] = "disabled by schedule"
        elif len(region.sids) < 2:
            region.diag.skipped_passes[self.name] = "singleton region"
        else:
            region.fused = fold_masks(region.fused)
            region.diag.statements = len(region.fused.statements)


@register_pass
class MergeContractions(Pass):
    """Custard/Stardust-style global-iteration rewrite (Section 8.4)."""

    name = "merge-contractions"
    requires = ("fused",)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Apply the global-iteration rewrite when the schedule asks for it."""
        if not ctx.schedule.global_rewrite:
            region.diag.skipped_passes[self.name] = "schedule has no global rewrite"
        elif len(region.sids) < 2:
            region.diag.skipped_passes[self.name] = "singleton region"
        else:
            region.fused = merge_contractions(region.fused)
            region.diag.statements = len(region.fused.statements)


@register_pass
class SplitIndices(Pass):
    """Schedule index splitting (tiling) for the region before lowering.

    The classic third axis of spatial-accelerator scheduling next to fusion
    granularity and parallelization: ``Schedule.splits`` maps an index
    variable to a tile count, and the region then iterates an outer tile
    index, streaming one tile of the split dimension at a time.

    This pass runs *before* ``lower-region``: it decides which of the
    schedule's splits the region actually iterates (names live in the
    unified per-region index namespace, exactly like ``Schedule.par``) and
    records them on the region state.  Lowering then materializes the
    decision — prepending the synthetic outer tile index to the dataflow
    order and annotating every node inside the tiled loop with its tile
    factor (via :func:`~repro.core.schedule.split.apply_split`) — and
    ``place-memory`` divides the dense-estimate footprint of each tiled
    region output by its tile scale, which is what lets a split convert
    DRAM spill traffic into on-chip traffic.

    The functional results are untouched: tiling iterates the same
    coordinates in the same order, just in ``T`` contiguous chunks, so a
    split schedule is bit-exact against its unsplit counterpart.
    """

    name = "split-indices"
    requires = ("fused",)
    # Lowering is what materializes the decision (tile index + node tile
    # factors) and place-memory scales footprints from it; scheduled splits
    # that lowering never sees would claim tiling's capacity benefit while
    # modeling none of its cost.
    forbids = ("graph",)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Record the schedule splits this region iterates."""
        if not ctx.schedule.splits:
            region.diag.skipped_passes[self.name] = "schedule has no splits"
            return
        region_indices = {
            idx for stmt in region.fused.statements for idx in stmt.all_indices()
        }
        applied: Dict[str, int] = {}
        for index_var, tiles in ctx.schedule.splits.items():
            if tiles <= 1:
                continue
            if index_var in region_indices:
                applied[index_var] = tiles
        if not applied:
            region.diag.skipped_passes[self.name] = (
                "no split index iterated by this region"
            )
            return
        region.splits = applied
        region.diag.split_indices = dict(applied)


@register_pass
class LowerRegion(Pass):
    """Lower through fusion tables, walking valid dataflow orders.

    The first topological sort is usually lowerable, but transposed views or
    unusual POGs can leave it stream-incompatible; FuseFlow then walks other
    valid orders (it "enumerates valid dataflow orders that do not break
    fusion", Section 7) until one lowers.  A pinned order from the schedule
    is never overridden — its failure is the user's to resolve.  Every
    attempt lands in the region diagnostics.
    """

    name = "lower-region"
    requires = ("fused",)

    def __init__(self, max_attempts: int = 200) -> None:
        """``max_attempts`` caps the dataflow orders tried per region."""
        self.max_attempts = max_attempts

    def config(self) -> Tuple:
        """The order-attempt cap (part of the pipeline fingerprint)."""
        return (self.max_attempts,)

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Lower the fused region to a SAMML graph, falling back on orders."""
        pinned = ctx.schedule.orders.get(region.position)
        lowerer, graph, order = self._lower_with_fallback(region, ctx.decls, pinned)
        region.graph = graph
        region.order = list(order)
        if region.splits:
            self._materialize_splits(region)
        region.output_specs = list(lowerer.output_specs)
        region.table_text = lowerer.table.render()
        region.transposes = [
            (self._original_tensor(region.fused, key), name, mode_order)
            for key, (name, mode_order) in lowerer.transpose_requests.items()
        ]
        for spec in lowerer.output_specs:
            ctx.decls[spec.name] = TensorDecl(
                spec.name, spec.shape, spec.fmt, is_input=False
            )
        region.diag.node_count = graph.node_count()
        region.diag.transposed_views = len(region.fused.transposed_views)

    def _candidate_orders(self, fused: FusedEinsum):
        first = fused.first_order()
        yield first
        seen = {tuple(first)}
        for order in fused.pog.all_orders(limit=self.max_attempts):
            if tuple(order) not in seen:
                seen.add(tuple(order))
                yield order

    def _lower_with_fallback(
        self,
        region: RegionState,
        decls: Dict[str, TensorDecl],
        pinned: Optional[List[str]],
    ):
        fused = region.fused
        diag = region.diag
        if pinned is not None:
            diag.pinned_order = True
            diag.order_attempts = 1
            diag.orders_tried.append(tuple(pinned))
            lowerer = RegionLowerer(fused, decls, order=pinned)
            return lowerer, lowerer.lower(), list(pinned)
        errors: List[str] = []
        for attempt, order in enumerate(self._candidate_orders(fused), start=1):
            if attempt > self.max_attempts:
                break
            diag.order_attempts = attempt
            diag.orders_tried.append(tuple(order))
            try:
                lowerer = RegionLowerer(fused, decls, order=order)
                return lowerer, lowerer.lower(), list(order)
            except LoweringError as exc:
                errors.append(str(exc))
        raise LoweringError(
            f"no valid dataflow order lowers region {fused.name}; "
            f"last error: {errors[-1] if errors else 'none'}"
        )

    @staticmethod
    def _materialize_splits(region: RegionState) -> None:
        """Realize the splits the ``split-indices`` pass scheduled.

        Splitting is decided before lowering (footprint scaling and order
        rewriting both depend on it) but can only be materialized once the
        graph exists: each applicable split tiles the nodes inside its
        loop (``apply_split``) and the dataflow order gains the synthetic
        outer tile index, outermost first — ``['k.t8', 'x1', 'k', ...]``
        reads as "iterate 8 tiles of k, streaming each through the region".
        A decided index the final order does not iterate (the lowerer fell
        back to an order that dropped it) is discarded so placement
        scaling and node annotation always agree.
        """
        lowered_order = list(region.order)
        applied: Dict[str, int] = {}
        dropped: List[str] = []
        for index_var, tiles in region.splits.items():
            if index_var not in lowered_order:
                dropped.append(index_var)
                continue
            apply_split(region.graph, lowered_order, index_var, tiles)
            applied[index_var] = tiles
        if dropped:
            region.diag.skipped_passes["split-indices"] = (
                f"index(es) {dropped} not in lowered order {lowered_order}"
            )
        region.splits = applied
        region.diag.split_indices = dict(applied)
        # Prefix in the loop-nest's own order (position in the lowered
        # order), not schedule-declaration order: splits={'x4':2,'x1':4}
        # on order ['x1','x4',...] must read ['x1.t4','x4.t2',...].
        prefix = [
            tile_index_name(idx, applied[idx])
            for idx in sorted(applied, key=lowered_order.index)
        ]
        region.order = prefix + lowered_order

    @staticmethod
    def _original_tensor(fused: FusedEinsum, key: Tuple[int, int]) -> str:
        """Original tensor name behind a transpose request key."""
        sid, pos = key
        for view in fused.transposed_views:
            if view.sid == sid and view.operand_pos == pos:
                return view.tensor
        raise KeyError(key)


@register_pass
class PlaceMemory(Pass):
    """Decide, per memory-touching node, which hierarchy level serves it.

    Runs after ``lower-region``: the region's SAMML graph exists, so every
    scanner/locate/array/writer node can be annotated with the level of the
    tensor it touches (``node.meta["mem_level"]``), its traffic role
    (``mem_role``), and — for on-chip placements — a bank assignment
    (``mem_bank``).  The timed engine reads these annotations to pace each
    node's traffic through the right level (see
    :mod:`repro.comal.hierarchy`).

    Placement policy (the paper's fused-vs-unfused story made explicit):

    * Streams inside a fused region never materialize — nothing to place.
    * A region output consumed by a *later* region is a cross-region
      intermediate: it stays in the on-chip buffer if its dense-estimate
      footprint still fits in the remaining capacity, and **spills** to
      DRAM otherwise.  Reads of a spilled intermediate are **fills**.
    * Program inputs and final outputs always live in DRAM (they must
      cross the chip boundary regardless of fusion).

    Parameters
    ----------
    hierarchy:
        Preset name, ``"preset@capacity"`` override, or
        :class:`~repro.comal.hierarchy.HierarchySpec`.  The flat default
        reproduces the pre-hierarchy simulator (everything spills), while
        still labelling cross-region traffic as spill/fill for reporting.
    """

    name = "place-memory"
    requires = ("graph",)

    def __init__(self, hierarchy: Union[str, HierarchySpec] = "flat") -> None:
        """``hierarchy`` is resolved eagerly so bad names fail at build time."""
        self.hierarchy = resolve_hierarchy(hierarchy)

    def config(self) -> Tuple:
        """The hierarchy parameterization (part of the pipeline fingerprint)."""
        return self.hierarchy.config()

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Annotate the region's memory-touching nodes with level/role/bank."""
        hier = self.hierarchy
        program_outputs = set(ctx.program.outputs())
        consumed_later = self._consumed_later(ctx, region.position)
        placed_sram = 0
        spilled = 0
        for node in region.graph.nodes.values():
            prim = node.prim
            if not prim.touches_dram():
                continue
            tensor_name = getattr(prim, "tensor_name", None)
            if tensor_name is None:
                continue
            tile_scale = 1
            if prim.kind == "write":
                level, role, tile_scale = self._place_output(
                    ctx,
                    hier,
                    prim,
                    tensor_name,
                    program_outputs,
                    consumed_later,
                    region,
                )
                if role == "spill":
                    spilled += 1
            else:
                # Readers inherit the level their tensor was placed in when
                # its producer region compiled; unplaced names are program
                # inputs living in DRAM.
                src = ctx.placements.get(tensor_name)
                if src == "sram":
                    level, role = "sram", "intermediate"
                elif src == "dram":
                    level, role = "dram", "fill"
                else:
                    level, role = "dram", "input"
            node.meta["mem_level"] = level
            node.meta["mem_role"] = role
            if tile_scale > 1:
                # Recorded only when the scaled estimate actually entered
                # the capacity decision (cross-region intermediates) —
                # program outputs are placed in DRAM before any scaling.
                node.meta["mem_tile_scale"] = tile_scale
            if level == "sram":
                node.meta["mem_bank"] = hier.sram.bank_of(tensor_name)
                placed_sram += 1
        region.diag.sram_placed = placed_sram
        region.diag.spilled_outputs = spilled
        region.diag.sram_reserved = ctx.sram_reserved
        if not hier.has_sram:
            region.diag.skipped_passes[self.name] = (
                "flat hierarchy: no on-chip level, all placements DRAM"
            )

    @staticmethod
    def _consumed_later(ctx: PassContext, position: int) -> set:
        """Tensor names read by statements in regions after ``position``."""
        later: set = set()
        for sids in ctx.schedule.regions[position + 1 :]:
            for sid in sids:
                for acc in ctx.program.statements[sid].operands:
                    later.add(acc.tensor)
        return later

    def _place_output(
        self,
        ctx: PassContext,
        hier: HierarchySpec,
        prim,
        tensor_name: str,
        program_outputs: set,
        consumed_later: set,
        region: RegionState,
    ) -> Tuple[str, str, int]:
        """Place one writer's tensor; returns (level, role, tile scale).

        The tile scale is the resident-footprint divisor the capacity
        check used; 1 for program outputs, whose DRAM placement never
        consults the estimate.
        """
        if tensor_name in program_outputs or tensor_name not in consumed_later:
            return "dram", "output", 1
        estimate = dense_estimate_bytes(prim.shape, getattr(prim, "fmt", None))
        # Index splitting shrinks the *resident* footprint: with a mode of
        # this tensor split T ways, only one of its T tiles occupies the
        # buffer at a time (the region streams tile-by-tile), so the
        # reservation divides by the tile scale.  Total traffic through
        # the level is unchanged — capacity is what tiling buys.
        scale = split_footprint_scale(
            region.splits, self._output_indices(region, tensor_name)
        )
        if scale > 1:
            estimate = max(8, -(-estimate // scale))
        if (
            hier.has_sram
            and ctx.sram_reserved + estimate <= hier.sram.capacity_bytes
        ):
            ctx.sram_reserved += estimate
            ctx.placements[tensor_name] = "sram"
            return "sram", "intermediate", scale
        ctx.placements[tensor_name] = "dram"
        return "dram", "spill", scale

    @staticmethod
    def _output_indices(region: RegionState, tensor_name: str) -> Tuple[str, ...]:
        """The logical index variables (modes) of a region output tensor."""
        for spec in region.output_specs:
            if spec.name == tensor_name:
                return tuple(spec.logical_indices)
        return ()


@register_pass
class Parallelize(Pass):
    """Duplicate compute lanes per the schedule's parallelization factors."""

    name = "parallelize"
    requires = ("graph", "order")

    def run(self, ctx: PassContext, region: RegionState) -> None:
        """Apply the schedule's parallelization factors to the graph."""
        # Parallelization targets real loop levels only: the synthetic
        # outer tile indices a split prepends (``x1.t8``) are sequential
        # time-multiplexing, so duplicating lanes across one is
        # meaningless — they are filtered out, and a par factor naming one
        # is skipped like any other non-iterated index.
        real_order = [idx for idx in region.order if not is_tile_index(idx)]
        applied = False
        for index_var, factor in ctx.schedule.par.items():
            if index_var in real_order:
                apply_parallelization(region.graph, real_order, index_var, factor)
                applied = True
        if not applied:
            region.diag.skipped_passes[self.name] = (
                "no parallelized index in region order"
                if ctx.schedule.par
                else "schedule has no parallelization"
            )
