"""The executable handle returned by :meth:`Session.compile`.

An :class:`Executable` is a compiled program bound to a machine: call it
on a binding (``exe(binding)`` or ``exe.run(A=..., X=...)``) to simulate,
introspect it with :meth:`describe`, and read the structured
:attr:`diagnostics` the pipeline collected while compiling it.  Executables
are immutable and safe to share — the Session cache hands the same object
back for every fingerprint-identical compile.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..comal.machines import Machine
from ..core.einsum.ast import EinsumProgram, TensorDecl
from ..core.schedule.schedule import Schedule
from ..ftree.tensor import SparseTensor
from .compiled import (
    CompiledProgram,
    CompiledRegion,
    ProgramResult,
    execute_compiled,
)
from .diagnostics import CompileDiagnostics


class Executable:
    """A compiled program plus the machine it will simulate on.

    Parameters
    ----------
    compiled:
        The region graphs and declaration registry from the pipeline.
    machine:
        Default timing model for executions (overridable per call).
    diagnostics:
        Structured record of what the pipeline did while compiling.
    fingerprint:
        The Session cache key this executable was stored under.
    columnar, debug_streams, sim_cache:
        Simulation options inherited from the Session (``None`` = the
        environment defaults).
    backend:
        The *resolved* execution backend name (``"interp"``,
        ``"columnar"``, or ``"codegen"``) this executable was compiled
        under; ``None`` defers to ``columnar`` / the environment (the
        pre-backend behavior).
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        machine: Machine,
        diagnostics: CompileDiagnostics,
        fingerprint: Tuple[str, ...] = (),
        columnar: Optional[bool] = None,
        debug_streams: Optional[bool] = None,
        sim_cache: Optional[bool] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.compiled = compiled
        self.machine = machine
        self.diagnostics = diagnostics
        #: The Session cache key this executable was stored under.
        self.fingerprint = fingerprint
        #: Simulation options inherited from the Session (None = env default).
        self.columnar = columnar
        self.debug_streams = debug_streams
        self.sim_cache = sim_cache
        #: Resolved backend name, or None for the env/columnar default.
        self.backend = backend

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def program(self) -> EinsumProgram:
        """The Einsum program this executable was compiled from."""
        return self.compiled.program

    @property
    def schedule(self) -> Schedule:
        """The schedule it was compiled under."""
        return self.compiled.schedule

    @property
    def regions(self) -> List[CompiledRegion]:
        """The compiled fusion regions, in execution order."""
        return self.compiled.regions

    @property
    def decls(self) -> Dict[str, TensorDecl]:
        """Declaration registry including materialized region outputs."""
        return self.compiled.decls

    def describe(self) -> str:
        """Region/graph summary plus the compile diagnostics."""
        return "\n".join(
            [
                self.compiled.describe(),
                self.diagnostics.describe(),
            ]
        )

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def __call__(
        self,
        binding: Optional[Dict[str, SparseTensor]] = None,
        machine: Optional[Machine] = None,
        **tensors: SparseTensor,
    ) -> ProgramResult:
        """Simulate on ``binding`` (and/or tensors by keyword).

        Parameters
        ----------
        binding:
            Tensor name -> :class:`~repro.ftree.tensor.SparseTensor`.
        machine:
            Per-call timing-model override.  Placement metadata baked in
            at compile time is a *request*: a machine without an SRAM
            level serves every placement from DRAM.
        **tensors:
            Individual tensors by keyword, merged over ``binding``.

        Returns
        -------
        ProgramResult
            Program metrics (incl. per-level memory traffic), per-region
            :class:`~repro.comal.engine.SimResult` list, and the
            materialized output tensors.
        """
        bind: Dict[str, SparseTensor] = dict(binding or {})
        bind.update(tensors)
        return execute_compiled(
            self.compiled,
            bind,
            machine or self.machine,
            backend=self.backend,
            columnar=self.columnar,
            debug_streams=self.debug_streams,
            cache=self.sim_cache,
        )

    def run(
        self,
        binding: Optional[Dict[str, SparseTensor]] = None,
        machine: Optional[Machine] = None,
        **tensors: SparseTensor,
    ) -> ProgramResult:
        """Alias for calling the executable directly."""
        return self(binding, machine=machine, **tensors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Executable {self.program.name}/{self.schedule.name} "
            f"({len(self.regions)} region(s), {self.compiled.total_nodes()} nodes)>"
        )
