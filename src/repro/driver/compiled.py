"""Compiled artifacts and the region-chaining executor.

These dataclasses are the driver's output format (and the legacy
:mod:`repro.pipeline` API surface, which re-exports them unchanged): a
:class:`CompiledProgram` is a list of per-region SAMML graphs plus the
declaration registry grown during lowering, and :func:`execute_compiled`
runs the region graphs in order on a machine, materializing region outputs
and binding them as inputs of later regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..comal.engine import SimResult, run_timed
from ..comal.machines import Machine, RDA_MACHINE
from ..comal.metrics import ProgramMetrics
from ..core.einsum.ast import EinsumProgram, TensorDecl
from ..core.fusion.fuse import FusedEinsum
from ..core.schedule.schedule import Schedule
from ..core.tables.lower import OutputSpec
from ..ftree.tensor import SparseTensor
from ..sam.graph import SAMGraph


@dataclass
class CompiledRegion:
    """One fused region's compiled form."""

    graph: Optional[SAMGraph]
    fused: FusedEinsum
    order: List[str]
    output_specs: List[OutputSpec]
    table_text: str
    # Permuted copies to materialize: (original tensor, new name, mode order).
    transposes: List[Tuple[str, str, Tuple[int, ...]]] = field(default_factory=list)


@dataclass
class CompiledProgram:
    """A compiled model: region graphs plus declaration registry."""

    program: EinsumProgram
    schedule: Schedule
    regions: List[CompiledRegion]
    decls: Dict[str, TensorDecl]
    compile_seconds: float = 0.0
    # Materialized transposed views, keyed by (source tensor id, new name).
    # Reusing them keeps binding identities stable across executions (the
    # simulator memo keys on them); the DRAM/cycle cost of the permuted
    # copy is still charged on every execution, as the timing model demands.
    transpose_cache: Dict[Tuple[int, str], Any] = field(
        default_factory=dict, repr=False, compare=False
    )

    def __getstate__(self):
        # The transpose cache is keyed by live object ids; serialized (the
        # persistent compile cache pickles CompiledPrograms to disk) those
        # keys are dangling, so the cache travels empty and refills on use.
        state = dict(self.__dict__)
        state["transpose_cache"] = {}
        return state

    def total_nodes(self) -> int:
        """Total SAMML node count across all lowered regions."""
        return sum(r.graph.node_count() for r in self.regions if r.graph)

    def describe(self) -> str:
        """Multi-line summary: per-region orders, node counts, outputs."""
        lines = [
            f"compiled {self.program.name} under {self.schedule.name}: "
            f"{len(self.regions)} region(s), {self.total_nodes()} nodes, "
            f"{self.compile_seconds * 1e3:.1f} ms"
        ]
        for region in self.regions:
            if region.graph is None:
                lines.append(f"  <unlowered region over {region.order}>")
                continue
            lines.append(
                f"  {region.graph.name}: order {region.order}, "
                f"{region.graph.node_count()} nodes, outputs "
                f"{[s.name for s in region.output_specs]}"
            )
        return "\n".join(lines)


@dataclass
class ProgramResult:
    """Outcome of executing a compiled program.

    Attributes
    ----------
    metrics:
        Program-level accumulation (cycles, FLOPs, per-level bytes).
    tensors:
        Every tensor materialized during execution, by name.
    region_results:
        One :class:`~repro.comal.engine.SimResult` per region, in order.
    """

    metrics: ProgramMetrics
    tensors: Dict[str, SparseTensor]
    region_results: List[SimResult] = field(default_factory=list)

    def output(self, name: str) -> SparseTensor:
        """The materialized tensor called ``name`` (KeyError if absent)."""
        return self.tensors[name]


def execute_compiled(
    compiled: CompiledProgram,
    binding: Dict[str, SparseTensor],
    machine: Machine = RDA_MACHINE,
    *,
    backend: Optional[str] = None,
    columnar: Optional[bool] = None,
    debug_streams: Optional[bool] = None,
    cache: Optional[bool] = None,
) -> ProgramResult:
    """Run all region graphs in order, chaining materialized outputs.

    Parameters
    ----------
    compiled:
        The compiled program (every region must carry a lowered graph).
    binding:
        Tensor name -> tensor for the program's inputs; region outputs
        are bound as they materialize.
    machine:
        Timing model (and memory hierarchy) the regions simulate on.
    backend, columnar, debug_streams, cache:
        Execution backend, stream representation, per-stream protocol
        checking, and result memoization of the underlying simulations
        (``None`` = environment defaults; see
        :mod:`repro.comal.functional` and :mod:`repro.backend`).

    Returns
    -------
    ProgramResult

    Raises
    ------
    RuntimeError
        If a region was never lowered (pipeline missing ``lower-region``).
    """
    bind: Dict[str, Any] = dict(binding)
    metrics = ProgramMetrics(label=compiled.schedule.name)
    produced: Dict[str, SparseTensor] = {}
    region_results: List[SimResult] = []
    for region in compiled.regions:
        if region.graph is None:
            raise RuntimeError(
                f"region {region.order} was never lowered to a graph; "
                "the compiling pipeline is missing its 'lower-region' pass"
            )
        for orig, new_name, mode_order in region.transposes:
            if new_name not in bind:
                source = bind[orig]
                tkey = (id(source), new_name)
                copy = compiled.transpose_cache.get(tkey)
                if copy is None:
                    if len(compiled.transpose_cache) > 32:
                        compiled.transpose_cache.clear()
                    copy = source.permuted_copy(mode_order, name=new_name)
                    compiled.transpose_cache[tkey] = copy
                    # Keep the source pinned so its id stays valid.
                    compiled.transpose_cache[(id(source), f"{new_name}#src")] = source
                bind[new_name] = copy
                # A permuted copy is a DRAM round trip of the whole tensor.
                extra = 2 * source.bytes_total()
                metrics.dram_bytes += extra
                metrics.cycles += extra / machine.dram_bandwidth
        result = run_timed(
            region.graph,
            bind,
            machine,
            backend=backend,
            columnar=columnar,
            debug_streams=debug_streams,
            cache=cache,
        )
        metrics.add(result, region.graph.name)
        for name, tensor in result.results.items():
            bind[name] = tensor
            produced[name] = tensor
        region_results.append(result)
    return ProgramResult(metrics=metrics, tensors=produced, region_results=region_results)
