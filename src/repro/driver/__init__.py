"""The FuseFlow compiler driver: sessions, pass pipelines, executables.

This package is the redesigned public compile API:

* :class:`Session` — owns a machine, a :class:`PassPipeline`, and a
  compile cache keyed by canonical program/schedule/pipeline fingerprints;
  ``session.compile(program, schedule)`` returns an :class:`Executable`.
* :class:`Executable` — directly callable on bindings
  (``exe(binding)`` / ``exe.run(A=...)``), with ``describe()`` and
  structured :class:`CompileDiagnostics`.
* :class:`PassPipeline` — named, reorderable, pluggable passes
  (``fuse-regions``, ``fold-masks``, ``merge-contractions``,
  ``lower-region``, ``place-memory``, ``parallelize``) with per-pass
  timings; extend via :func:`register_pass` or
  ``pipeline.with_pass(...)``.

The legacy :mod:`repro.pipeline` free functions remain as thin shims over
:func:`default_session`.
"""

from .compiled import (
    CompiledProgram,
    CompiledRegion,
    ProgramResult,
    execute_compiled,
)
from .diagnostics import CompileDiagnostics, RegionDiagnostics
from .diskcache import DiskCache, DiskCacheInfo
from .executable import Executable
from .passes import (
    PASS_REGISTRY,
    FoldMasks,
    FuseRegions,
    LowerRegion,
    MergeContractions,
    Parallelize,
    Pass,
    PassContext,
    PlaceMemory,
    RegionState,
    register_pass,
)
from .pipeline import DEFAULT_PASS_ORDER, PassPipeline, PipelineError
from .session import CacheInfo, Session, default_session
from .sweeping import ScheduleRun, sweep_schedules

__all__ = [
    "Session",
    "default_session",
    "CacheInfo",
    "DiskCache",
    "DiskCacheInfo",
    "ScheduleRun",
    "sweep_schedules",
    "Executable",
    "PassPipeline",
    "PipelineError",
    "DEFAULT_PASS_ORDER",
    "Pass",
    "PassContext",
    "RegionState",
    "register_pass",
    "PASS_REGISTRY",
    "FuseRegions",
    "FoldMasks",
    "MergeContractions",
    "LowerRegion",
    "PlaceMemory",
    "Parallelize",
    "CompileDiagnostics",
    "RegionDiagnostics",
    "CompiledProgram",
    "CompiledRegion",
    "ProgramResult",
    "execute_compiled",
]
