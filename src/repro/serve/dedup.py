"""Single-flight execution: identical in-flight requests share one run.

Serving traffic is bursty and repetitive — a fleet warming up POSTs the
same compile K times at once.  The Session cache alone does not collapse
that burst: all K threads miss the (empty) cache together and K compiles
run.  :class:`SingleFlight` closes the window: the first thread in for a
key becomes the *leader* and does the work; every thread that arrives
while it is in flight becomes a *follower* and blocks on the leader's
future, so K concurrent identical requests cost exactly one execution.

Results are intentionally NOT cached here — once the leader finishes, the
next request for the same key runs again (and then hits the Session /
disk cache).  Single-flight is a concurrency collapse, not a cache.

Waits are bounded when the caller asks for it: ``run(..., timeout=s)``
raises :class:`WaitTimeout` after ``s`` seconds instead of stranding the
thread behind a hung leader.  A timed-out *leader*'s work keeps running
in a background thread (Python cannot safely preempt it) and still
resolves the shared future, so followers that arrived with longer
timeouts — or the next burst — are not poisoned; only the responses that
exceeded their deadline are abandoned.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from typing import Any, Callable, Dict, Optional, Tuple

__all__ = ["SingleFlight", "WaitTimeout"]


class WaitTimeout(TimeoutError):
    """A bounded single-flight wait expired before the work finished."""

    def __init__(self, key: str, timeout: float, leader: bool) -> None:
        role = "leader" if leader else "follower"
        super().__init__(
            f"single-flight {role} wait for key {key[:16]}… exceeded "
            f"{timeout:g}s (the work keeps running in the background)"
        )
        self.key = key
        self.timeout = timeout
        self.leader = leader


class SingleFlight:
    """Per-key deduplication of concurrent identical work."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._leaders = 0
        self._followers = 0
        self._timeouts = 0

    def run(
        self,
        key: str,
        fn: Callable[[], Any],
        timeout: Optional[float] = None,
    ) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent burst of ``key``.

        Parameters
        ----------
        key:
            Content key identical work shares.
        fn:
            The work; executed by the burst's leader only.
        timeout:
            Optional bound, in seconds, on how long this caller waits for
            the result.  ``None`` (the default) waits forever in the
            calling thread — byte-identical to the pre-deadline behavior.
            With a timeout, the leader runs ``fn`` in a daemon thread so
            its own wait can expire too.

        Returns
        -------
        tuple
            ``(result, deduped)``: the leader's result and whether this
            caller was a follower (``True`` = it waited instead of
            running).  A leader's exception propagates to every follower.

        Raises
        ------
        WaitTimeout
            The bounded wait expired; the work itself is NOT cancelled
            and later callers for the key are unaffected.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self._followers += 1
                leader = False
            else:
                future = Future()
                self._inflight[key] = future
                self._leaders += 1
                leader = True
        if not leader:
            return self._wait(key, future, timeout, leader=False), True
        if timeout is None:
            # Classic path: lead in the calling thread.
            try:
                result = fn()
            except BaseException as exc:
                with self._lock:
                    self._inflight.pop(key, None)
                future.set_exception(exc)
                raise
            with self._lock:
                self._inflight.pop(key, None)
            future.set_result(result)
            return result, False
        # Deadline path: lead in a worker thread so the wait is bounded.
        threading.Thread(
            target=self._lead,
            args=(key, fn, future),
            name=f"singleflight-{key[:8]}",
            daemon=True,
        ).start()
        return self._wait(key, future, timeout, leader=True), False

    def _lead(self, key: str, fn: Callable[[], Any], future: Future) -> None:
        """Leader body for deadline-bounded runs (same pop-then-resolve
        ordering as the inline path, so a finished key is immediately
        leadable again)."""
        try:
            result = fn()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            return
        with self._lock:
            self._inflight.pop(key, None)
        future.set_result(result)

    def _wait(
        self,
        key: str,
        future: Future,
        timeout: Optional[float],
        leader: bool,
    ) -> Any:
        try:
            return future.result(timeout)
        except FutureTimeout:
            with self._lock:
                self._timeouts += 1
            raise WaitTimeout(key, timeout or 0.0, leader) from None

    def stats(self) -> Dict[str, int]:
        """Counters: leaders (executions), followers (deduped), in flight,
        and bounded waits that expired."""
        with self._lock:
            return {
                "leaders": self._leaders,
                "followers": self._followers,
                "inflight": len(self._inflight),
                "wait_timeouts": self._timeouts,
            }
