"""Single-flight execution: identical in-flight requests share one run.

Serving traffic is bursty and repetitive — a fleet warming up POSTs the
same compile K times at once.  The Session cache alone does not collapse
that burst: all K threads miss the (empty) cache together and K compiles
run.  :class:`SingleFlight` closes the window: the first thread in for a
key becomes the *leader* and does the work; every thread that arrives
while it is in flight becomes a *follower* and blocks on the leader's
future, so K concurrent identical requests cost exactly one execution.

Results are intentionally NOT cached here — once the leader finishes, the
next request for the same key runs again (and then hits the Session /
disk cache).  Single-flight is a concurrency collapse, not a cache.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Any, Callable, Dict, Tuple

__all__ = ["SingleFlight"]


class SingleFlight:
    """Per-key deduplication of concurrent identical work."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._inflight: Dict[str, Future] = {}
        self._leaders = 0
        self._followers = 0

    def run(self, key: str, fn: Callable[[], Any]) -> Tuple[Any, bool]:
        """Run ``fn`` once per concurrent burst of ``key``.

        Returns
        -------
        tuple
            ``(result, deduped)``: the leader's result and whether this
            caller was a follower (``True`` = it waited instead of
            running).  A leader's exception propagates to every follower.
        """
        with self._lock:
            future = self._inflight.get(key)
            if future is not None:
                self._followers += 1
                leader = False
            else:
                future = Future()
                self._inflight[key] = future
                self._leaders += 1
                leader = True
        if not leader:
            return future.result(), True
        try:
            result = fn()
        except BaseException as exc:
            with self._lock:
                self._inflight.pop(key, None)
            future.set_exception(exc)
            raise
        with self._lock:
            self._inflight.pop(key, None)
        future.set_result(result)
        return result, False

    def stats(self) -> Dict[str, int]:
        """Counters: leaders (executions), followers (deduped), in flight."""
        with self._lock:
            return {
                "leaders": self._leaders,
                "followers": self._followers,
                "inflight": len(self._inflight),
            }
