"""Compile-as-a-service front end over the FuseFlow driver.

``fuseflow serve`` exposes the compiler and simulator over HTTP (stdlib
:mod:`http.server`, no new dependencies): einsum programs and model sweep
points arrive as JSON, compile through shared
:class:`~repro.driver.session.Session`\\ s backed by one persistent
:class:`~repro.driver.diskcache.DiskCache`, and identical in-flight
requests are collapsed onto a single compile by
:class:`~repro.serve.dedup.SingleFlight`.  See ``docs/serving.md``.
"""

from .app import FuseFlowServer, ServerState, make_server
from .dedup import SingleFlight, WaitTimeout
from .protocol import ServeError, ServeRequest, parse_request

__all__ = [
    "FuseFlowServer",
    "ServerState",
    "make_server",
    "SingleFlight",
    "WaitTimeout",
    "ServeError",
    "ServeRequest",
    "parse_request",
]
