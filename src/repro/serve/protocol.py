"""Serve protocol: JSON request bodies -> validated work units.

One request describes one compile (or compile-and-simulate) the same way a
sweep point does — model requests reuse :class:`~repro.sweep.spec.SweepPoint`
verbatim, so anything expressible in a sweep grid is servable, with the
identical validation errors.  Raw einsum programs (the concrete syntax of
:func:`~repro.core.einsum.parser.parse_program`) are accepted for
compile-only requests, which carry no tensor binding to simulate against.

Every request renders to a canonical content key (:meth:`ServeRequest.key`,
the usual sha256-over-canonical-rendering idiom) — the serve front end
deduplicates identical in-flight requests on it, so a thundering herd of
equal requests costs one compile.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Optional

from ..backend.base import BACKEND_NAMES
from ..comal.hierarchy import resolve_hierarchy
from ..comal.machines import MACHINES
from ..core.einsum.ast import EinsumError
from ..core.einsum.parser import parse_program
from ..sweep.spec import SYNTHETIC, SweepPoint, SweepSpecError

__all__ = ["ServeError", "ServeRequest", "parse_request"]

#: JSON keys a request body may carry; anything else is a loud 400 (a typoed
#: knob silently ignored would serve the wrong experiment).
_ALLOWED_KEYS = frozenset(
    {
        "model",
        "dataset",
        "schedule",
        "machine",
        "hierarchy",
        "backend",
        "model_args",
        "par",
        "splits",
        "program",
        "name",
        "deadline_ms",
    }
)

_PROGRAM_SCHEDULES = ("unfused", "full")


class ServeError(ValueError):
    """Malformed serve request; the front end maps it to HTTP 400."""


@dataclass(frozen=True)
class ServeRequest:
    """One validated serve work unit (hashable, content-addressed).

    Exactly one of ``point`` (a model request, sweep-point semantics) and
    ``program_text`` (raw einsum source, compile-only) is set.
    """

    action: str  # "compile" | "simulate"
    machine: str
    hierarchy: str
    backend: str
    schedule: str
    point: Optional[SweepPoint] = None
    program_text: Optional[str] = None
    program_name: str = "program"
    #: Client-requested response deadline in milliseconds; the server caps
    #: it at its own ``--deadline``.  Deliberately NOT part of :meth:`key`:
    #: two requests for the same work with different patience still share
    #: one execution.
    deadline_ms: Optional[int] = None

    def key(self) -> str:
        """Canonical content key: sha256 over everything the request reads.

        Two requests share a key iff they would do byte-identical work, so
        the single-flight layer can collapse them onto one execution.
        """
        if self.point is not None:
            parts = {"action": self.action, "point": self.point.to_record()}
        else:
            parts = {
                "action": self.action,
                "program": self.program_text,
                "name": self.program_name,
                "schedule": self.schedule,
                "machine": self.machine,
                "hierarchy": self.hierarchy,
                "backend": self.backend,
            }
        rendering = json.dumps(parts, sort_keys=True)
        return hashlib.sha256(rendering.encode("utf-8")).hexdigest()

    def label(self) -> str:
        """Human-readable request name for logs and responses."""
        if self.point is not None:
            return self.point.label()
        return f"{self.program_name}/{self.schedule}/{self.machine}"


def _require_mapping(data: dict, field: str) -> dict:
    value = data.get(field) or {}
    if not isinstance(value, dict):
        raise ServeError(f"{field!r} must be a JSON object")
    return value


def parse_request(raw: bytes, action: str) -> ServeRequest:
    """Parse and validate one request body; raises :class:`ServeError`.

    Parameters
    ----------
    raw:
        The HTTP request body (JSON).
    action:
        ``"compile"`` or ``"simulate"`` (from the endpoint path).
    """
    if action not in ("compile", "simulate"):
        raise ServeError(f"unknown action {action!r}")
    try:
        data = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServeError(f"request body is not valid JSON: {exc}") from None
    if not isinstance(data, dict):
        raise ServeError("request body must be a JSON object")
    unknown = sorted(set(data) - _ALLOWED_KEYS)
    if unknown:
        raise ServeError(
            f"unknown request key(s) {unknown}; valid keys: "
            f"{sorted(_ALLOWED_KEYS)}"
        )
    has_model = bool(data.get("model"))
    has_program = "program" in data
    if has_model == has_program:
        raise ServeError(
            "pass exactly one of 'model' (a registered model name) or "
            "'program' (raw einsum source text)"
        )
    machine = str(data.get("machine", "rda"))
    hierarchy = str(data.get("hierarchy", "flat"))
    backend = str(data.get("backend", ""))
    deadline_ms = data.get("deadline_ms")
    if deadline_ms is not None:
        if not isinstance(deadline_ms, int) or isinstance(deadline_ms, bool) \
                or deadline_ms < 1:
            raise ServeError(
                f"'deadline_ms' must be a positive integer, got {deadline_ms!r}"
            )

    if has_model:
        schedule = str(data.get("schedule", "partial"))
        try:
            point = SweepPoint.make(
                model=str(data["model"]),
                dataset=str(data.get("dataset", SYNTHETIC)),
                schedule=schedule,
                machine=machine,
                model_args=_require_mapping(data, "model_args"),
                par={
                    k: int(v) for k, v in _require_mapping(data, "par").items()
                },
                splits={
                    k: int(v)
                    for k, v in _require_mapping(data, "splits").items()
                },
                hierarchy=hierarchy,
                backend=backend,
            )
            point.validate()
        except (SweepSpecError, TypeError, ValueError) as exc:
            raise ServeError(str(exc)) from None
        return ServeRequest(
            action=action,
            machine=machine,
            hierarchy=hierarchy,
            backend=backend,
            schedule=schedule,
            point=point,
            deadline_ms=deadline_ms,
        )

    # Raw einsum source: compile-only (there is no tensor binding to run).
    if action != "compile":
        raise ServeError(
            "program-text requests are compile-only; POST /v1/compile "
            "(simulate needs a model, which carries its tensor binding)"
        )
    text = data["program"]
    if not isinstance(text, str) or not text.strip():
        raise ServeError("'program' must be non-empty einsum source text")
    schedule = str(data.get("schedule", "unfused"))
    if schedule not in _PROGRAM_SCHEDULES:
        raise ServeError(
            f"program-text requests support schedule in "
            f"{_PROGRAM_SCHEDULES}, got {schedule!r}"
        )
    if machine not in MACHINES:
        raise ServeError(
            f"unknown machine {machine!r}; expected one of {sorted(MACHINES)}"
        )
    try:
        resolve_hierarchy(hierarchy)
    except ValueError as exc:
        raise ServeError(str(exc)) from None
    if backend and backend not in BACKEND_NAMES:
        raise ServeError(
            f"unknown backend {backend!r}; expected one of {BACKEND_NAMES} "
            "(or '' for the session default)"
        )
    name = str(data.get("name", "program"))
    try:
        # Parse eagerly so a syntax error is a clean 400 at the door, not
        # a 500 from inside the compile path.
        parse_program(text, name)
    except EinsumError as exc:
        raise ServeError(f"program does not parse: {exc}") from None
    return ServeRequest(
        action=action,
        machine=machine,
        hierarchy=hierarchy,
        backend=backend,
        schedule=schedule,
        program_text=text,
        program_name=name,
        deadline_ms=deadline_ms,
    )
