"""``fuseflow serve``: a threaded HTTP front end over shared Sessions.

Stdlib only (:mod:`http.server`); one :class:`ServerState` owns everything
the handler threads share:

* one :class:`~repro.driver.session.Session` per (machine, hierarchy,
  backend), all attached to one :class:`~repro.driver.diskcache.DiskCache`
  — so a serve process restarted over a warm cache directory answers its
  first compile with a read-and-unpickle;
* a model-bundle cache (tracing a model once per process, like sweep
  workers);
* a :class:`~repro.serve.dedup.SingleFlight` collapsing identical
  in-flight requests onto one execution.

Endpoints::

    GET  /healthz      liveness (503 + ``draining`` once drain begins)
    GET  /v1/stats     request/dedup/cache counters (JSON)
    POST /v1/compile   compile a model point or raw einsum program
    POST /v1/simulate  compile + execute + verify a model point

Every POST response carries ``X-Fuseflow-Cache`` (``memory`` / ``disk`` /
``compiled``), ``X-Fuseflow-Deduped`` (this request rode an in-flight
identical one), and ``X-Fuseflow-Compile-Ms``.

Overload and failure behavior (see ``docs/reliability.md``):

* **Deadlines.**  With a server ``deadline`` (or a per-request
  ``deadline_ms``, capped by the server's), a request that cannot be
  answered in time gets a **504**; the underlying compile keeps running
  and benefits the next caller through the caches.
* **Load shedding.**  With ``max_inflight`` set, excess concurrent POSTs
  are refused immediately with a **503** and a ``Retry-After`` header
  instead of queueing without bound inside the thread pool.
* **Graceful drain.**  :meth:`FuseFlowServer.drain` (wired to
  SIGTERM/SIGINT by the CLI) stops admitting new work (503), lets
  in-flight requests finish up to a timeout, then shuts down; health
  checks report ``draining`` so balancers stop routing here.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import asdict
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from ..comal.machines import MACHINES
from ..core.einsum.parser import parse_program
from ..core.schedule.schedule import fully_fused, unfused
from ..driver.diskcache import DiskCache
from ..driver.session import Session
from ..models.common import VERIFY_TOLERANCE
from ..reliability import fault_point
from ..sweep.spec import build_bundle
from .dedup import SingleFlight, WaitTimeout
from .protocol import ServeError, ServeRequest, parse_request

__all__ = ["ServerState", "FuseFlowServer", "make_server"]

_POST_ACTIONS = {"/v1/compile": "compile", "/v1/simulate": "simulate"}


class ServerState:
    """Shared compile/execute state behind the HTTP handler threads.

    Parameters
    ----------
    cache_dir:
        Persistent compile-cache directory every session shares; ``None``
        follows ``FUSEFLOW_CACHE_DIR`` (no disk cache when unset).
    deadline:
        Per-request response deadline in seconds; a request not answered
        in time is a 504.  ``None`` disables deadlines (a per-request
        ``deadline_ms`` still applies, capped only by itself).
    max_inflight:
        Concurrent-POST cap; excess requests are shed with 503 +
        ``Retry-After``.  ``None`` = unbounded (pre-hardening behavior).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        deadline: Optional[float] = None,
        max_inflight: Optional[int] = None,
    ) -> None:
        if cache_dir is None:
            cache_dir = os.environ.get("FUSEFLOW_CACHE_DIR") or None
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (or None)")
        if max_inflight is not None and max_inflight < 1:
            raise ValueError("max_inflight must be positive (or None)")
        self.disk_cache: Optional[DiskCache] = (
            DiskCache(cache_dir) if cache_dir else None
        )
        self.deadline = deadline
        self.max_inflight = max_inflight
        self.flight = SingleFlight()
        self._lock = threading.Lock()
        self._sessions: Dict[Tuple[str, str, str], Session] = {}
        self._bundles: Dict[Tuple[str, str, tuple], Any] = {}
        self._requests = 0
        self._compiles = 0
        self._errors = 0
        self._inflight = 0
        self._shed = 0
        self._timeouts = 0
        self._draining = False
        self._started = time.time()

    # ------------------------------------------------------------------
    # Admission control / drain lifecycle
    # ------------------------------------------------------------------
    def admit(self) -> Optional[str]:
        """Try to admit one POST; returns a refusal reason or ``None``.

        On ``None`` the caller MUST pair this with :meth:`finish` (the
        in-flight count is what drain waits on and shedding caps).
        """
        with self._lock:
            if self._draining:
                return "draining"
            if (
                self.max_inflight is not None
                and self._inflight >= self.max_inflight
            ):
                self._shed += 1
                return "overloaded"
            self._inflight += 1
            return None

    def finish(self) -> None:
        """Release one admitted request."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)

    def begin_drain(self) -> None:
        """Stop admitting new requests; in-flight ones run to completion."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def inflight_count(self) -> int:
        with self._lock:
            return self._inflight

    def count_timeout(self) -> None:
        with self._lock:
            self._timeouts += 1

    def count_error(self) -> None:
        with self._lock:
            self._errors += 1

    # ------------------------------------------------------------------
    # Shared resources
    # ------------------------------------------------------------------
    def session_for(
        self, machine: str, hierarchy: str, backend: str
    ) -> Session:
        """The shared Session for (machine, hierarchy, backend)."""
        key = (machine, hierarchy, backend)
        with self._lock:
            session = self._sessions.get(key)
            if session is None:
                session = Session(
                    machine=MACHINES[machine],
                    hierarchy=hierarchy,
                    backend=backend or None,
                    # False (not None): the env var is folded into this
                    # state's shared DiskCache already, so sessions must
                    # not each grow a private second instance.
                    disk_cache=self.disk_cache
                    if self.disk_cache is not None
                    else False,
                )
                self._sessions[key] = session
            return session

    def bundle_for(self, point):
        """The cached model bundle for a point (traced once per process)."""
        key = (point.model, point.dataset, tuple(point.model_args))
        with self._lock:
            bundle = self._bundles.get(key)
        if bundle is not None:
            return bundle
        bundle = build_bundle(point)
        with self._lock:
            # Another thread may have traced the same model meanwhile;
            # keep the incumbent so callers share one bundle.
            return self._bundles.setdefault(key, bundle)

    # ------------------------------------------------------------------
    # Request execution
    # ------------------------------------------------------------------
    def request_timeout(self, request: ServeRequest) -> Optional[float]:
        """Effective wait bound: the tighter of server and client deadlines."""
        bounds = []
        if self.deadline is not None:
            bounds.append(self.deadline)
        if request.deadline_ms is not None:
            bounds.append(request.deadline_ms / 1000.0)
        return min(bounds) if bounds else None

    def handle(self, request: ServeRequest) -> Tuple[Dict[str, Any], Dict[str, str]]:
        """Execute one request (deduplicated); returns (payload, headers).

        Raises
        ------
        WaitTimeout
            The request's deadline expired before the (possibly shared)
            execution finished; the front end maps it to HTTP 504.
        """
        with self._lock:
            self._requests += 1
        result, deduped = self.flight.run(
            request.key(),
            lambda: self._execute(request),
            timeout=self.request_timeout(request),
        )
        headers = dict(result["headers"])
        headers["X-Fuseflow-Deduped"] = "1" if deduped else "0"
        payload = dict(result["payload"])
        payload["deduped"] = deduped
        return payload, headers

    def _execute(self, request: ServeRequest) -> Dict[str, Any]:
        started = time.perf_counter()
        # Fault site: an injected hang here is a stuck compile/simulate —
        # exactly what the deadline (504), the single-flight follower
        # timeout, and load shedding exist to contain.
        fault_point("serve.request", key=request.key())
        session = self.session_for(
            request.machine, request.hierarchy, request.backend
        )
        bundle = None
        if request.point is not None:
            bundle = self.bundle_for(request.point)
            program = bundle.program
            schedule = bundle.schedule(request.schedule)
            schedule.par = dict(request.point.par)
            schedule.splits = dict(request.point.splits)
        else:
            program = parse_program(request.program_text, request.program_name)
            schedule = (
                unfused(program)
                if request.schedule == "unfused"
                else fully_fused(program)
            )
        executable, source = session.compile_detailed(program, schedule)
        if source == "compiled":
            with self._lock:
                self._compiles += 1
        diagnostics = executable.diagnostics
        payload: Dict[str, Any] = {
            "action": request.action,
            "label": request.label(),
            "key": request.key(),
            "cache": source,
            "program": program.name,
            "schedule": schedule.name,
            "backend": diagnostics.backend,
            "regions": len(executable.compiled.regions),
            "compile_seconds": executable.compiled.compile_seconds,
        }
        if request.action == "simulate":
            result = executable(bundle.binding)
            metrics = result.metrics
            max_abs_err = bundle.max_abs_err(result)
            payload["metrics"] = {
                "cycles": metrics.cycles,
                "flops": metrics.flops,
                "dram_bytes": metrics.dram_bytes,
                "sram_bytes": metrics.sram_bytes,
                "spill_bytes": metrics.spill_bytes,
                "fill_bytes": metrics.fill_bytes,
                "tokens": metrics.tokens,
                "num_kernels": metrics.num_kernels,
            }
            payload["max_abs_err"] = max_abs_err
            payload["verified"] = bool(max_abs_err < VERIFY_TOLERANCE)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        payload["elapsed_ms"] = elapsed_ms
        headers = {
            "X-Fuseflow-Cache": source,
            "X-Fuseflow-Compile-Ms": f"{elapsed_ms:.2f}",
        }
        return {"payload": payload, "headers": headers}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Counters for monitoring and the serve tests' dedup assertions."""
        flight = self.flight.stats()
        with self._lock:
            sessions = {
                "/".join(filter(None, key)) or "default": str(
                    session.cache_info()
                )
                for key, session in self._sessions.items()
            }
            data: Dict[str, Any] = {
                "requests": self._requests,
                "compiles": self._compiles,
                "errors": self._errors,
                "deduped": flight["followers"],
                "inflight": flight["inflight"],
                "active_requests": self._inflight,
                "shed": self._shed,
                "timeouts": self._timeouts,
                "wait_timeouts": flight["wait_timeouts"],
                "draining": self._draining,
                "deadline_seconds": self.deadline,
                "max_inflight": self.max_inflight,
                "uptime_seconds": time.time() - self._started,
                "sessions": sessions,
            }
        if self.disk_cache is not None:
            data["disk_cache"] = asdict(self.disk_cache.info())
            data["disk_cache"]["root"] = self.disk_cache.root
        return data


class _Handler(BaseHTTPRequestHandler):
    server_version = "fuseflow-serve/1.0"
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if not getattr(self.server, "quiet", False):
            super().log_message(format, *args)

    @property
    def state(self) -> ServerState:
        return self.server.state  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if self.path == "/healthz":
            if self.state.draining:
                # Non-200 so load balancers / readiness probes stop
                # routing traffic here while in-flight work finishes.
                self._send(503, {"status": "draining"})
            else:
                self._send(200, {"status": "ok"})
        elif self.path == "/v1/stats":
            self._send(200, self.state.stats())
        else:
            self._send(404, {"error": f"unknown path {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        action = _POST_ACTIONS.get(self.path)
        if action is None:
            self._send(
                404,
                {
                    "error": f"unknown path {self.path!r}; POST one of "
                    f"{sorted(_POST_ACTIONS)}"
                },
            )
            return
        refusal = self.state.admit()
        if refusal is not None:
            # Shed instead of queue: a bounded, explicit 503 with a
            # retry hint beats an unbounded thread pile-up.
            self._send(
                503,
                {"error": f"server is {refusal}; retry shortly"},
                {"Retry-After": "1"},
            )
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length)
            try:
                request = parse_request(raw, action)
            except ServeError as exc:
                self.state.count_error()
                self._send(400, {"error": str(exc)})
                return
            try:
                payload, headers = self.state.handle(request)
            except WaitTimeout as exc:
                # The work is still running and will warm the caches;
                # only this response missed its deadline.
                self.state.count_timeout()
                self._send(504, {"error": str(exc)})
                return
            except Exception as exc:  # compile/simulate failure: 500, not a crash
                self.state.count_error()
                self._send(500, {"error": f"{type(exc).__name__}: {exc}"})
                return
            self._send(200, payload, headers)
        finally:
            self.state.finish()

    # ------------------------------------------------------------------
    def _send(
        self,
        code: int,
        obj: Dict[str, Any],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class FuseFlowServer(ThreadingHTTPServer):
    """Threaded HTTP server bound to one :class:`ServerState`."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        state: ServerState,
        quiet: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.state = state
        self.quiet = quiet
        self._drain_once = threading.Lock()

    def drain(self, timeout: float = 10.0) -> None:
        """Gracefully drain and stop: refuse new work, finish in-flight.

        Safe to call from a signal-handler thread and idempotent (a
        second signal while draining is a no-op; the first drain's
        timeout still bounds shutdown).  After at most ``timeout``
        seconds the listener stops even if stragglers remain — they run
        on daemon threads and die with the process.
        """
        if not self._drain_once.acquire(blocking=False):
            return
        self.state.begin_drain()
        deadline = time.monotonic() + max(0.0, timeout)
        while (
            self.state.inflight_count() > 0 and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        self.shutdown()


def make_server(
    host: str = "127.0.0.1",
    port: int = 8177,
    cache_dir: Optional[str] = None,
    quiet: bool = False,
    deadline: Optional[float] = None,
    max_inflight: Optional[int] = None,
) -> FuseFlowServer:
    """Build a ready-to-run serve front end (``port=0`` = ephemeral).

    The caller owns the lifecycle: ``server.serve_forever()`` to run,
    ``server.drain()`` (or ``server.shutdown()``) + ``server.server_close()``
    to stop.  ``deadline`` and ``max_inflight`` default to off, which is
    byte-identical to the pre-hardening server.
    """
    return FuseFlowServer(
        (host, port),
        ServerState(cache_dir, deadline=deadline, max_inflight=max_inflight),
        quiet=quiet,
    )
