"""BigBird block-sparse attention masks and sequence inputs.

BigBird (Zaheer et al. 2020) sparsifies attention with three block-level
components: a sliding window around the diagonal, a handful of global
blocks attending everywhere, and random blocks.  The mask is defined over a
grid of (seq/block x seq/block) blocks; kept blocks are all-ones.  The
paper reports attention-mask sparsities of 53.9%-86.5% depending on block
size (Table 2).
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def bigbird_mask(
    seq_len: int,
    block: int,
    window_blocks: int = 3,
    global_blocks: int = 1,
    random_blocks: int = 2,
    seed: int = 0,
) -> np.ndarray:
    """Dense 0/1 BigBird mask of shape (seq_len, seq_len).

    ``window_blocks`` is the total width of the sliding window in blocks
    (must be odd); ``global_blocks`` rows/columns of blocks attend
    everywhere; each block-row additionally keeps ``random_blocks`` random
    blocks.
    """
    if seq_len % block != 0:
        raise ValueError(f"sequence {seq_len} not divisible by block {block}")
    grid = seq_len // block
    rng = np.random.default_rng(seed)
    keep = np.zeros((grid, grid), dtype=bool)
    half = window_blocks // 2
    for i in range(grid):
        lo, hi = max(0, i - half), min(grid, i + half + 1)
        keep[i, lo:hi] = True
    keep[:global_blocks, :] = True
    keep[:, :global_blocks] = True
    for i in range(grid):
        choices = rng.choice(grid, size=min(random_blocks, grid), replace=False)
        keep[i, choices] = True
    mask = np.kron(keep.astype(np.float64), np.ones((block, block)))
    return mask


def mask_sparsity(mask: np.ndarray) -> float:
    """Fraction of zero entries in a mask."""
    return 1.0 - float(np.count_nonzero(mask)) / mask.size


def token_embeddings(
    seq_len: int, d_model: int, seed: int = 0
) -> np.ndarray:
    """Random token embeddings standing in for IMDB text inputs."""
    rng = np.random.default_rng(seed)
    return rng.standard_normal((seq_len, d_model)) * 0.5
