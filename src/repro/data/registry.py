"""Dataset registry: Table 2 of the paper, with simulated-scale shapes.

Each entry records the paper's dataset statistics (shape, sparsity level,
sparsity source) plus the scaled-down synthetic configuration this
reproduction simulates.  The scaling preserves the sparsity *level* and
pattern class; absolute sizes shrink so the Python dataflow simulation runs
in seconds.  Benchmarks print both so the substitution is auditable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from .graphs import node_features, synthetic_graph, weighted_adjacency


@dataclass(frozen=True)
class DatasetEntry:
    """One row of Table 2 plus the simulated stand-in configuration."""

    name: str
    models: str
    paper_shape: Tuple[int, int]
    sparsity: float  # fraction of zeros
    source: str  # 'lossless input' | 'lossy weight' | 'lossy mask'
    pattern: str  # synthetic pattern class
    sim_nodes: int
    sim_features: int
    seed: int

    @property
    def density(self) -> float:
        return 1.0 - self.sparsity


GRAPH_DATASETS: Dict[str, DatasetEntry] = {
    "cora": DatasetEntry(
        "cora", "GCN/GraphSAGE", (2708, 1433), 0.997, "ZB lossless (in)",
        "powerlaw", 90, 8, 11,
    ),
    "cora_ml": DatasetEntry(
        "cora_ml", "GCN/GraphSAGE", (2995, 2879), 0.998, "ZB lossless (in)",
        "powerlaw", 100, 8, 12,
    ),
    "dblp": DatasetEntry(
        "dblp", "GCN/GraphSAGE", (17716, 1639), 0.996, "ZB lossless (in)",
        "powerlaw", 120, 8, 13,
    ),
    "collab": DatasetEntry(
        "collab", "GCN/GraphSAGE", (235868, 128), 0.999, "ZB lossless (in)",
        "blockdiag", 140, 8, 14,
    ),
    "mag": DatasetEntry(
        "mag", "GCN/GraphSAGE", (1939743, 128), 0.999, "ZB lossless (in)",
        "blockdiag", 160, 8, 15,
    ),
}

SAE_DATASETS: Dict[str, DatasetEntry] = {
    "imagenet": DatasetEntry(
        "imagenet", "SAE", (224, 224), 0.50, "ZB lossy (wt)", "uniform", 32, 32, 21,
    ),
    "nih_cxr": DatasetEntry(
        "nih_cxr", "SAE", (1024, 1024), 0.50, "ZB lossy (wt)", "uniform", 48, 48, 22,
    ),
    "luna16": DatasetEntry(
        "luna16", "SAE", (512, 512), 0.50, "ZB lossy (wt)", "uniform", 40, 40, 23,
    ),
}

GPT3_DATASET = DatasetEntry(
    "imdb", "GPT-3 w/ BigBird", (1024, 1024), 0.70, "ZB lossy (mask)",
    "blockdiag", 64, 16, 31,
)


def graph_dataset(name: str, sparsity_override: float | None = None):
    """Materialize a graph dataset's (adjacency, features) arrays.

    The adjacency density is lifted from the paper's level to one that keeps
    a few edges per row at simulated scale (an N-node graph at 99.9% sparsity
    with N=280 would be almost empty); the *relative* dataset ordering of
    densities is preserved.
    """
    entry = GRAPH_DATASETS[name]
    rng = np.random.default_rng(entry.seed)
    # Keep mean degree proportional to the paper dataset's mean degree.
    paper_degree = max(entry.paper_shape[0] * (1.0 - entry.sparsity), 3.0)
    degree = min(max(paper_degree, 3.0), entry.sim_nodes / 4)
    density = sparsity_override if sparsity_override is not None else degree / entry.sim_nodes
    adj = synthetic_graph(entry.sim_nodes, density, entry.pattern, entry.seed)
    adj = weighted_adjacency(adj, rng)
    feats = node_features(entry.sim_nodes, entry.sim_features, seed=entry.seed + 1)
    return entry, adj, feats


def sae_dataset(name: str):
    """Materialize an SAE dataset: a batch of flattened inputs."""
    entry = SAE_DATASETS[name]
    rng = np.random.default_rng(entry.seed)
    batch = 5  # the paper samples 5 images
    x = rng.random((batch, entry.sim_features))
    return entry, x


def table2_rows() -> List[List[str]]:
    """Rows reproducing Table 2 (plus the simulated scale)."""
    rows = []
    for entry in list(GRAPH_DATASETS.values()) + list(SAE_DATASETS.values()) + [GPT3_DATASET]:
        rows.append(
            [
                entry.models,
                entry.name,
                f"{entry.paper_shape[0]}x{entry.paper_shape[1]}",
                f"{entry.sparsity * 100:.1f}%",
                entry.source,
                f"{entry.sim_nodes}x{entry.sim_features}",
                entry.pattern,
            ]
        )
    return rows
