"""Synthetic graph generators standing in for the paper's graph datasets.

The paper evaluates GCN/GraphSAGE on Cora, Cora_ML, DBLP, OGB-Collab and
OGB-MAG (Table 2) — all with 99.6-99.9% sparse adjacency matrices from
lossless (input) sparsity.  Offline we substitute synthetic graphs whose
*sparsity level* and *pattern class* match each dataset, scaled down so the
Python dataflow simulation stays tractable.  Three pattern classes are
provided (also used directly by the Figure 15 sparsity ablation):

``uniform``
    Erdos-Renyi style uniform random edges.
``powerlaw``
    Scale-free degree distribution (preferential attachment flavor) —
    citation networks like Cora/DBLP look like this.
``blockdiag``
    Clustered communities: dense diagonal blocks plus sparse off-block
    noise — collaboration networks like OGB-Collab.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def uniform_graph(
    n: int, density: float, rng: np.random.Generator
) -> np.ndarray:
    """Uniform random adjacency with the given edge density."""
    adj = (rng.random((n, n)) < density).astype(np.float64)
    np.fill_diagonal(adj, 1.0)  # self loops, GCN-style
    return adj


def powerlaw_graph(
    n: int, density: float, rng: np.random.Generator, alpha: float = 1.6
) -> np.ndarray:
    """Scale-free graph: edge probability proportional to rank^-alpha."""
    weights = (np.arange(1, n + 1, dtype=np.float64)) ** (-alpha)
    weights /= weights.sum()
    target_edges = max(int(density * n * n), n)
    rows = rng.choice(n, size=target_edges, p=weights)
    cols = rng.choice(n, size=target_edges, p=weights)
    adj = np.zeros((n, n))
    adj[rows, cols] = 1.0
    np.fill_diagonal(adj, 1.0)
    return adj


def blockdiag_graph(
    n: int,
    density: float,
    rng: np.random.Generator,
    communities: int = 8,
    noise: float = 0.1,
) -> np.ndarray:
    """Community graph: dense diagonal blocks, sparse off-block edges."""
    adj = np.zeros((n, n))
    size = max(n // communities, 1)
    total = density * n * n
    off = total * noise
    in_block = total - off
    per_block_density = min(in_block / (communities * size * size), 1.0)
    for c in range(communities):
        lo, hi = c * size, min((c + 1) * size, n)
        block = rng.random((hi - lo, hi - lo)) < per_block_density
        adj[lo:hi, lo:hi] = block
    mask = rng.random((n, n)) < off / (n * n)
    adj[mask] = 1.0
    np.fill_diagonal(adj, 1.0)
    return adj


_PATTERNS = {
    "uniform": uniform_graph,
    "powerlaw": powerlaw_graph,
    "blockdiag": blockdiag_graph,
}


def synthetic_graph(
    n: int,
    density: float,
    pattern: str = "uniform",
    seed: int = 0,
) -> np.ndarray:
    """Generate an adjacency matrix with the given density and pattern."""
    if pattern not in _PATTERNS:
        raise ValueError(f"unknown graph pattern {pattern!r} (have {sorted(_PATTERNS)})")
    rng = np.random.default_rng(seed)
    adj = _PATTERNS[pattern](n, density, rng)
    return adj


def weighted_adjacency(adj: np.ndarray, rng: np.random.Generator | None = None) -> np.ndarray:
    """Random positive edge weights on an adjacency pattern (A-hat style)."""
    rng = rng or np.random.default_rng(0)
    weights = rng.random(adj.shape) * 0.9 + 0.1
    out = adj * weights
    # Row-normalize like a GCN normalized adjacency.
    rowsum = out.sum(axis=1, keepdims=True)
    rowsum[rowsum == 0.0] = 1.0
    return out / rowsum


def node_features(
    n: int, features: int, density: float = 1.0, seed: int = 1
) -> np.ndarray:
    """Node feature matrix, optionally sparse (bag-of-words style)."""
    rng = np.random.default_rng(seed)
    x = rng.random((n, features))
    if density < 1.0:
        x = x * (rng.random((n, features)) < density)
    return x
