"""Dataset generators and the Table 2 registry."""

from .graphs import node_features, synthetic_graph, weighted_adjacency
from .registry import (
    GPT3_DATASET,
    GRAPH_DATASETS,
    SAE_DATASETS,
    DatasetEntry,
    graph_dataset,
    sae_dataset,
    table2_rows,
)
from .text import bigbird_mask, mask_sparsity, token_embeddings

__all__ = [
    "synthetic_graph",
    "weighted_adjacency",
    "node_features",
    "DatasetEntry",
    "GRAPH_DATASETS",
    "SAE_DATASETS",
    "GPT3_DATASET",
    "graph_dataset",
    "sae_dataset",
    "table2_rows",
    "bigbird_mask",
    "mask_sparsity",
    "token_embeddings",
]
