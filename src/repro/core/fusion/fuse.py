"""Cross-expression fusion (paper Section 5, Algorithm 1).

Given a fusion region — a set of statements from an Einsum program — this
module produces a :class:`FusedEinsum`: the region's statements rewritten
over a unified index space, plus a partial order graph (POG) encoding every
mode-order and dataflow-order constraint.

Steps, mirroring Algorithm 1:

1. *Rename local index variables.*  Every statement's indices are renamed
   apart; reduction variables become fresh ``u``-indices.
2. *Build producer-consumer edges.*  Uses of in-region intermediates unify
   the consumer's access indices with the producer's output indices
   (union-find index substitution).
3. *Propagate order constraints.*  Mode orders of memory tensor views and
   user dataflow orders insert POG edges.
4. *Handle multiple tensor uses.*  Each use is a distinct view; conflicting
   views whose constraints create POG cycles are resolved by materializing a
   permuted copy (higher-order transpose) for one view.

The result also records which tensors must be materialized (region outputs)
and supports emitting the single fully fused Einsum string of Figure 8c.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..einsum.ast import (
    Access,
    EinsumError,
    EinsumProgram,
    MULTIPLICATIVE_OPS,
    Statement,
)
from .pog import OrderConflictError, PartialOrderGraph


class _UnionFind:
    """Union-find over index names."""

    def __init__(self) -> None:
        self.parent: Dict[str, str] = {}

    def find(self, x: str) -> str:
        self.parent.setdefault(x, x)
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: str, b: str) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


@dataclass
class TensorViewInfo:
    """One use of a tensor inside a fused region."""

    view_id: str
    tensor: str
    sid: int
    operand_pos: int  # -1 for the lhs
    indices: Tuple[str, ...]
    transposed: bool = False
    new_mode_order: Optional[Tuple[int, ...]] = None
    stmt_pos: int = -1  # position within the fused statement list


@dataclass
class FusedEinsum:
    """A fused region: unified statements + POG + bookkeeping."""

    name: str
    statements: List[Statement]
    pog: PartialOrderGraph
    views: List[TensorViewInfo]
    # Tensors this region must materialize (consumed outside or program outputs).
    outputs: List[str]
    # Views resolved by materializing a permuted copy of their tensor.
    transposed_views: List[TensorViewInfo] = field(default_factory=list)
    index_sizes: Dict[str, int] = field(default_factory=dict)

    def first_order(self) -> List[str]:
        """The default dataflow order: first valid topological sort."""
        return self.pog.first_order(preference=self._appearance_order())

    def valid_orders(self, limit: int = 1000) -> List[List[str]]:
        return list(self.pog.all_orders(limit))

    def _appearance_order(self) -> List[str]:
        seen: List[str] = []
        for stmt in self.statements:
            for idx in stmt.all_indices():
                if idx not in seen:
                    seen.append(idx)
        return seen

    def intermediates(self) -> Set[str]:
        produced = {s.lhs.tensor for s in self.statements}
        consumed = {a.tensor for s in self.statements for a in s.operands}
        return produced & consumed

    def fused_einsum_string(self) -> str:
        """Render the single fully fused Einsum (paper Figure 8c)."""
        order = self.first_order()
        body = "; ".join(str(s) for s in self.statements)
        return f"forall {' '.join(order)}: {body}"


def fuse_region(
    program: EinsumProgram,
    sids: Sequence[int],
    name: str = "region",
    extra_orders: Dict[int, Sequence[str]] | None = None,
    decls: Dict[str, object] | None = None,
) -> FusedEinsum:
    """Fuse the statements with ids ``sids`` into one :class:`FusedEinsum`.

    ``extra_orders`` optionally overrides per-statement dataflow orders
    (keyed by sid) on top of orders embedded in the statements.  ``decls``
    extends the program's declarations with tensors materialized by earlier
    regions (their storage formats constrain this region's POG too).
    """
    sids = list(sids)
    sid_set = set(sids)
    stmts = [program.statements[sid] for sid in sids]
    extra_orders = extra_orders or {}
    all_decls = dict(program.decls)
    if decls:
        all_decls.update(decls)

    # ------------------------------------------------------------------
    # Step 1: rename all indices apart (per-statement namespaces); bake any
    # schedule-supplied dataflow orders into the statements first so they
    # survive renames and cloning.
    # ------------------------------------------------------------------
    from dataclasses import replace as _replace

    work: List[Statement] = []
    orig_sids: List[int] = []
    for stmt in stmts:
        sid = stmt.sid
        if sid in extra_orders:
            stmt = _replace(stmt, order=tuple(extra_orders[sid]))
            stmt.sid = sid
        mapping = {idx: f"s{sid}:{idx}" for idx in stmt.all_indices()}
        renamed_stmt = stmt.rename_indices(mapping)
        renamed_stmt.sid = sid
        work.append(renamed_stmt)
        orig_sids.append(sid)

    # ------------------------------------------------------------------
    # Step 2: unify producer outputs with consumer accesses, one *use* at a
    # time.  A use whose unification would merge two distinct indices of any
    # statement (a diagonal collapse) marks a conflicting tensor view: the
    # producer chain is cloned with fresh indices for that use — the index
    # space of recomputation (paper Section 5, step 4).
    # ------------------------------------------------------------------
    uf = _UnionFind()
    clone_counter = 0

    def producer_index(tensor: str, limit: int) -> Optional[int]:
        for i in range(limit - 1, -1, -1):
            if work[i].lhs.tensor == tensor:
                return i
        return None

    def collides() -> bool:
        for stmt in work:
            indices = stmt.all_indices()
            roots = {uf.find(i) for i in indices}
            if len(roots) < len(indices):
                return True
        return False

    def clone_chain(pi: int, before: int) -> Tuple[str, int]:
        """Clone work[pi]'s transitive producer chain with fresh indices.

        Returns the clone's lhs tensor name and the number of statements
        inserted before position ``before``.
        """
        nonlocal clone_counter
        clone_counter += 1
        tag = clone_counter
        producer = work[pi]
        inserted = 0
        new_operands: List[Access] = []
        for acc in producer.operands:
            sub = producer_index(acc.tensor, before + inserted)
            if sub is not None:
                sub_name, sub_inserted = clone_chain(sub, before + inserted)
                inserted += sub_inserted
                new_operands.append(Access(sub_name, acc.indices))
            else:
                new_operands.append(acc)
        mapping = {
            idx: f"c{tag}:{idx.split(':', 1)[-1]}"
            for idx in producer.all_indices()
        }
        clone = _replace(
            producer,
            lhs=Access(f"{producer.lhs.tensor}__v{tag}", producer.lhs.indices),
            operands=tuple(new_operands),
        ).rename_indices(mapping)
        clone.sid = producer.sid
        work.insert(before + inserted, clone)
        orig_sids.insert(before + inserted, orig_sids[pi])
        inserted += 1
        # Unify the clone's operand accesses with its (cloned) producers.
        for acc in clone.operands:
            sub = producer_index(acc.tensor, before + inserted - 1)
            if sub is not None:
                for a, b in zip(acc.indices, work[sub].lhs.indices):
                    uf.union(a, b)
        return clone.lhs.tensor, inserted

    ci = 0
    while ci < len(work):
        stmt = work[ci]
        for pos in range(len(stmt.operands)):
            acc = work[ci].operands[pos]
            pi = producer_index(acc.tensor, ci)
            if pi is None:
                continue
            producer = work[pi]
            if len(acc.indices) != len(producer.lhs.indices):
                raise EinsumError(
                    f"access {acc} does not match producer output {producer.lhs}"
                )
            snapshot = dict(uf.parent)
            for a, b in zip(acc.indices, producer.lhs.indices):
                uf.union(a, b)
            if collides():
                uf.parent = snapshot
                clone_name, inserted = clone_chain(pi, ci)
                ci += inserted
                stmt = work[ci]
                new_ops = list(stmt.operands)
                new_ops[pos] = Access(clone_name, acc.indices)
                replaced = _replace(stmt, operands=tuple(new_ops))
                replaced.sid = stmt.sid
                work[ci] = replaced
                stmt = replaced
                clone_producer = producer_index(clone_name, ci)
                assert clone_producer is not None
                for a, b in zip(acc.indices, work[clone_producer].lhs.indices):
                    uf.union(a, b)
                if collides():
                    raise OrderConflictError(
                        f"use {acc} cannot be unified even after cloning"
                    )
        ci += 1

    # Dead-statement elimination: clones may orphan original statements.
    consumed_outside: Set[str] = set()
    for other in program.statements:
        if other.sid in sid_set:
            continue
        consumed_outside.update(a.tensor for a in other.operands)
    program_outputs = set(program.outputs())
    keep_always = consumed_outside | program_outputs
    changed_dce = True
    while changed_dce:
        changed_dce = False
        used = {a.tensor for s in work for a in s.operands}
        for i in range(len(work) - 1, -1, -1):
            t = work[i].lhs.tensor
            if t not in used and t not in keep_always:
                del work[i]
                del orig_sids[i]
                changed_dce = True

    # ------------------------------------------------------------------
    # Canonical names: free indices keep a readable base name; reduction
    # classes become fresh u-indices (paper's convention).
    # ------------------------------------------------------------------
    free_roots: Set[str] = set()
    for stmt in work:
        for idx in stmt.lhs.indices:
            free_roots.add(uf.find(idx))
    canonical: Dict[str, str] = {}
    taken: Set[str] = set()
    u_counter = 0

    def canon(index: str) -> str:
        nonlocal u_counter
        root = uf.find(index)
        if root in canonical:
            return canonical[root]
        base = root.split(":", 1)[1]
        if root in free_roots and base not in taken:
            chosen = base
        else:
            chosen = f"u{u_counter}"
            u_counter += 1
            while chosen in taken:
                chosen = f"u{u_counter}"
                u_counter += 1
        canonical[root] = chosen
        taken.add(chosen)
        return chosen

    unified: List[Statement] = []
    for stmt in work:
        mapping = {idx: canon(idx) for idx in stmt.all_indices()}
        new_stmt = stmt.rename_indices(mapping)
        new_stmt.sid = stmt.sid
        unified.append(new_stmt)

    # ------------------------------------------------------------------
    # Step 3: POG constraints from mode orders and dataflow orders.
    # ------------------------------------------------------------------
    pog = PartialOrderGraph()
    views: List[TensorViewInfo] = []
    in_region_outputs = {s.lhs.tensor for s in unified}
    for stmt_pos, stmt in enumerate(unified):
        sid = orig_sids[stmt_pos]
        for idx in stmt.all_indices():
            pog.add_index(idx)
        for pos, acc in enumerate(stmt.operands):
            if acc.tensor in in_region_outputs:
                continue  # intermediate: ordering follows from unification
            decl = all_decls.get(acc.tensor)
            view = TensorViewInfo(
                view_id=f"{acc.tensor}@{stmt_pos}.{pos}",
                tensor=acc.tensor,
                sid=sid,
                operand_pos=pos,
                indices=acc.indices,
                stmt_pos=stmt_pos,
            )
            views.append(view)
            if decl is None:
                continue
            mode_order = decl.fmt.mode_order
            storage_indices = [acc.indices[m] for m in mode_order]
            for outer, inner in zip(storage_indices, storage_indices[1:]):
                pog.add_constraint(
                    outer, inner, tag=view.view_id, reason="mode order"
                )
        # Output mode order constraints for declared region outputs.
        decl = all_decls.get(stmt.lhs.tensor)
        if decl is not None:
            storage_indices = [stmt.lhs.indices[m] for m in decl.fmt.mode_order]
            for outer, inner in zip(storage_indices, storage_indices[1:]):
                pog.add_constraint(
                    outer, inner, tag=f"{stmt.lhs.tensor}@out", reason="output order"
                )
        # User dataflow order (already renamed along with the statement).
        if stmt.order:
            for outer, inner in zip(stmt.order, stmt.order[1:]):
                pog.add_constraint(
                    outer, inner, tag=f"order@{stmt_pos}", reason="user schedule"
                )

    # ------------------------------------------------------------------
    # Step 4: resolve cycles by dropping one view's constraints and
    # materializing a permuted copy of that tensor for the view.
    # ------------------------------------------------------------------
    transposed: List[TensorViewInfo] = []
    view_by_id = {v.view_id: v for v in views}
    guard = 0
    while not pog.is_acyclic():
        guard += 1
        if guard > len(views) + 1:
            raise OrderConflictError("could not break POG cycles")
        cycle = pog.find_cycle()
        chosen: Optional[str] = None
        for u, v in cycle:
            for tag in pog.edge_tags(u, v):
                if tag in view_by_id and not view_by_id[tag].transposed:
                    chosen = tag
                    break
            if chosen:
                break
        if chosen is None:
            raise OrderConflictError(
                f"POG cycle {cycle} involves only user schedules; "
                "no transpose can break it"
            )
        pog.remove_tag(chosen)
        view = view_by_id[chosen]
        view.transposed = True
        transposed.append(view)

    # ------------------------------------------------------------------
    # Region outputs: consumed outside the region, or program outputs.
    # ------------------------------------------------------------------
    outputs = [
        s.lhs.tensor
        for s in unified
        if s.lhs.tensor in consumed_outside or s.lhs.tensor in program_outputs
    ]

    fused = FusedEinsum(
        name=name,
        statements=unified,
        pog=pog,
        views=views,
        outputs=outputs,
        transposed_views=transposed,
    )
    # Index sizes in unified names, derived from every declared access
    # (including tensors materialized by earlier regions) and propagated
    # through producer/consumer unification.
    sizes: Dict[str, int] = {}
    changed = True
    while changed:
        changed = False
        for stmt in unified:
            for acc in list(stmt.operands) + [stmt.lhs]:
                decl = all_decls.get(acc.tensor)
                if decl is not None:
                    shape = decl.shape
                    if decl.fmt.is_blocked:
                        shape = tuple(
                            s // b for s, b in zip(decl.shape, decl.fmt.block_shape)
                        )
                    for idx, extent in zip(acc.indices, shape):
                        if idx not in sizes:
                            sizes[idx] = extent
                            changed = True
                elif any(s.lhs.tensor == acc.tensor for s in unified):
                    producer = next(
                        s for s in unified if s.lhs.tensor == acc.tensor
                    )
                    for idx, p_idx in zip(acc.indices, producer.lhs.indices):
                        if idx not in sizes and p_idx in sizes:
                            sizes[idx] = sizes[p_idx]
                            changed = True
                        elif p_idx not in sizes and idx in sizes:
                            sizes[p_idx] = sizes[idx]
                            changed = True
    fused.index_sizes = sizes
    # Fill transposed views' new mode orders from the first valid order.
    if transposed:
        order = fused.first_order()
        rank = {idx: i for i, idx in enumerate(order)}
        for view in transposed:
            acc = fused.statements[view.stmt_pos].operands[view.operand_pos]
            perm = sorted(range(len(acc.indices)), key=lambda m: rank[acc.indices[m]])
            view.new_mode_order = tuple(perm)
    return fused


def fold_masks(fused: FusedEinsum) -> FusedEinsum:
    """Fold elementwise masking into producing contractions (SDDMM rewrite).

    Pattern: ``S = mul(P, M...)`` with no reduction, where ``P`` is an
    in-region intermediate produced by a multiplicative contraction and
    consumed only here.  The mask operands join the producer's operand list
    so its iteration is gated *before* the reduction loop — the
    asymptotic win of sparse cross-expression fusion.
    """
    stmts = list(fused.statements)
    changed = True
    while changed:
        changed = False
        produced = {s.lhs.tensor: i for i, s in enumerate(stmts)}
        use_counts: Dict[str, int] = {}
        for s in stmts:
            for a in s.operands:
                use_counts[a.tensor] = use_counts.get(a.tensor, 0) + 1
        for i, stmt in enumerate(stmts):
            if stmt.kind != "contract" or stmt.op not in MULTIPLICATIVE_OPS:
                continue
            if stmt.reduction_indices():
                continue
            inter_ops = [
                (pos, a)
                for pos, a in enumerate(stmt.operands)
                if a.tensor in produced
            ]
            if len(inter_ops) != 1:
                continue
            pos, target = inter_ops[0]
            if use_counts.get(target.tensor, 0) != 1:
                continue
            if target.tensor in fused.outputs:
                continue
            j = produced[target.tensor]
            producer = stmts[j]
            if producer.kind != "contract" or producer.op not in MULTIPLICATIVE_OPS:
                continue
            # Indices already unified: producer lhs indices == access indices.
            mask_operands = tuple(
                a for k, a in enumerate(stmt.operands) if k != pos
            )
            merged = Statement(
                lhs=stmt.lhs,
                kind="contract",
                op=producer.op,
                operands=producer.operands + mask_operands,
                order=producer.order,
            )
            merged.sid = producer.sid
            stmts[j] = merged
            del stmts[i]
            changed = True
            break
    return FusedEinsum(
        name=fused.name,
        statements=stmts,
        pog=fused.pog,
        views=fused.views,
        outputs=fused.outputs,
        transposed_views=fused.transposed_views,
        index_sizes=fused.index_sizes,
    )


def merge_contractions(fused: FusedEinsum) -> FusedEinsum:
    """Merge chained multiplicative contractions into single n-ary Einsums.

    This reproduces the Custard/Stardust-style *manual rewrite*: a chain
    like ``E = A*B; D = E*C`` becomes ``D = sum_{..} A*B*C``, whose lowering
    traverses a single global iteration space (coordinate explosion and
    all).  Used by the Section 8.4 prior-compiler comparison.
    """
    stmts = list(fused.statements)
    changed = True
    while changed:
        changed = False
        produced = {s.lhs.tensor: i for i, s in enumerate(stmts)}
        use_counts: Dict[str, int] = {}
        for s in stmts:
            for a in s.operands:
                use_counts[a.tensor] = use_counts.get(a.tensor, 0) + 1
        for i, stmt in enumerate(stmts):
            if stmt.kind != "contract" or stmt.op not in MULTIPLICATIVE_OPS:
                continue
            for pos, acc in enumerate(stmt.operands):
                j = produced.get(acc.tensor)
                if j is None:
                    continue
                producer = stmts[j]
                if (
                    producer.kind != "contract"
                    or producer.op not in MULTIPLICATIVE_OPS
                    or use_counts.get(acc.tensor, 0) != 1
                    or acc.tensor in fused.outputs
                ):
                    continue
                new_operands = (
                    stmt.operands[:pos] + producer.operands + stmt.operands[pos + 1 :]
                )
                merged = Statement(
                    lhs=stmt.lhs, kind="contract", op=stmt.op, operands=new_operands
                )
                merged.sid = stmt.sid
                stmts[i] = merged
                del stmts[j]
                changed = True
                break
            if changed:
                break
    return FusedEinsum(
        name=fused.name + "_global",
        statements=stmts,
        pog=fused.pog,
        views=fused.views,
        outputs=fused.outputs,
        transposed_views=fused.transposed_views,
        index_sizes=fused.index_sizes,
    )
