"""Partial order graph (POG) over fused index variables.

The POG is the ordering backbone of FuseFlow's cross-expression fusion
(Section 5): nodes are (unified) index variables; a directed edge ``a -> b``
constrains ``a`` to be iterated outside ``b``.  Edges come from three
sources, each tagged so cycle resolution can remove a tensor view's
constraints wholesale:

* per-tensor mode orders (concordant traversal of storage formats),
* user-scheduled dataflow orders of individual expressions,
* producer/consumer containment added during fusion.

Topological sorts of the POG are exactly the legal fused dataflow orders;
counting them reproduces the design-space sizes of Table 4.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import networkx as nx


class OrderConflictError(ValueError):
    """Raised when ordering constraints are unsatisfiable."""


class PartialOrderGraph:
    """Directed constraint graph over index variables."""

    def __init__(self) -> None:
        self.graph = nx.DiGraph()

    def add_index(self, index: str) -> None:
        self.graph.add_node(index)

    def add_constraint(self, outer: str, inner: str, tag: str, reason: str = "") -> None:
        """Require ``outer`` to precede ``inner``; ``tag`` groups edges."""
        if outer == inner:
            return
        if self.graph.has_edge(outer, inner):
            self.graph[outer][inner]["tags"].add(tag)
        else:
            self.graph.add_edge(outer, inner, tags={tag}, reason=reason)

    @property
    def indices(self) -> List[str]:
        return list(self.graph.nodes)

    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self.graph)

    def find_cycle(self) -> List[Tuple[str, str]]:
        """Return the edges of one cycle, or [] if acyclic."""
        try:
            return [(edge[0], edge[1]) for edge in nx.find_cycle(self.graph)]
        except nx.NetworkXNoCycle:
            return []

    def edge_tags(self, outer: str, inner: str) -> Set[str]:
        return set(self.graph[outer][inner]["tags"])

    def remove_tag(self, tag: str) -> int:
        """Drop every edge carrying only ``tag``; return edges removed."""
        removed = 0
        for u, v in list(self.graph.edges):
            tags = self.graph[u][v]["tags"]
            tags.discard(tag)
            if not tags:
                self.graph.remove_edge(u, v)
                removed += 1
        return removed

    # ------------------------------------------------------------------
    # Orders
    # ------------------------------------------------------------------
    def first_order(self, preference: Sequence[str] | None = None) -> List[str]:
        """One valid topological order, preferring ``preference`` rank."""
        if not self.is_acyclic():
            raise OrderConflictError(f"POG has a cycle: {self.find_cycle()}")
        rank = {idx: i for i, idx in enumerate(preference or [])}
        order: List[str] = []
        indegree = {n: self.graph.in_degree(n) for n in self.graph.nodes}
        ready = sorted(
            (n for n, d in indegree.items() if d == 0),
            key=lambda n: rank.get(n, len(rank)),
        )
        while ready:
            node = ready.pop(0)
            order.append(node)
            for succ in self.graph.successors(node):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
            ready.sort(key=lambda n: rank.get(n, len(rank)))
        if len(order) != self.graph.number_of_nodes():
            raise OrderConflictError("cycle detected during topological sort")
        return order

    def all_orders(self, limit: int = 1000) -> Iterator[List[str]]:
        """Yield valid topological orders (up to ``limit``)."""
        if not self.is_acyclic():
            raise OrderConflictError(f"POG has a cycle: {self.find_cycle()}")
        for count, order in enumerate(nx.all_topological_sorts(self.graph)):
            if count >= limit:
                return
            yield list(order)

    def is_valid_order(self, order: Sequence[str]) -> bool:
        """Check that ``order`` respects every constraint."""
        pos = {idx: i for i, idx in enumerate(order)}
        if set(pos) != set(self.graph.nodes):
            return False
        return all(pos[u] < pos[v] for u, v in self.graph.edges)

    def count_orders(self, cap: int = 10**9) -> int:
        """Count linear extensions exactly (bitmask DP), capped at ``cap``.

        Exponential in index count; fused ML regions have tens of indices at
        most, and the cap bounds the work as the paper caps its search space.
        """
        nodes = list(self.graph.nodes)
        n = len(nodes)
        if n == 0:
            return 1
        if n > 24:
            return cap
        index_of = {node: i for i, node in enumerate(nodes)}
        preds = [0] * n
        for u, v in self.graph.edges:
            preds[index_of[v]] |= 1 << index_of[u]
        dp = [0] * (1 << n)
        dp[0] = 1
        for mask in range(1 << n):
            if dp[mask] == 0:
                continue
            for i in range(n):
                bit = 1 << i
                if mask & bit:
                    continue
                if preds[i] & ~mask:
                    continue
                dp[mask | bit] += dp[mask]
                if dp[mask | bit] > cap:
                    dp[mask | bit] = cap
        return min(dp[(1 << n) - 1], cap)

    def describe(self) -> str:
        lines = ["POG:"]
        for u, v in sorted(self.graph.edges):
            tags = ",".join(sorted(self.graph[u][v]["tags"]))
            lines.append(f"  {u} -> {v}  [{tags}]")
        return "\n".join(lines)
