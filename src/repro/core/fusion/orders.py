"""Dataflow-order exploration (paper Sections 7 and 8.8, Table 4).

FuseFlow enumerates the valid dataflow orders of a fused region — the
topological sorts of its POG — and lets users or autotuners pick one.  This
module provides the order-space utilities behind Figure 18 (sweeping nested
matmul orders) and Table 4 (design-space sizes with and without per-kernel
local order constraints).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..einsum.ast import EinsumProgram
from ..schedule.schedule import Schedule
from .fuse import FusedEinsum, fuse_region
from .pog import PartialOrderGraph


@dataclass
class OrderSpace:
    """Size of a region's dataflow-order space."""

    region: str
    indices: int
    unconstrained: int
    constrained: int

    @property
    def reduction(self) -> float:
        """Fractional shrink of the space from local constraints."""
        if self.unconstrained == 0:
            return 0.0
        return 1.0 - self.constrained / self.unconstrained


def order_space(
    fused: FusedEinsum,
    cap: int = 2 * 10**8,
) -> OrderSpace:
    """Count valid orders with and without the POG's constraints.

    The unconstrained count is the number of permutations of the fused index
    space (capped, like the paper caps its search at 2x10^8); the
    constrained count is the number of POG linear extensions.
    """
    n = len(fused.pog.indices)
    unconstrained = 1
    for i in range(2, n + 1):
        unconstrained *= i
        if unconstrained > cap:
            unconstrained = cap
            break
    constrained = fused.pog.count_orders(cap=cap)
    return OrderSpace(
        region=fused.name,
        indices=n,
        unconstrained=unconstrained,
        constrained=constrained,
    )


def program_order_space(
    program: EinsumProgram,
    schedule: Schedule,
    cap: int = 2 * 10**8,
    best_order_constraints: Dict[int, Sequence[str]] | None = None,
) -> Tuple[int, int]:
    """(unconstrained, constrained) products across a schedule's regions.

    ``best_order_constraints`` optionally adds per-statement local dataflow
    orders (the "Constr." column of Table 4: each matmul pinned to its best
    local order).
    """
    total_unconstrained = 1
    total_constrained = 1
    for pos, sids in enumerate(schedule.regions):
        fused = fuse_region(program, sids, name=f"os-r{pos}")
        space = order_space(fused, cap)
        total_unconstrained = min(total_unconstrained * space.unconstrained, cap)
        if best_order_constraints:
            constrained_fused = fuse_region(
                program,
                sids,
                name=f"os-r{pos}-c",
                extra_orders={
                    sid: order
                    for sid, order in best_order_constraints.items()
                    if sid in sids
                },
            )
            constrained_count = constrained_fused.pog.count_orders(cap=cap)
        else:
            constrained_count = space.constrained
        total_constrained = min(total_constrained * constrained_count, cap)
    return total_unconstrained, total_constrained


def enumerate_orders(
    fused: FusedEinsum, limit: int = 64
) -> List[List[str]]:
    """List up to ``limit`` valid dataflow orders of a fused region."""
    return fused.valid_orders(limit)


def order_label(order: Sequence[str], rename: Dict[str, str] | None = None) -> str:
    """Compact label like ``ikjl`` for an order (for Figure 18 axes)."""
    rename = rename or {}
    return "".join(rename.get(idx, idx)[:1] for idx in order)
