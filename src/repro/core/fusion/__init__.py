"""Cross-expression fusion: POG, fusion algorithm, order exploration."""

from .fuse import FusedEinsum, TensorViewInfo, fold_masks, fuse_region, merge_contractions
from .orders import OrderSpace, enumerate_orders, order_space, program_order_space
from .pog import OrderConflictError, PartialOrderGraph

__all__ = [
    "fuse_region",
    "fold_masks",
    "merge_contractions",
    "FusedEinsum",
    "TensorViewInfo",
    "PartialOrderGraph",
    "OrderConflictError",
    "order_space",
    "program_order_space",
    "enumerate_orders",
    "OrderSpace",
]
