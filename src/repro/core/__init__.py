"""FuseFlow compiler core: Einsum IR, fusion, fusion tables, schedules."""

from . import einsum, fusion, heuristic, schedule, tables
