"""Fusion tables and the lowering to SAMML graphs."""

from .lower import Driver, Intermediate, LoweringError, OutputSpec, RegionLowerer
from .table import Cell, FusionTable

__all__ = [
    "RegionLowerer",
    "LoweringError",
    "FusionTable",
    "Cell",
    "Intermediate",
    "Driver",
    "OutputSpec",
]
