"""The fusion table IR artifact (paper Section 6.1).

A fusion table is a two-dimensional grid: rows are fused index variables (in
dataflow order) plus a final ``val`` row; columns are tensor views and
intermediate results; cells hold either *primitive cells* (planned dataflow
nodes) or *reference cells* (named pointers to streams that may not be
materialized yet).

The lowering in :mod:`repro.core.tables.lower` populates a table while it
plans each fused statement and then emits the SAMML graph; the table itself
is the introspection artifact that tests compare against the paper's
figures (e.g., the SpMM table of Figure 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple


@dataclass
class Cell:
    """One fusion-table cell.

    ``kind`` is a short tag (``ls``, ``rep``, ``isect``, ``union``, ``red``,
    ``vred``, ``val``, ``compute``, ``ref``, ``locate``); ``text`` is the
    rendered form (e.g. ``LS(<A_i>)``); ``node_id`` is filled once the
    corresponding dataflow node exists (reference cells keep ``None``).
    """

    kind: str
    text: str
    node_id: Optional[str] = None


class FusionTable:
    """Grid of cells recording one fused region's lowering plan."""

    def __init__(self, name: str, rows: List[str]) -> None:
        self.name = name
        self.rows: List[str] = list(rows) + ["val"]
        self.columns: List[str] = []
        self.cells: Dict[Tuple[str, str], Cell] = {}

    def add_column(self, column: str) -> str:
        """Add a column, uniquifying the label if repeated."""
        label = column
        suffix = 1
        while label in self.columns:
            suffix += 1
            label = f"{column}#{suffix}"
        self.columns.append(label)
        return label

    def put(self, row: str, column: str, cell: Cell) -> Cell:
        if row not in self.rows:
            raise KeyError(f"unknown table row {row!r} (rows: {self.rows})")
        if column not in self.columns:
            raise KeyError(f"unknown table column {column!r}")
        self.cells[(row, column)] = cell
        return cell

    def get(self, row: str, column: str) -> Optional[Cell]:
        return self.cells.get((row, column))

    def render(self) -> str:
        """Fixed-width text rendering of the table."""
        col_width = {
            c: max(len(c), max(
                (len(self.cells[(r, c)].text) for r in self.rows if (r, c) in self.cells),
                default=0,
            ))
            for c in self.columns
        }
        row_label_w = max((len(r) for r in self.rows), default=3)
        header = " " * row_label_w + " | " + " | ".join(
            c.ljust(col_width[c]) for c in self.columns
        )
        lines = [f"fusion table {self.name}", header, "-" * len(header)]
        for row in self.rows:
            cells = []
            for col in self.columns:
                cell = self.cells.get((row, col))
                cells.append((cell.text if cell else "").ljust(col_width[col]))
            lines.append(row.ljust(row_label_w) + " | " + " | ".join(cells))
        return "\n".join(lines)

    def cell_kinds(self) -> Dict[str, int]:
        """Histogram of cell kinds (used by tests)."""
        out: Dict[str, int] = {}
        for cell in self.cells.values():
            out[cell.kind] = out.get(cell.kind, 0) + 1
        return out
