"""Fusion-table lowering: fused Einsum regions -> SAMML dataflow graphs.

This is FuseFlow's code generator (paper Section 6).  For one fused region
and one global dataflow order it plans a fusion table and emits a SAMML
graph in the *factored iteration* style: each statement gets its own input
iteration + computation pipeline, and intermediate results flow to
downstream statements as streams — coordinate streams from higher-order
(vector) reducers drive the input iteration of consumers (Figures 10/11).

Producer->consumer edges are lowered in one of three modes:

``streaming``
    The consumer's iteration order starts with exactly the producer's output
    indices; the producer's coordinate/value streams are consumed directly
    (reference cells in the fusion table).
``recompute``
    The consumer accesses the producer's output at an index nested inside
    foreign loops (e.g. the reduction index of a following matmul).  The
    producer subgraph is rebuilt inline, its outer level driven by the
    consumer's coordinate stream — re-computing producer fibers per consumer
    row.  This is the fusion-recomputation tradeoff that makes *full* fusion
    lose on GCN/GraphSAGE (Section 8.3).
``materialize``
    Region boundary: the producer writes a tensor through DRAM and the
    consumer re-scans it (orchestrated by the pipeline, not this module).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ...ftree.format import Format, LevelKind
from ...sam.graph import Port, SAMGraph
from ...sam.primitives import (
    AlignCheck,
    BinaryALU,
    FiberNorm,
    FiberSoftmax,
    Intersect,
    LevelScanner,
    Locate,
    Reduce,
    Repeat,
    Root,
    ScalarRepeat,
    TensorWriter,
    UnaryALU,
    Union,
    ValArray,
    VectorReducer,
)
from ..einsum.ast import Access, MULTIPLICATIVE_OPS, Statement, TensorDecl
from ..fusion.fuse import FusedEinsum
from .table import Cell, FusionTable


class LoweringError(ValueError):
    """Raised when a region cannot be lowered under the given schedule."""


@dataclass
class Driver:
    """Pre-iterated outer index supplied to a rebuilt producer."""

    index: str
    crd_port: Port


@dataclass
class Intermediate:
    """A lowered statement's output as streams.

    ``indices`` is the emission order (global order restricted to output
    indices); ``crd_ports[indices[-1]]`` aligns 1:1 with ``val_port``.
    """

    name: str
    indices: Tuple[str, ...]
    crd_ports: Dict[str, Port]
    val_port: Port


@dataclass
class _OperandState:
    """Per-operand bookkeeping during one statement's iteration."""

    acc: Access
    kind: str  # 'memory' | 'stream'
    decl: Optional[TensorDecl] = None
    tensor_name: str = ""
    next_level: int = 0
    frontier: Optional[Port] = None  # ref stream (memory) or val stream (stream)
    inter: Optional[Intermediate] = None
    pos: int = 0  # intermediate indices consumed so far
    column: str = ""

    def storage_indices(self) -> List[str]:
        """The operand's access indices in storage (level) order."""
        assert self.decl is not None
        return [self.acc.indices[m] for m in self.decl.fmt.mode_order]


@dataclass
class OutputSpec:
    """Metadata of one materialized region output."""

    name: str
    logical_indices: Tuple[str, ...]
    emission_indices: Tuple[str, ...]
    shape: Tuple[int, ...]
    fmt: Format


class RegionLowerer:
    """Lower one fused region to a SAMML graph under a dataflow order."""

    def __init__(
        self,
        fused: FusedEinsum,
        decls: Dict[str, TensorDecl],
        order: Sequence[str] | None = None,
        name: str | None = None,
    ) -> None:
        self.fused = fused
        self.decls = dict(decls)
        self.order: List[str] = list(order) if order else fused.first_order()
        if set(self.order) != set(fused.pog.indices):
            raise LoweringError(
                f"order {self.order} does not cover the fused index space "
                f"{sorted(fused.pog.indices)}"
            )
        if not fused.pog.is_valid_order(self.order):
            raise LoweringError(f"order {self.order} violates POG constraints")
        self.graph = SAMGraph(name or fused.name)
        self.table = FusionTable(name or fused.name, self.order)
        self.producer_of: Dict[str, Statement] = {
            s.lhs.tensor: s for s in fused.statements
        }
        self.inters: Dict[str, Intermediate] = {}
        self.output_specs: List[OutputSpec] = []
        # Views needing a permuted copy: (sid, operand_pos) -> (name, order).
        self.transpose_requests: Dict[Tuple[int, int], Tuple[str, Tuple[int, ...]]] = {}
        for view in fused.transposed_views:
            new_name = f"{view.tensor}__perm{len(self.transpose_requests)}"
            self.transpose_requests[(view.sid, view.operand_pos)] = (
                new_name,
                view.new_mode_order or (),
            )
        self._live = self._compute_liveness()
        self._sizes = fused.index_sizes

    # ------------------------------------------------------------------
    # Orchestration
    # ------------------------------------------------------------------
    def lower(self) -> SAMGraph:
        """Lower all live statements, attach writers, return the graph."""
        for stmt in self.fused.statements:
            if stmt.lhs.tensor not in self._live:
                continue
            inter = self.build_statement(stmt, driver=None)
            self.inters[stmt.lhs.tensor] = inter
            if stmt.lhs.tensor in self.fused.outputs:
                self._attach_writer(stmt, inter)
        self.graph.validate()
        return self.graph

    def _compute_liveness(self) -> Set[str]:
        """Statements needing a standalone (root-context) build."""
        consumers: Dict[str, List[Statement]] = {}
        for stmt in self.fused.statements:
            for acc in stmt.operands:
                if acc.tensor in self.producer_of:
                    consumers.setdefault(acc.tensor, []).append(stmt)
        live: Set[str] = set()
        for stmt in reversed(self.fused.statements):
            t = stmt.lhs.tensor
            if t in self.fused.outputs:
                live.add(t)
                continue
            for consumer in consumers.get(t, []):
                if (
                    consumer.lhs.tensor in live
                    and self.consumption_mode(stmt, consumer) == "streaming"
                ):
                    live.add(t)
                    break
        return live

    # ------------------------------------------------------------------
    # Order helpers
    # ------------------------------------------------------------------
    def stmt_iteration(self, stmt: Statement) -> List[str]:
        indices = set(stmt.all_indices())
        return [i for i in self.order if i in indices]

    def emission_indices(self, stmt: Statement) -> Tuple[str, ...]:
        out = set(stmt.lhs.indices)
        return tuple(i for i in self.order if i in out)

    def consumption_mode(self, producer: Statement, consumer: Statement) -> str:
        """'streaming' if the producer's output order prefixes the consumer's."""
        prod = self.emission_indices(producer)
        cons = tuple(self.stmt_iteration(consumer))
        return "streaming" if cons[: len(prod)] == prod else "recompute"

    # ------------------------------------------------------------------
    # Statement dispatch
    # ------------------------------------------------------------------
    def build_statement(self, stmt: Statement, driver: Optional[Driver]) -> Intermediate:
        if stmt.kind == "contract" and stmt.op in MULTIPLICATIVE_OPS:
            return self._build_contract(stmt, driver, joiner="intersect")
        if stmt.kind == "contract":
            return self._build_contract(stmt, driver, joiner="union")
        if stmt.kind == "unary":
            return self._build_unary(stmt, driver)
        if stmt.kind == "fiber":
            return self._build_fiber(stmt, driver)
        raise LoweringError(f"unknown statement kind {stmt.kind!r}")

    def _operand_intermediate(
        self, acc: Access, stmt: Statement, driver: Optional[Driver]
    ) -> Intermediate:
        """Resolve a unary/fiber operand to stream handles."""
        producer = self.producer_of.get(acc.tensor)
        if producer is not None:
            if driver is None:
                if acc.tensor not in self.inters:
                    raise LoweringError(
                        f"intermediate {acc.tensor} consumed before being built"
                    )
                return self.inters[acc.tensor]
            return self.build_statement(producer, driver)
        # Memory tensor: lower a pure read (single-operand contraction).
        read = Statement(
            lhs=Access(f"{acc.tensor}__read", acc.indices),
            kind="contract",
            op="mul",
            operands=(acc,),
        )
        read.sid = stmt.sid
        return self._build_contract(read, driver, joiner="intersect")

    def _build_unary(self, stmt: Statement, driver: Optional[Driver]) -> Intermediate:
        src = self._operand_intermediate(stmt.operands[0], stmt, driver)
        node = self.graph.add(
            UnaryALU(stmt.op, scale=stmt.scale, offset=stmt.offset),
            {"a": src.val_port},
            region="compute",
        )
        col = self.table.add_column(stmt.lhs.tensor)
        self.table.put(
            "val",
            col,
            Cell("compute", f"{stmt.op}(<{stmt.operands[0].tensor}.val>)", node.node_id),
        )
        return Intermediate(
            stmt.lhs.tensor, src.indices, dict(src.crd_ports), self.graph.port(node, "out")
        )

    def _build_fiber(self, stmt: Statement, driver: Optional[Driver]) -> Intermediate:
        src = self._operand_intermediate(stmt.operands[0], stmt, driver)
        prim = FiberSoftmax() if stmt.op == "softmax" else FiberNorm()
        node = self.graph.add(prim, {"val": src.val_port}, region="compute")
        col = self.table.add_column(stmt.lhs.tensor)
        self.table.put(
            "val",
            col,
            Cell("compute", f"{stmt.op}(<{stmt.operands[0].tensor}.val>)", node.node_id),
        )
        return Intermediate(
            stmt.lhs.tensor, src.indices, dict(src.crd_ports), self.graph.port(node, "out")
        )

    # ------------------------------------------------------------------
    # Contraction lowering (the core algorithm)
    # ------------------------------------------------------------------
    def _build_contract(
        self, stmt: Statement, driver: Optional[Driver], joiner: str
    ) -> Intermediate:
        iteration = self.stmt_iteration(stmt)
        for idx in stmt.lhs.indices:
            if not any(idx in acc.indices for acc in stmt.operands):
                raise LoweringError(f"output index {idx} missing from operands: {stmt}")

        states = [
            self._init_operand(acc, pos, stmt, driver)
            for pos, acc in enumerate(stmt.operands)
        ]
        crd_ports: Dict[str, Port] = {}
        if driver is not None:
            if not iteration or iteration[0] != driver.index:
                raise LoweringError(
                    f"driver index {driver.index} is not the first iterated "
                    f"index of {stmt} under order {self.order}"
                )
            crd_ports[driver.index] = driver.crd_port
            # Stream operands whose first index is the driver are rebuilt now.
            for state in states:
                if state.kind == "stream" and driver.index in state.acc.indices:
                    self._rebuild_stream_operand(state, driver.index, driver.crd_port)
            iteration = iteration[1:]

        for idx in iteration:
            crd_ports[idx] = self._iterate_index(idx, states, stmt, joiner)

        val_port = self._combine_values(states, stmt)
        val_port, crd_ports = self._apply_reductions(stmt, val_port, crd_ports)

        emission = self.emission_indices(stmt)
        out_crds = {idx: crd_ports[idx] for idx in emission}
        return Intermediate(stmt.lhs.tensor, emission, out_crds, val_port)

    def _init_operand(
        self, acc: Access, pos: int, stmt: Statement, driver: Optional[Driver]
    ) -> _OperandState:
        producer = self.producer_of.get(acc.tensor)
        if producer is not None:
            # In-region intermediate.
            state = _OperandState(acc=acc, kind="stream")
            if driver is None and self.consumption_mode(producer, stmt) == "streaming":
                state.inter = self.inters.get(acc.tensor)
                if state.inter is None:
                    raise LoweringError(
                        f"intermediate {acc.tensor} consumed before being built"
                    )
            # else: inter stays None; it is rebuilt (recompute) when its first
            # emission index is reached during iteration.
            state.column = self.table.add_column(str(acc))
            return state
        # Memory tensor (program input or materialized earlier region).
        tensor_name = acc.tensor
        decl = self.decls.get(tensor_name)
        if decl is None:
            raise LoweringError(f"no declaration for tensor {acc.tensor!r}")
        request = self.transpose_requests.get((stmt.sid, pos))
        if request is not None:
            new_name, mode_order = request
            tensor_name = new_name
            decl = TensorDecl(
                new_name,
                decl.shape,
                Format(decl.fmt.levels, tuple(mode_order), decl.fmt.block_shape),
                decl.is_input,
            )
            self.decls[new_name] = decl
        state = _OperandState(acc=acc, kind="memory", decl=decl, tensor_name=tensor_name)
        state.column = self.table.add_column(str(acc))
        root = self.graph.add(Root(), region="iterate")
        state.frontier = self.graph.port(root, "ref")
        if driver is not None:
            self._enter_driver_context(state, driver)
        return state

    def _enter_driver_context(self, state: _OperandState, driver: Driver) -> None:
        """Initialize a memory operand's frontier inside a rebuild context."""
        assert state.decl is not None
        if driver.index in state.acc.indices:
            storage = state.storage_indices()
            if storage[0] != driver.index:
                raise LoweringError(
                    f"recompute driver {driver.index} is discordant with "
                    f"{state.acc} (storage order {storage})"
                )
            node = self.graph.add(
                Locate(state.tensor_name, 0),
                {"crd": driver.crd_port},
                region="iterate",
                index_var=driver.index,
            )
            self.table.put(
                driver.index,
                state.column,
                Cell("locate", f"Loc(<{state.tensor_name}.{driver.index}>)", node.node_id),
            )
            state.frontier = self.graph.port(node, "ref")
            state.next_level = 1
        else:
            node = self.graph.add(
                ScalarRepeat(),
                {"base": state.frontier, "rep": driver.crd_port},
                region="iterate",
                index_var=driver.index,
            )
            self.table.put(
                driver.index,
                state.column,
                Cell("rep", f"Rep(root,<{driver.index}>)", node.node_id),
            )
            state.frontier = self.graph.port(node, "out")

    def _rebuild_stream_operand(
        self, state: _OperandState, idx: str, crd_port: Port
    ) -> None:
        """Rebuild a producer inline (recompute fusion) driven by ``crd_port``."""
        producer = self.producer_of[state.acc.tensor]
        emission = self.emission_indices(producer)
        if not emission or emission[0] != idx:
            raise LoweringError(
                f"recompute of {state.acc.tensor} at {idx} requires its first "
                f"output index to be {idx} (emission {emission})"
            )
        rebuilt = self.build_statement(producer, Driver(idx, crd_port))
        state.inter = rebuilt
        state.pos = 1
        if len(rebuilt.indices) == 1:
            state.frontier = rebuilt.val_port
        self.table.put(
            idx, state.column, Cell("ref", f"<{rebuilt.name}.{idx}>*", None)
        )

    # -- one index variable ---------------------------------------------
    def _iterate_index(
        self, idx: str, states: List[_OperandState], stmt: Statement, joiner: str
    ) -> Port:
        memory_contribs: List[Tuple[_OperandState, Port, Port]] = []
        inner_stream_contribs: List[Tuple[_OperandState, Port, Port]] = []
        adopters: List[Tuple[_OperandState, Port]] = []
        rebuilds: List[_OperandState] = []

        for state in states:
            if idx not in state.acc.indices:
                continue
            if state.kind == "memory":
                crd, ref = self._scan_memory_level(state, idx)
                memory_contribs.append((state, crd, ref))
                continue
            if state.inter is None:
                rebuilds.append(state)
                continue
            inter = state.inter
            if state.pos >= len(inter.indices) or inter.indices[state.pos] != idx:
                expected = (
                    inter.indices[state.pos]
                    if state.pos < len(inter.indices)
                    else "<exhausted>"
                )
                raise LoweringError(
                    f"intermediate {inter.name} consumed at {idx} but its next "
                    f"index is {expected} (emission order {inter.indices}); "
                    "the schedule requires a materialization here"
                )
            crd = inter.crd_ports[idx]
            innermost = state.pos == len(inter.indices) - 1
            state.pos += 1
            self.table.put(idx, state.column, Cell("ref", f"<{inter.name}.{idx}>", None))
            if innermost:
                inner_stream_contribs.append((state, crd, inter.val_port))
            else:
                adopters.append((state, crd))

        contributions = memory_contribs + inner_stream_contribs
        if not contributions and not adopters and not rebuilds:
            raise LoweringError(f"index {idx} has no owner in {stmt}")
        if adopters and inner_stream_contribs:
            raise LoweringError(
                f"index {idx} in {stmt} co-iterates a non-innermost fused "
                "intermediate with another intermediate's innermost level; "
                "materialize one of them (choose a coarser fusion granularity)"
            )

        if adopters:
            # Adopt the first intermediate's iteration.  Other adopters and
            # memory operands must align structurally (e.g. residual adds
            # over the same dense row space); AlignCheck enforces it at run
            # time.  Memory operands keep their own (unfiltered) frontiers.
            crd_port = adopters[0][1]
            others = [(state, crd) for state, crd in adopters[1:]]
            others.extend((state, crd) for state, crd, _ in memory_contribs)
            for state, other in others:
                node = self.graph.add(
                    AlignCheck(),
                    {"a": crd_port, "b": other},
                    region="iterate",
                    index_var=idx,
                )
                crd_port = self.graph.port(node, "out")
            for state, _, ref in memory_contribs:
                state.frontier = ref
        elif len(contributions) == 1:
            state, crd_port, payload = contributions[0]
            state.frontier = payload
        elif len(contributions) >= 2:
            crd_port = self._join(contributions, idx, joiner)
        else:
            raise LoweringError(
                f"recompute at {idx} in {stmt} has no co-iterated operand to "
                "drive the rebuilt producer; materialize the intermediate"
            )
        for state in rebuilds:
            self._rebuild_stream_operand(state, idx, crd_port)

        # Broadcast operands that do not carry this index.
        for state in states:
            if idx in state.acc.indices or state.frontier is None:
                continue
            node = self.graph.add(
                Repeat(),
                {"base": state.frontier, "rep": crd_port},
                region="iterate",
                index_var=idx,
            )
            self.table.put(
                idx,
                state.column,
                Cell("rep", f"Rep(<{state.acc.tensor}>,<{idx}>)", node.node_id),
            )
            state.frontier = self.graph.port(node, "out")
        return crd_port

    def _scan_memory_level(self, state: _OperandState, idx: str) -> Tuple[Port, Port]:
        assert state.decl is not None
        storage = state.storage_indices()
        if state.next_level >= len(storage) or storage[state.next_level] != idx:
            raise LoweringError(
                f"operand {state.acc} reached index {idx} out of storage "
                f"order {storage} (level {state.next_level}); the POG should "
                "have prevented this — check user-imposed orders"
            )
        node = self.graph.add(
            LevelScanner(state.tensor_name, state.next_level),
            {"ref": state.frontier},
            region="iterate",
            index_var=idx,
        )
        self.table.put(
            idx,
            state.column,
            Cell("ls", f"LS(<{state.tensor_name}.{idx}>)", node.node_id),
        )
        state.next_level += 1
        return self.graph.port(node, "crd"), self.graph.port(node, "ref")

    def _join(
        self,
        contributions: List[Tuple[_OperandState, Port, Port]],
        idx: str,
        joiner: str,
    ) -> Port:
        """Join all owners of ``idx``, filtering every payload to the result.

        Two owners use a single joiner node.  For more owners, the final
        coordinate stream is computed by chaining joins, then each owner's
        payload is re-filtered against the final coordinates with one more
        joiner (payloads ride the ``ref`` ports; values filter identically).
        """
        prim_cls = Intersect if joiner == "intersect" else Union
        symbol = "&" if joiner == "intersect" else "|"
        if len(contributions) == 2:
            (sa, ca, pa), (sb, cb, pb) = contributions
            node = self.graph.add(
                prim_cls(),
                {"crd_a": ca, "ref_a": pa, "crd_b": cb, "ref_b": pb},
                region="iterate",
                index_var=idx,
            )
            self.table.put(
                idx,
                sb.column,
                Cell("isect" if joiner == "intersect" else "union", f"{symbol}_{idx}", node.node_id),
            )
            sa.frontier = self.graph.port(node, "ref_a")
            sb.frontier = self.graph.port(node, "ref_b")
            return self.graph.port(node, "crd")
        # General n-way: chain coordinate joins, then filter payloads.
        crd_port = contributions[0][1]
        for state, crd_b, _ in contributions[1:]:
            node = self.graph.add(
                prim_cls(),
                {"crd_a": crd_port, "ref_a": crd_port, "crd_b": crd_b, "ref_b": crd_b},
                region="iterate",
                index_var=idx,
            )
            self.table.put(
                idx,
                state.column,
                Cell("isect" if joiner == "intersect" else "union", f"{symbol}_{idx}", node.node_id),
            )
            crd_port = self.graph.port(node, "crd")
        for state, crd_own, payload in contributions:
            filt = self.graph.add(
                prim_cls(),
                {"crd_a": crd_own, "ref_a": payload, "crd_b": crd_port, "ref_b": crd_port},
                region="iterate",
                index_var=idx,
            )
            state.frontier = self.graph.port(filt, "ref_a")
        return crd_port

    # -- values and reductions ------------------------------------------
    def _combine_values(self, states: List[_OperandState], stmt: Statement) -> Port:
        val_ports: List[Port] = []
        for state in states:
            if state.frontier is None:
                raise LoweringError(
                    f"operand {state.acc} contributed no stream in {stmt}"
                )
            if state.kind == "memory":
                node = self.graph.add(
                    ValArray(state.tensor_name), {"ref": state.frontier}, region="compute"
                )
                self.table.put(
                    "val",
                    state.column,
                    Cell("val", f"Val(<{state.tensor_name}>)", node.node_id),
                )
                val_ports.append(self.graph.port(node, "val"))
            else:
                val_ports.append(state.frontier)
        # Block matmul/transposed-matmul applies to the first operand pair
        # only; further operands (folded masks) multiply elementwise.
        chain_ops = [stmt.op] + [
            "mul" if stmt.op in ("bmm", "bmt") else stmt.op
            for _ in range(max(len(val_ports) - 2, 0))
        ]
        result = val_ports[0]
        for other, alu_op in zip(val_ports[1:], chain_ops):
            node = self.graph.add(
                BinaryALU(alu_op), {"a": result, "b": other}, region="compute"
            )
            result = self.graph.port(node, "out")
        if len(val_ports) > 1:
            result_col = self.table.add_column(stmt.lhs.tensor)
            self.table.put(
                "val", result_col, Cell("compute", f"{alu_op}(...)", result.node_id)
            )
        return result

    def _apply_reductions(
        self, stmt: Statement, val_port: Port, crd_ports: Dict[str, Port]
    ) -> Tuple[Port, Dict[str, Port]]:
        reduction = set(stmt.reduction_indices())
        remaining = self.stmt_iteration(stmt)
        crd_ports = dict(crd_ports)
        while reduction & set(remaining):
            while remaining and remaining[-1] in reduction:
                idx = remaining.pop()
                node = self.graph.add(
                    Reduce(), {"val": val_port}, region="compute", index_var=idx
                )
                self.table.put(
                    "val",
                    self.table.add_column(f"sum_{idx}"),
                    Cell("red", f"Red_{idx}", node.node_id),
                )
                val_port = self.graph.port(node, "val")
                reduction.discard(idx)
            if not (reduction & set(remaining)):
                break
            r_pos = max(i for i, idx in enumerate(remaining) if idx in reduction)
            red_idx = remaining[r_pos]
            below = remaining[r_pos + 1 :]
            aligned: List[Port] = []
            for d, out_idx in enumerate(below):
                port = crd_ports[out_idx]
                for deeper in below[d + 1 :]:
                    node = self.graph.add(
                        Repeat(),
                        {"base": port, "rep": crd_ports[deeper]},
                        region="compute",
                        index_var=out_idx,
                    )
                    port = self.graph.port(node, "out")
                aligned.append(port)
            vr_in: Dict[str, Port] = {f"crd{d}": port for d, port in enumerate(aligned)}
            vr_in["val"] = val_port
            node = self.graph.add(
                VectorReducer(order=len(below)), vr_in, region="compute", index_var=red_idx
            )
            self.table.put(
                "val",
                self.table.add_column(f"sum_{red_idx}"),
                Cell("vred", f"Red{len(below)}_{red_idx}", node.node_id),
            )
            val_port = self.graph.port(node, "val")
            for d, out_idx in enumerate(below):
                crd_ports[out_idx] = self.graph.port(node, f"crd{d}")
            remaining.pop(r_pos)
            reduction.discard(red_idx)
        return val_port, crd_ports

    # ------------------------------------------------------------------
    # Tensor construction
    # ------------------------------------------------------------------
    def _attach_writer(self, stmt: Statement, inter: Intermediate) -> None:
        spec = self.output_spec(stmt)
        writer = TensorWriter(spec.name, spec.shape, spec.fmt)
        inputs = {f"crd{d}": inter.crd_ports[idx] for d, idx in enumerate(inter.indices)}
        inputs["val"] = inter.val_port
        self.graph.add(writer, inputs, region="construct")
        self.output_specs.append(spec)

    def output_spec(self, stmt: Statement) -> OutputSpec:
        """Shape/format metadata for materializing ``stmt``'s output."""
        emission = self.emission_indices(stmt)
        logical = stmt.lhs.indices
        block = self._block_shape(stmt)
        shape_logical: List[int] = []
        for idx in logical:
            extent = self._sizes.get(idx)
            if extent is None:
                raise LoweringError(f"unknown extent for index {idx}")
            shape_logical.append(extent)
        sparsity = self._index_sparsity(stmt)
        kinds = tuple(
            LevelKind.COMPRESSED if sparsity.get(idx, False) else LevelKind.DENSE
            for idx in emission
        )
        mode_order = tuple(logical.index(idx) for idx in emission)
        if block:
            shape_logical = [s * b for s, b in zip(shape_logical, block)]
        fmt = Format(kinds, mode_order, block)
        return OutputSpec(
            name=stmt.lhs.tensor,
            logical_indices=logical,
            emission_indices=emission,
            shape=tuple(shape_logical),
            fmt=fmt,
        )

    def _block_shape(self, stmt: Statement, _depth: int = 0) -> Tuple[int, ...]:
        """Block shape of ``stmt``'s output.

        Block matmuls transform block shapes: ``bmm`` of (r, m) x (m, c)
        blocks yields (r, c) blocks; ``bmt`` of (r, m) x (c, m) yields
        (r, c).  Elementwise/unary statements inherit the first operand's
        block shape.
        """
        if _depth > 32:
            return ()
        operand_blocks = [
            self._operand_block_shape(acc, _depth) for acc in stmt.operands
        ]
        if stmt.kind == "contract" and stmt.op in ("bmm", "bmt"):
            a, b = operand_blocks[0], operand_blocks[1]
            if a and b:
                return (a[0], b[0]) if stmt.op == "bmt" else (a[0], b[-1])
        for block in operand_blocks:
            if block:
                return block
        return ()

    def _operand_block_shape(self, acc: Access, _depth: int) -> Tuple[int, ...]:
        decl = self.decls.get(acc.tensor)
        if decl is not None and decl.fmt.is_blocked:
            return decl.fmt.block_shape
        producer = self.producer_of.get(acc.tensor)
        if producer is not None:
            return self._block_shape(producer, _depth + 1)
        return ()

    def _index_sparsity(self, stmt: Statement, _depth: int = 0) -> Dict[str, bool]:
        """Whether each output index of ``stmt`` is sparse (compressed)."""
        if _depth > 32:
            return {}
        per_operand: List[Dict[str, bool]] = []
        for acc in stmt.operands:
            decl = self.decls.get(acc.tensor)
            if decl is not None:
                flags: Dict[str, bool] = {}
                for level, kind in enumerate(decl.fmt.levels):
                    idx = acc.indices[decl.fmt.mode_order[level]]
                    flags[idx] = kind is LevelKind.COMPRESSED
                per_operand.append(flags)
            else:
                producer = self.producer_of.get(acc.tensor)
                if producer is not None:
                    prod_flags = self._index_sparsity(producer, _depth + 1)
                    mapping = dict(zip(producer.lhs.indices, acc.indices))
                    per_operand.append(
                        {mapping.get(k, k): v for k, v in prod_flags.items()}
                    )
                else:
                    per_operand.append({})
        multiplicative = stmt.kind == "contract" and stmt.op in MULTIPLICATIVE_OPS
        sparsity: Dict[str, bool] = {}
        for idx in stmt.lhs.indices:
            flags = [f[idx] for f in per_operand if idx in f]
            if not flags:
                sparsity[idx] = False
            elif multiplicative and stmt.kind == "contract":
                sparsity[idx] = any(flags)
            else:
                sparsity[idx] = all(flags)
        return sparsity
