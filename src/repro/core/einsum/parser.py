"""Text parser for Einsum programs.

A small concrete syntax used by examples and tests (the frontend builds
programs programmatically).  Grammar, one construct per line::

    tensor A(2708, 1433): csr          # declaration: name(shape): format
    T0(i, j) = A(i, k) * X(k, j)       # multiplicative contraction (n-ary)
    Y(i, j) = T0(i, j) + b(j)          # elementwise addition
    Z(i, j) = relu(Y(i, j))            # unary map
    S(i, j) = softmax[j](Z(i, j))      # fiber op over index j
    W(i, j) = A(i, k) * X(k, j) order(i, k, j)   # user dataflow order

Formats: ``dense``, ``csr``, ``csc``, ``dcsr``, ``sv``, ``dv``, or a level
spec like ``dc``.  Comments start with ``#``.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ...ftree.format import (
    Format,
    csc,
    csr,
    dcsr,
    dense,
    dense_vector,
    from_spec,
    sparse_vector,
)
from .ast import (
    ADDITIVE_OPS,
    Access,
    EinsumError,
    EinsumProgram,
    FIBER_OPS,
    Statement,
    UNARY_OPS,
)

_DECL_RE = re.compile(
    r"^tensor\s+(\w+)\s*\(([^)]*)\)\s*:\s*([\w\-x]+)\s*$"
)
_ACCESS_RE = re.compile(r"^\s*(\w+)\s*\(([^)]*)\)\s*$")
_ORDER_RE = re.compile(r"order\s*\(([^)]*)\)\s*$")
_UNARY_RE = re.compile(r"^\s*(\w+)\s*\(\s*(\w+\s*\([^)]*\))\s*\)\s*$")
_FIBER_RE = re.compile(r"^\s*(\w+)\s*\[\s*(\w+)\s*\]\s*\(\s*(\w+\s*\([^)]*\))\s*\)\s*$")


def _parse_format(spec: str, order: int) -> Format:
    named = {
        "dense": lambda: dense(order),
        "csr": csr,
        "csc": csc,
        "dcsr": dcsr,
        "sv": sparse_vector,
        "dv": dense_vector,
    }
    if spec in named:
        return named[spec]()
    return from_spec(spec)


def _parse_access(text: str) -> Access:
    match = _ACCESS_RE.match(text)
    if not match:
        raise EinsumError(f"cannot parse access {text!r}")
    indices = tuple(i.strip() for i in match.group(2).split(",") if i.strip())
    return Access(match.group(1), indices)


def _split_terms(text: str, seps: Tuple[str, ...]) -> Optional[Tuple[str, List[str]]]:
    """Split ``text`` at top-level occurrences of any separator in ``seps``."""
    depth = 0
    pieces: List[str] = []
    op_found: Optional[str] = None
    current = []
    for ch in text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if depth == 0 and ch in seps:
            if op_found is None:
                op_found = ch
            elif op_found != ch:
                raise EinsumError(f"mixed operators in {text!r}; parenthesize")
            pieces.append("".join(current))
            current = []
            continue
        current.append(ch)
    pieces.append("".join(current))
    if op_found is None:
        return None
    return op_found, pieces


def parse_program(text: str, name: str = "program") -> EinsumProgram:
    """Parse a full program from the concrete syntax above."""
    program = EinsumProgram(name)
    for raw_line in text.splitlines():
        line = raw_line.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            shape = tuple(int(s) for s in decl.group(2).split(",") if s.strip())
            fmt = _parse_format(decl.group(3), len(shape))
            program.declare(decl.group(1), shape, fmt)
            continue
        if "=" not in line:
            raise EinsumError(f"cannot parse line {raw_line!r}")
        lhs_text, rhs_text = line.split("=", 1)
        order: Optional[Tuple[str, ...]] = None
        order_match = _ORDER_RE.search(rhs_text)
        if order_match:
            order = tuple(
                i.strip() for i in order_match.group(1).split(",") if i.strip()
            )
            rhs_text = rhs_text[: order_match.start()].strip()
        lhs = _parse_access(lhs_text)
        stmt = _parse_rhs(lhs, rhs_text.strip(), order)
        program.add(stmt)
    program.validate()
    return program


def _parse_rhs(lhs: Access, rhs: str, order: Optional[Tuple[str, ...]]) -> Statement:
    fiber = _FIBER_RE.match(rhs)
    if fiber and fiber.group(1) in FIBER_OPS:
        operand = _parse_access(fiber.group(3))
        if operand.indices[-1] != fiber.group(2):
            raise EinsumError(
                f"fiber op {fiber.group(1)} must act on the innermost index "
                f"({operand.indices[-1]!r}), got {fiber.group(2)!r}"
            )
        return Statement(lhs=lhs, kind="fiber", op=fiber.group(1), operands=(operand,))
    unary = _UNARY_RE.match(rhs)
    if unary and unary.group(1) in UNARY_OPS:
        operand = _parse_access(unary.group(2))
        return Statement(lhs=lhs, kind="unary", op=unary.group(1), operands=(operand,))
    split = _split_terms(rhs, ("+", "-"))
    if split:
        op_char, pieces = split
        op = "add" if op_char == "+" else "sub"
        operands = tuple(_parse_access(p) for p in pieces)
        return Statement(lhs=lhs, kind="contract", op=op, operands=operands, order=order)
    split = _split_terms(rhs, ("*",))
    if split:
        _, pieces = split
        operands = tuple(_parse_access(p) for p in pieces)
        return Statement(lhs=lhs, kind="contract", op="mul", operands=operands, order=order)
    # A bare access: identity copy.
    operand = _parse_access(rhs)
    return Statement(lhs=lhs, kind="unary", op="identity", operands=(operand,))
