"""Einsum-level IR: accesses, statements, and programs.

A FuseFlow program is a DAG of *statements*, each producing one tensor from
one Einsum-style operation (paper Figure 6b).  Statements come in three
kinds:

``contract``
    ``lhs = reduce_+ (op over operands)`` where ``op`` is a multiplicative
    (``mul``/``bmm``) or additive (``add``/``sub``/``max``) elementwise
    combination and the reduction runs over every index that appears on the
    right but not on the left.  N-ary multiplicative contractions arise from
    mask folding during fusion (SDDMM-style kernels).
``unary``
    ``lhs = f(scale * operand + offset)`` elementwise over stored values
    (ReLU, GeLU, exp, ...).
``fiber``
    A fiber-granularity operator over the operand's innermost index
    (softmax, layernorm).

Index variables are plain strings.  Tensor declarations carry shapes and
storage formats; statement validation checks index/extent consistency.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ...ftree.format import Format, dense as dense_format

MULTIPLICATIVE_OPS = {"mul", "bmm", "bmt"}
ADDITIVE_OPS = {"add", "sub", "max", "min"}
UNARY_OPS = {
    "relu",
    "gelu",
    "exp",
    "neg",
    "abs",
    "sigmoid",
    "tanh",
    "sqrt",
    "identity",
    "square",
}
FIBER_OPS = {"softmax", "layernorm"}


class EinsumError(ValueError):
    """Raised on malformed Einsum programs."""


@dataclass(frozen=True)
class Access:
    """One tensor access, e.g. ``A(i, k)``."""

    tensor: str
    indices: Tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.tensor}({', '.join(self.indices)})"

    def rename(self, mapping: Dict[str, str]) -> "Access":
        return Access(self.tensor, tuple(mapping.get(i, i) for i in self.indices))


@dataclass(frozen=True)
class TensorDecl:
    """Declared tensor: shape, storage format, role."""

    name: str
    shape: Tuple[int, ...]
    fmt: Format
    is_input: bool = True

    @property
    def order(self) -> int:
        return len(self.shape)


@dataclass
class Statement:
    """One Einsum statement producing ``lhs`` from ``operands``."""

    lhs: Access
    kind: str  # 'contract' | 'unary' | 'fiber'
    op: str
    operands: Tuple[Access, ...]
    # Optional user-scheduled dataflow order over this statement's indices.
    order: Optional[Tuple[str, ...]] = None
    # Unary parameters: lhs = f(scale * x + offset).
    scale: float = 1.0
    offset: float = 0.0
    sid: int = -1

    def __post_init__(self) -> None:
        if self.kind == "contract":
            if self.op not in MULTIPLICATIVE_OPS | ADDITIVE_OPS:
                raise EinsumError(f"bad contract op {self.op!r}")
            if not self.operands:
                raise EinsumError("contract needs operands")
            if self.op in ADDITIVE_OPS and len(self.operands) != 2:
                raise EinsumError("additive statements must be binary")
            if self.op in ADDITIVE_OPS and self.reduction_indices():
                raise EinsumError(
                    "additive statements may not reduce "
                    f"(got {self.reduction_indices()} in {self})"
                )
        elif self.kind == "unary":
            if self.op not in UNARY_OPS:
                raise EinsumError(f"bad unary op {self.op!r}")
            if len(self.operands) != 1:
                raise EinsumError("unary statements take one operand")
            if set(self.lhs.indices) != set(self.operands[0].indices):
                raise EinsumError(f"unary statement changes indices: {self}")
        elif self.kind == "fiber":
            if self.op not in FIBER_OPS:
                raise EinsumError(f"bad fiber op {self.op!r}")
            if len(self.operands) != 1:
                raise EinsumError("fiber statements take one operand")
        else:
            raise EinsumError(f"unknown statement kind {self.kind!r}")

    # ------------------------------------------------------------------
    def all_indices(self) -> Tuple[str, ...]:
        """Statement indices, in first-appearance order (lhs first)."""
        seen: List[str] = []
        for idx in self.lhs.indices:
            if idx not in seen:
                seen.append(idx)
        for acc in self.operands:
            for idx in acc.indices:
                if idx not in seen:
                    seen.append(idx)
        return tuple(seen)

    def reduction_indices(self) -> Tuple[str, ...]:
        """Indices reduced over (on the right but not the left)."""
        lhs = set(self.lhs.indices)
        out: List[str] = []
        for acc in self.operands:
            for idx in acc.indices:
                if idx not in lhs and idx not in out:
                    out.append(idx)
        return tuple(out)

    def uses(self) -> Set[str]:
        return {acc.tensor for acc in self.operands}

    def rename_indices(self, mapping: Dict[str, str]) -> "Statement":
        return replace(
            self,
            lhs=self.lhs.rename(mapping),
            operands=tuple(acc.rename(mapping) for acc in self.operands),
            order=tuple(mapping.get(i, i) for i in self.order) if self.order else None,
        )

    def __str__(self) -> str:
        rhs = f" {self.op} ".join(str(a) for a in self.operands)
        if self.kind == "unary":
            rhs = f"{self.op}({self.operands[0]})"
        elif self.kind == "fiber":
            over = self.operands[0].indices[-1]
            rhs = f"{self.op}[{over}]({self.operands[0]})"
        red = self.reduction_indices()
        prefix = f"sum_{{{','.join(red)}}} " if red else ""
        return f"{self.lhs} = {prefix}{rhs}"


class EinsumProgram:
    """A DAG of Einsum statements plus tensor declarations."""

    def __init__(self, name: str = "program") -> None:
        self.name = name
        self.decls: Dict[str, TensorDecl] = {}
        self.statements: List[Statement] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def declare(
        self,
        name: str,
        shape: Sequence[int],
        fmt: Format | None = None,
        is_input: bool = True,
    ) -> TensorDecl:
        if name in self.decls:
            raise EinsumError(f"tensor {name!r} declared twice")
        decl = TensorDecl(
            name, tuple(shape), fmt or dense_format(len(shape)), is_input
        )
        self.decls[name] = decl
        return decl

    def add(self, stmt: Statement) -> Statement:
        stmt.sid = len(self.statements)
        self.statements.append(stmt)
        return stmt

    def contract(
        self,
        lhs: str,
        lhs_indices: Sequence[str],
        op: str,
        operands: Sequence[Tuple[str, Sequence[str]]],
        order: Sequence[str] | None = None,
    ) -> Statement:
        """Convenience builder for contract statements."""
        stmt = Statement(
            lhs=Access(lhs, tuple(lhs_indices)),
            kind="contract",
            op=op,
            operands=tuple(Access(t, tuple(ix)) for t, ix in operands),
            order=tuple(order) if order else None,
        )
        return self.add(stmt)

    def unary(
        self,
        lhs: str,
        lhs_indices: Sequence[str],
        op: str,
        operand: Tuple[str, Sequence[str]],
        scale: float = 1.0,
        offset: float = 0.0,
    ) -> Statement:
        stmt = Statement(
            lhs=Access(lhs, tuple(lhs_indices)),
            kind="unary",
            op=op,
            operands=(Access(operand[0], tuple(operand[1])),),
            scale=scale,
            offset=offset,
        )
        return self.add(stmt)

    def fiber(
        self,
        lhs: str,
        lhs_indices: Sequence[str],
        op: str,
        operand: Tuple[str, Sequence[str]],
    ) -> Statement:
        stmt = Statement(
            lhs=Access(lhs, tuple(lhs_indices)),
            kind="fiber",
            op=op,
            operands=(Access(operand[0], tuple(operand[1])),),
        )
        return self.add(stmt)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def producers(self) -> Dict[str, Statement]:
        """Map tensor name -> the statement producing it."""
        out: Dict[str, Statement] = {}
        for stmt in self.statements:
            if stmt.lhs.tensor in out:
                raise EinsumError(f"tensor {stmt.lhs.tensor!r} produced twice")
            out[stmt.lhs.tensor] = stmt
        return out

    def consumers(self) -> Dict[str, List[Statement]]:
        """Map tensor name -> statements consuming it."""
        out: Dict[str, List[Statement]] = {}
        for stmt in self.statements:
            for acc in stmt.operands:
                out.setdefault(acc.tensor, []).append(stmt)
        return out

    def intermediates(self) -> Set[str]:
        """Tensors that are both produced and consumed."""
        produced = {s.lhs.tensor for s in self.statements}
        consumed = {a.tensor for s in self.statements for a in s.operands}
        return produced & consumed

    def outputs(self) -> List[str]:
        """Produced tensors never consumed (program results)."""
        produced = [s.lhs.tensor for s in self.statements]
        consumed = {a.tensor for s in self.statements for a in s.operands}
        return [t for t in produced if t not in consumed]

    def index_sizes(self) -> Dict[str, int]:
        """Index name -> extent, derived from declarations and statements.

        Statement outputs may not be declared; their extents propagate from
        the operands that share the index.
        """
        sizes: Dict[str, int] = {}
        changed = True
        while changed:
            changed = False
            for stmt in self.statements:
                for acc in itertools.chain([stmt.lhs], stmt.operands):
                    decl = self.decls.get(acc.tensor)
                    if decl is None:
                        continue
                    shape = decl.shape
                    if decl.fmt.is_blocked:
                        shape = tuple(
                            s // b for s, b in zip(decl.shape, decl.fmt.block_shape)
                        )
                    if len(acc.indices) != len(shape):
                        raise EinsumError(
                            f"{acc} has {len(acc.indices)} indices but "
                            f"{acc.tensor} has order {len(shape)}"
                        )
                    for idx, extent in zip(acc.indices, shape):
                        if idx not in sizes:
                            sizes[idx] = extent
                            changed = True
                        elif sizes[idx] != extent:
                            raise EinsumError(
                                f"index {idx!r} has conflicting extents "
                                f"{sizes[idx]} vs {extent} (at {acc})"
                            )
        return sizes

    def fingerprint(self) -> str:
        """Stable content hash over declarations and statements.

        Two programs fingerprint equally iff they declare the same tensors
        (name, shape, storage format) and contain the same statement list
        (kind, op, accesses, scheduled order, unary parameters) — regardless
        of object identity.  The driver's compile cache keys on this, so the
        hash must cover every input the compiler reads.
        """
        parts = [f"program {self.name}"]
        for name in sorted(self.decls):
            decl = self.decls[name]
            parts.append(
                f"decl {name} shape={decl.shape} levels={decl.fmt.levels} "
                f"mode_order={decl.fmt.mode_order} "
                f"block={decl.fmt.block_shape} input={decl.is_input}"
            )
        for stmt in self.statements:
            parts.append(
                f"stmt {stmt.sid} {stmt.kind} {stmt.op} {stmt} "
                f"order={stmt.order} scale={stmt.scale} offset={stmt.offset}"
            )
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def validate(self) -> None:
        """Check DAG-ness, declarations, and index consistency."""
        produced: Set[str] = set()
        for stmt in self.statements:
            for acc in stmt.operands:
                if acc.tensor not in self.decls and acc.tensor not in produced:
                    raise EinsumError(
                        f"statement {stmt} uses {acc.tensor!r} before definition"
                    )
            produced.add(stmt.lhs.tensor)
        self.index_sizes()

    def __str__(self) -> str:
        lines = [f"program {self.name}:"]
        for name, decl in self.decls.items():
            lines.append(f"  tensor {name}{list(decl.shape)}: {decl.fmt.name()}")
        for stmt in self.statements:
            lines.append(f"  [{stmt.sid}] {stmt}")
        return "\n".join(lines)
