"""Einsum IR and parser."""

from .ast import Access, EinsumError, EinsumProgram, Statement, TensorDecl
from .parser import parse_program

__all__ = ["Access", "Statement", "EinsumProgram", "TensorDecl", "EinsumError", "parse_program"]
