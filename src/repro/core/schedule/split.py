"""Index splitting (tiling) of SAMML graphs — the third classic schedule axis.

FuseFlow's scheduling language (paper Sections 4.2 and 7) exposes fusion
granularity, dataflow ordering, and parallelization; this module adds the
remaining knob of spatial-accelerator scheduling: *index splitting*.  A
split ``{i: T}`` partitions index ``i``'s coordinate space into ``T``
contiguous tiles and rewrites the region's dataflow order to iterate an
outer tile index — the region streams one tile of ``i`` at a time instead
of the whole dimension at once.

Two observable effects, mirroring how :func:`~repro.core.schedule.par.apply_parallelization`
models lane duplication without restructuring the graph:

* **Timing** — every node inside the tiled loop executes as ``T``
  tile-sequential passes over its token stream; each tile boundary costs
  one extra pipeline fill/drain (the timed engine charges ``latency + II``
  per boundary).  Splitting is therefore never free in cycles.
* **Footprint** — a materialized region output whose modes include a split
  index only ever has *one tile* resident at a time, so the
  ``place-memory`` pass divides its dense-estimate footprint by the tile
  count.  That is precisely what lets an intermediate that used to spill
  to DRAM fit in the on-chip buffer: tiling converts spill/fill traffic
  into SRAM traffic in ``SimResult.traffic_by_level()``.

The functional semantics are untouched: iterating a dimension in ``T``
contiguous chunks computes exactly the same values in exactly the same
order as iterating it whole, so split and unsplit schedules are bit-exact
on results (enforced by ``tests/test_split_differential.py``).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...sam.graph import SAMGraph
from .par import scale_subgraph_factor, scaled_levels

#: Synthetic order-entry suffix marking the outer tile index of a split
#: (``k`` split 8 ways shows up as ``k.t8`` at the front of the region's
#: dataflow order).  Never collides with real index names, which the
#: fusion renamer draws from ``x<n>``/``u<n>``.
TILE_ORDER_SUFFIX = ".t"


def tile_index_name(index_var: str, tiles: int) -> str:
    """The synthetic outer tile index for ``index_var`` split ``tiles`` ways."""
    return f"{index_var}{TILE_ORDER_SUFFIX}{tiles}"


def validate_split_item(index_var: object, tiles: object) -> None:
    """The one shared validation rule for a ``splits`` entry.

    Raises :class:`ValueError` unless ``index_var`` is a non-empty string
    and ``tiles`` a plain int >= 1 (bool excluded: ``True`` would pass an
    ``isinstance(int)`` check but round-trip through JSON as ``1``,
    churning fingerprints).  ``Schedule.validate``, ``SweepPoint.validate``
    and the autotuner all wrap this — keeping four layers from drifting
    apart on what a legal split is.
    """
    if not isinstance(index_var, str) or not index_var:
        raise ValueError(
            f"split index names must be non-empty strings, got {index_var!r}"
        )
    if not isinstance(tiles, int) or isinstance(tiles, bool) or tiles < 1:
        raise ValueError(
            f"split tile count for {index_var!r} must be an int >= 1, "
            f"got {tiles!r}"
        )


def is_tile_index(name: str) -> bool:
    """True for synthetic tile-index order entries (``"x1.t8"``).

    Consumers of a region's dataflow order that operate on *real* loop
    levels (parallelization, order pinning) must filter these out — a
    tile index is time-multiplexed, not a spatial level.
    """
    head, sep, tail = name.rpartition(TILE_ORDER_SUFFIX)
    return bool(head) and bool(sep) and tail.isdigit()


def apply_split(
    graph: SAMGraph,
    order: Sequence[str],
    index_var: str,
    tiles: int,
) -> int:
    """Tile ``index_var`` into ``tiles`` sequential passes across ``graph``.

    Shares :func:`~repro.core.schedule.par.scale_subgraph_factor` with
    parallelization: every node iterating ``index_var`` or any deeper
    index (per ``order``), and every compute-region node, has its tile
    factor multiplied — those are the nodes re-paced per tile by the timed
    engine.  Tensor-construction nodes stay un-tiled: the merging
    serializer drains continuously across tile boundaries, exactly as it
    stays serial under parallelization.  Returns the number of nodes
    affected.

    Parameters
    ----------
    graph:
        The lowered region graph to annotate.
    order:
        The region's dataflow order (real index names; synthetic tile
        entries are ignored if present).
    index_var:
        The index being split; must be iterated by this region.
    tiles:
        Tile count; ``1`` is a no-op.

    Raises
    ------
    ValueError
        For a tile count < 1 or an index the region does not iterate.
    """
    return scale_subgraph_factor(
        graph, order, index_var, tiles, "tile_factor", "split tile count"
    )


def tiled_levels(graph: SAMGraph) -> List[str]:
    """Index variables whose nodes carry a tile factor > 1."""
    return scaled_levels(graph, "tile_factor")


def split_footprint_scale(
    splits: Dict[str, int], tensor_indices: Sequence[str]
) -> int:
    """Resident-footprint divisor of a tensor under the region's splits.

    The product of tile counts over split indices that are modes of the
    tensor: with index ``i`` split ``T`` ways, only one of the ``T`` tiles
    of every ``i``-indexed tensor is resident at a time.  Indices the
    tensor does not carry contribute nothing (tiling ``k`` does not shrink
    a ``(i, j)`` output).
    """
    scale = 1
    for idx in tensor_indices:
        scale *= splits.get(idx, 1)
    return scale


def intermediate_row_splits(compiled, tiles: int) -> Dict[str, int]:
    """Splits dict tiling the outer row of every cross-region intermediate.

    The standard recipe for shrinking spill traffic: split the outermost
    emission index of each materialized region output that a later region
    consumes, so each intermediate streams tile-by-tile through the
    on-chip buffer instead of materializing whole.

    Parameters
    ----------
    compiled:
        A compiled program (anything with ``regions`` carrying
        ``output_specs`` and a ``program`` with ``outputs()`` — duck-typed
        so this module needs no driver import).
    tiles:
        Tile count applied to every discovered row index.

    Returns
    -------
    dict
        Index variable -> ``tiles``, ready to assign to
        :attr:`Schedule.splits <repro.core.schedule.schedule.Schedule.splits>`.
    """
    if tiles < 1:
        raise ValueError(f"split tile count must be >= 1, got {tiles}")
    program_outputs = set(compiled.program.outputs())
    splits: Dict[str, int] = {}
    for region in compiled.regions:
        for spec in region.output_specs:
            if spec.name in program_outputs or not spec.emission_indices:
                continue
            splits[spec.emission_indices[0]] = tiles
    return splits
