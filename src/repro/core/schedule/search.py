"""Guided search over the joint schedule space (ROADMAP: "Search, not
enumeration").

The contiguous-partition space alone is 2^(n-1); crossed with loop
orders, parallelization, and index splits it reaches 10^4–10^6 points for
the evaluation models, far past what :func:`~.autotune.enumerate_schedules`
can materialize under its candidate cap.  This module replaces grid
materialization with *local-move* search, in the spirit of
transformation-driven exploration (DaCe's ``SingleStateTransformation``
idiom): a schedule is a :class:`SearchPoint` — region cuts, per-region
order choice, split-config index, par-config index — and its neighbors
are the five elementary moves:

* **merge** two adjacent regions (remove a cut),
* **split** a region at a statement boundary (add a cut),
* **reorder** a region's dataflow (step its valid-order choice),
* **bump** the split configuration,
* **toggle** the parallelization configuration.

Strategies live behind the :data:`STRATEGIES` registry:

* ``exhaustive`` — the classic enumerate → cost-model rank → simulate
  top-k path (today's :func:`~.autotune.autotune` semantics, bitwise);
* ``beam`` — cost-model-guided beam search over local moves, then
  simulate the ``budget`` best predicted points;
* ``evolutionary`` — seeded mutation/selection over points
  (``numpy.random.default_rng``), same simulate-top-budget finish.

Everything is deterministic for a fixed seed: neighbor generation is
ordered, ties break on the point key, and randomness comes only from the
seeded generator — identical invocations produce identical
``search_trace`` lists.  Simulation budget counts *successful* runs, the
same convention as ``sweep_schedules(limit=...)``: an infeasible
candidate is skipped without consuming budget.  All compilation goes
through one :class:`~repro.driver.session.Session`, so revisited points
and the final winner are compile-cache hits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...backend.base import resolve_backend_name
from ...comal.machines import Machine
from ...driver.session import Session
from ..einsum.ast import EinsumProgram
from ..fusion.fuse import fuse_region
from ..heuristic.costmodel import CostModel, HeuristicCostModel
from ..heuristic.model import TensorStats
from .schedule import Schedule

#: Registered search strategies (name -> factory returning a runner).
STRATEGIES: Dict[str, Callable[[], "SearchStrategy"]] = {}


def register_strategy(name: str):
    """Class decorator adding a strategy to :data:`STRATEGIES`."""

    def wrap(cls):
        cls.name = name
        STRATEGIES[name] = cls
        return cls

    return wrap


def get_strategy(name: str) -> "SearchStrategy":
    """Instantiate a registered strategy; unknown names list the options."""
    try:
        factory = STRATEGIES[name]
    except KeyError:
        raise KeyError(
            f"unknown search strategy {name!r}; registered: "
            f"{', '.join(sorted(STRATEGIES))}"
        ) from None
    return factory()


@dataclass(frozen=True)
class SearchPoint:
    """One point of the joint schedule space, as move-friendly coordinates.

    ``cuts`` are the region boundaries (positions in ``1..n-1``, sorted);
    ``order_choice`` picks one valid dataflow order per region;
    ``split_idx``/``par_idx`` index the task's split/par configuration
    lists (entry 0 is always the empty baseline config).
    """

    cuts: Tuple[int, ...]
    order_choice: Tuple[int, ...]
    split_idx: int = 0
    par_idx: int = 0

    @property
    def key(self) -> Tuple:
        return (self.cuts, self.order_choice, self.split_idx, self.par_idx)


class SearchSpace:
    """Neighbor generation and point→schedule materialization."""

    def __init__(
        self,
        program: EinsumProgram,
        split_configs: Optional[Sequence[Mapping[str, int]]] = None,
        par_configs: Optional[Sequence[Mapping[str, int]]] = None,
        order_limit: int = 2,
    ) -> None:
        self.program = program
        self.n = len(program.statements)
        self.split_configs: List[Dict[str, int]] = [{}]
        for config in split_configs or ():
            frozen = {k: v for k, v in config.items() if v > 1}
            if frozen and frozen not in self.split_configs:
                self.split_configs.append(frozen)
        self.par_configs: List[Dict[str, int]] = [{}]
        for config in par_configs or ():
            frozen = {k: v for k, v in config.items() if v > 1}
            if frozen and frozen not in self.par_configs:
                self.par_configs.append(frozen)
        self.order_limit = order_limit
        self._orders: Dict[Tuple[int, ...], List[Optional[List[str]]]] = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def regions_from_cuts(self, cuts: Sequence[int]) -> List[List[int]]:
        edges = [0, *sorted(cuts), self.n]
        return [list(range(a, b)) for a, b in zip(edges, edges[1:])]

    def seeds(self) -> List[SearchPoint]:
        """The two always-feasible anchors: fully fused and fully unfused."""
        fused = SearchPoint(cuts=(), order_choice=(0,))
        unfused = SearchPoint(
            cuts=tuple(range(1, self.n)), order_choice=(0,) * self.n
        )
        return [fused, unfused] if self.n > 1 else [fused]

    def region_orders(self, region: Sequence[int]) -> List[Optional[List[str]]]:
        """Valid dataflow orders for one region; entry 0 = default order.

        ``None`` means "let the compiler pick" — always present so every
        region has at least one choice even when order enumeration fails
        (infeasible fusions surface at compile time, not here).
        """
        key = tuple(region)
        cached = self._orders.get(key)
        if cached is None:
            cached = [None]
            if self.order_limit > 1:
                try:
                    fused = fuse_region(
                        self.program, list(key), name="search-orders"
                    )
                    # The compiler's default pick is already choice 0;
                    # re-listing it would burn simulation budget on a
                    # byte-identical compile.
                    default = fused.first_order()
                    for order in fused.valid_orders(limit=self.order_limit):
                        order = list(order)
                        if order != default and order not in cached[1:]:
                            cached.append(order)
                except Exception:
                    pass
            self._orders[key] = cached
        return cached

    def schedule_for(self, point: SearchPoint) -> Schedule:
        """Materialize the point as a validated, uniquely-named schedule."""
        regions = self.regions_from_cuts(point.cuts)
        name_bits = ["search", "c" + "-".join(map(str, point.cuts)) or "c"]
        if any(point.order_choice):
            name_bits.append("o" + "".join(map(str, point.order_choice)))
        if point.split_idx:
            name_bits.append(f"s{point.split_idx}")
        if point.par_idx:
            name_bits.append(f"p{point.par_idx}")
        schedule = Schedule(name="/".join(name_bits), regions=regions)
        for pos, (region, choice) in enumerate(
            zip(regions, point.order_choice)
        ):
            if choice:
                orders = self.region_orders(region)
                order = orders[min(choice, len(orders) - 1)]
                if order is not None:
                    schedule.orders[pos] = list(order)
        schedule.splits = dict(self.split_configs[point.split_idx])
        schedule.par = dict(self.par_configs[point.par_idx])
        schedule.validate(self.program)
        return schedule

    # ------------------------------------------------------------------
    # Local moves
    # ------------------------------------------------------------------
    def neighbors(self, point: SearchPoint) -> List[Tuple[str, SearchPoint]]:
        """Deterministically-ordered (move, point) pairs one move away."""
        out: List[Tuple[str, SearchPoint]] = []
        cuts = point.cuts
        # Fusion moves re-base order choices to the default (region
        # membership changed; stale per-region choices would be
        # meaningless and nondeterministic).
        for cut in cuts:  # merge two adjacent regions
            new_cuts = tuple(c for c in cuts if c != cut)
            out.append(
                (
                    "merge",
                    SearchPoint(
                        cuts=new_cuts,
                        order_choice=(0,) * (len(new_cuts) + 1),
                        split_idx=point.split_idx,
                        par_idx=point.par_idx,
                    ),
                )
            )
        present = set(cuts)
        for cut in range(1, self.n):  # split a region at a boundary
            if cut in present:
                continue
            new_cuts = tuple(sorted((*cuts, cut)))
            out.append(
                (
                    "split-region",
                    SearchPoint(
                        cuts=new_cuts,
                        order_choice=(0,) * (len(new_cuts) + 1),
                        split_idx=point.split_idx,
                        par_idx=point.par_idx,
                    ),
                )
            )
        regions = self.regions_from_cuts(cuts)
        for pos, region in enumerate(regions):  # step a region's order
            n_orders = len(self.region_orders(region))
            if n_orders <= 1:
                continue
            for step in (1, -1):
                choice = (point.order_choice[pos] + step) % n_orders
                if choice == point.order_choice[pos]:
                    continue
                new_choice = (
                    *point.order_choice[:pos],
                    choice,
                    *point.order_choice[pos + 1:],
                )
                out.append(
                    (
                        "swap-order",
                        SearchPoint(
                            cuts=cuts,
                            order_choice=new_choice,
                            split_idx=point.split_idx,
                            par_idx=point.par_idx,
                        ),
                    )
                )
        for step in (1, -1):  # bump the split configuration
            idx = point.split_idx + step
            if 0 <= idx < len(self.split_configs):
                out.append(
                    (
                        "bump-split",
                        SearchPoint(
                            cuts=cuts,
                            order_choice=point.order_choice,
                            split_idx=idx,
                            par_idx=point.par_idx,
                        ),
                    )
                )
        for step in (1, -1):  # toggle the parallelization configuration
            idx = point.par_idx + step
            if 0 <= idx < len(self.par_configs):
                out.append(
                    (
                        "toggle-par",
                        SearchPoint(
                            cuts=cuts,
                            order_choice=point.order_choice,
                            split_idx=point.split_idx,
                            par_idx=idx,
                        ),
                    )
                )
        return out


@dataclass
class SearchTask:
    """Everything a strategy needs to run one search."""

    program: EinsumProgram
    binding: Dict[str, object]
    stats: Mapping[str, TensorStats]
    machine: Machine
    session: Session
    cost_model: CostModel
    budget: int
    seed: int = 0
    model_name: Optional[str] = None
    splits: Optional[Sequence[Mapping[str, int]]] = None
    par_options: Optional[Sequence[Mapping[str, int]]] = None
    max_candidates: int = 64
    order_limit: int = 2
    beam_width: int = 4
    generations: Optional[int] = None
    population: int = 16


@dataclass
class SearchResult:
    """A strategy's outcome, consumed by :func:`~.autotune.autotune`."""

    best: Schedule
    measured_cycles: float
    candidates_considered: int
    evaluations: int
    ranking: List[Tuple[str, float]]
    trace: List[Dict[str, object]]
    partition_space: int = 0
    partitions_dropped: int = 0


class Evaluator:
    """Simulation bookkeeping shared by the guided strategies.

    Deduplicates by schedule content fingerprint, counts only successful
    simulations against the budget, and appends one JSON-safe trace entry
    per *attempted* evaluation (failures included, so a trace replays the
    search exactly).
    """

    def __init__(self, task: SearchTask, space: SearchSpace) -> None:
        self.task = task
        self.space = space
        # Resolved execution backend the session simulates on; recorded
        # per trace entry so saved traces state what produced the cycles.
        self.backend = resolve_backend_name(
            task.session.backend, task.session.columnar
        )
        self.trace: List[Dict[str, object]] = []
        self.ranking: List[Tuple[str, float]] = []
        self.evaluations = 0
        self.best: Optional[Schedule] = None
        self.best_cycles = float("inf")
        self._measured: Dict[str, Optional[float]] = {}

    def exhausted(self) -> bool:
        return self.evaluations >= self.task.budget

    def predict(self, schedule: Schedule) -> float:
        return self.task.cost_model.predict(
            self.task.program,
            schedule,
            self.task.stats,
            self.task.machine,
            model_name=self.task.model_name,
        )

    def measure(
        self, point: SearchPoint, move: str, predicted: float
    ) -> Optional[float]:
        """Simulate one point; returns cycles or ``None`` on failure."""
        if self.exhausted():
            return None
        schedule = self.space.schedule_for(point)
        fingerprint = schedule.fingerprint()
        if fingerprint in self._measured:  # revisit: free, not re-traced
            return self._measured[fingerprint]
        entry: Dict[str, object] = {
            "step": len(self.trace),
            "move": move,
            "schedule": schedule.name,
            "regions": [list(r) for r in schedule.regions],
            "splits": dict(schedule.splits),
            "par": dict(schedule.par),
            "predicted": float(predicted),
            "backend": self.backend,
        }
        try:
            result = self.task.session.run(
                self.task.program,
                self.task.binding,
                schedule,
                machine=self.task.machine,
            )
            cycles = float(result.metrics.cycles)
        except Exception as exc:
            self._measured[fingerprint] = None
            entry["status"] = "error"
            entry["error"] = type(exc).__name__
            self.trace.append(entry)
            return None
        self._measured[fingerprint] = cycles
        self.evaluations += 1
        entry["status"] = "ok"
        entry["cycles"] = cycles
        self.trace.append(entry)
        self.ranking.append((schedule.name, cycles))
        if cycles < self.best_cycles:
            self.best_cycles = cycles
            self.best = schedule
        return cycles


class SearchStrategy:
    """Base class; subclasses implement :meth:`run`."""

    name = "base"

    def run(self, task: SearchTask) -> SearchResult:  # pragma: no cover
        raise NotImplementedError


def _finish(task: SearchTask, space: SearchSpace, ev: Evaluator) -> SearchResult:
    if ev.best is None:
        raise RuntimeError(
            "no candidate schedule could be compiled and run within the "
            f"budget of {task.budget} simulation(s)"
        )
    from .autotune import partition_space_size

    return SearchResult(
        best=ev.best,
        measured_cycles=ev.best_cycles,
        candidates_considered=len(ev.trace),
        evaluations=ev.evaluations,
        ranking=ev.ranking,
        trace=ev.trace,
        partition_space=partition_space_size(space.n),
        partitions_dropped=0,
    )


def _simulate_pool(
    task: SearchTask,
    space: SearchSpace,
    ev: Evaluator,
    pool: Dict[Tuple, Tuple[float, str, SearchPoint]],
) -> None:
    """Spend the budget on the pool's best predicted points, in order."""
    ordered = sorted(pool.values(), key=lambda item: (item[0], item[2].key))
    for predicted, move, point in ordered:
        if ev.exhausted():
            break
        ev.measure(point, move, predicted)


def _explore(
    task: SearchTask,
    space: SearchSpace,
    ev: Evaluator,
    frontier: List[Tuple[SearchPoint, str]],
    select: Callable[
        [Dict[Tuple, Tuple[float, str, SearchPoint]], int],
        List[Tuple[SearchPoint, str]],
    ],
    rounds: int,
    width: int,
) -> Dict[Tuple, Tuple[float, str, SearchPoint]]:
    """Shared explore loop: expand → score (cheap) → select next frontier."""
    pool: Dict[Tuple, Tuple[float, str, SearchPoint]] = {}

    def score(point: SearchPoint, move: str) -> None:
        if point.key in pool:
            return
        try:
            predicted = ev.predict(space.schedule_for(point))
        except Exception:
            return  # heuristic can't cost it; unreachable by this search
        pool[point.key] = (predicted, move, point)

    for point, move in frontier:
        score(point, move)
    for _ in range(rounds):
        expanded = False
        for point, _ in frontier:
            for move, neighbor in space.neighbors(point):
                if neighbor.key not in pool:
                    expanded = True
                score(neighbor, move)
        if not expanded:
            break
        frontier = select(pool, width)
    return pool


@register_strategy("exhaustive")
class ExhaustiveStrategy(SearchStrategy):
    """Today's path: enumerate, cost-model rank, simulate top-``budget``.

    Kept behind the registry so ``autotune(strategy="exhaustive")`` and
    the legacy positional call are one code path; semantics (candidate
    cap, deterministic truncation, skip-on-error) are unchanged.
    """

    def run(self, task: SearchTask) -> SearchResult:
        from .autotune import (
            _enumeration_plan,
            enumerate_schedules,
            partition_space_size,
        )

        n = len(task.program.statements)
        candidates = enumerate_schedules(
            task.program, task.max_candidates, splits=task.splits
        )
        _, _, dropped = _enumeration_plan(n, task.max_candidates, task.splits)
        scored: List[Tuple[float, int, Schedule]] = []
        for i, schedule in enumerate(candidates):
            try:
                predicted = task.cost_model.predict(
                    task.program,
                    schedule,
                    task.stats,
                    task.machine,
                    model_name=task.model_name,
                )
            except Exception:
                continue
            scored.append((predicted, i, schedule))
        scored.sort(key=lambda item: item[:2])

        space = SearchSpace(task.program, split_configs=task.splits)
        ev = Evaluator(task, space)
        for predicted, _, schedule in scored:
            if ev.exhausted():
                break
            # Bypass point coordinates: enumerated schedules already
            # carry names/splits; share the evaluator's budget + trace
            # machinery by inlining its measure body on the schedule.
            fingerprint = schedule.fingerprint()
            if fingerprint in ev._measured:
                continue
            entry: Dict[str, object] = {
                "step": len(ev.trace),
                "move": "enumerate",
                "schedule": schedule.name,
                "regions": [list(r) for r in schedule.regions],
                "splits": dict(schedule.splits),
                "par": dict(schedule.par),
                "predicted": float(predicted),
                "backend": ev.backend,
            }
            try:
                result = task.session.run(
                    task.program, task.binding, schedule, machine=task.machine
                )
                cycles = float(result.metrics.cycles)
            except Exception as exc:
                ev._measured[fingerprint] = None
                entry["status"] = "error"
                entry["error"] = type(exc).__name__
                ev.trace.append(entry)
                continue
            ev._measured[fingerprint] = cycles
            ev.evaluations += 1
            entry["status"] = "ok"
            entry["cycles"] = cycles
            ev.trace.append(entry)
            ev.ranking.append((schedule.name, cycles))
            if cycles < ev.best_cycles:
                ev.best_cycles = cycles
                ev.best = schedule
        result = _finish(task, space, ev)
        result.candidates_considered = len(scored)
        result.partition_space = partition_space_size(n)
        result.partitions_dropped = dropped
        return result


@register_strategy("beam")
class BeamStrategy(SearchStrategy):
    """Cost-model-guided beam search over local moves.

    Exploration is *cheap* (cost-model calls only): starting from the
    fully-fused and fully-unfused anchors, each generation expands the
    beam's neighbors and keeps the ``beam_width`` best predicted points.
    Simulation happens once at the end, spending ``budget`` successful
    runs on the pool's best predictions — so a 10x-smaller budget than
    exhaustive enumeration still reaches deep schedules (a 4-region
    partition of a 22-statement program is ~12 merges from unfused).
    """

    def run(self, task: SearchTask) -> SearchResult:
        space = SearchSpace(
            task.program,
            split_configs=task.splits,
            par_configs=task.par_options,
            order_limit=task.order_limit,
        )
        ev = Evaluator(task, space)
        rounds = task.generations
        if rounds is None:
            rounds = space.n + 4  # enough merges to cross the whole space

        def select(pool, width):
            ordered = sorted(
                pool.values(), key=lambda item: (item[0], item[2].key)
            )
            return [(point, move) for _, move, point in ordered[:width]]

        frontier = [(p, "seed") for p in space.seeds()]
        pool = _explore(
            task, space, ev, frontier, select, rounds, task.beam_width
        )
        _simulate_pool(task, space, ev, pool)
        result = _finish(task, space, ev)
        result.candidates_considered = len(pool)
        return result


@register_strategy("evolutionary")
class EvolutionaryStrategy(SearchStrategy):
    """Seeded mutate/select search (``numpy.random.default_rng``).

    The population starts from the two anchors plus random mutants;
    each generation keeps the best-predicted half and refills with
    mutations of survivors.  All randomness flows from ``task.seed``, so
    traces are reproducible; the simulate-top-``budget`` finish matches
    :class:`BeamStrategy`.
    """

    def run(self, task: SearchTask) -> SearchResult:
        space = SearchSpace(
            task.program,
            split_configs=task.splits,
            par_configs=task.par_options,
            order_limit=task.order_limit,
        )
        ev = Evaluator(task, space)
        rng = np.random.default_rng(task.seed)
        rounds = task.generations
        if rounds is None:
            rounds = max(4, space.n // 2 + 2)

        def mutate(point: SearchPoint) -> Tuple[str, SearchPoint]:
            options = space.neighbors(point)
            if not options:
                return ("seed", point)
            return options[int(rng.integers(len(options)))]

        def select(pool, width):
            ordered = sorted(
                pool.values(), key=lambda item: (item[0], item[2].key)
            )
            survivors = [(point, move) for _, move, point in ordered[:width]]
            mutants = [mutate(point) for point, _ in survivors]
            return survivors + [(p, m) for m, p in mutants]

        frontier = [(p, "seed") for p in space.seeds()]
        pool = _explore(
            task, space, ev, frontier, select, rounds, task.population // 2
        )
        _simulate_pool(task, space, ev, pool)
        result = _finish(task, space, ev)
        result.candidates_considered = len(pool)
        return result
