"""Scheduling language: fusion regions, orders, parallelization, splitting."""

from .autotune import (
    TunedSchedule,
    autotune,
    contiguous_partitions,
    enumerate_schedules,
    partition_space_size,
)
from .par import apply_parallelization, parallelized_levels
from .search import (
    STRATEGIES,
    Evaluator,
    SearchPoint,
    SearchResult,
    SearchSpace,
    SearchStrategy,
    SearchTask,
    get_strategy,
    register_strategy,
)
from .schedule import (
    Schedule,
    ScheduleError,
    cs_rewrite,
    fully_fused,
    fused_groups,
    unfused,
)
from .split import (
    apply_split,
    intermediate_row_splits,
    is_tile_index,
    split_footprint_scale,
    tiled_levels,
    validate_split_item,
)

__all__ = [
    "Schedule",
    "ScheduleError",
    "unfused",
    "fully_fused",
    "fused_groups",
    "cs_rewrite",
    "apply_parallelization",
    "apply_split",
    "autotune",
    "TunedSchedule",
    "enumerate_schedules",
    "contiguous_partitions",
    "partition_space_size",
    "parallelized_levels",
    "tiled_levels",
    "split_footprint_scale",
    "intermediate_row_splits",
    "is_tile_index",
    "validate_split_item",
    "STRATEGIES",
    "SearchPoint",
    "SearchSpace",
    "SearchTask",
    "SearchResult",
    "SearchStrategy",
    "Evaluator",
    "get_strategy",
    "register_strategy",
]
