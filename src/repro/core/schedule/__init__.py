"""Scheduling language: fusion regions, orders, parallelization."""

from .autotune import TunedSchedule, autotune, contiguous_partitions, enumerate_schedules
from .par import apply_parallelization, parallelized_levels
from .schedule import (
    Schedule,
    ScheduleError,
    cs_rewrite,
    fully_fused,
    fused_groups,
    unfused,
)

__all__ = [
    "Schedule",
    "ScheduleError",
    "unfused",
    "fully_fused",
    "fused_groups",
    "cs_rewrite",
    "apply_parallelization",
    "autotune",
    "TunedSchedule",
    "enumerate_schedules",
    "contiguous_partitions",
    "parallelized_levels",
]
