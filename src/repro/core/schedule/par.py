"""Parallelization of SAMML graphs (paper Section 7, evaluated in 8.6).

FuseFlow parallelizes by selecting an index variable and a factor: the
compiler partitions the variable's coordinate space and duplicates the
downstream compute subgraph, merging results on completion.  The simulator
models the duplicated subgraph by dividing each affected node's initiation
interval by the factor (perfect coordinate partitioning), while leaving
nodes *outside* the parallelized loop — outer scanners and the final
serializing writer — at their original rate.  Those un-parallelized stages
plus DRAM bandwidth are exactly what bounds scaling at large factors
(Figure 16a's saturation).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...sam.graph import SAMGraph


def scale_subgraph_factor(
    graph: SAMGraph,
    order: Sequence[str],
    index_var: str,
    factor: int,
    attr: str,
    noun: str,
) -> int:
    """Multiply a per-node timing factor across the loop of ``index_var``.

    The traversal both parallelization and index splitting share: every
    node iterating ``index_var`` or any deeper index (per ``order``), and
    every compute-region node (which sits inside the innermost loops), has
    ``attr`` (``par_factor`` or ``tile_factor``) multiplied by ``factor``.
    Tensor-construction nodes are exempt — the merging serializer stays
    serial under parallelization and drains continuously across tile
    boundaries under splitting.  Timed-result memos are invalidated.
    Returns the number of nodes affected.

    Raises
    ------
    ValueError
        For a factor < 1 (message names ``noun``) or an index the region
        does not iterate.
    """
    if factor < 1:
        raise ValueError(f"{noun} must be >= 1, got {factor}")
    if factor == 1:
        return 0
    positions: Dict[str, int] = {idx: i for i, idx in enumerate(order)}
    if index_var not in positions:
        raise ValueError(
            f"index {index_var!r} is not iterated by this region (order {list(order)})"
        )
    cut = positions[index_var]
    # Timing factors change node pacing: drop any memoized timed results.
    graph.timed_cache = None
    affected = 0
    for node in graph.nodes.values():
        if node.region == "construct":
            continue
        if node.index_var is not None:
            if positions.get(node.index_var, -1) >= cut:
                setattr(node, attr, getattr(node, attr) * factor)
                affected += 1
        elif node.region == "compute":
            setattr(node, attr, getattr(node, attr) * factor)
            affected += 1
    return affected


def scaled_levels(graph: SAMGraph, attr: str) -> List[str]:
    """Index variables whose nodes carry ``attr`` > 1."""
    out: List[str] = []
    for node in graph.nodes.values():
        if getattr(node, attr) > 1 and node.index_var and node.index_var not in out:
            out.append(node.index_var)
    return out


def apply_parallelization(
    graph: SAMGraph,
    order: Sequence[str],
    index_var: str,
    factor: int,
) -> int:
    """Parallelize ``index_var`` by ``factor`` across ``graph``.

    See :func:`scale_subgraph_factor` for the node-selection rule (the
    exempt construct nodes model the merging serializer).  Returns the
    number of nodes affected.
    """
    return scale_subgraph_factor(
        graph, order, index_var, factor, "par_factor", "parallelization factor"
    )


def parallelized_levels(graph: SAMGraph) -> List[str]:
    """Index variables whose nodes carry a parallel factor > 1."""
    return scaled_levels(graph, "par_factor")
