"""FuseFlow's scheduling language (paper Sections 4.2 and 7).

A :class:`Schedule` captures every knob the paper exposes to users:

* **fusion granularity** — a partition of the program's statements into
  fusion regions (``Fuse{}`` blocks);
* **dataflow ordering** — per-region global orders and per-statement local
  order constraints (added to the POG);
* **parallelization** — per-index-variable parallelization factors;
* **index splitting** — per-index-variable tile counts: the region iterates
  an outer tile index and streams one tile of the split dimension at a
  time, shrinking the resident footprint of cross-region intermediates
  (the knob that turns spill traffic back into on-chip traffic under a
  memory hierarchy — see the ``split-indices`` pass);
* **mask folding** — whether elementwise masking folds into producing
  contractions (SDDMM-style);
* **global rewrite** — the Custard/Stardust-style manual rewrite that merges
  contraction chains into single global-iteration Einsums (Section 8.4
  baseline).

Helpers build the three standard granularities of the evaluation: unfused,
partially fused (caller-specified groups), and fully fused.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..einsum.ast import EinsumProgram
from .split import validate_split_item


class ScheduleError(ValueError):
    """Raised for malformed schedules."""


@dataclass
class Schedule:
    """Complete schedule for compiling one Einsum program."""

    name: str
    regions: List[List[int]]
    # Per-region global dataflow order override (region position -> order).
    orders: Dict[int, List[str]] = field(default_factory=dict)
    # Per-statement local dataflow order constraints (sid -> index order).
    stmt_orders: Dict[int, Tuple[str, ...]] = field(default_factory=dict)
    # Index variable -> parallelization factor.
    par: Dict[str, int] = field(default_factory=dict)
    # Index variable -> tile count (index splitting).  Like ``par``, names
    # live in the unified per-region index namespace; an index that no
    # region iterates is skipped by the split-indices pass (with a
    # diagnostic), so one splits dict can broadcast across granularities.
    splits: Dict[str, int] = field(default_factory=dict)
    fold_masks: bool = True
    global_rewrite: bool = False

    def validate(self, program: EinsumProgram) -> None:
        seen: set = set()
        for region in self.regions:
            for sid in region:
                if sid < 0 or sid >= len(program.statements):
                    raise ScheduleError(f"region references unknown statement {sid}")
                if sid in seen:
                    raise ScheduleError(f"statement {sid} appears in two regions")
                seen.add(sid)
        if seen != set(range(len(program.statements))):
            missing = sorted(set(range(len(program.statements))) - seen)
            raise ScheduleError(f"statements {missing} not covered by any region")
        for region in self.regions:
            if region != sorted(region):
                raise ScheduleError(
                    f"region {region} must list statements in program order"
                )
        for index_var, tiles in self.splits.items():
            try:
                validate_split_item(index_var, tiles)
            except ValueError as exc:
                raise ScheduleError(str(exc)) from None

    def fingerprint(self) -> str:
        """Stable content hash over every knob the compiler reads.

        Recomputed at each compile, so mutating a schedule in place (e.g.
        assigning ``par``) changes the fingerprint and misses the driver's
        compile cache instead of serving a stale executable.
        """
        parts = [
            f"schedule {self.name}",
            f"regions {self.regions}",
            f"orders {sorted(self.orders.items())}",
            f"stmt_orders {sorted(self.stmt_orders.items())}",
            f"par {sorted(self.par.items())}",
            f"fold_masks {self.fold_masks}",
            f"global_rewrite {self.global_rewrite}",
        ]
        # Appended only when effective so fingerprints never churn on
        # no-ops: pre-splitting schedules and tile-count-1 entries (which
        # the split-indices pass skips) hash identically to unsplit —
        # byte-identical compiles must share one cache entry.
        effective_splits = {k: v for k, v in self.splits.items() if v > 1}
        if effective_splits:
            parts.append(f"splits {sorted(effective_splits.items())}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    def describe(self) -> str:
        parts = [f"schedule {self.name}: {len(self.regions)} region(s)"]
        for i, region in enumerate(self.regions):
            extra = f" order={self.orders[i]}" if i in self.orders else ""
            parts.append(f"  region {i}: statements {region}{extra}")
        if self.par:
            parts.append(f"  parallelization: {self.par}")
        if self.splits:
            parts.append(f"  index splits: {self.splits}")
        if self.global_rewrite:
            parts.append("  global-iteration rewrite (C+S style)")
        return "\n".join(parts)


def unfused(program: EinsumProgram, name: str = "unfused") -> Schedule:
    """One region per statement: every intermediate materializes."""
    return Schedule(name=name, regions=[[sid] for sid in range(len(program.statements))])


def fully_fused(program: EinsumProgram, name: str = "fully-fused") -> Schedule:
    """A single region covering the whole program."""
    return Schedule(name=name, regions=[list(range(len(program.statements)))])


def fused_groups(
    program: EinsumProgram,
    groups: Sequence[Sequence[int]],
    name: str = "partially-fused",
) -> Schedule:
    """Partition statements into the given fusion groups."""
    schedule = Schedule(name=name, regions=[sorted(g) for g in groups])
    schedule.validate(program)
    return schedule


def cs_rewrite(
    program: EinsumProgram,
    groups: Sequence[Sequence[int]],
    name: str = "cs-rewrite",
) -> Schedule:
    """Custard+Stardust manual-rewrite baseline: global-iteration fusion.

    Groups should contain only contiguous multiplicative contractions (the
    rewrite merges them into one Einsum); nonlinear operations break fusion
    in prior compilers, so they must sit in their own singleton groups.
    """
    schedule = fused_groups(program, groups, name=name)
    schedule.global_rewrite = True
    schedule.fold_masks = False
    return schedule
