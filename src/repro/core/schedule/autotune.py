"""Autoscheduling: search the fusion-granularity design space automatically.

The paper leaves autoscheduling as future work ("future work includes
autoscheduling to determine fusion schedules for common sparse ML patterns",
Section 4.2) but ships the two ingredients: a schedule space (contiguous
partitions of the statement list into fusion regions) and a fast analytical
heuristic for pruning (Section 7).  This module composes them:

1. enumerate candidate fusion schedules (all contiguous partitions up to a
   budget, or user-supplied candidates),
2. rank them with the FLOPs/bytes heuristic under a machine roofline,
3. simulate only the top-k survivors and return the measured winner.

This mirrors the paper's design-space-exploration methodology (56
configurations, heuristic pruning of suboptimal ones).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...comal.machines import Machine, RDA_MACHINE
from ...driver.executable import Executable
from ...driver.session import Session
from ...driver.sweeping import sweep_schedules
from ..einsum.ast import EinsumProgram
from ..heuristic.model import FusionHeuristic, TensorStats
from ..heuristic.prune import roofline_score
from .schedule import Schedule, fused_groups


@dataclass
class TunedSchedule:
    """Outcome of one autotuning run."""

    best: Schedule
    measured_cycles: float
    candidates_considered: int
    candidates_simulated: int
    ranking: List[Tuple[str, float]] = field(default_factory=list)
    # The winner's compiled form, served from the session cache (no extra
    # lowering beyond the simulation that measured it).
    executable: Optional[Executable] = None


def contiguous_partitions(n: int, max_partitions: int = 256) -> List[List[List[int]]]:
    """All contiguous partitions of ``range(n)`` (up to ``max_partitions``).

    Fusion regions must respect program order, so the schedule space is the
    2^(n-1) ways of placing region boundaries between consecutive
    statements.  The cap keeps enumeration tractable for big models; beyond
    it, coarser granularities (fewer boundaries) are preferred.
    """
    partitions: List[List[List[int]]] = []
    boundaries = list(range(1, n))
    # Enumerate by number of boundaries, fewest first (coarsest fusion).
    for k in range(0, n):
        for cut in itertools.combinations(boundaries, k):
            edges = [0, *cut, n]
            partitions.append(
                [list(range(a, b)) for a, b in zip(edges, edges[1:])]
            )
            if len(partitions) >= max_partitions:
                return partitions
    return partitions


def enumerate_schedules(
    program: EinsumProgram, max_candidates: int = 64
) -> List[Schedule]:
    """Candidate fusion schedules: contiguous region partitions."""
    n = len(program.statements)
    schedules = []
    for i, partition in enumerate(contiguous_partitions(n, max_candidates)):
        name = f"auto-{i}" if len(partition) not in (1, n) else (
            "auto-fully-fused" if len(partition) == 1 else "auto-unfused"
        )
        schedules.append(fused_groups(program, partition, name=name))
    return schedules


def autotune(
    program: EinsumProgram,
    binding: Dict[str, object],
    stats: Dict[str, TensorStats],
    candidates: Sequence[Schedule] | None = None,
    machine: Machine | None = None,
    simulate_top: int = 3,
    max_candidates: int = 64,
    session: Session | None = None,
) -> TunedSchedule:
    """Pick the best fusion schedule via heuristic pruning + simulation.

    Candidate schedules that fail to compile (infeasible streaming under the
    POG) are skipped — an unfused boundary always exists as a fallback.

    Compilation goes through ``session`` (a fresh one per call by default):
    every simulated candidate lands in the session's compile cache, so the
    returned winner's :attr:`TunedSchedule.executable` — and any later
    ``session.compile`` of the tuned schedule — costs no further lowering.
    """
    if session is None:
        session = Session(machine=machine or RDA_MACHINE)
    machine = machine or session.machine
    candidates = list(candidates) if candidates else enumerate_schedules(
        program, max_candidates
    )
    heuristic = FusionHeuristic(program, stats)
    scored: List[Tuple[float, Schedule]] = []
    for schedule in candidates:
        try:
            estimate = heuristic.estimate(schedule)
        except Exception:
            continue
        scored.append((roofline_score(estimate, machine), schedule))
    scored.sort(key=lambda pair: pair[0])

    # The simulate-top-k stage is an in-process schedule sweep: infeasible
    # candidates are skipped without consuming budget (an unfused boundary
    # always exists as a fallback).
    runs = sweep_schedules(
        session,
        program,
        binding,
        [schedule for _, schedule in scored],
        machine=machine,
        limit=simulate_top,
        skip_errors=True,
    )
    simulated = len(runs)
    ranking: List[Tuple[str, float]] = [(r.schedule.name, r.cycles) for r in runs]
    best_schedule: Optional[Schedule] = None
    best_cycles = float("inf")
    for run in runs:
        if run.cycles < best_cycles:
            best_cycles = run.cycles
            best_schedule = run.schedule
    if best_schedule is None:
        raise RuntimeError("no candidate schedule could be compiled and run")
    winner = session.compile(program, best_schedule)  # cache hit
    if winner.machine is not machine:
        # Bind the returned handle to the machine the tuning measured on
        # (the caller may have paired an explicit machine with a session
        # built for a different one); shares the cached compile artifacts.
        winner = Executable(
            winner.compiled, machine, winner.diagnostics, winner.fingerprint
        )
    return TunedSchedule(
        best=best_schedule,
        measured_cycles=best_cycles,
        candidates_considered=len(scored),
        candidates_simulated=simulated,
        ranking=ranking,
        executable=winner,
    )
